//! Offline stand-in for the `criterion` crate.
//!
//! A simple wall-clock harness with criterion's API shape: `criterion_group!`
//! / `criterion_main!`, `Criterion::bench_function`, benchmark groups with
//! throughput annotations, and `Bencher::iter`. Measurement is a fixed
//! warm-up followed by timed batches; it reports mean ns/iter (plus
//! throughput when annotated) to stdout. No statistics, plots, or saved
//! baselines — enough to compare configurations in CI logs and to keep
//! `cargo test`/`cargo bench` compiling offline.

#![deny(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work (forwards to `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self { id: format!("{}/{parameter}", function.into()) }
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Drives the iteration loop of one benchmark.
#[derive(Debug)]
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    measure_for: Duration,
}

impl Bencher {
    /// Times `routine` repeatedly; the harness aggregates the results.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // `--test` mode (real criterion's smoke mode): run the routine once
        // to prove it executes, skip warm-up and measurement entirely.
        if test_mode() {
            black_box(routine());
            self.iters_done += 1;
            return;
        }
        // Warm-up: let caches, branch predictors, and lazy init settle.
        let warmup_end = Instant::now() + Duration::from_millis(60);
        while Instant::now() < warmup_end {
            black_box(routine());
        }
        // Measure in batches to amortize clock reads.
        let mut batch: u64 = 1;
        let started = Instant::now();
        while started.elapsed() < self.measure_for {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.elapsed += t0.elapsed();
            self.iters_done += batch;
            batch = (batch * 2).min(1 << 16);
        }
    }

    fn ns_per_iter(&self) -> f64 {
        if self.iters_done == 0 {
            return f64::NAN;
        }
        self.elapsed.as_nanos() as f64 / self.iters_done as f64
    }
}

/// True when the binary was invoked with `--test` (as `cargo bench --
/// --test` does with real criterion): each benchmark runs its routine once
/// as a smoke check instead of being measured.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, throughput: Option<Throughput>, mut f: F) {
    let mut bencher =
        Bencher { iters_done: 0, elapsed: Duration::ZERO, measure_for: measure_duration() };
    f(&mut bencher);
    if test_mode() {
        println!("bench {label:<40} ok (--test: ran once, not measured)");
        return;
    }
    let ns = bencher.ns_per_iter();
    let extra = match throughput {
        Some(Throughput::Elements(n)) if ns > 0.0 => {
            format!("  ({:.1} Melem/s)", n as f64 * 1000.0 / ns)
        }
        Some(Throughput::Bytes(n)) if ns > 0.0 => {
            format!("  ({:.1} MiB/s)", n as f64 * 1e9 / ns / (1 << 20) as f64)
        }
        _ => String::new(),
    };
    println!("bench {label:<40} {ns:>12.1} ns/iter{extra}");
}

fn measure_duration() -> Duration {
    // Overridable so CI can shorten runs (`CRITERION_MEASURE_MS=50`).
    let ms =
        std::env::var("CRITERION_MEASURE_MS").ok().and_then(|v| v.parse().ok()).unwrap_or(300u64);
    Duration::from_millis(ms)
}

/// The top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), throughput: None }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: BenchmarkId, f: F) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), self.throughput, f);
        self
    }

    /// Runs one benchmark that receives an input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (upstream flushes reports here; a no-op for us).
    pub fn finish(self) {}
}

/// Declares a group function running each listed benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("CRITERION_MEASURE_MS", "10");
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("grouped");
        group.throughput(Throughput::Elements(1));
        group.bench_function(BenchmarkId::from_parameter("x"), |b| b.iter(|| black_box(2) * 2));
        group.bench_with_input(BenchmarkId::new("with", 4), &4, |b, &n| b.iter(|| n * 2));
        group.finish();
    }
}
