//! Offline stand-in for the `crossbeam-utils` crate.
//!
//! The workspace builds without network access, so the handful of external
//! crates it uses are vendored as minimal API-compatible subsets. This one
//! provides [`CachePadded`], the only item the tracer uses: a wrapper that
//! aligns (and pads) its contents to a cache-line boundary so adjacent
//! atomics never share a line (false sharing is exactly what the paper's
//! per-core fast path must avoid).

#![deny(missing_docs)]

use core::fmt;
use core::ops::{Deref, DerefMut};

/// Pads and aligns a value to 128 bytes.
///
/// 128 rather than 64 because modern x86_64 prefetches cache-line pairs and
/// big.LITTLE ARM SoCs (the paper's target hardware) have 128-byte lines on
/// some clusters; upstream crossbeam makes the same choice.
#[derive(Clone, Copy, Default, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

unsafe impl<T: Send> Send for CachePadded<T> {}
unsafe impl<T: Sync> Sync for CachePadded<T> {}

impl<T> CachePadded<T> {
    /// Pads and aligns `value`.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Returns the inner value, consuming the padding wrapper.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CachePadded").field("value", &self.value).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_is_at_least_128() {
        assert_eq!(core::mem::align_of::<CachePadded<u64>>(), 128);
        assert!(core::mem::size_of::<CachePadded<u64>>() >= 128);
    }

    #[test]
    fn deref_round_trips() {
        let mut p = CachePadded::new(7u32);
        *p += 1;
        assert_eq!(*p, 8);
        assert_eq!(p.into_inner(), 8);
    }
}
