//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API
//! surface (`lock()`/`read()`/`write()` returning guards directly). A
//! poisoned std lock is recovered rather than propagated — parking_lot has
//! no poisoning, so this preserves its semantics.

#![deny(missing_docs)]

use std::fmt;

/// A mutual exclusion primitive (std-backed, no poisoning).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// A reader-writer lock (std-backed, no poisoning).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self { inner: std::sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
