//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset the workspace uses — `StdRng::seed_from_u64`,
//! `gen`, `gen_range`, `gen_bool` — on top of xoshiro256++ seeded via
//! splitmix64. Deterministic for a given seed, which is all the replay
//! harness and tests require (they always seed explicitly).

#![deny(missing_docs)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 bits of the stream.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling a value of `Self` from a generator (the `Standard`
/// distribution of the real crate).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a generator can sample uniformly. The element type is a trait
/// parameter (mirroring upstream) so integer-literal ranges infer their
/// type from the call site's expected value.
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Multiply-shift bounded sampling (Lemire); the slight modulo bias of
    // the naive approach would be harmless here, but this is just as cheap.
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

/// Integer types `gen_range` can produce. The raw mapping sign-extends to
/// 64 bits, so span arithmetic is uniform wrapping math for signed and
/// unsigned types alike.
pub trait SampleUniform: Copy + PartialOrd {
    /// Sign-extended 64-bit image of the value.
    fn to_raw(self) -> u64;
    /// Truncating inverse of [`SampleUniform::to_raw`].
    fn from_raw(raw: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    (signed: $($s:ty),*; unsigned: $($u:ty),*) => {
        $(impl SampleUniform for $s {
            fn to_raw(self) -> u64 { self as i64 as u64 }
            fn from_raw(raw: u64) -> Self { raw as $s }
        })*
        $(impl SampleUniform for $u {
            fn to_raw(self) -> u64 { self as u64 }
            fn from_raw(raw: u64) -> Self { raw as $u }
        })*
    };
}
impl_sample_uniform!(signed: i8, i16, i32, i64, isize; unsigned: u8, u16, u32, u64, usize);

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        let lo = self.start.to_raw();
        let span = self.end.to_raw().wrapping_sub(lo);
        T::from_raw(lo.wrapping_add(uniform_below(rng, span)))
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let lo = start.to_raw();
        let span = end.to_raw().wrapping_sub(lo).wrapping_add(1);
        if span == 0 {
            // Full 64-bit domain.
            return T::from_raw(rng.next_u64());
        }
        T::from_raw(lo.wrapping_add(uniform_below(rng, span)))
    }
}

/// Convenience sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, seeded via splitmix64 — deterministic and fast; a
    /// different algorithm than upstream `StdRng` (ChaCha12), which is fine
    /// because callers only rely on determinism, not the exact stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self { s: core::array::from_fn(|_| splitmix64(&mut sm)) }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the workspace never relies on SmallRng's specific stream.
    pub type SmallRng = StdRng;
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(0usize..=3);
            assert!(w <= 3);
        }
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let f = r.gen::<f32>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| r.gen_bool(0.25)).count();
        let ratio = hits as f64 / 20_000.0;
        assert!((ratio - 0.25).abs() < 0.02, "got {ratio}");
    }
}
