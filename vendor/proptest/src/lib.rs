//! Offline stand-in for the `proptest` crate.
//!
//! Random property testing with the API subset the workspace's tests use:
//! the [`proptest!`] macro, range/tuple/`any`/`Just`/pattern strategies,
//! `prop_map`, `prop_oneof!`, `collection::vec`, `prop_assert*` and
//! `prop_assume!`. Failing inputs are reported via panic message but are
//! **not shrunk** — acceptable for a CI property check, and it keeps this
//! stand-in dependency-free. Case generation is deterministic per test
//! name, so failures reproduce.

#![deny(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A strategy producing `Vec`s whose length is drawn from `size` and
    /// whose elements are drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max_exclusive: usize,
    }

    /// Generates vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, min: size.start, max_exclusive: size.end }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.below((self.max_exclusive - self.min) as u64) as usize + self.min;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Arbitrary values (`any::<T>()`).
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    // Bias toward edge values: real proptest weights these
                    // via special-case strategies; a cheap 1-in-8 nudge
                    // keeps boundary coverage without the machinery.
                    match rng.next() & 7 {
                        0 => <$t>::MIN,
                        1 => <$t>::MAX,
                        _ => rng.next() as $t,
                    }
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T> {
        _marker: core::marker::PhantomData<T>,
    }

    /// Strategy for an arbitrary value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any { _marker: core::marker::PhantomData }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// The common imports (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    // Macros are exported at the crate root; re-export for prelude globs.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a [`proptest!`] body, reporting the failing
/// case via panic (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Rejects the current case (it is regenerated, not counted) when the
/// precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::Rejected);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        $crate::prop_assume!($cond)
    };
}

/// Picks one of several strategies, optionally weighted
/// (`weight => strategy`). All arms must produce the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, ::std::boxed::Box::new($strat)
                as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `config.cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!{ @run ($cfg) $($rest)* }
    };
    (@run ($cfg:expr) $(
        $(#[$attr:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            // Cap total attempts so a prop_assume that almost never holds
            // terminates instead of spinning.
            while accepted < config.cases && attempts < config.cases.saturating_mul(20) {
                attempts += 1;
                let ($($arg,)*) =
                    ($($crate::strategy::Strategy::generate(&$strat, &mut rng),)*);
                let verdict =
                    (move || -> ::core::result::Result<(), $crate::test_runner::Rejected> {
                        $body
                        Ok(())
                    })();
                if verdict.is_ok() {
                    accepted += 1;
                }
            }
            assert!(
                accepted >= config.cases / 2,
                "prop_assume rejected too many cases ({accepted} accepted of {attempts} attempts)"
            );
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!{ @run ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}
