//! The per-test deterministic RNG and runner configuration.

/// Marker returned by `prop_assume!` when a case must be regenerated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rejected;

/// Runner configuration (only the `cases` knob is honored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of accepted cases each property runs over.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic generator (xoshiro256++), seeded from the test name so
/// every run of a given test sees the same case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Seeds from a test name (FNV-1a over the bytes).
    pub fn for_test(name: &str) -> Self {
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for byte in name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x1000_0000_01B3);
        }
        let mut sm = hash;
        Self { s: core::array::from_fn(|_| splitmix64(&mut sm)) }
    }

    /// Next 64-bit word of the stream.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`; `bound` of zero yields zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        ((self.next() as u128 * bound as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_stream() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        assert_eq!(a.next(), b.next());
        let mut c = TestRng::for_test("y");
        assert_ne!(a.next(), c.next());
    }

    #[test]
    fn below_is_bounded() {
        let mut r = TestRng::for_test("bounds");
        for _ in 0..10_000 {
            assert!(r.below(17) < 17);
        }
        assert_eq!(r.below(0), 0);
    }
}
