//! Value-generation strategies.

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Object safe: `prop_map` is `Self: Sized`, so `Box<dyn Strategy>` works
/// (that is what [`crate::prop_oneof!`] builds).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice between boxed strategies ([`crate::prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
    total_weight: u64,
}

impl<V> Union<V> {
    /// Builds a union from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! weights must not all be zero");
        Self { arms, total_weight }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total_weight);
        for (weight, strat) in &self.arms {
            if pick < *weight as u64 {
                return strat.generate(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("pick < total_weight")
    }
}

impl<V> std::fmt::Debug for Union<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Union").field("arms", &self.arms.len()).finish()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next() as $t;
                }
                start + rng.below(span) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// String-pattern strategy: a `&str` is interpreted as a regex of the form
/// `[class]{min,max}` (one character class with a repetition count, the
/// only shape the workspace uses). Classes support literal characters and
/// `a-z`-style ranges. Anything else is generated verbatim.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        match parse_class_pattern(self) {
            Some((alphabet, min, max)) => {
                let len = min + rng.below((max - min + 1) as u64) as usize;
                (0..len).map(|_| alphabet[rng.below(alphabet.len() as u64) as usize]).collect()
            }
            None => (*self).to_string(),
        }
    }
}

/// Parses `[class]{min,max}` / `[class]{n}` / `[class]`, returning the
/// expanded alphabet and repetition bounds.
fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
            if lo > hi {
                return None;
            }
            alphabet.extend((lo..=hi).filter_map(char::from_u32));
            i += 3;
        } else {
            alphabet.push(class[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        return None;
    }
    let tail = &rest[close + 1..];
    if tail.is_empty() {
        return Some((alphabet, 1, 1));
    }
    let counts = tail.strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = match counts.split_once(',') {
        Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
        None => {
            let n = counts.trim().parse().ok()?;
            (n, n)
        }
    };
    (min <= max).then_some((alphabet, min, max))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_parser_handles_ranges_and_literals() {
        let (alphabet, min, max) = parse_class_pattern("[a-c_]{0,5}").unwrap();
        assert_eq!(alphabet, vec!['a', 'b', 'c', '_']);
        assert_eq!((min, max), (0, 5));
        let (alphabet, min, max) = parse_class_pattern("[ -~]{0,30}").unwrap();
        assert_eq!(alphabet.len(), 95); // printable ASCII
        assert_eq!((min, max), (0, 30));
        assert!(parse_class_pattern("plain").is_none());
    }

    #[test]
    fn generated_strings_match_class_and_length() {
        let mut rng = TestRng::for_test("strings");
        for _ in 0..200 {
            let s = "[a-z_]{0,20}".generate(&mut rng);
            assert!(s.len() <= 20);
            assert!(s.chars().all(|c| c == '_' || c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn union_respects_weights_roughly() {
        let u = crate::prop_oneof![9 => 0u32..1, 1 => 1u32..2];
        let mut rng = TestRng::for_test("weights");
        let ones = (0..5000).filter(|_| u.generate(&mut rng) == 1u32).count();
        let ratio = ones as f64 / 5000.0;
        assert!((0.05..0.2).contains(&ratio), "got {ratio}");
    }
}
