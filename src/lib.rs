//! # BTrace — efficient mobile tracing
//!
//! Facade crate for the BTrace reproduction (Wang et al., ASPLOS 2025,
//! *Enabling Efficient Mobile Tracing with BTrace*). It re-exports the public
//! APIs of every sub-crate so downstream users can depend on a single crate:
//!
//! * [`core`] — the BTrace tracer itself: a global buffer partitioned into
//!   blocks that are dynamically assigned to the most demanding cores.
//! * [`baselines`] — the buffer disciplines BTrace is evaluated against
//!   (BBQ, ftrace-like, LTTng-like, VTrace-like).
//! * [`replay`] — a mobile workload model and replayer used by the paper's
//!   evaluation (§5).
//! * [`analysis`] — readout metrics: latest fragment, loss rate, fragments,
//!   effectivity ratio, latency statistics.
//! * [`vmem`] / [`smr`] — substrates: reserved memory regions with
//!   commit/decommit, and epoch-based reclamation for consumers.
//!
//! ## Quickstart
//!
//! ```rust
//! use btrace::core::{BTrace, Config};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A 1 MiB buffer for a 4-core device, 4 KiB blocks, A = 16 blocks active.
//! let tracer = BTrace::new(Config::new(4).buffer_bytes(1 << 20).active_blocks(16))?;
//! let producer = tracer.producer(0)?; // producer handle pinned to core 0
//! producer.record(b"sched: task 42 -> cpu0")?;
//! let readout = tracer.consumer().collect();
//! assert!(readout.events.iter().any(|e| e.payload() == b"sched: task 42 -> cpu0"));
//! # Ok(())
//! # }
//! ```

pub use btrace_analysis as analysis;
pub use btrace_atrace as atrace;
pub use btrace_baselines as baselines;
pub use btrace_core as core;
pub use btrace_persist as persist;
pub use btrace_replay as replay;
pub use btrace_smr as smr;
pub use btrace_telemetry as telemetry;
pub use btrace_vmem as vmem;
