//! Replays the paper's shopping-app workload (Fig. 1b) against all five
//! tracer disciplines and prints the retention metrics plus a gap map —
//! a miniature of the paper's headline comparison.
//!
//! ```text
//! cargo run --release --example shopping_app_replay
//! ```

use btrace::analysis::{analyze, gap_map, GapMapOptions, Table};
use btrace::baselines::{Bbq, PerCoreDropNewest, PerCoreOverwrite, PerThread};
use btrace::core::{BTrace, Config};
use btrace::replay::{scenarios, ReplayConfig, ReplayReport, Replayer};

const TOTAL: usize = 4 << 20; // a 4 MiB budget keeps the example snappy
const CORES: usize = 12;

fn main() {
    let scenario = scenarios::by_name("eShop-1").expect("scenario exists");
    let config = ReplayConfig { scale: 0.1, ..ReplayConfig::table2() };
    let replayer = || Replayer::new(scenario, config.clone());

    let btrace = BTrace::new(
        Config::new(CORES).active_blocks(16 * CORES).block_bytes(4096).buffer_bytes(TOTAL),
    )
    .expect("valid configuration");

    let reports: Vec<ReplayReport> = vec![
        replayer().run(&btrace),
        replayer().run(&Bbq::new(TOTAL, 4096)),
        replayer().run(&PerCoreOverwrite::new(CORES, TOTAL)),
        replayer().run(&PerCoreDropNewest::new(CORES, TOTAL, 4)),
        replayer().run(&PerThread::new(TOTAL, scenario.total_threads_per_core as usize * CORES)),
    ];

    let mut table = Table::new(vec![
        "Tracer".into(),
        "Latest fragment".into(),
        "Loss rate".into(),
        "Fragments".into(),
        "Dropped at record".into(),
    ]);
    for report in &reports {
        let m = analyze(&report.retained, report.capacity_bytes);
        table.row(vec![
            report.tracer.to_string(),
            format!("{:.2} MB", m.latest_fragment_bytes as f64 / (1 << 20) as f64),
            format!("{:.1}%", m.loss_rate * 100.0),
            m.fragments.to_string(),
            report.dropped_at_record.to_string(),
        ]);
    }
    println!("{}", table.render());

    println!("Retention of the last buffer-full of written events (newest right):\n");
    for report in &reports {
        let mean_entry = (report.written_bytes / report.written.max(1)).max(1);
        let window = (report.capacity_bytes as u64 / mean_entry).min(report.written);
        let map = gap_map(
            &report.retained_stamps(),
            report.written.saturating_sub(1),
            GapMapOptions { window, width: 64 },
        );
        println!("  {:<8}|{map}|", report.tracer);
    }
}
