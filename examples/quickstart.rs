//! Quickstart: create a BTrace buffer, record from several "cores", read
//! everything back, and resize at runtime.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use btrace::core::{BTrace, Config};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A tracer for a 4-core device: 2 MiB buffer now, growable to 8 MiB,
    // 4 KiB data blocks, 64 active blocks (16 per core, the paper's sweet
    // spot).
    let tracer = BTrace::new(
        Config::new(4).buffer_bytes(2 << 20).max_bytes(8 << 20).block_bytes(4096).active_blocks(64),
    )?;
    println!("created: {tracer:?}");

    // One producer handle per core; clones are cheap and any number of
    // threads may share one. Recording is a fetch-and-add, a word-wise
    // copy, and a second fetch-and-add — it never blocks and never drops.
    let mut handles = Vec::new();
    for core in 0..tracer.cores() {
        let producer = tracer.producer(core)?;
        handles.push(std::thread::spawn(move || {
            for i in 0..10_000u64 {
                let line = format!("core{core}: sched switch #{i}");
                producer
                    .record_with(core as u64 * 1_000_000 + i, i as u32 % 7, line.as_bytes())
                    .expect("payload fits a block");
            }
        }));
    }
    for h in handles {
        h.join().expect("producer thread");
    }

    // The consumer reads speculatively: it never blocks the producers, and
    // re-validates every block so it never returns torn data.
    let readout = tracer.consumer().collect();
    println!(
        "collected {} events ({} KiB) from {} readable blocks",
        readout.events.len(),
        readout.stored_bytes() / 1024,
        readout.blocks.readable,
    );
    let newest = readout.events.last().expect("events were recorded");
    println!("newest event: {:?} -> {}", newest, String::from_utf8_lossy(newest.payload()));

    // Resize at runtime: grow for a critical phase, shrink afterwards.
    // Producers could keep recording concurrently throughout.
    tracer.resize_bytes(8 << 20)?;
    println!("grown:  capacity = {} KiB", tracer.capacity_bytes() / 1024);
    tracer.resize_bytes(1 << 20)?;
    println!("shrunk: capacity = {} KiB", tracer.capacity_bytes() / 1024);

    let stats = tracer.stats();
    println!(
        "stats: {} records, {} advances, {} closes, {} skips, {:.2}% dummy overhead",
        stats.records,
        stats.advances,
        stats.closes,
        stats.skips,
        stats.dummy_fraction() * 100.0,
    );
    Ok(())
}
