//! Hunting a silent defect with a long-duration trace (paper §6).
//!
//! The case study: a watchdog daemon reports that the device failed to
//! freeze — but only after a 20-second timeout, long after the root cause
//! (a bound CPU thread that failed to migrate when its CPU was
//! hot-unplugged). The clue is a handful of *sparse* events drowned in a
//! flood of routine scheduler traffic. A tracer that drops interior events
//! loses the clue; BTrace's continuous latest fragment keeps it.
//!
//! ```text
//! cargo run --release --example silent_defect_hunt
//! ```

use btrace::analysis::{fold_merge, map_reduce, TracePartial};
use btrace::baselines::PerCoreOverwrite;
use btrace::core::sink::TraceSink;
use btrace::core::{BTrace, Config};

const CORES: usize = 4;
const TOTAL: usize = 1 << 20; // deliberately tight: the trace wraps many times

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let btrace =
        BTrace::new(Config::new(CORES).active_blocks(64).block_bytes(4096).buffer_bytes(TOTAL))?;
    // An ftrace-like per-core tracer with the same total budget, for
    // contrast: its busy core is confined to a 1/C slice (Table 1).
    let ftrace = PerCoreOverwrite::new(CORES, TOTAL);

    // The simulated 20-second window before the watchdog fires: routine
    // noise from every core, with the three-event causal chain of the
    // defect sprinkled in early (the paper's point: the clue is *old* by
    // the time the symptom appears, but still within the last buffer-full).
    let mut stamp = 0u64;
    let mut clue_stamps = Vec::new();
    for tick in 0..30_000u64 {
        // Little core 0 produces half of all traffic (the Fig. 4 skew).
        let core = if tick % 2 == 0 { 0 } else { 1 + (tick % 3) as usize };
        let tid = (tick % 97) as u32;
        if tick == 15_000 || tick == 15_500 || tick == 16_000 {
            // The sparse causal chain, recorded on the busy little core
            // ~14 s before the watchdog fires: cpu hot-unplug, the bound
            // thread failing to migrate, and the starvation warning.
            let clue = match tick {
                15_000 => "userspace driver: cpu3 hot-unplug".as_bytes(),
                15_500 => b"sched: bound thread 4242 cannot migrate off cpu3" as &[u8],
                _ => b"watchdog: thread 4242 starved 10s",
            };
            btrace.record(0, tid, stamp, clue);
            ftrace.record(0, tid, stamp, clue);
            clue_stamps.push(stamp);
        } else {
            let noise = format!("sched: switch tick={tick}");
            btrace.record(core, tid, stamp, noise.as_bytes());
            ftrace.record(core, tid, stamp, noise.as_bytes());
        }
        stamp += 1;
    }
    // The watchdog fires and dumps both tracers.
    println!(
        "watchdog timeout! dumping {} written events from a {} KiB buffer\n",
        stamp,
        TOTAL / 1024
    );

    for (name, retained) in [("BTrace", btrace.drain()), ("ftrace (per-core)", ftrace.drain())] {
        let found: Vec<u64> =
            retained.iter().map(|e| e.stamp).filter(|s| clue_stamps.contains(s)).collect();
        // The hunt itself is fragment-parallel: the retained trace is cut
        // into four fragments, each mapped to a partial on its own worker,
        // and the ordered merge yields exactly the sequential metrics.
        let fragments: Vec<&[btrace::core::sink::CollectedEvent]> =
            retained.chunks(retained.len().div_ceil(4).max(1)).collect();
        let partials = map_reduce(&fragments, 4, |_, chunk| TracePartial::map(chunk));
        let merged = fold_merge(partials, TracePartial::merge).unwrap_or_default();
        let analysis = merged.finish(TOTAL, 8);
        assert_eq!(
            analysis,
            TracePartial::map(&retained).finish(TOTAL, 8),
            "fragment-parallel hunt must be bit-identical to the sequential one"
        );
        let metrics = analysis.metrics;
        println!(
            "{name:<20} retained {:>6} events, latest fragment {:>4} KiB, {}/{} clue events found {}",
            retained.len(),
            metrics.latest_fragment_bytes / 1024,
            found.len(),
            clue_stamps.len(),
            if found.len() == clue_stamps.len() { "-> root cause identified" } else { "-> clue lost!" },
        );
    }
    Ok(())
}
