//! In-production tracing with dynamic buffer resizing (paper §2.2
//! Observation 3 and §4.4).
//!
//! The scenario: a phone idles with a small trace buffer. An anomaly
//! detector flags an app cold start, so the buffer grows to capture a
//! detailed trace of the launch; once the main activity has loaded, the
//! trace is dumped and the buffer shrinks back — all while producers keep
//! recording, with no locks added to their path.
//!
//! ```text
//! cargo run --release --example inproduction_resizing
//! ```

use btrace::core::{BTrace, Config};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

const CORES: usize = 8;
const STRIDE: usize = 4096 * 128; // block_bytes * active_blocks = 512 KiB

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tracer = BTrace::new(
        Config::new(CORES)
            .block_bytes(4096)
            .active_blocks(128)
            .buffer_bytes(STRIDE) // idle: 0.5 MiB
            .max_bytes(16 * STRIDE), // burst: up to 8 MiB
    )?;
    let stamp = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));

    // Background producers: the system never stops tracing.
    let producers: Vec<_> = (0..CORES)
        .map(|core| {
            let producer = tracer.producer(core)?;
            let stamp = Arc::clone(&stamp);
            let stop = Arc::clone(&stop);
            Ok(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let s = stamp.fetch_add(1, Ordering::Relaxed);
                    producer
                        .record_with(s, core as u32, b"freq/idle/sched decision record ....")
                        .expect("fits");
                    // A real phone produces a few thousand events per core
                    // per second, not tens of millions; pace accordingly so
                    // the buffer holds seconds of history, not milliseconds.
                    if s.is_multiple_of(64) {
                        std::thread::sleep(std::time::Duration::from_micros(200));
                    }
                }
            }))
        })
        .collect::<Result<_, btrace::core::TraceError>>()?;

    println!("idle:       capacity {:>5} KiB", tracer.capacity_bytes() / 1024);

    // Anomaly detector fires: grow for the critical phase (app cold start).
    tracer.resize_bytes(16 * STRIDE)?;
    println!(
        "cold start: capacity {:>5} KiB (growing took one CAS + page commit)",
        tracer.capacity_bytes() / 1024
    );

    // Let the launch "run" while tracing at full detail.
    std::thread::sleep(std::time::Duration::from_millis(300));

    // Main activity loaded: dump the detailed trace...
    let readout = tracer.consumer().collect();
    println!(
        "dump:       {} events, {:.2} MiB retained, {} readable blocks",
        readout.events.len(),
        readout.stored_bytes() as f64 / (1 << 20) as f64,
        readout.blocks.readable,
    );

    // ... and shrink back. The shrinker closes the active blocks, waits for
    // the implicit reference counts (allocate/confirm) to drain, runs the
    // consumer grace period, then decommits the pages — producers above
    // never stopped recording.
    tracer.resize_bytes(STRIDE)?;
    println!(
        "steady:     capacity {:>5} KiB (memory returned to the system)",
        tracer.capacity_bytes() / 1024
    );

    stop.store(true, Ordering::Relaxed);
    for p in producers {
        p.join().expect("producer thread");
    }

    let stats = tracer.stats();
    println!(
        "\n{} events recorded across the whole run; {} resizes; no event was ever dropped.",
        stats.records, stats.resizes
    );
    let after = tracer.consumer().collect();
    println!("the shrunken buffer still serves reads: {} events retained", after.events.len());
    Ok(())
}
