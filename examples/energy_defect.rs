//! The §6 energy-defect case study, reconstructed end to end.
//!
//! The bug: middle cores enter a deep idle state; user-experience-critical
//! render threads get scheduled onto them; before the core finishes waking
//! up, an overly aggressive scheduler times out and migrates the thread to
//! a big core. Each bounce wastes energy. No single event is wrong — the
//! defect only shows as a *statistical pattern* across idle, scheduling,
//! and migration events over a long window, which is why it needs level-3
//! categories and a continuous trace.
//!
//! ```text
//! cargo run --release --example energy_defect
//! ```

use btrace::atrace::{Atrace, Level, OwnedEvent, TraceEvent};
use btrace::core::{BTrace, Config};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CORES: usize = 12;
const RENDER_TID: u32 = 7001;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sink = BTrace::new(
        Config::new(CORES).active_blocks(16 * CORES).block_bytes(4096).buffer_bytes(3 << 20),
    )?;
    let atrace = Atrace::new(sink, Level::Level3.categories());
    let mut rng = StdRng::seed_from_u64(2026);

    // Simulate ~60 seconds of device activity containing the pattern.
    let mut bounces = 0u32;
    for tick in 0..200_000u64 {
        let core = (tick % CORES as u64) as usize;
        match rng.gen_range(0..100) {
            // Routine traffic.
            0..=59 => {
                atrace.event(
                    core,
                    (tick % 53) as u32,
                    TraceEvent::SchedSwitch {
                        prev: (tick % 53) as u32,
                        next: ((tick + 1) % 53) as u32,
                        prio: 120,
                    },
                );
            }
            60..=74 => {
                atrace.event(
                    core,
                    0,
                    TraceEvent::FreqChange {
                        cpu: core as u8,
                        khz: 1_000_000 + rng.gen_range(0..1_800) * 1000,
                    },
                );
            }
            75..=89 => {
                atrace.event(
                    core,
                    0,
                    TraceEvent::IdleEnter { cpu: core as u8, state: rng.gen_range(0..3) },
                );
            }
            // The defect pattern, always on the middle cores (4..10):
            _ if (4..10).contains(&core) && rng.gen_bool(0.3) => {
                // deep idle -> render thread placed -> timeout -> migration to a big core
                atrace.event(core, 0, TraceEvent::IdleEnter { cpu: core as u8, state: 2 });
                atrace.event(
                    core,
                    RENDER_TID,
                    TraceEvent::SchedWakeup { tid: RENDER_TID, cpu: core as u8 },
                );
                atrace.event(
                    core,
                    RENDER_TID,
                    TraceEvent::SchedMigrate {
                        tid: RENDER_TID,
                        from_cpu: core as u8,
                        to_cpu: 10 + (tick % 2) as u8,
                    },
                );
                bounces += 1;
            }
            _ => {
                atrace.event(core, 0, TraceEvent::IdleExit { cpu: core as u8 });
            }
        }
    }

    // The analyst's query: how often is a render-thread migration preceded
    // (on the same core, within a few events) by a deep-idle entry?
    let events = atrace.drain_decoded();
    println!("retained {} decoded events (of {} recorded)", events.len(), 200_000);

    let mut suspicious = 0u32;
    let mut per_source_core = [0u32; CORES];
    for window in events.windows(8) {
        let (head, tail) = window.split_at(7);
        if let OwnedEvent::SchedMigrate { tid: RENDER_TID, from_cpu, to_cpu } = tail[0].event {
            let deep_idle_recently = head.iter().any(|e| {
                matches!(e.event, OwnedEvent::IdleEnter { cpu, state } if cpu == from_cpu && state >= 2)
            });
            if deep_idle_recently && to_cpu >= 10 {
                suspicious += 1;
                per_source_core[from_cpu as usize] += 1;
            }
        }
    }
    println!("deep-idle -> render-wakeup -> big-core migration chains found: {suspicious}");
    println!("injected bounces in the retained window:                       (of {bounces} total)");
    println!("\nper-core distribution of the pattern's source:");
    for (core, count) in per_source_core.iter().enumerate() {
        println!("  cpu{core:<2} {}", "#".repeat((*count as usize).min(60)));
    }
    assert!(suspicious > 0, "the continuous trace must expose the pattern");
    println!("\n=> the pattern clusters on the middle cores: the aggressive wake-timeout");
    println!("   migration strategy is the energy defect (paper §6, case 1).");
    Ok(())
}
