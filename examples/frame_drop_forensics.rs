//! The §6 frame-drop case study: the root cause dies long before the
//! symptom shows.
//!
//! A misbehaving thread busy-loops, silently raising chip temperature, and
//! exits. Seconds later the thermal daemon downclocks the CPU, and only
//! *then* do frames start dropping. By symptom time the culprit no longer
//! exists — a tracer that lost the older events cannot connect the chain:
//!
//! ```text
//! busy loop (t=0..4s)  ->  temperature climb  ->  thermal throttle (t=9s)
//!                      ->  frequency drop     ->  frame deadline misses
//! ```
//!
//! ```text
//! cargo run --release --example frame_drop_forensics
//! ```

use btrace::atrace::{Atrace, Level, OwnedEvent, TraceEvent};
use btrace::core::{BTrace, Config};
use btrace::persist::{
    analyze_frames, encode_stream, AnalyzeOptions, Collector, CollectorConfig, TraceDump,
};
use std::sync::Arc;

const CORES: usize = 8;
const CULPRIT_TID: u32 = 6666;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sink = Arc::new(BTrace::new(
        Config::new(CORES).active_blocks(16 * CORES).block_bytes(4096).buffer_bytes(4 << 20),
    )?);
    let atrace = Atrace::new(Arc::clone(&sink), Level::Level3.categories());

    // Phase 1 (t = 0..4 s): the culprit busy-loops on cpu2 and dies.
    for tick in 0..40_000u64 {
        let core = (tick % CORES as u64) as usize;
        if core == 2 && (tick / 8) % 2 == 0 {
            atrace.event(
                2,
                CULPRIT_TID,
                TraceEvent::SchedSwitch {
                    prev: 0,
                    next: CULPRIT_TID,
                    prio: 139, // background priority: nobody suspects it
                },
            );
        } else {
            atrace.event(core, (tick % 41) as u32, TraceEvent::IdleExit { cpu: core as u8 });
        }
        // Temperature creeps up while the culprit runs.
        if tick % 500 == 0 {
            atrace.event(
                0,
                0,
                TraceEvent::ThermalThrottle { zone: 0, mdeg: 35_000 + (tick / 500 * 150) as u32 },
            );
        }
    }

    // Phase 2 (t = 4..9 s): the culprit is gone; normal traffic continues.
    for tick in 0..30_000u64 {
        let core = (tick % CORES as u64) as usize;
        atrace.event(
            core,
            (tick % 41) as u32,
            TraceEvent::SchedSwitch {
                prev: (tick % 41) as u32,
                next: ((tick + 1) % 41) as u32,
                prio: 120,
            },
        );
    }

    // Phase 3 (t = 9 s): the heat daemon reacts; frames start missing.
    atrace.event(0, 0, TraceEvent::ThermalThrottle { zone: 0, mdeg: 48_000 });
    for cpu in 0..CORES as u8 {
        atrace.event(cpu as usize, 0, TraceEvent::FreqChange { cpu, khz: 900_000 });
    }
    for frame in 0..30u32 {
        atrace.event(0, 4242, TraceEvent::Counter { name: "missed_frame", value: frame as i64 });
    }

    // The frame-drop monitor fires: dump the buffer for offline forensics.
    let dir = std::env::temp_dir().join(format!("btrace-framedrop-{}", std::process::id()));
    let collector =
        Collector::new(Arc::clone(&sink), CollectorConfig::new(&dir).prefix("framedrop"))?;
    let dump_path = collector.trigger("frame-drops-after-throttle")?;
    println!("symptom detected; buffer dumped to {}", dump_path.display());

    // Offline triage runs fragment-parallel: the dump is re-framed, split
    // at frame boundaries, and analyzed as a map-reduce over 4 workers —
    // bit-identical to the sequential readout, with the boundary hand-off
    // check vouching that no fragment was lost between workers.
    let frames = encode_stream(TraceDump::read_from(&dump_path)?.events(), 512);
    let parallel = analyze_frames(&frames, &AnalyzeOptions { threads: 4, ..Default::default() })?;
    let sequential = analyze_frames(&frames, &AnalyzeOptions::default())?;
    assert_eq!(parallel.analysis, sequential.analysis, "parallel triage must be bit-identical");
    assert!(parallel.defects.is_empty(), "healthy dump must hand off cleanly between fragments");
    println!(
        "fragment-parallel triage: {} events in {} fragments on {} threads, {} hand-off defects",
        parallel.state.events,
        parallel.work.len(),
        parallel.threads,
        parallel.defects.len()
    );

    // Offline analysis connects the chain backwards.
    let events = atrace.drain_decoded();
    let throttle_at = events
        .iter()
        .rfind(|e| matches!(e.event, OwnedEvent::ThermalThrottle { mdeg, .. } if mdeg >= 45_000))
        .map(|e| e.stamp)
        .expect("throttle event retained");
    let culprit_runs = events
        .iter()
        .filter(|e| {
            e.stamp < throttle_at
                && matches!(e.event, OwnedEvent::SchedSwitch { next, .. } if next == CULPRIT_TID)
        })
        .count();
    let temp_climb: Vec<u32> = events
        .iter()
        .filter_map(|e| match e.event {
            OwnedEvent::ThermalThrottle { mdeg, .. } => Some(mdeg),
            _ => None,
        })
        .collect();

    println!("retained {} events spanning the whole chain", events.len());
    println!("culprit tid {CULPRIT_TID} observed running {culprit_runs} times before the throttle");
    println!(
        "temperature series retained: {} samples, {:.1}°C -> {:.1}°C",
        temp_climb.len(),
        *temp_climb.first().unwrap() as f64 / 1000.0,
        *temp_climb.last().unwrap() as f64 / 1000.0
    );
    assert!(culprit_runs > 0, "the long-duration trace must still contain the culprit");
    println!("\n=> the busy-looping background thread that died seconds before the");
    println!("   symptom is identified from one continuous trace (paper §6, case 2).");
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
