//! Hand-rolled argument parsing (no CLI dependency in the offline set).

/// Usage text shown by `help` and on errors.
pub const USAGE: &str = "\
btrace — block-based mobile tracing toolkit

USAGE:
    btrace <COMMAND> [OPTIONS]

COMMANDS:
    scenarios                      list the built-in replay workloads
    demo                           run a quick synthetic demo
    replay                         replay a workload against one tracer
        --scenario <NAME>          workload (default eShop-1)
        --tracer <NAME>            BTrace|BBQ|ftrace|LTTng|VTrace (default BTrace)
        --scale <F>                fraction of the 30 s workload (default 0.05)
        --threads <K>              fragment-parallel readout workers (default 1)
    dump                           replay, then persist the buffer to a file
        --scenario <NAME>          workload (default eShop-1)
        --out <FILE>               output path (default trace.btd)
        --scale <F>                fraction of the 30 s workload (default 0.05)
    inspect <FILE>                 analyze a dump file
        --map                      also print the retention gap map
    analyze <FILE>                 fragment-parallel analysis of a frame stream or dump
        --threads <K>              worker threads (default 1 = sequential reference)
        --fragments <N>            fragments to split into (default: one per thread)
        --map                      also print the retention gap map
    query <FILE>                   predicate query over a frame stream or dump
        --since <STAMP>            keep events with stamp >= STAMP
        --until <STAMP>            keep events with stamp <= STAMP
        --core <N>                 keep events from core N (repeatable)
        --category <NAME|0xBITS>   keep atrace events in this category
                                   (name from the catalog, or a hex/dec mask)
        --threads <K>              worker threads (default 1)
        --metrics                  also print the retention metrics table
        --gap-map                  also print the retention gap map
        --json                     emit the report as one JSON line
    stat                           run a synthetic load, print a health snapshot
        --json                     emit the snapshot as one JSON line
        --duration-ms <N>          workload length (default 1000)
        --jsonl <FILE>             also append periodic snapshots to a JSONL file
        --prom <FILE>              also maintain a Prometheus textfile
    watch                          live health table while a synthetic load runs
        --period-ms <N>            sampling period (default 500)
        --duration-ms <N>          workload length (default 5000)
        --jsonl <FILE>             also append periodic snapshots to a JSONL file
        --prom <FILE>              also maintain a Prometheus textfile
    stream                         continuously export a synthetic load as frames
        --duration-ms <N>          workload length (default 2000)
        --out <FILE>               frame file (default: discard, count only)
        --policy <block|drop>      backpressure policy (default block)
        --batch-events <N>         max events per frame (default 512)
        --queue-depth <N>          bound of each stage queue (default 8)
        --drain-threads <K>        drain workers, one per sequence stripe
                                   (default: min(4, host CPUs); K above the
                                   host CPU count prints a warning)
        --auto-size                adaptive buffer sizing (the controller)
        --budget <BYTES>           hard memory budget for --auto-size
                                   (default: the buffer's reserved maximum)
        --target-loss <PPM>        loss-rate target in ppm for --auto-size
                                   (default 10000 = 1% of blocks)
        --json                     emit final stats as one JSON line
    tune                           dry-run the sizing controller on a
                                   synthetic load, print its decisions
        --duration-ms <N>          workload length (default 2000)
        --budget <BYTES>           hard memory budget (default: reserved max)
        --target-loss <PPM>        loss-rate target in ppm (default 10000)
        --json                     emit the recommendation as one JSON line
    doctor                         seeded fault-storm run, then loss forensics
        --fault-seed <N>           commit-fault plan seed, 0 disables (default 183)
        --duration-ms <N>          workload length (default 1000)
        --json                     emit the diagnosis as one JSON line
    events                         run a synthetic load, print the recorder timeline
        --duration-ms <N>          workload length (default 1000)
        --follow                   tail events live while the load runs
        --json                     one JSON object per event
    help                           show this text
";

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// List scenarios.
    Scenarios,
    /// Quick demo.
    Demo,
    /// Replay one scenario against one tracer.
    Replay {
        /// Scenario name.
        scenario: String,
        /// Tracer name.
        tracer: String,
        /// Workload scale.
        scale: f64,
        /// Fragment-parallel readout workers (1 = sequential).
        threads: usize,
    },
    /// Replay and persist.
    Dump {
        /// Scenario name.
        scenario: String,
        /// Output path.
        out: String,
        /// Workload scale.
        scale: f64,
    },
    /// Analyze a dump file.
    Inspect {
        /// Dump path.
        file: String,
        /// Whether to print the gap map.
        map: bool,
    },
    /// Fragment-parallel analysis of a frame stream (.btsf) or dump (.btd).
    Analyze {
        /// Input path.
        file: String,
        /// Worker threads (1 = the sequential reference).
        threads: usize,
        /// Fragment count (0 = one per thread).
        fragments: usize,
        /// Whether to print the gap map.
        map: bool,
    },
    /// Predicate query over a frame stream (.btsf) or dump (.btd).
    Query {
        /// Input path.
        file: String,
        /// Keep events with `stamp >= since`.
        since: Option<u64>,
        /// Keep events with `stamp <= until`.
        until: Option<u64>,
        /// Keep events from these cores (empty = all).
        cores: Vec<u16>,
        /// Category name or bit mask, if given.
        category: Option<String>,
        /// Worker threads.
        threads: usize,
        /// Whether to print the retention metrics table.
        metrics: bool,
        /// Whether to print the gap map.
        map: bool,
        /// Emit the report as one JSON line.
        json: bool,
    },
    /// One-shot health snapshot of a synthetic workload.
    Stat {
        /// Emit JSON instead of a table.
        json: bool,
        /// Workload length in milliseconds.
        duration_ms: u64,
        /// Optional JSONL export path.
        jsonl: Option<String>,
        /// Optional Prometheus textfile path.
        prom: Option<String>,
    },
    /// Live health table of a synthetic workload.
    Watch {
        /// Sampling period in milliseconds.
        period_ms: u64,
        /// Workload length in milliseconds.
        duration_ms: u64,
        /// Optional JSONL export path.
        jsonl: Option<String>,
        /// Optional Prometheus textfile path.
        prom: Option<String>,
    },
    /// Stream a synthetic workload through the drain pipeline.
    Stream {
        /// Workload length in milliseconds.
        duration_ms: u64,
        /// Frame file path (`None` discards frames, counting them).
        out: Option<String>,
        /// `true` = block on full queues, `false` = drop-and-count.
        block: bool,
        /// Max events per encoded frame.
        batch_events: usize,
        /// Bound of each inter-stage queue.
        queue_depth: usize,
        /// Drain worker threads (stripes of the block-sequence space).
        /// `None` lets the command pick `min(4, host CPUs)`.
        drain_threads: Option<usize>,
        /// Run the adaptive-sizing controller alongside the stream.
        auto_size: bool,
        /// Hard memory budget in bytes for the controller (`None` uses
        /// the buffer's reserved maximum).
        budget: Option<u64>,
        /// Controller loss-rate target in ppm.
        target_loss_ppm: u64,
        /// Emit final stats as JSON instead of tables.
        json: bool,
    },
    /// Dry-run the sizing controller against a synthetic load.
    Tune {
        /// Workload length in milliseconds.
        duration_ms: u64,
        /// Hard memory budget in bytes (`None` uses the reserved max).
        budget: Option<u64>,
        /// Loss-rate target in ppm.
        target_loss_ppm: u64,
        /// Emit the recommendation as one JSON line.
        json: bool,
    },
    /// Seeded fault-storm run followed by loss forensics.
    Doctor {
        /// Fault plan seed (`0` disables injection).
        fault_seed: u64,
        /// Workload length in milliseconds.
        duration_ms: u64,
        /// Emit the diagnosis as JSON instead of a report.
        json: bool,
    },
    /// Print the flight-recorder timeline of a synthetic load.
    Events {
        /// Workload length in milliseconds.
        duration_ms: u64,
        /// Tail events live instead of dumping at the end.
        follow: bool,
        /// One JSON object per event.
        json: bool,
    },
    /// Show usage.
    Help,
}

/// Parses the argument vector (without the program name).
pub fn parse(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    let Some(cmd) = it.next() else { return Ok(Command::Help) };
    match cmd.as_str() {
        "scenarios" => Ok(Command::Scenarios),
        "demo" => Ok(Command::Demo),
        "help" | "--help" | "-h" => Ok(Command::Help),
        "replay" => {
            let opts = options(it.as_slice(), &["--scenario", "--tracer", "--scale", "--threads"])?;
            Ok(Command::Replay {
                scenario: opts.get("--scenario").cloned().unwrap_or_else(|| "eShop-1".into()),
                tracer: opts.get("--tracer").cloned().unwrap_or_else(|| "BTrace".into()),
                scale: parse_scale(opts.get("--scale"))?,
                threads: parse_count(opts.get("--threads"), 1)?,
            })
        }
        "dump" => {
            let opts = options(it.as_slice(), &["--scenario", "--out", "--scale"])?;
            Ok(Command::Dump {
                scenario: opts.get("--scenario").cloned().unwrap_or_else(|| "eShop-1".into()),
                out: opts.get("--out").cloned().unwrap_or_else(|| "trace.btd".into()),
                scale: parse_scale(opts.get("--scale"))?,
            })
        }
        "inspect" => {
            let mut file = None;
            let mut map = false;
            for arg in it {
                match arg.as_str() {
                    "--map" => map = true,
                    other if other.starts_with("--") => {
                        return Err(format!("unknown option {other}"))
                    }
                    other => {
                        if file.replace(other.to_string()).is_some() {
                            return Err("inspect takes exactly one file".into());
                        }
                    }
                }
            }
            let file = file.ok_or("inspect requires a file argument")?;
            Ok(Command::Inspect { file, map })
        }
        "analyze" => {
            let mut file = None;
            let mut map = false;
            let mut opts = std::collections::BTreeMap::new();
            let mut words = it;
            while let Some(arg) = words.next() {
                match arg.as_str() {
                    "--map" => map = true,
                    key @ ("--threads" | "--fragments") => {
                        let value = words.next().ok_or(format!("{key} requires a value"))?;
                        opts.insert(key.to_string(), value.to_string());
                    }
                    other if other.starts_with("--") => {
                        return Err(format!("unknown option {other}"))
                    }
                    other => {
                        if file.replace(other.to_string()).is_some() {
                            return Err("analyze takes exactly one file".into());
                        }
                    }
                }
            }
            let file = file.ok_or("analyze requires a file argument")?;
            Ok(Command::Analyze {
                file,
                threads: parse_count(opts.get("--threads"), 1)?,
                fragments: match opts.get("--fragments") {
                    None => 0,
                    Some(v) => v.parse().map_err(|_| format!("invalid --fragments {v}"))?,
                },
                map,
            })
        }
        "query" => {
            let mut file = None;
            let mut since = None;
            let mut until = None;
            let mut cores = Vec::new();
            let mut category = None;
            let mut threads = None;
            let (mut metrics, mut map, mut json) = (false, false, false);
            let mut words = it;
            while let Some(arg) = words.next() {
                match arg.as_str() {
                    "--metrics" => metrics = true,
                    "--gap-map" => map = true,
                    "--json" => json = true,
                    key @ ("--since" | "--until" | "--core" | "--category" | "--threads") => {
                        let value = words.next().ok_or(format!("{key} requires a value"))?;
                        match key {
                            "--since" => since = Some(parse_stamp(key, value)?),
                            "--until" => until = Some(parse_stamp(key, value)?),
                            "--core" => cores.push(
                                value.parse().map_err(|_| format!("invalid --core {value}"))?,
                            ),
                            "--category" => category = Some(value.clone()),
                            _ => threads = Some(value.clone()),
                        }
                    }
                    other if other.starts_with("--") => {
                        return Err(format!("unknown option {other}"))
                    }
                    other => {
                        if file.replace(other.to_string()).is_some() {
                            return Err("query takes exactly one file".into());
                        }
                    }
                }
            }
            if let (Some(s), Some(u)) = (since, until) {
                if s > u {
                    return Err(format!("--since {s} is after --until {u}"));
                }
            }
            let file = file.ok_or("query requires a file argument")?;
            Ok(Command::Query {
                file,
                since,
                until,
                cores,
                category,
                threads: parse_count(threads.as_ref(), 1)?,
                metrics,
                map,
                json,
            })
        }
        "stat" => {
            let (flags, opts) = flags_and_options(
                it.as_slice(),
                &["--json"],
                &["--duration-ms", "--jsonl", "--prom"],
            )?;
            Ok(Command::Stat {
                json: flags.contains(&"--json".to_string()),
                duration_ms: parse_ms(opts.get("--duration-ms"), 1000)?,
                jsonl: opts.get("--jsonl").cloned(),
                prom: opts.get("--prom").cloned(),
            })
        }
        "watch" => {
            let (_, opts) = flags_and_options(
                it.as_slice(),
                &[],
                &["--period-ms", "--duration-ms", "--jsonl", "--prom"],
            )?;
            Ok(Command::Watch {
                period_ms: parse_ms(opts.get("--period-ms"), 500)?,
                duration_ms: parse_ms(opts.get("--duration-ms"), 5000)?,
                jsonl: opts.get("--jsonl").cloned(),
                prom: opts.get("--prom").cloned(),
            })
        }
        "stream" => {
            let (flags, opts) = flags_and_options(
                it.as_slice(),
                &["--json", "--auto-size"],
                &[
                    "--duration-ms",
                    "--out",
                    "--policy",
                    "--batch-events",
                    "--queue-depth",
                    "--drain-threads",
                    "--budget",
                    "--target-loss",
                ],
            )?;
            let block = match opts.get("--policy").map(String::as_str) {
                None | Some("block") => true,
                Some("drop") => false,
                Some(other) => return Err(format!("--policy must be block or drop, got {other}")),
            };
            let auto_size = flags.contains(&"--auto-size".to_string());
            if !auto_size && (opts.contains_key("--budget") || opts.contains_key("--target-loss")) {
                return Err("--budget/--target-loss require --auto-size".into());
            }
            Ok(Command::Stream {
                duration_ms: parse_ms(opts.get("--duration-ms"), 2000)?,
                out: opts.get("--out").cloned(),
                block,
                batch_events: parse_count(opts.get("--batch-events"), 512)?,
                queue_depth: parse_count(opts.get("--queue-depth"), 8)?,
                drain_threads: match opts.get("--drain-threads") {
                    None => None,
                    some => Some(parse_count(some, 1)?),
                },
                auto_size,
                budget: parse_bytes(opts.get("--budget"))?,
                target_loss_ppm: parse_ppm(opts.get("--target-loss"))?,
                json: flags.contains(&"--json".to_string()),
            })
        }
        "tune" => {
            let (flags, opts) = flags_and_options(
                it.as_slice(),
                &["--json"],
                &["--duration-ms", "--budget", "--target-loss"],
            )?;
            Ok(Command::Tune {
                duration_ms: parse_ms(opts.get("--duration-ms"), 2000)?,
                budget: parse_bytes(opts.get("--budget"))?,
                target_loss_ppm: parse_ppm(opts.get("--target-loss"))?,
                json: flags.contains(&"--json".to_string()),
            })
        }
        "doctor" => {
            let (flags, opts) =
                flags_and_options(it.as_slice(), &["--json"], &["--fault-seed", "--duration-ms"])?;
            let fault_seed = match opts.get("--fault-seed") {
                None => 183,
                Some(v) => v.parse().map_err(|_| format!("invalid --fault-seed {v}"))?,
            };
            Ok(Command::Doctor {
                fault_seed,
                duration_ms: parse_ms(opts.get("--duration-ms"), 1000)?,
                json: flags.contains(&"--json".to_string()),
            })
        }
        "events" => {
            let (flags, opts) =
                flags_and_options(it.as_slice(), &["--follow", "--json"], &["--duration-ms"])?;
            Ok(Command::Events {
                duration_ms: parse_ms(opts.get("--duration-ms"), 1000)?,
                follow: flags.contains(&"--follow".to_string()),
                json: flags.contains(&"--json".to_string()),
            })
        }
        other => Err(format!("unknown command {other}")),
    }
}

fn parse_stamp(key: &str, value: &str) -> Result<u64, String> {
    value.parse().map_err(|_| format!("invalid {key} {value}"))
}

fn parse_count(value: Option<&String>, default: usize) -> Result<usize, String> {
    match value {
        None => Ok(default),
        Some(v) => {
            let n: usize = v.parse().map_err(|_| format!("invalid count {v}"))?;
            if n == 0 {
                return Err("count must be positive".into());
            }
            Ok(n)
        }
    }
}

/// Like [`options`], but also accepts valueless boolean flags.
fn flags_and_options(
    rest: &[String],
    flags: &[&str],
    allowed: &[&str],
) -> Result<(Vec<String>, std::collections::HashMap<String, String>), String> {
    let mut seen_flags = Vec::new();
    let mut out = std::collections::HashMap::new();
    let mut i = 0;
    while i < rest.len() {
        let key = &rest[i];
        if flags.contains(&key.as_str()) {
            seen_flags.push(key.clone());
            i += 1;
        } else if allowed.contains(&key.as_str()) {
            let value = rest.get(i + 1).ok_or_else(|| format!("{key} requires a value"))?;
            out.insert(key.clone(), value.clone());
            i += 2;
        } else {
            return Err(format!("unknown option {key}"));
        }
    }
    Ok((seen_flags, out))
}

/// Optional positive byte count (`--budget`).
fn parse_bytes(value: Option<&String>) -> Result<Option<u64>, String> {
    match value {
        None => Ok(None),
        Some(v) => {
            let bytes: u64 = v.parse().map_err(|_| format!("invalid byte count {v}"))?;
            if bytes == 0 {
                return Err("byte count must be positive".into());
            }
            Ok(Some(bytes))
        }
    }
}

/// Parts-per-million value (`--target-loss`), default 10000 (1%).
fn parse_ppm(value: Option<&String>) -> Result<u64, String> {
    match value {
        None => Ok(10_000),
        Some(v) => {
            let ppm: u64 = v.parse().map_err(|_| format!("invalid ppm value {v}"))?;
            if ppm > 1_000_000 {
                return Err(format!("ppm value must be <= 1000000, got {ppm}"));
            }
            Ok(ppm)
        }
    }
}

fn parse_ms(value: Option<&String>, default: u64) -> Result<u64, String> {
    match value {
        None => Ok(default),
        Some(v) => {
            let ms: u64 = v.parse().map_err(|_| format!("invalid millisecond value {v}"))?;
            if ms == 0 {
                return Err("millisecond value must be positive".into());
            }
            Ok(ms)
        }
    }
}

fn options(
    rest: &[String],
    allowed: &[&str],
) -> Result<std::collections::HashMap<String, String>, String> {
    let mut out = std::collections::HashMap::new();
    let mut i = 0;
    while i < rest.len() {
        let key = &rest[i];
        if !allowed.contains(&key.as_str()) {
            return Err(format!("unknown option {key}"));
        }
        let value = rest.get(i + 1).ok_or_else(|| format!("{key} requires a value"))?;
        out.insert(key.clone(), value.clone());
        i += 2;
    }
    Ok(out)
}

fn parse_scale(value: Option<&String>) -> Result<f64, String> {
    match value {
        None => Ok(0.05),
        Some(v) => {
            let scale: f64 = v.parse().map_err(|_| format!("invalid --scale {v}"))?;
            if scale <= 0.0 || scale > 1.0 {
                return Err(format!("--scale must be in (0, 1], got {scale}"));
            }
            Ok(scale)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_each_command() {
        assert_eq!(parse(&argv("scenarios")), Ok(Command::Scenarios));
        assert_eq!(parse(&argv("demo")), Ok(Command::Demo));
        assert_eq!(parse(&[]), Ok(Command::Help));
        assert_eq!(parse(&argv("--help")), Ok(Command::Help));
        assert_eq!(
            parse(&argv("replay --scenario IM --tracer LTTng --scale 0.2 --threads 4")),
            Ok(Command::Replay {
                scenario: "IM".into(),
                tracer: "LTTng".into(),
                scale: 0.2,
                threads: 4
            })
        );
        assert_eq!(
            parse(&argv("dump --out x.btd")),
            Ok(Command::Dump { scenario: "eShop-1".into(), out: "x.btd".into(), scale: 0.05 })
        );
        assert_eq!(
            parse(&argv("inspect x.btd --map")),
            Ok(Command::Inspect { file: "x.btd".into(), map: true })
        );
    }

    #[test]
    fn parses_analyze() {
        assert_eq!(
            parse(&argv("analyze frames.btsf")),
            Ok(Command::Analyze {
                file: "frames.btsf".into(),
                threads: 1,
                fragments: 0,
                map: false
            })
        );
        assert_eq!(
            parse(&argv("analyze --threads 8 trace.btd --fragments 16 --map")),
            Ok(Command::Analyze { file: "trace.btd".into(), threads: 8, fragments: 16, map: true })
        );
        assert!(parse(&argv("analyze")).is_err());
        assert!(parse(&argv("analyze a b")).is_err());
        assert!(parse(&argv("analyze x --threads 0")).is_err());
        assert!(parse(&argv("analyze x --threads")).is_err());
        assert!(parse(&argv("analyze x --fragments nope")).is_err());
        assert!(parse(&argv("analyze x --bogus")).is_err());
    }

    #[test]
    fn parses_query() {
        assert_eq!(
            parse(&argv("query frames.btsf")),
            Ok(Command::Query {
                file: "frames.btsf".into(),
                since: None,
                until: None,
                cores: vec![],
                category: None,
                threads: 1,
                metrics: false,
                map: false,
                json: false
            })
        );
        assert_eq!(
            parse(&argv(
                "query --since 100 --until 900 --core 0 --core 3 --category sched \
                 --threads 4 trace.btd --metrics --gap-map --json"
            )),
            Ok(Command::Query {
                file: "trace.btd".into(),
                since: Some(100),
                until: Some(900),
                cores: vec![0, 3],
                category: Some("sched".into()),
                threads: 4,
                metrics: true,
                map: true,
                json: true
            })
        );
        assert!(parse(&argv("query")).is_err());
        assert!(parse(&argv("query a b")).is_err());
        assert!(parse(&argv("query x --since nope")).is_err());
        assert!(parse(&argv("query x --since 10 --until 5")).is_err());
        assert!(parse(&argv("query x --core -1")).is_err());
        assert!(parse(&argv("query x --category")).is_err());
        assert!(parse(&argv("query x --threads 0")).is_err());
        assert!(parse(&argv("query x --bogus")).is_err());
    }

    #[test]
    fn defaults_apply() {
        match parse(&argv("replay")).unwrap() {
            Command::Replay { scenario, tracer, scale, threads } => {
                assert_eq!(scenario, "eShop-1");
                assert_eq!(tracer, "BTrace");
                assert_eq!(scale, 0.05);
                assert_eq!(threads, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_stat_and_watch() {
        assert_eq!(
            parse(&argv("stat --json --duration-ms 250 --jsonl h.jsonl")),
            Ok(Command::Stat {
                json: true,
                duration_ms: 250,
                jsonl: Some("h.jsonl".into()),
                prom: None
            })
        );
        assert_eq!(
            parse(&argv("stat")),
            Ok(Command::Stat { json: false, duration_ms: 1000, jsonl: None, prom: None })
        );
        assert_eq!(
            parse(&argv("watch --period-ms 100 --prom out.prom")),
            Ok(Command::Watch {
                period_ms: 100,
                duration_ms: 5000,
                jsonl: None,
                prom: Some("out.prom".into())
            })
        );
        assert!(parse(&argv("stat --duration-ms 0")).is_err());
        assert!(parse(&argv("watch --json")).is_err());
        assert!(parse(&argv("stat --period-ms 100")).is_err());
    }

    #[test]
    fn parses_stream() {
        assert_eq!(
            parse(&argv("stream")),
            Ok(Command::Stream {
                duration_ms: 2000,
                out: None,
                block: true,
                batch_events: 512,
                queue_depth: 8,
                drain_threads: None,
                auto_size: false,
                budget: None,
                target_loss_ppm: 10_000,
                json: false
            })
        );
        assert_eq!(
            parse(&argv("stream --policy drop --out t.btsf --queue-depth 4 --json")),
            Ok(Command::Stream {
                duration_ms: 2000,
                out: Some("t.btsf".into()),
                block: false,
                batch_events: 512,
                queue_depth: 4,
                drain_threads: None,
                auto_size: false,
                budget: None,
                target_loss_ppm: 10_000,
                json: true
            })
        );
        assert_eq!(
            parse(&argv("stream --drain-threads 4")),
            Ok(Command::Stream {
                duration_ms: 2000,
                out: None,
                block: true,
                batch_events: 512,
                queue_depth: 8,
                drain_threads: Some(4),
                auto_size: false,
                budget: None,
                target_loss_ppm: 10_000,
                json: false
            })
        );
        assert!(parse(&argv("stream --policy sideways")).is_err());
        assert!(parse(&argv("stream --batch-events 0")).is_err());
        assert!(parse(&argv("stream --queue-depth x")).is_err());
        assert!(parse(&argv("stream --drain-threads 0")).is_err());
    }

    #[test]
    fn parses_auto_size_and_tune() {
        assert_eq!(
            parse(&argv("stream --auto-size --budget 1048576 --target-loss 500")),
            Ok(Command::Stream {
                duration_ms: 2000,
                out: None,
                block: true,
                batch_events: 512,
                queue_depth: 8,
                drain_threads: None,
                auto_size: true,
                budget: Some(1_048_576),
                target_loss_ppm: 500,
                json: false
            })
        );
        // Budget and loss target are controller knobs: rejected without it.
        assert!(parse(&argv("stream --budget 1048576")).is_err());
        assert!(parse(&argv("stream --target-loss 500")).is_err());
        assert!(parse(&argv("stream --auto-size --budget 0")).is_err());
        assert!(parse(&argv("stream --auto-size --target-loss 2000000")).is_err());
        assert_eq!(
            parse(&argv("tune")),
            Ok(Command::Tune {
                duration_ms: 2000,
                budget: None,
                target_loss_ppm: 10_000,
                json: false
            })
        );
        assert_eq!(
            parse(&argv("tune --duration-ms 500 --budget 262144 --target-loss 1000 --json")),
            Ok(Command::Tune {
                duration_ms: 500,
                budget: Some(262_144),
                target_loss_ppm: 1000,
                json: true
            })
        );
        assert!(parse(&argv("tune --budget nope")).is_err());
    }

    #[test]
    fn parses_doctor_and_events() {
        assert_eq!(
            parse(&argv("doctor")),
            Ok(Command::Doctor { fault_seed: 183, duration_ms: 1000, json: false })
        );
        assert_eq!(
            parse(&argv("doctor --fault-seed 0 --duration-ms 250 --json")),
            Ok(Command::Doctor { fault_seed: 0, duration_ms: 250, json: true })
        );
        assert_eq!(
            parse(&argv("events --follow")),
            Ok(Command::Events { duration_ms: 1000, follow: true, json: false })
        );
        assert_eq!(
            parse(&argv("events --json --duration-ms 400")),
            Ok(Command::Events { duration_ms: 400, follow: false, json: true })
        );
        assert!(parse(&argv("doctor --fault-seed nope")).is_err());
        assert!(parse(&argv("events --fault-seed 3")).is_err());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("replay --bogus 1")).is_err());
        assert!(parse(&argv("replay --scale")).is_err());
        assert!(parse(&argv("replay --scale nan-ish")).is_err());
        assert!(parse(&argv("replay --scale 5.0")).is_err());
        assert!(parse(&argv("inspect")).is_err());
        assert!(parse(&argv("inspect a b")).is_err());
    }
}
