//! Command implementations. Each returns a process exit code.

use btrace_analysis::{analyze, by_core, by_thread, core_skew, gap_map, GapMapOptions, Table};
use btrace_baselines::{Bbq, PerCoreDropNewest, PerCoreOverwrite, PerThread};
use btrace_core::sink::CollectedEvent;
use btrace_core::{BTrace, Config};
use btrace_persist::TraceDump;
use btrace_replay::{scenarios, ReplayConfig, ReplayReport, Replayer};
use std::path::Path;

const CORES: usize = 12;
const TOTAL: usize = 12 << 20;
const BLOCK: usize = 4096;

/// `btrace scenarios`
pub fn scenarios() -> i32 {
    let mut table = Table::new(vec![
        "Name".into(),
        "Events (30 s)".into(),
        "Skew".into(),
        "Threads/core/s".into(),
        "Threads/core 30s".into(),
    ]);
    for s in scenarios::all() {
        table.row(vec![
            s.name.to_string(),
            s.total_events().to_string(),
            format!("{:.1}x", s.skew()),
            s.threads_per_core_sec.to_string(),
            s.total_threads_per_core.to_string(),
        ]);
    }
    println!("{}", table.render());
    0
}

/// `btrace demo`
pub fn demo() -> i32 {
    let tracer = match BTrace::new(
        Config::new(4).active_blocks(64).block_bytes(BLOCK).buffer_bytes(1 << 20),
    ) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    std::thread::scope(|scope| {
        for core in 0..4 {
            let producer = tracer.producer(core).expect("core in range");
            scope.spawn(move || {
                for i in 0..50_000u64 {
                    producer
                        .record_with(core as u64 * 1_000_000 + i, i as u32 % 17, b"demo: synthetic event")
                        .expect("payload fits");
                }
            });
        }
    });
    let readout = tracer.consumer().collect();
    let stats = tracer.stats();
    println!("recorded 200000 events from 4 cores into a 1 MiB buffer");
    println!(
        "retained {} events ({} KiB) in {} readable blocks",
        readout.events.len(),
        readout.stored_bytes() / 1024,
        readout.blocks.readable
    );
    println!(
        "mechanisms: {} advances, {} closes, {} skips, {:.2}% dummy overhead",
        stats.advances,
        stats.closes,
        stats.skips,
        stats.dummy_fraction() * 100.0
    );
    0
}

fn run(scenario_name: &str, tracer_name: &str, scale: f64) -> Result<ReplayReport, String> {
    let scenario = scenarios::by_name(scenario_name)
        .ok_or_else(|| format!("unknown scenario {scenario_name} (try `btrace scenarios`)"))?;
    let config = ReplayConfig { scale, latency_sample_every: 64, ..ReplayConfig::table2() };
    let replayer = Replayer::new(scenario, config);
    let report = match tracer_name {
        "BTrace" => {
            let t = BTrace::new(
                Config::new(CORES).active_blocks(16 * CORES).block_bytes(BLOCK).buffer_bytes(TOTAL),
            )
            .map_err(|e| e.to_string())?;
            replayer.run(&t)
        }
        "BBQ" => replayer.run(&Bbq::new(TOTAL, BLOCK)),
        "ftrace" => replayer.run(&PerCoreOverwrite::new(CORES, TOTAL)),
        "LTTng" => replayer.run(&PerCoreDropNewest::new(CORES, TOTAL, 4)),
        "VTrace" => replayer.run(&PerThread::new(
            TOTAL,
            scenario.total_threads_per_core as usize * CORES,
        )),
        other => return Err(format!("unknown tracer {other} (BTrace|BBQ|ftrace|LTTng|VTrace)")),
    };
    Ok(report)
}

fn print_report_analysis(events: &[CollectedEvent], capacity: usize, written: Option<u64>) {
    let metrics = analyze(events, capacity);
    println!("events retained     {}", metrics.retained_events);
    if let Some(written) = written {
        println!("events written      {written}");
    }
    println!("retained bytes      {:.2} MB", metrics.retained_bytes as f64 / (1 << 20) as f64);
    println!(
        "latest fragment     {:.2} MB ({} events)",
        metrics.latest_fragment_bytes as f64 / (1 << 20) as f64,
        metrics.latest_fragment_events
    );
    println!("loss rate           {:.2}%", metrics.loss_rate * 100.0);
    println!("fragments           {}", metrics.fragments);
    println!("effectivity ratio   {:.3}", metrics.effectivity_ratio);
    if let Some(skew) = core_skew(events) {
        println!("core skew           {skew:.1}x");
    }
    println!("\nper-core breakdown:");
    let mut table = Table::new(vec!["Core".into(), "Events".into(), "KiB".into(), "Stamp range".into()]);
    for c in by_core(events) {
        table.row(vec![
            format!("C{}", c.key),
            c.events.to_string(),
            (c.bytes / 1024).to_string(),
            format!("{}..{}", c.oldest, c.newest),
        ]);
    }
    println!("{}", table.render());
    println!("hottest threads:");
    let mut table = Table::new(vec!["Tid".into(), "Events".into(), "KiB".into()]);
    for t in by_thread(events, 8) {
        table.row(vec![t.key.to_string(), t.events.to_string(), (t.bytes / 1024).to_string()]);
    }
    println!("{}", table.render());
}

/// `btrace replay`
pub fn replay(scenario: &str, tracer: &str, scale: f64) -> i32 {
    match run(scenario, tracer, scale) {
        Ok(report) => {
            println!("replayed {} against {} (scale {scale})\n", report.scenario, report.tracer);
            print_report_analysis(&report.retained, report.capacity_bytes, Some(report.written));
            if report.dropped_at_record > 0 {
                println!("dropped at record   {}", report.dropped_at_record);
            }
            0
        }
        Err(message) => {
            eprintln!("error: {message}");
            1
        }
    }
}

/// `btrace dump`
pub fn dump(scenario: &str, out: &str, scale: f64) -> i32 {
    let tracer = match BTrace::new(
        Config::new(CORES).active_blocks(16 * CORES).block_bytes(BLOCK).buffer_bytes(TOTAL),
    ) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let Some(s) = scenarios::by_name(scenario) else {
        eprintln!("error: unknown scenario {scenario}");
        return 1;
    };
    let config = ReplayConfig { scale, latency_sample_every: 0, ..ReplayConfig::table2() };
    Replayer::new(s, config).run(&tracer);
    let dump = TraceDump::capture(scenario, &tracer);
    match dump.write_to(Path::new(out)) {
        Ok(()) => {
            println!("wrote {} events to {out}", dump.events().len());
            0
        }
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    }
}

/// `btrace inspect`
pub fn inspect(file: &str, map: bool) -> i32 {
    let dump = match TraceDump::read_from(Path::new(file)) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    println!("dump {file:?}: label {:?}, {} events\n", dump.label(), dump.events().len());
    let events: Vec<CollectedEvent> = dump
        .events()
        .iter()
        .map(|e| CollectedEvent {
            stamp: e.stamp,
            core: e.core,
            tid: e.tid,
            stored_bytes: btrace_core::event::encoded_len(e.payload.len()) as u32,
        })
        .collect();
    print_report_analysis(&events, TOTAL, None);
    if map {
        let stamps: Vec<u64> = {
            let mut s: Vec<u64> = events.iter().map(|e| e.stamp).collect();
            s.sort_unstable();
            s.dedup();
            s
        };
        if let Some(&newest) = stamps.last() {
            let window = newest - stamps.first().copied().unwrap_or(0) + 1;
            println!(
                "retention map (oldest left, newest right):\n|{}|",
                gap_map(&stamps, newest, GapMapOptions { window, width: 72 })
            );
        }
    }
    0
}
