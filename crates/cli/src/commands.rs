//! Command implementations. Each returns a process exit code.

use btrace_analysis::{diagnose, gap_map, GapMapOptions, Table, TraceAnalysis, TracePartial};
use btrace_atrace::Category;
use btrace_baselines::{Bbq, PerCoreDropNewest, PerCoreOverwrite, PerThread};
use btrace_core::sink::CollectedEvent;
use btrace_core::{BTrace, Backing, Config, FaultPlan};
use btrace_persist::{
    analyze_frames, analyze_frames_with, encode_stream, AnalyzeOptions, Backpressure,
    FileFrameSink, FrameSink, JsonlExporter, NullFrameSink, ParallelAnalysis, PipelineConfig,
    Predicate, PrometheusExporter, Query, StreamPipeline, TraceDump, TraceStore,
};
use btrace_replay::{scenarios, ReplayConfig, ReplayReport, Replayer};
use btrace_telemetry::{
    degraded, ControllerConfig, ControllerThread, EventKind, Exporter, FlightRecorder,
    HealthSnapshot, ResizeTarget, Sampler, SamplerConfig,
};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

const CORES: usize = 12;
const TOTAL: usize = 12 << 20;
const BLOCK: usize = 4096;

/// `btrace scenarios`
pub fn scenarios() -> i32 {
    let mut table = Table::new(vec![
        "Name".into(),
        "Events (30 s)".into(),
        "Skew".into(),
        "Threads/core/s".into(),
        "Threads/core 30s".into(),
    ]);
    for s in scenarios::all() {
        table.row(vec![
            s.name.to_string(),
            s.total_events().to_string(),
            format!("{:.1}x", s.skew()),
            s.threads_per_core_sec.to_string(),
            s.total_threads_per_core.to_string(),
        ]);
    }
    println!("{}", table.render());
    0
}

/// `btrace demo`
pub fn demo() -> i32 {
    let tracer = match BTrace::new(
        Config::new(4).active_blocks(64).block_bytes(BLOCK).buffer_bytes(1 << 20),
    ) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    std::thread::scope(|scope| {
        for core in 0..4 {
            let producer = tracer.producer(core).expect("core in range");
            scope.spawn(move || {
                for i in 0..50_000u64 {
                    producer
                        .record_with(
                            core as u64 * 1_000_000 + i,
                            i as u32 % 17,
                            b"demo: synthetic event",
                        )
                        .expect("payload fits");
                }
            });
        }
    });
    let readout = tracer.consumer().collect();
    let stats = tracer.stats();
    println!("recorded 200000 events from 4 cores into a 1 MiB buffer");
    println!(
        "retained {} events ({} KiB) in {} readable blocks",
        readout.events.len(),
        readout.stored_bytes() / 1024,
        readout.blocks.readable
    );
    println!(
        "mechanisms: {} advances, {} closes, {} skips, {:.2}% dummy overhead",
        stats.advances,
        stats.closes,
        stats.skips,
        stats.dummy_fraction() * 100.0
    );
    0
}

fn run(scenario_name: &str, tracer_name: &str, scale: f64) -> Result<ReplayReport, String> {
    let scenario = scenarios::by_name(scenario_name)
        .ok_or_else(|| format!("unknown scenario {scenario_name} (try `btrace scenarios`)"))?;
    let config = ReplayConfig { scale, latency_sample_every: 64, ..ReplayConfig::table2() };
    let replayer = Replayer::new(scenario, config);
    let report = match tracer_name {
        "BTrace" => {
            let t = BTrace::new(
                Config::new(CORES).active_blocks(16 * CORES).block_bytes(BLOCK).buffer_bytes(TOTAL),
            )
            .map_err(|e| e.to_string())?;
            replayer.run(&t)
        }
        "BBQ" => replayer.run(&Bbq::new(TOTAL, BLOCK)),
        "ftrace" => replayer.run(&PerCoreOverwrite::new(CORES, TOTAL)),
        "LTTng" => replayer.run(&PerCoreDropNewest::new(CORES, TOTAL, 4)),
        "VTrace" => {
            replayer.run(&PerThread::new(TOTAL, scenario.total_threads_per_core as usize * CORES))
        }
        other => return Err(format!("unknown tracer {other} (BTrace|BBQ|ftrace|LTTng|VTrace)")),
    };
    Ok(report)
}

fn print_report_analysis(events: &[CollectedEvent], capacity: usize, written: Option<u64>) {
    print_trace_analysis(&TracePartial::map(events).finish(capacity, 8), written);
}

fn print_trace_analysis(analysis: &TraceAnalysis, written: Option<u64>) {
    let metrics = &analysis.metrics;
    println!("events retained     {}", metrics.retained_events);
    if let Some(written) = written {
        println!("events written      {written}");
    }
    println!("retained bytes      {:.2} MB", metrics.retained_bytes as f64 / (1 << 20) as f64);
    println!(
        "latest fragment     {:.2} MB ({} events)",
        metrics.latest_fragment_bytes as f64 / (1 << 20) as f64,
        metrics.latest_fragment_events
    );
    println!("loss rate           {:.2}%", metrics.loss_rate * 100.0);
    println!("fragments           {}", metrics.fragments);
    println!("effectivity ratio   {:.3}", metrics.effectivity_ratio);
    if let Some(skew) = analysis.core_skew {
        println!("core skew           {skew:.1}x");
    }
    println!("\nper-core breakdown:");
    let mut table =
        Table::new(vec!["Core".into(), "Events".into(), "KiB".into(), "Stamp range".into()]);
    for c in &analysis.per_core {
        table.row(vec![
            format!("C{}", c.key),
            c.events.to_string(),
            (c.bytes / 1024).to_string(),
            format!("{}..{}", c.oldest, c.newest),
        ]);
    }
    println!("{}", table.render());
    println!("hottest threads:");
    let mut table = Table::new(vec!["Tid".into(), "Events".into(), "KiB".into()]);
    for t in &analysis.per_thread {
        table.row(vec![t.key.to_string(), t.events.to_string(), (t.bytes / 1024).to_string()]);
    }
    println!("{}", table.render());
}

/// `btrace replay`
pub fn replay(scenario: &str, tracer: &str, scale: f64, threads: usize) -> i32 {
    match run(scenario, tracer, scale) {
        Ok(report) => {
            println!("replayed {} against {} (scale {scale})\n", report.scenario, report.tracer);
            print_report_analysis(&report.retained, report.capacity_bytes, Some(report.written));
            if report.dropped_at_record > 0 {
                println!("dropped at record   {}", report.dropped_at_record);
            }
            if threads > 1 {
                let per_fragment = (report.retained.len() / (threads * 2)).max(1);
                let par = report.parallel_analysis(threads, per_fragment, 8);
                let seq = report.parallel_analysis(1, per_fragment, 8);
                let agree = par.analysis == seq.analysis
                    && par.latency == seq.latency
                    && par.state.merged == seq.state.merged;
                println!(
                    "\nfragment-parallel readout: {} fragments on {} threads, {} hand-off defects, \
                     {} the sequential analysis",
                    par.fragments,
                    par.threads,
                    par.state.defects.len(),
                    if agree { "bit-identical to" } else { "DIVERGES from" },
                );
                if !agree {
                    return 1;
                }
            }
            0
        }
        Err(message) => {
            eprintln!("error: {message}");
            1
        }
    }
}

/// `btrace analyze`
pub fn analyze(file: &str, threads: usize, fragments: usize, map: bool) -> i32 {
    let bytes = match std::fs::read(file) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: cannot read {file}: {e}");
            return 1;
        }
    };
    // A BTSF frame stream is analyzed in place; a .btd dump is re-framed
    // on the fly so both formats flow through the same fragment pipeline.
    let frames = if bytes.starts_with(b"BTSF") {
        bytes
    } else {
        match TraceDump::read_from(Path::new(file)) {
            Ok(dump) => encode_stream(dump.events(), 512),
            Err(e) => {
                eprintln!("error: {file} is neither a BTSF stream nor a trace dump: {e}");
                return 1;
            }
        }
    };
    let mut opts = AnalyzeOptions { threads, fragments, ..AnalyzeOptions::default() };
    let mut out = match analyze_frames(&frames, &opts) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    if map && !out.state.is_empty() {
        // Second pass with the window sized to the observed stamp range;
        // fragment splitting and merge order are identical both times.
        let window = out.state.last_stamp - out.state.first_stamp + 1;
        opts.gap_map = Some(GapMapOptions { window, width: 72 });
        out = match analyze_frames(&frames, &opts) {
            Ok(out) => out,
            Err(e) => {
                eprintln!("error: {e}");
                return 1;
            }
        };
    }
    print_parallel_analysis(&out);
    i32::from(!out.defects.is_empty())
}

fn print_parallel_analysis(out: &ParallelAnalysis) {
    println!("frames              {} ({} legacy, footer-less)", out.frames, out.legacy_frames);
    println!("fragments           {} on {} thread(s)", out.work.len(), out.threads);
    let total_events: u64 = out.work.iter().map(|w| w.events).sum();
    if !out.work.is_empty() && total_events > 0 {
        println!("\nper-fragment work:");
        let mut table = Table::new(vec![
            "Fragment".into(),
            "Frames".into(),
            "Events".into(),
            "KiB".into(),
            "Busy us".into(),
            "Share".into(),
        ]);
        for w in &out.work {
            table.row(vec![
                format!("F{}", w.fragment),
                w.frames.to_string(),
                w.events.to_string(),
                (w.bytes / 1024).to_string(),
                (w.busy_ns / 1000).to_string(),
                format!("{:.1}%", w.events as f64 * 100.0 / total_events as f64),
            ]);
        }
        println!("{}", table.render());
    }
    for defect in &out.defects {
        println!("boundary defect: {defect}");
    }
    println!();
    print_trace_analysis(&out.analysis, None);
    if let Some(map) = &out.gap_map {
        println!("retention gap map (old -> new):");
        println!("|{map}|");
    }
}

/// Resolves a `--category` argument: a catalog label (`sched`), or a raw
/// bitmask (`0x4` / `4`).
fn parse_category(arg: &str) -> Result<Category, String> {
    for &(cat, label, _) in Category::catalog() {
        if label.eq_ignore_ascii_case(arg) {
            return Ok(cat);
        }
    }
    let bits = match arg.strip_prefix("0x") {
        Some(hex) => u32::from_str_radix(hex, 16).ok(),
        None => arg.parse().ok(),
    };
    let cat = bits.map(Category::from_bits).unwrap_or(Category::NONE);
    if cat.is_empty() {
        let names: Vec<&str> = Category::catalog().iter().map(|&(_, l, _)| l).collect();
        return Err(format!("unknown category {arg}; known: {}", names.join(", ")));
    }
    Ok(cat)
}

/// `btrace query`
#[allow(clippy::too_many_arguments)] // mirrors the option surface 1:1
pub fn query(
    file: &str,
    since: Option<u64>,
    until: Option<u64>,
    cores: &[u16],
    category: Option<&str>,
    threads: usize,
    metrics: bool,
    map: bool,
    json: bool,
) -> i32 {
    let category = match category.map(parse_category).transpose() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let predicate = Predicate { since, until, cores: cores.to_vec(), category };
    // A BTSF frame stream opens through the mmap-backed store directly; a
    // .btd dump is re-framed in memory so both formats answer queries.
    let head = {
        let mut magic = [0u8; 4];
        use std::io::Read;
        std::fs::File::open(file).and_then(|mut f| f.read_exact(&mut magic)).map(|()| magic)
    };
    let store = match head {
        Ok(magic) if &magic == b"BTSF" => match TraceStore::open(Path::new(file)) {
            Ok(store) => store,
            Err(e) => {
                eprintln!("error: cannot open {file}: {e}");
                return 1;
            }
        },
        Ok(_) => match TraceDump::read_from(Path::new(file)) {
            Ok(dump) => TraceStore::from_bytes(encode_stream(dump.events(), 512)),
            Err(e) => {
                eprintln!("error: {file} is neither a BTSF stream nor a trace dump: {e}");
                return 1;
            }
        },
        Err(e) => {
            eprintln!("error: cannot read {file}: {e}");
            return 1;
        }
    };
    let mut q = Query::new(predicate.clone());
    let mut report = q.run(&store);
    if map && !report.state.is_empty() {
        // Second pass with the window sized to the matched stamp range.
        let window = report.state.last_stamp - report.state.first_stamp + 1;
        q.options.gap_map = Some(GapMapOptions { window, width: 72 });
        report = q.run(&store);
    }
    if threads > 1 {
        // The pruned fragment-parallel analyzer shares the query's plan;
        // cross-check the two paths like `replay --threads` does.
        let opts = AnalyzeOptions { threads, gap_map: q.options.gap_map, ..Default::default() };
        match analyze_frames_with(store.bytes(), &opts, Some(&predicate)) {
            Ok(par) => {
                let agree = par.analysis == report.analysis
                    && par.state == report.state
                    && par.gap_map == report.gap_map;
                if !agree {
                    eprintln!("error: fragment-parallel query DIVERGES from the store query");
                    return 1;
                }
            }
            Err(e) => {
                // The store query tolerates per-frame corruption; the strict
                // parallel path refuses it. Not a divergence.
                eprintln!("note: fragment-parallel cross-check skipped: {e}");
            }
        }
    }
    if json {
        let mut line = String::from("{");
        line.push_str(&format!("\"file\":\"{}\"", file.escape_default()));
        line.push_str(&format!(",\"frames\":{}", report.frames_total));
        line.push_str(&format!(",\"frames_decoded\":{}", report.frames_decoded));
        line.push_str(&format!(",\"frames_pruned\":{}", report.frames_pruned));
        line.push_str(&format!(",\"matched_events\":{}", report.matched_events));
        match report.newest_stamp {
            Some(s) => line.push_str(&format!(",\"newest_stamp\":{s}")),
            None => line.push_str(",\"newest_stamp\":null"),
        }
        line.push_str(&format!(",\"defects\":{}", report.defects.len()));
        line.push_str(&format!(",\"payload_bytes\":{}", report.state.bytes));
        line.push('}');
        println!("{line}");
    } else {
        println!(
            "frames              {} ({} decoded, {} pruned by the index)",
            report.frames_total, report.frames_decoded, report.frames_pruned
        );
        println!("matched events      {}", report.matched_events);
        if let Some(newest) = report.newest_stamp {
            println!("newest stamp        {newest}");
        }
        for defect in &report.defects {
            println!("frame defect: {defect}");
        }
        if metrics {
            println!();
            print_trace_analysis(&report.analysis, None);
        }
        if let Some(gap) = &report.gap_map {
            println!("retention gap map (old -> new):");
            println!("|{gap}|");
        }
    }
    i32::from(!report.defects.is_empty())
}

/// `btrace dump`
pub fn dump(scenario: &str, out: &str, scale: f64) -> i32 {
    let tracer = match BTrace::new(
        Config::new(CORES).active_blocks(16 * CORES).block_bytes(BLOCK).buffer_bytes(TOTAL),
    ) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let Some(s) = scenarios::by_name(scenario) else {
        eprintln!("error: unknown scenario {scenario}");
        return 1;
    };
    let config = ReplayConfig { scale, latency_sample_every: 0, ..ReplayConfig::table2() };
    Replayer::new(s, config).run(&tracer);
    let dump = TraceDump::capture(scenario, &tracer);
    match dump.write_to(Path::new(out)) {
        Ok(()) => {
            println!("wrote {} events to {out}", dump.events().len());
            0
        }
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    }
}

/// Builds the file exporters requested on the command line.
fn file_exporters(
    jsonl: Option<&str>,
    prom: Option<&str>,
) -> Result<Vec<Box<dyn Exporter>>, String> {
    let mut exporters: Vec<Box<dyn Exporter>> = Vec::new();
    if let Some(path) = jsonl {
        exporters
            .push(Box::new(JsonlExporter::create(path).map_err(|e| format!("open {path}: {e}"))?));
    }
    if let Some(path) = prom {
        exporters.push(Box::new(PrometheusExporter::new(path)));
    }
    Ok(exporters)
}

/// Runs a 4-core synthetic load against `tracer` for `duration_ms`,
/// draining periodically so the consumer path shows up in the snapshot.
fn run_synthetic_load(tracer: &BTrace, duration_ms: u64) {
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for core in 0..tracer.cores() {
            let producer = tracer.producer(core).expect("core in range");
            let stop = &stop;
            scope.spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    producer
                        .record_with(
                            core as u64 * 1_000_000_000 + i,
                            i as u32 % 17,
                            b"stat: synthetic event",
                        )
                        .expect("payload fits");
                    i += 1;
                    if i.is_multiple_of(4096) {
                        std::thread::yield_now();
                    }
                }
            });
        }
        let mut consumer = tracer.consumer();
        let deadline = std::time::Instant::now() + Duration::from_millis(duration_ms);
        while std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(50.min(duration_ms / 4 + 1)));
            let _ = consumer.collect();
        }
        stop.store(true, Ordering::Relaxed);
    });
}

fn telemetry_tracer() -> Result<BTrace, String> {
    BTrace::new(Config::new(4).active_blocks(64).block_bytes(BLOCK).buffer_bytes(4 << 20))
        .map_err(|e| e.to_string())
}

/// Resize stride of the auto-sized tracer: 64 × 4 KiB = 256 KiB.
const AUTO_STRIDE: usize = 64 * BLOCK;

/// A deliberately small-starting tracer with grow headroom, for the
/// sizing controller: 512 KiB initial, 16 MiB reserved ceiling.
fn resizable_tracer() -> Result<BTrace, String> {
    BTrace::new(
        Config::new(4)
            .active_blocks(64)
            .block_bytes(BLOCK)
            .buffer_bytes(2 * AUTO_STRIDE)
            .max_bytes(64 * AUTO_STRIDE)
            .backing(Backing::Heap),
    )
    .map_err(|e| e.to_string())
}

/// `--auto-size` options for [`stream`].
#[derive(Debug, Clone, Copy)]
pub struct AutoSize {
    /// Hard memory budget in bytes (`None` = the reserved maximum).
    pub budget: Option<u64>,
    /// Loss-rate target in ppm.
    pub target_loss_ppm: u64,
}

/// Spawns the sizing controller against `tracer` with CLI-friendly
/// pacing (10 observations per second).
fn spawn_controller(tracer: &std::sync::Arc<BTrace>, auto: AutoSize) -> ControllerThread {
    let budget = auto.budget.unwrap_or(ResizeTarget::max_bytes(&**tracer));
    ControllerThread::spawn(
        std::sync::Arc::clone(tracer),
        tracer.flight_recorder(),
        ControllerConfig {
            budget_bytes: budget,
            target_loss_ppm: auto.target_loss_ppm,
            stale_after_ms: 1_000,
            ..ControllerConfig::default()
        },
        Duration::from_millis(100),
    )
}

fn print_health_table(snap: &HealthSnapshot) {
    println!(
        "buffer: {} blocks x {} B ({:.1} MiB), {} active (bound 1-A/N = {:.3})",
        snap.capacity_blocks,
        snap.block_bytes,
        snap.capacity_bytes as f64 / (1 << 20) as f64,
        snap.active_blocks,
        snap.effectivity_bound
    );
    println!(
        "counters: {} records, {} advances, {} closes, {} skips, {} repairs, {} resizes",
        snap.records, snap.advances, snap.closes, snap.skips, snap.straggler_repairs, snap.resizes
    );
    println!(
        "effectivity: {:.4} observed vs {:.4} bound; skip rate {:.4}; occupancy {:.2}; {} open blocks",
        snap.effectivity_observed, snap.effectivity_bound, snap.skip_rate, snap.mean_occupancy, snap.open_blocks
    );
    if snap.rates.window_secs > 0.0 {
        println!(
            "rates ({:.2}s window): {:.0} records/s, {:.2} MiB/s, {:.1} advances/s",
            snap.rates.window_secs,
            snap.rates.records_per_sec,
            snap.rates.bytes_per_sec / (1 << 20) as f64,
            snap.rates.advances_per_sec
        );
    }
    let mut table = Table::new(vec![
        "Path".into(),
        "Samples".into(),
        "Mean ns".into(),
        "p50".into(),
        "p90".into(),
        "p99".into(),
        "p999".into(),
        "Max".into(),
    ]);
    for (name, l) in [
        ("record (sampled)", &snap.record_latency),
        ("advance", &snap.advance_latency),
        ("drain", &snap.drain_latency),
    ] {
        table.row(vec![
            name.into(),
            l.count.to_string(),
            format!("{:.0}", l.mean_ns),
            l.p50.to_string(),
            l.p90.to_string(),
            l.p99.to_string(),
            l.p999.to_string(),
            l.max.to_string(),
        ]);
    }
    println!("{}", table.render());
    let mut table = Table::new(vec!["Core".into(), "Records".into(), "KiB".into()]);
    for core in &snap.per_core {
        table.row(vec![
            format!("C{}", core.core),
            core.records.to_string(),
            (core.recorded_bytes / 1024).to_string(),
        ]);
    }
    println!("{}", table.render());
}

/// `btrace stat`
pub fn stat(json: bool, duration_ms: u64, jsonl: Option<&str>, prom: Option<&str>) -> i32 {
    let tracer = match telemetry_tracer() {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let exporters = match file_exporters(jsonl, prom) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let mut sampler = Sampler::spawn(
        tracer.clone(),
        exporters,
        SamplerConfig { period: Duration::from_millis((duration_ms / 4).clamp(50, 1000)) },
    );
    run_synthetic_load(&tracer, duration_ms);
    sampler.stop();
    // The final report reflects the finished workload; rate/sequence
    // context comes from the sampler's last periodic snapshot.
    let mut snap = tracer.health_snapshot();
    if let Some(last) = sampler.latest() {
        snap.seq = last.seq;
        snap.unix_ms = last.unix_ms;
        snap.rates = last.rates;
    }
    if json {
        println!("{}", snap.to_json());
    } else {
        print_health_table(&snap);
    }
    0
}

/// Prints one table row per sampled snapshot.
struct WatchExporter;

impl Exporter for WatchExporter {
    fn export(&mut self, s: &HealthSnapshot) -> std::io::Result<()> {
        let stages = if s.stream_stages.is_empty() {
            "-".to_string()
        } else {
            s.stream_stages
                .iter()
                .map(|st| format!("{}:{}/{}", st.stage, st.depth, st.capacity))
                .collect::<Vec<_>>()
                .join(" ")
        };
        println!(
            "{:>4} {:>6} {:>12} {:>12.0} {:>9.2} {:>9} {:>6} {:>8.4} {:>8.4} {:>6} {:>6} {:>7} {:>8} {}",
            s.seq,
            s.age_ms,
            s.records,
            s.rates.records_per_sec,
            s.rates.bytes_per_sec / (1 << 20) as f64,
            s.advances,
            s.skips,
            s.effectivity_observed,
            s.mean_occupancy,
            s.record_latency.p50,
            s.record_latency.p99,
            s.record_latency.p999,
            stages,
            degraded::describe(s.degraded_bits),
        );
        Ok(())
    }
}

/// `btrace watch`
pub fn watch(period_ms: u64, duration_ms: u64, jsonl: Option<&str>, prom: Option<&str>) -> i32 {
    let tracer = match telemetry_tracer() {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let mut exporters = match file_exporters(jsonl, prom) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    println!(
        "{:>4} {:>6} {:>12} {:>12} {:>9} {:>9} {:>6} {:>8} {:>8} {:>6} {:>6} {:>7} {:>8} state",
        "seq",
        "age_ms",
        "records",
        "rec/s",
        "MiB/s",
        "advances",
        "skips",
        "eff",
        "occ",
        "p50",
        "p99",
        "p999",
        "stages"
    );
    exporters.push(Box::new(WatchExporter));
    let mut sampler = Sampler::spawn(
        tracer.clone(),
        exporters,
        SamplerConfig { period: Duration::from_millis(period_ms) },
    );
    run_synthetic_load(&tracer, duration_ms);
    sampler.stop();
    let errors = sampler.export_errors();
    if errors > 0 {
        eprintln!("warning: {errors} export errors");
        return 1;
    }
    0
}

/// `btrace stream`
#[allow(clippy::fn_params_excessive_bools, clippy::too_many_arguments)]
pub fn stream(
    duration_ms: u64,
    out: Option<&str>,
    block: bool,
    batch_events: usize,
    queue_depth: usize,
    drain_threads: Option<usize>,
    auto_size: Option<AutoSize>,
    json: bool,
) -> i32 {
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let drain_threads = match drain_threads {
        Some(k) => {
            if k > host_cpus {
                eprintln!(
                    "warning: --drain-threads {k} exceeds the {host_cpus} available CPU(s); \
                     idle stripes serialize behind the scheduler and confirm coalescing \
                     degrades — consider --drain-threads {host_cpus}"
                );
            }
            k
        }
        None => 4.min(host_cpus),
    };
    // Auto-sized streams start small and let the controller earn the
    // bytes; fixed-size streams keep the classic 4 MiB geometry.
    let tracer = match if auto_size.is_some() { resizable_tracer() } else { telemetry_tracer() } {
        Ok(t) => std::sync::Arc::new(t),
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let controller = auto_size.map(|auto| spawn_controller(&tracer, auto));
    let sink: Box<dyn FrameSink> = match out {
        Some(path) => match FileFrameSink::create(path) {
            Ok(s) => Box::new(s),
            Err(e) => {
                eprintln!("error: cannot open {path}: {e}");
                return 1;
            }
        },
        None => Box::new(NullFrameSink::default()),
    };
    let config = PipelineConfig {
        batch_max_events: batch_events,
        queue_depth,
        backpressure: if block { Backpressure::Block } else { Backpressure::DropAndCount },
        drain_threads,
        ..PipelineConfig::default()
    };
    let pipeline = StreamPipeline::spawn(std::sync::Arc::clone(&tracer), sink, config);

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for core in 0..tracer.cores() {
            let producer = tracer.producer(core).expect("core in range");
            let stop = &stop;
            scope.spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    producer
                        .record_with(
                            core as u64 * 1_000_000_000 + i,
                            i as u32 % 17,
                            b"stream: synthetic event",
                        )
                        .expect("payload fits");
                    i += 1;
                    if i.is_multiple_of(2048) {
                        std::thread::yield_now();
                    }
                }
            });
        }
        if !json {
            println!(
                "{:>8} {:>12} {:>10} {:>10} {:>9} {:>8}",
                "drained", "drained/s", "frames", "MiB out", "missed", "dropped"
            );
        }
        let deadline = std::time::Instant::now() + Duration::from_millis(duration_ms);
        while std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(200.min(duration_ms / 2 + 1)));
            if !json {
                let s = pipeline.stats();
                println!(
                    "{:>8} {:>12.0} {:>10} {:>10.2} {:>9} {:>8}",
                    s.events_drained,
                    s.drain_events_per_sec(),
                    s.frames_written,
                    s.bytes_written as f64 / (1 << 20) as f64,
                    s.missed_blocks,
                    s.stages.iter().map(|st| st.dropped).sum::<u64>(),
                );
            }
        }
        stop.store(true, Ordering::Relaxed);
    });
    let stats = pipeline.stop();
    if let Some(mut ctrl) = controller {
        ctrl.stop();
        if !json {
            let s = ctrl.stats();
            println!(
                "controller: {} resizes ({} failed), {} budget clamps, {} stale snapshots \
                 skipped; final capacity {} KiB",
                s.resizes.load(Ordering::Relaxed),
                s.failures.load(Ordering::Relaxed),
                s.budget_clamps.load(Ordering::Relaxed),
                s.stale_skips.load(Ordering::Relaxed),
                tracer.capacity_bytes() / 1024,
            );
        }
    }

    if json {
        // The stream's per-stage gauges ride along in the standard health
        // snapshot, so existing JSONL tooling picks them up unchanged.
        let mut snap = tracer.health_snapshot();
        snap.stream_stages = stats.stages.clone();
        println!("{}", snap.to_json());
    } else {
        let mut table = Table::new(vec![
            "Stage".into(),
            "Depth".into(),
            "Cap".into(),
            "In".into(),
            "Out".into(),
            "Dropped".into(),
        ]);
        for s in &stats.stages {
            table.row(vec![
                s.stage.clone(),
                s.depth.to_string(),
                s.capacity.to_string(),
                s.in_items.to_string(),
                s.out_items.to_string(),
                s.dropped.to_string(),
            ]);
        }
        println!("{}", table.render());
        println!(
            "streamed {} events in {} frames ({:.2} MiB) over {:.2}s: {:.0} events/s, {:.2} MiB/s",
            stats.events_drained,
            stats.frames_written,
            stats.bytes_written as f64 / (1 << 20) as f64,
            stats.elapsed.as_secs_f64(),
            stats.drain_events_per_sec(),
            stats.sink_bytes_per_sec() / (1 << 20) as f64,
        );
        println!(
            "missed {} blocks; sink retries {}, sink drops {}",
            stats.missed_blocks, stats.io.retries, stats.io.drops
        );
        if let Some(path) = out {
            println!("frames written to {path}");
        }
    }
    0
}

/// `btrace tune` — dry-runs the sizing controller: a throwaway resizable
/// buffer takes a two-phase synthetic load (a spike, then a drip), the
/// controller reacts, and the command prints every decision it took plus
/// the capacity it settled on. Nothing outlives the run.
pub fn tune(duration_ms: u64, budget: Option<u64>, target_loss_ppm: u64, json: bool) -> i32 {
    let tracer = match resizable_tracer() {
        Ok(t) => std::sync::Arc::new(t),
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let start_bytes = tracer.capacity_bytes();
    let mut controller = spawn_controller(&tracer, AutoSize { budget, target_loss_ppm });

    // Phase 1 (first half): every core spins flat out — the launch-spike
    // shape that should force grows. Phase 2 (second half): a slow drip
    // that should let the retention-ranked shrink reclaim bytes.
    let stop = AtomicBool::new(false);
    let spike_until = std::time::Instant::now() + Duration::from_millis(duration_ms / 2);
    let deadline = std::time::Instant::now() + Duration::from_millis(duration_ms);
    std::thread::scope(|scope| {
        for core in 0..tracer.cores() {
            let producer = tracer.producer(core).expect("core in range");
            let stop = &stop;
            scope.spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    producer
                        .record_with(
                            core as u64 * 1_000_000_000 + i,
                            i as u32 % 17,
                            b"tune: synthetic event",
                        )
                        .expect("payload fits");
                    i += 1;
                    if std::time::Instant::now() >= spike_until {
                        std::thread::sleep(Duration::from_millis(5));
                    } else if i.is_multiple_of(2048) {
                        std::thread::yield_now();
                    }
                }
            });
        }
        let mut consumer = tracer.consumer();
        while std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
            let _ = consumer.collect();
        }
        stop.store(true, Ordering::Relaxed);
    });
    controller.stop();

    let stats = controller.stats();
    let snap = tracer.health_snapshot();
    let recommended = tracer.capacity_bytes();
    if json {
        use btrace_telemetry::json::Json;
        let obj = Json::Obj(vec![
            ("recommended_bytes".into(), Json::from_u64(recommended as u64)),
            ("start_bytes".into(), Json::from_u64(start_bytes as u64)),
            (
                "budget_bytes".into(),
                Json::from_u64(budget.unwrap_or(ResizeTarget::max_bytes(&*tracer))),
            ),
            ("target_loss_ppm".into(), Json::from_u64(target_loss_ppm)),
            ("resizes".into(), Json::from_u64(stats.resizes.load(Ordering::Relaxed))),
            ("resize_failures".into(), Json::from_u64(stats.failures.load(Ordering::Relaxed))),
            ("budget_clamps".into(), Json::from_u64(stats.budget_clamps.load(Ordering::Relaxed))),
            ("stale_skips".into(), Json::from_u64(stats.stale_skips.load(Ordering::Relaxed))),
            ("skips".into(), Json::from_u64(snap.skips)),
        ]);
        println!("{}", obj.render());
    } else {
        println!("controller decision log:");
        let timeline = tracer.flight_recorder().snapshot();
        let mut decisions = 0;
        for e in &timeline.events {
            if matches!(
                e.kind,
                EventKind::CtrlObserve
                    | EventKind::CtrlResize
                    | EventKind::CtrlBackoff
                    | EventKind::CtrlBudgetClamp
            ) {
                // Observations are the controller's heartbeat; print only
                // the ones that carried a signal, plus every action.
                if e.kind != EventKind::CtrlObserve || e.a > 0 || e.source == 1 {
                    println!("  {}", e.describe());
                    decisions += 1;
                }
            }
        }
        if decisions == 0 {
            println!("  (only quiet observations — the load never stressed the buffer)");
        }
        println!(
            "tuned over {:.1}s: {} -> {} KiB ({} resizes, {} failed, {} budget clamps, \
             {} stale snapshots skipped)",
            duration_ms as f64 / 1000.0,
            start_bytes / 1024,
            recommended / 1024,
            stats.resizes.load(Ordering::Relaxed),
            stats.failures.load(Ordering::Relaxed),
            stats.budget_clamps.load(Ordering::Relaxed),
            stats.stale_skips.load(Ordering::Relaxed),
        );
        println!(
            "recommendation: provision {} KiB ({} blocks of {} B) for this load shape",
            recommended / 1024,
            recommended / BLOCK,
            BLOCK
        );
    }
    0
}

/// The doctor's fault-storm geometry: a deliberately tiny resizable
/// buffer so producers lap it and the pipeline sheds under load.
const DOCTOR_BLOCK: usize = 1024;
const DOCTOR_ACTIVE: usize = 8;
const DOCTOR_STRIDE: usize = DOCTOR_BLOCK * DOCTOR_ACTIVE;

/// `btrace doctor` — runs a seeded fault-storm workload (producers
/// hammering a tiny buffer through a shedding pipeline, with a mid-run
/// grow that the fault plan sabotages), then correlates the flight
/// recorder, health counters, and stage gauges into a diagnosis.
pub fn doctor(fault_seed: u64, duration_ms: u64, json: bool) -> i32 {
    let mut config = Config::new(4)
        .active_blocks(DOCTOR_ACTIVE)
        .block_bytes(DOCTOR_BLOCK)
        .buffer_bytes(2 * DOCTOR_STRIDE)
        .max_bytes(8 * DOCTOR_STRIDE)
        .backing(Backing::Heap);
    if fault_seed != 0 {
        // Every commit after construction fails: the mid-run grow must
        // retry, fall back, and leave the tracer degraded.
        config =
            config.fault_plan(FaultPlan::new(fault_seed).commit_failure_rate(1.0).arm_after_ops(1));
    }
    let tracer = match BTrace::new(config) {
        Ok(t) => std::sync::Arc::new(t),
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    // A depth-1 shedding pipeline: under four spinning producers its
    // queues overflow, so loss shows up as recorder StageDrop events, not
    // just counter drift.
    let pipeline = StreamPipeline::spawn(
        std::sync::Arc::clone(&tracer),
        Box::new(NullFrameSink::default()),
        PipelineConfig {
            poll_interval: Duration::from_millis(1),
            queue_depth: 1,
            backpressure: Backpressure::DropAndCount,
            ..PipelineConfig::default()
        },
    );
    // The sizing controller runs through the storm too: its grow attempts
    // hit the same injected commit faults, so its resize and back-off
    // decisions land on the recorder next to the loss they failed to
    // prevent — and the diagnosis below names them in the cause chains.
    let mut controller = ControllerThread::spawn(
        std::sync::Arc::clone(&tracer),
        tracer.flight_recorder(),
        ControllerConfig {
            budget_bytes: (8 * DOCTOR_STRIDE) as u64,
            stale_after_ms: 1_000,
            cooldown_ticks: 1,
            ..ControllerConfig::default()
        },
        Duration::from_millis(duration_ms.clamp(200, 2000) / 20),
    );

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for core in 0..tracer.cores() {
            let producer = tracer.producer(core).expect("core in range");
            let stop = &stop;
            scope.spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    producer
                        .record_with(
                            core as u64 * 1_000_000_000 + i,
                            i as u32 % 17,
                            b"doctor: fault storm",
                        )
                        .expect("payload fits");
                    i += 1;
                    if i.is_multiple_of(2048) {
                        std::thread::yield_now();
                    }
                }
            });
        }
        // Halfway in, attempt a grow. With the fault plan armed this is
        // the injected incident: commit faults → retries → fallback.
        std::thread::sleep(Duration::from_millis(duration_ms / 2));
        let _ = BTrace::resize_bytes(&tracer, 4 * DOCTOR_STRIDE);
        std::thread::sleep(Duration::from_millis(duration_ms - duration_ms / 2));
        stop.store(true, Ordering::Relaxed);
    });
    controller.stop();
    let pstats = pipeline.stop();

    let mut snap = tracer.health_snapshot();
    snap.stream_stages = pstats.stages.clone();
    let timeline = tracer.flight_recorder().snapshot();
    let diagnosis = diagnose(&timeline.events, Some(&snap), None);

    if json {
        println!("{}", diagnosis.to_json().render());
    } else {
        print!("{}", diagnosis.render());
        if timeline.overwritten > 0 {
            println!(
                "\n(ring overwrote {} older event(s); earliest evidence may be gone)",
                timeline.overwritten
            );
        }
    }
    0
}

/// Prints recorder events newer than each shard's high-water mark,
/// advancing the marks. Returns how many events were printed.
fn print_new_events(recorder: &FlightRecorder, seen: &mut [u64], json: bool) -> usize {
    let snap = recorder.snapshot();
    let mut printed = 0;
    for e in &snap.events {
        let mark = &mut seen[e.shard as usize];
        if e.seq < *mark {
            continue;
        }
        *mark = e.seq + 1;
        if json {
            println!("{}", e.to_json().render());
        } else {
            println!("{}", e.describe());
        }
        printed += 1;
    }
    printed
}

/// `btrace events` — runs a synthetic load through a streaming pipeline
/// and prints the flight recorder's timeline (control-plane transitions
/// plus per-stage span events), optionally tailing it live.
pub fn events(duration_ms: u64, follow: bool, json: bool) -> i32 {
    let tracer = match telemetry_tracer() {
        Ok(t) => std::sync::Arc::new(t),
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let recorder = tracer.flight_recorder();
    let mut seen = vec![0u64; recorder.shards()];
    let pipeline = StreamPipeline::spawn(
        std::sync::Arc::clone(&tracer),
        Box::new(NullFrameSink::default()),
        PipelineConfig::default(),
    );
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for core in 0..tracer.cores() {
            let producer = tracer.producer(core).expect("core in range");
            let stop = &stop;
            scope.spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    producer
                        .record_with(
                            core as u64 * 1_000_000_000 + i,
                            i as u32 % 17,
                            b"events: synthetic event",
                        )
                        .expect("payload fits");
                    i += 1;
                    if i.is_multiple_of(4096) {
                        std::thread::yield_now();
                    }
                }
            });
        }
        let deadline = std::time::Instant::now() + Duration::from_millis(duration_ms);
        while std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(50.min(duration_ms / 4 + 1)));
            if follow {
                print_new_events(&recorder, &mut seen, json);
            }
        }
        stop.store(true, Ordering::Relaxed);
    });
    pipeline.stop();
    let printed = print_new_events(&recorder, &mut seen, json);
    if !follow && printed == 0 && !json {
        println!("(no recorder events in this run)");
    }
    0
}

/// `btrace inspect`
pub fn inspect(file: &str, map: bool) -> i32 {
    let dump = match TraceDump::read_from(Path::new(file)) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    println!("dump {file:?}: label {:?}, {} events\n", dump.label(), dump.events().len());
    let events: Vec<CollectedEvent> = dump
        .events()
        .iter()
        .map(|e| CollectedEvent {
            stamp: e.stamp,
            core: e.core,
            tid: e.tid,
            stored_bytes: btrace_core::event::encoded_len(e.payload.len()) as u32,
        })
        .collect();
    print_report_analysis(&events, TOTAL, None);
    if map {
        let stamps: Vec<u64> = {
            let mut s: Vec<u64> = events.iter().map(|e| e.stamp).collect();
            s.sort_unstable();
            s.dedup();
            s
        };
        if let Some(&newest) = stamps.last() {
            let window = newest - stamps.first().copied().unwrap_or(0) + 1;
            println!(
                "retention map (oldest left, newest right):\n|{}|",
                gap_map(&stamps, newest, GapMapOptions { window, width: 72 })
            );
        }
    }
    0
}
