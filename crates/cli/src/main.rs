//! `btrace` — the command-line companion tool.
//!
//! ```text
//! btrace scenarios                      list the built-in replay workloads
//! btrace demo                           quick synthetic demo on this machine
//! btrace replay --scenario eShop-2 --tracer BTrace [--scale 0.1]
//! btrace dump --scenario Video-1 --out trace.btd [--scale 0.1]
//! btrace inspect trace.btd [--map]
//! btrace analyze frames.btsf --threads 4 [--fragments 16] [--map]
//! btrace query frames.btsf --since 1000 --until 9000 --core 2 [--category sched]
//! btrace stream --duration-ms 2000 [--out frames.btsf] [--policy block|drop]
//! ```

mod args;
mod commands;

use args::Command;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args::parse(&args) {
        Ok(Command::Scenarios) => commands::scenarios(),
        Ok(Command::Demo) => commands::demo(),
        Ok(Command::Replay { scenario, tracer, scale, threads }) => {
            commands::replay(&scenario, &tracer, scale, threads)
        }
        Ok(Command::Dump { scenario, out, scale }) => commands::dump(&scenario, &out, scale),
        Ok(Command::Inspect { file, map }) => commands::inspect(&file, map),
        Ok(Command::Analyze { file, threads, fragments, map }) => {
            commands::analyze(&file, threads, fragments, map)
        }
        Ok(Command::Query { file, since, until, cores, category, threads, metrics, map, json }) => {
            commands::query(
                &file,
                since,
                until,
                &cores,
                category.as_deref(),
                threads,
                metrics,
                map,
                json,
            )
        }
        Ok(Command::Stat { json, duration_ms, jsonl, prom }) => {
            commands::stat(json, duration_ms, jsonl.as_deref(), prom.as_deref())
        }
        Ok(Command::Watch { period_ms, duration_ms, jsonl, prom }) => {
            commands::watch(period_ms, duration_ms, jsonl.as_deref(), prom.as_deref())
        }
        Ok(Command::Stream {
            duration_ms,
            out,
            block,
            batch_events,
            queue_depth,
            drain_threads,
            auto_size,
            budget,
            target_loss_ppm,
            json,
        }) => commands::stream(
            duration_ms,
            out.as_deref(),
            block,
            batch_events,
            queue_depth,
            drain_threads,
            auto_size.then_some(commands::AutoSize { budget, target_loss_ppm }),
            json,
        ),
        Ok(Command::Tune { duration_ms, budget, target_loss_ppm, json }) => {
            commands::tune(duration_ms, budget, target_loss_ppm, json)
        }
        Ok(Command::Doctor { fault_seed, duration_ms, json }) => {
            commands::doctor(fault_seed, duration_ms, json)
        }
        Ok(Command::Events { duration_ms, follow, json }) => {
            commands::events(duration_ms, follow, json)
        }
        Ok(Command::Help) => {
            print!("{}", args::USAGE);
            0
        }
        Err(message) => {
            eprintln!("error: {message}\n");
            eprint!("{}", args::USAGE);
            2
        }
    };
    std::process::exit(code);
}
