//! Model-checked scenarios for the btrace-core lock-free protocol.
//!
//! Every test explores hundreds of seeded interleavings (random-walk and
//! PCT-style priority schedules) of a small tracer configuration and runs
//! the invariant checkers after each execution. A failing schedule prints
//! its seed; replay it with `BTRACE_MODEL_SEED=<seed>`.
//!
//! Scenario coverage maps to the paper's mechanisms:
//!
//! * closing (§3.2)            — `closing_bounds_staleness`
//! * implicit reclaiming (§3.3) — `implicit_reclaiming_wraparound`
//! * skipping (§3.4)           — `skipping_never_blocks`
//! * advancement (§4.2)        — all scenarios (step budget = bounded
//!   termination)
//! * speculative consumer (§4.3) — `speculative_consumer_race`
//! * resizing (§4.4)           — `resize_under_traffic`
//! * ABA hazard (Rnd wraparound past a pinned grant) — `aba_round_wraparound`
//! * cached block descriptor gone stale across a wrap-around —
//!   `descriptor_preemption`

use btrace_core::{introspect, model_rt, BTrace, Backing, Config};
use btrace_model::check::{
    check_conservation, check_counter_coherence, check_effectivity_with_slack, check_pin,
    MonotonicObserver,
};
use btrace_model::{explore, fingerprint, ModelConfig, Report, Sim};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Exactly-fitting payload: 8 payload bytes encode to 24 bytes, and a
/// 256-byte block (16-byte block header + 240 usable) holds exactly 10
/// entries — so sequential recording never leaves a partial tail.
const PAYLOAD: &[u8; 8] = b"8bytes!!";

fn assert_coverage(report: Report) {
    if report.replay {
        return; // a single-seed replay has nothing to say about coverage
    }
    assert!(
        report.distinct >= 500,
        "acceptance: need >= 500 distinct interleavings, got {} over {} schedules",
        report.distinct,
        report.schedules
    );
}

/// §3.2 block closing: two cores interleave freely; closing keeps lagging
/// blocks bounded and loses nothing. The configuration cannot wrap (events
/// live in data blocks a full ratio-cycle away from any reachable
/// candidate), so conservation is exact: every recorded stamp drains.
#[test]
fn closing_bounds_staleness() {
    let report = explore("closing_bounds_staleness", ModelConfig::default(), |sim| {
        let t = BTrace::new(
            Config::new(2)
                .active_blocks(4)
                .block_bytes(256)
                .buffer_bytes(256 * 4 * 4) // ratio 4, N = 16
                .backing(Backing::Heap),
        )
        .unwrap();
        let mut produced = BTreeSet::new();
        for core in 0..2u64 {
            for i in 0..15u64 {
                produced.insert(core * 1000 + i);
            }
            let p = t.producer(core as usize).unwrap();
            sim.thread(move || {
                for i in 0..15u64 {
                    p.record_with(core * 1000 + i, core as u32, PAYLOAD).unwrap();
                }
            });
        }
        sim.finally(move || {
            let readout = t.consumer().collect();
            check_conservation(&readout, &produced, true);
            check_counter_coherence(&t);
            check_effectivity_with_slack(&t, t.active_blocks() as u32);
        });
    });
    assert_coverage(report);
}

/// §3.4 block skipping: a producer parked mid-write (open grant) pins its
/// block; a sibling thread on the same core floods past it. Advancement
/// must skip the pinned block (never block, never recycle it), and the
/// grant's late commit must still surface in the drain.
#[test]
fn skipping_never_blocks() {
    const FLOOD: u64 = 100; // 10 blocks on an N = 8 buffer: wraps past the pin
    const HELD_STAMP: u64 = 9_999;
    let report = explore("skipping_never_blocks", ModelConfig::default(), |sim| {
        let t = BTrace::new(
            Config::new(1)
                .active_blocks(4)
                .block_bytes(256)
                .buffer_bytes(256 * 4 * 2) // ratio 2, N = 8
                .max_bytes(256 * 4 * 8) // reserve: keeps the pinned block in scan range
                .backing(Backing::Heap),
        )
        .unwrap();
        let p = t.producer(0).unwrap();
        let pinned = Arc::new(AtomicBool::new(false));
        let flood_done = Arc::new(AtomicBool::new(false));

        let holder = {
            let t = t.clone();
            let p = p.clone();
            let pinned = Arc::clone(&pinned);
            let flood_done = Arc::clone(&flood_done);
            move || {
                let grant = p.begin(PAYLOAD.len()).unwrap();
                let (meta_idx, rnd, _) = introspect::mapping(&t, grant.gpos());
                pinned.store(true, Ordering::SeqCst);
                while !flood_done.load(Ordering::SeqCst) {
                    check_pin(&t, meta_idx, rnd);
                    model_rt::yield_spin();
                }
                check_pin(&t, meta_idx, rnd);
                grant.commit(HELD_STAMP, 0, PAYLOAD).unwrap();
            }
        };
        let flooder = {
            let pinned = Arc::clone(&pinned);
            let flood_done = Arc::clone(&flood_done);
            move || {
                // The scenario is about flooding *past a live pin* — wait for
                // the grant, or a schedule that runs this thread first would
                // flood an unpinned buffer and prove nothing.
                while !pinned.load(Ordering::SeqCst) {
                    model_rt::yield_spin();
                }
                for i in 0..FLOOD {
                    p.record_with(i, 1, PAYLOAD).unwrap();
                }
                flood_done.store(true, Ordering::SeqCst);
            }
        };
        sim.thread(holder);
        sim.thread(flooder);

        sim.finally(move || {
            let produced: BTreeSet<u64> = (0..FLOOD).chain([HELD_STAMP]).collect();
            let readout = t.consumer().collect();
            check_conservation(&readout, &produced, false);
            assert!(
                readout.events.iter().any(|e| e.stamp() == HELD_STAMP),
                "the late-committed grant's event was lost (block recycled under the pin?)"
            );
            assert!(
                t.stats().skips >= 1,
                "flooding past a pinned block must skip it at least once"
            );
            check_counter_coherence(&t);
            check_effectivity_with_slack(&t, t.active_blocks() as u32);
        });
    });
    assert_coverage(report);
}

/// §3.3 implicit reclaiming: a tiny buffer (N = 4) wraps several times
/// under three writer threads (two sharing core 0 — the straggler-repair
/// and advance-contention paths) while an observer thread snapshots the
/// metadata counters at every interleaving, asserting they never regress
/// (the counters double as reference counts; a lost update here is a
/// reclaimed block with a live writer).
#[test]
fn implicit_reclaiming_wraparound() {
    let report = explore("implicit_reclaiming_wraparound", ModelConfig::default(), |sim| {
        let t = BTrace::new(
            Config::new(2)
                .active_blocks(2)
                .block_bytes(256)
                .buffer_bytes(256 * 2 * 2) // ratio 2, N = 4
                .backing(Backing::Heap),
        )
        .unwrap();
        let writers_left = Arc::new(std::sync::atomic::AtomicUsize::new(3));
        let mut produced = BTreeSet::new();
        for (writer, core) in [(0u64, 0usize), (1, 0), (2, 1)] {
            for i in 0..20u64 {
                produced.insert(writer * 1000 + i);
            }
            let p = t.producer(core).unwrap();
            let writers_left = Arc::clone(&writers_left);
            sim.thread(move || {
                for i in 0..20u64 {
                    p.record_with(writer * 1000 + i, writer as u32, PAYLOAD).unwrap();
                }
                writers_left.fetch_sub(1, Ordering::SeqCst);
            });
        }
        {
            let t = t.clone();
            sim.thread(move || {
                let mut observer = MonotonicObserver::new();
                while writers_left.load(Ordering::SeqCst) > 0 {
                    observer.observe(&t);
                    model_rt::yield_spin();
                }
                observer.observe(&t);
            });
        }
        sim.finally(move || {
            let readout = t.consumer().collect();
            check_conservation(&readout, &produced, false);
            check_counter_coherence(&t);
        });
    });
    assert_coverage(report);
}

/// §4.4 resizing under traffic: grow then shrink while two cores record.
/// Recording never fails, the drain stays coherent, and capacity lands on
/// the final target.
#[test]
fn resize_under_traffic() {
    let report = explore("resize_under_traffic", ModelConfig::default(), |sim| {
        let stride = 256 * 2; // block_bytes * active_blocks
        let t = BTrace::new(
            Config::new(2)
                .active_blocks(2)
                .block_bytes(256)
                .buffer_bytes(stride * 2) // ratio 2, N = 4
                .max_bytes(stride * 8) // up to ratio 8
                .backing(Backing::Heap),
        )
        .unwrap();
        let mut produced = BTreeSet::new();
        for core in 0..2u64 {
            for i in 0..15u64 {
                produced.insert(core * 1000 + i);
            }
            let p = t.producer(core as usize).unwrap();
            sim.thread(move || {
                for i in 0..15u64 {
                    p.record_with(core * 1000 + i, core as u32, PAYLOAD).unwrap();
                }
            });
        }
        {
            let t = t.clone();
            sim.thread(move || {
                t.resize_bytes(stride * 4).unwrap(); // grow to N = 8
                t.resize_bytes(stride).unwrap(); // shrink to N = 2
            });
        }
        sim.finally(move || {
            assert_eq!(t.capacity_blocks(), 2, "capacity must land on the final target");
            assert_eq!(t.stats().resizes, 2);
            let readout = t.consumer().collect();
            check_conservation(&readout, &produced, false);
            check_counter_coherence(&t);
        });
    });
    assert_coverage(report);
}

/// §4.3 speculative consumer: a modeled reader races a producer across more
/// than two full buffer rounds. Payloads mirror their stamps, so a torn
/// read (parsing bytes of two different rounds as one entry) or a
/// duplicated event is detectable inside every poll.
#[test]
fn speculative_consumer_race() {
    const TOTAL: u64 = 180; // 18 blocks on an N = 8 buffer: > 2 full rounds
    let report = explore("speculative_consumer_race", ModelConfig::default(), |sim| {
        let t = BTrace::new(
            Config::new(1)
                .active_blocks(4)
                .block_bytes(256)
                .buffer_bytes(256 * 4 * 2) // ratio 2, N = 8
                .max_bytes(256 * 4 * 8)
                .backing(Backing::Heap),
        )
        .unwrap();
        let p = t.producer(0).unwrap();
        let writer_done = Arc::new(AtomicBool::new(false));

        {
            let writer_done = Arc::clone(&writer_done);
            sim.thread(move || {
                for i in 0..TOTAL {
                    p.record_with(i, 0, &i.to_le_bytes()).unwrap();
                }
                writer_done.store(true, Ordering::SeqCst);
            });
        }
        {
            let t = t.clone();
            sim.thread(move || {
                let mut consumer = t.consumer();
                loop {
                    let done_before = writer_done.load(Ordering::SeqCst);
                    let readout = consumer.collect();
                    let mut seen = BTreeSet::new();
                    for e in &readout.events {
                        assert!(e.stamp() < TOTAL, "invented stamp {}", e.stamp());
                        assert_eq!(
                            e.payload(),
                            e.stamp().to_le_bytes(),
                            "torn event: stamp {} with mismatched payload",
                            e.stamp()
                        );
                        assert!(
                            seen.insert(e.stamp()),
                            "stamp {} duplicated in one poll",
                            e.stamp()
                        );
                    }
                    if done_before {
                        return;
                    }
                    model_rt::yield_spin();
                }
            });
        }
        sim.finally(move || {
            let produced: BTreeSet<u64> = (0..TOTAL).collect();
            let readout = t.consumer().collect();
            check_conservation(&readout, &produced, false);
            assert!(
                readout.events.iter().any(|e| e.stamp() == TOTAL - 1),
                "the newest event must always be retained"
            );
            check_counter_coherence(&t);
        });
    });
    assert_coverage(report);
}

/// ABA hazard probe (satellite): pin a producer mid-write, then push enough
/// traffic that — were the pin ever ignored — the metadata block's `Rnd`
/// counter would wrap through more than a full `Ratio` round and recycle
/// the pinned data block. `check_pin` fires at every interleaving point if
/// the round ever advances past the open grant; the final drain proves the
/// late commit survived the wraparound pressure intact.
#[test]
fn aba_round_wraparound() {
    const FLOOD: u64 = 160; // 16 blocks: 4 full ratio rounds on N = 4
    const HELD_STAMP: u64 = 77_777;
    let report = explore("aba_round_wraparound", ModelConfig::default(), |sim| {
        let t = BTrace::new(
            Config::new(1)
                .active_blocks(2)
                .block_bytes(256)
                .buffer_bytes(256 * 2 * 2) // ratio 2, N = 4
                .max_bytes(256 * 2 * 16) // reserve: pinned block stays in scan range
                .backing(Backing::Heap),
        )
        .unwrap();
        let p = t.producer(0).unwrap();
        let pinned = Arc::new(AtomicBool::new(false));
        let flood_done = Arc::new(AtomicBool::new(false));

        {
            let t = t.clone();
            let p = p.clone();
            let pinned = Arc::clone(&pinned);
            let flood_done = Arc::clone(&flood_done);
            sim.thread(move || {
                let grant = p.begin(PAYLOAD.len()).unwrap();
                let (meta_idx, rnd, _) = introspect::mapping(&t, grant.gpos());
                pinned.store(true, Ordering::SeqCst);
                while !flood_done.load(Ordering::SeqCst) {
                    // The whole point: across a full Rnd wraparound's worth
                    // of traffic, the pinned round must never move.
                    check_pin(&t, meta_idx, rnd);
                    model_rt::yield_spin();
                }
                check_pin(&t, meta_idx, rnd);
                grant.commit(HELD_STAMP, 0, PAYLOAD).unwrap();
            });
        }
        {
            let pinned = Arc::clone(&pinned);
            let flood_done = Arc::clone(&flood_done);
            sim.thread(move || {
                while !pinned.load(Ordering::SeqCst) {
                    model_rt::yield_spin();
                }
                for i in 0..FLOOD {
                    p.record_with(i, 1, PAYLOAD).unwrap();
                }
                flood_done.store(true, Ordering::SeqCst);
            });
        }
        sim.finally(move || {
            let produced: BTreeSet<u64> = (0..FLOOD).chain([HELD_STAMP]).collect();
            let readout = t.consumer().collect();
            check_conservation(&readout, &produced, false);
            let held: Vec<_> = readout.events.iter().filter(|e| e.stamp() == HELD_STAMP).collect();
            assert_eq!(held.len(), 1, "the pinned grant's event must survive exactly once");
            assert_eq!(held[0].payload(), PAYLOAD);
            assert!(t.stats().skips >= 1, "the pinned block must have been skipped");
            check_counter_coherence(&t);
        });
    });
    assert_coverage(report);
}

/// Cached-descriptor hazard: each `Producer` handle caches its block's
/// `(gpos, rnd, meta, data)` descriptor and allocates against it without
/// reloading the core-local word. Here a producer primes its cache, is
/// "preempted" while a sibling handle on the same core floods the buffer
/// through several full wrap-arounds (recycling the cached block into newer
/// rounds), then resumes recording through the stale cache. The refresh path
/// must detect the staleness via the round check, repair its own inflation
/// of the newer round (or the round's pin leaks and wedges the block), and
/// land every resumed event intact.
#[test]
fn descriptor_preemption() {
    const FLOOD: u64 = 160; // 16 blocks: 4 full ratio rounds on N = 4
    const RESUMED: u64 = 5;
    let report = explore("descriptor_preemption", ModelConfig::default(), |sim| {
        let t = BTrace::new(
            Config::new(1)
                .active_blocks(2)
                .block_bytes(256)
                .buffer_bytes(256 * 2 * 2) // ratio 2, N = 4
                .backing(Backing::Heap),
        )
        .unwrap();
        let p = t.producer(0).unwrap();
        let primed = Arc::new(AtomicBool::new(false));
        let flood_done = Arc::new(AtomicBool::new(false));

        {
            // The preempted producer: `p` moves in, so its cached descriptor
            // is primed by the first record and untouched by the flood.
            let primed = Arc::clone(&primed);
            let flood_done = Arc::clone(&flood_done);
            sim.thread(move || {
                p.record_with(500, 0, PAYLOAD).unwrap();
                primed.store(true, Ordering::SeqCst);
                while !flood_done.load(Ordering::SeqCst) {
                    model_rt::yield_spin(); // parked mid-trace, cache rotting
                }
                for i in 0..RESUMED {
                    p.record_with(600 + i, 0, PAYLOAD).unwrap();
                }
            });
        }
        {
            // A sibling handle on the same core floods the buffer through
            // full wrap-around behind the parked producer's back.
            let p = t.producer(0).unwrap();
            let primed = Arc::clone(&primed);
            let flood_done = Arc::clone(&flood_done);
            sim.thread(move || {
                while !primed.load(Ordering::SeqCst) {
                    model_rt::yield_spin();
                }
                for i in 0..FLOOD {
                    p.record_with(i, 1, PAYLOAD).unwrap();
                }
                flood_done.store(true, Ordering::SeqCst);
            });
        }
        sim.finally(move || {
            let produced: BTreeSet<u64> =
                (0..FLOOD).chain([500]).chain((0..RESUMED).map(|i| 600 + i)).collect();
            let readout = t.consumer().collect();
            check_conservation(&readout, &produced, false);
            for e in &readout.events {
                assert_eq!(e.payload(), PAYLOAD, "torn event: stamp {}", e.stamp());
            }
            // The resumed producer allocated against a recycled round: the
            // round check must have degraded its cache to Stale and repaired
            // the misplaced inflation.
            assert!(
                t.stats().straggler_repairs >= 1,
                "stale cached descriptor must be detected and repaired"
            );
            // The resumed events are the newest written; they must survive.
            let newest = 600 + RESUMED - 1;
            assert!(
                readout.events.iter().any(|e| e.stamp() == newest),
                "newest resumed event {newest} lost"
            );
            check_counter_coherence(&t);
        });
    });
    assert_coverage(report);
}

/// Confirm coalescing: a producer batches its confirms — one `Release`
/// RMW per block run instead of one per record — while a two-stripe
/// sharded drain polls concurrently and the buffer grows mid-stream. A
/// deferred run must behave exactly like an open grant: no record is
/// visible before its covering confirm (a premature read would surface as
/// a torn payload or an invented stamp inside a poll), and once the
/// producer drops — `Drop` is the flush point for the final, mid-block
/// run — every record surfaces exactly once across the stripes.
#[test]
fn confirm_coalescing() {
    const N: u64 = 25; // 2.5 blocks: the last run is still pending at drop
    let report = explore("confirm_coalescing", ModelConfig::default(), |sim| {
        let stride = 256 * 2;
        let t = BTrace::new(
            Config::new(1)
                .active_blocks(2)
                .block_bytes(256)
                .buffer_bytes(stride * 2) // ratio 2, N = 4: 25 records never wrap
                .max_bytes(stride * 8)
                .backing(Backing::Heap),
        )
        .unwrap();
        let produced_done = Arc::new(AtomicBool::new(false));
        let resize_done = Arc::new(AtomicBool::new(false));
        let streamed = Arc::new(Mutex::new(BTreeSet::new()));

        {
            let p = t.producer(0).unwrap();
            p.set_confirm_coalescing(true);
            let produced_done = Arc::clone(&produced_done);
            sim.thread(move || {
                for i in 0..N {
                    p.record_with(i, 0, PAYLOAD).unwrap();
                }
                // 25 records end mid-block: dropping the handle is the
                // pending run's flush point.
                drop(p);
                produced_done.store(true, Ordering::SeqCst);
            });
        }
        {
            let t = t.clone();
            let produced_done = Arc::clone(&produced_done);
            let resize_done = Arc::clone(&resize_done);
            let streamed = Arc::clone(&streamed);
            sim.thread(move || {
                let mut sharded = t.stream_sharded(2);
                let mut seen = BTreeSet::new();
                // Poll until full quiescence. Mid-grow polls legitimately
                // withhold blocks whose data index lies beyond the not yet
                // published capacity, so the shutdown flush — like a real
                // pipeline's — runs only after producers AND the resize
                // have settled; then delivery must be total.
                loop {
                    let quiescent =
                        produced_done.load(Ordering::SeqCst) && resize_done.load(Ordering::SeqCst);
                    let batch = sharded.poll_all();
                    for e in &batch.events {
                        assert!(e.stamp() < N, "invented stamp {}", e.stamp());
                        assert_eq!(
                            e.payload(),
                            PAYLOAD,
                            "record visible before its covering confirm: stamp {} torn",
                            e.stamp()
                        );
                        assert!(seen.insert(e.stamp()), "stamp {} delivered twice", e.stamp());
                    }
                    if quiescent {
                        break;
                    }
                    model_rt::yield_spin();
                }
                let tail = sharded.flush_close_all();
                for e in &tail.events {
                    assert_eq!(e.payload(), PAYLOAD, "torn tail event: stamp {}", e.stamp());
                    assert!(seen.insert(e.stamp()), "stamp {} delivered twice", e.stamp());
                }
                *streamed.lock().unwrap() = seen;
            });
        }
        {
            let t = t.clone();
            let resize_done = Arc::clone(&resize_done);
            sim.thread(move || {
                t.resize_bytes(stride * 4).unwrap(); // grow to N = 8 mid-run
                resize_done.store(true, Ordering::SeqCst);
            });
        }
        sim.finally(move || {
            // The workload cannot wrap (3 of at least 4 blocks touched), so
            // delivery must be total: exactly once for all N stamps.
            let produced: BTreeSet<u64> = (0..N).collect();
            let got = streamed.lock().unwrap().clone();
            assert_eq!(got, produced, "coalesced records must all surface exactly once");
            assert_eq!(t.stats().resizes, 1);
            check_counter_coherence(&t);
        });
    });
    assert_coverage(report);
}

/// Determinism contract: the same seed reproduces the identical
/// interleaving (fingerprint of every scheduling decision), across
/// separately constructed executions.
#[test]
fn same_seed_same_interleaving() {
    let scenario = |sim: &mut Sim| {
        let t = BTrace::new(
            Config::new(2)
                .active_blocks(2)
                .block_bytes(256)
                .buffer_bytes(256 * 2 * 2)
                .backing(Backing::Heap),
        )
        .unwrap();
        for core in 0..2 {
            let p = t.producer(core).unwrap();
            sim.thread(move || {
                for i in 0..10u64 {
                    p.record_with(i, core as u32, PAYLOAD).unwrap();
                }
            });
        }
    };
    for seed in [1u64, 0xDEAD_BEEF, u64::MAX - 7] {
        let a = fingerprint(scenario, seed, 400_000);
        let b = fingerprint(scenario, seed, 400_000);
        assert_eq!(a, b, "seed {seed:#x} diverged between runs");
    }
    let x = fingerprint(scenario, 2, 400_000);
    let y = fingerprint(scenario, 3, 400_000);
    assert_ne!(x, y, "different seeds should (virtually always) diverge");
}
