//! # btrace-model — deterministic concurrency model checking for btrace-core
//!
//! A loom/shuttle-style controlled-scheduler harness: modeled threads run as
//! real OS threads, but a run token serializes them so that exactly one
//! executes at a time, and `btrace-core`'s sync facade (built with the
//! `model` feature) hands the scheduler a yield point at **every** atomic
//! load/store/RMW. The next thread to run is drawn from a seeded PRNG, which
//! makes the complete interleaving a pure function of one `u64` seed:
//!
//! * exploration — each scenario runs hundreds of schedules (alternating
//!   uniform random walks and PCT-style priority schedules) per invocation;
//! * replay — a failing schedule prints its seed; rerun the same test with
//!   `BTRACE_MODEL_SEED=<seed>` to reproduce the exact interleaving.
//!
//! After every modeled execution the scenario's `finally` blocks run the
//! invariant checkers in [`check`]: event conservation, the `1 − A/N`
//! effectivity bound, allocate/confirm coherence (lost updates), the
//! implicit-reclaiming pin, and counter monotonicity. Bounded termination
//! is enforced during the execution itself by the scheduler's step budget.
//!
//! ## Writing a scenario
//!
//! ```rust
//! use btrace_core::{BTrace, Config};
//! use btrace_model::{explore, ModelConfig};
//!
//! let report = explore("two-producers", ModelConfig { schedules: 16, ..Default::default() }, |sim| {
//!     let t = BTrace::new(
//!         Config::new(2)
//!             .active_blocks(4)
//!             .block_bytes(256)
//!             .buffer_bytes(4 * 256 * 4)
//!             .backing(btrace_core::Backing::Heap),
//!     )
//!     .unwrap();
//!     for core in 0..2 {
//!         let p = t.producer(core).unwrap();
//!         sim.thread(move || {
//!             for i in 0..4u64 {
//!                 p.record_with(core as u64 * 100 + i, 0, b"payload!").unwrap();
//!             }
//!         });
//!     }
//!     let t2 = t.clone();
//!     sim.finally(move || {
//!         btrace_model::check::check_counter_coherence(&t2);
//!     });
//! });
//! assert_eq!(report.schedules, 16);
//! ```
//!
//! Environment knobs (all optional):
//!
//! * `BTRACE_MODEL_SEED` — replay exactly one schedule with this seed;
//! * `BTRACE_MODEL_BASE_SEED` — rebase the whole seed batch (CI runs a
//!   fixed batch plus a fresh random one);
//! * `BTRACE_MODEL_SCHEDULES` — override the schedule count.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod check;
pub mod rng;
pub mod sched;

use crate::rng::{schedule_seed, SplitMix64};
use crate::sched::{Execution, Policy, ThreadGate};
use std::collections::HashSet;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Configuration of one [`explore`] call.
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// Schedules (distinct seeds) to run.
    pub schedules: usize,
    /// Base seed the per-schedule seeds derive from.
    pub seed: u64,
    /// Hard budget of scheduler steps per schedule; exceeding it fails the
    /// schedule (livelock / unbounded retry).
    pub max_steps: u64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        // 600 seeds comfortably clears the "≥ 500 distinct schedules"
        // acceptance bar even when some PCT seeds collide on short
        // scenarios.
        Self { schedules: 600, seed: 0xB7_7ACE, max_steps: 400_000 }
    }
}

/// What one exploration did. Returned by [`explore`].
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Schedules executed.
    pub schedules: usize,
    /// Distinct interleavings among them (by scheduling-decision
    /// fingerprint).
    pub distinct: usize,
    /// Scheduler steps summed over all schedules.
    pub total_steps: u64,
    /// True when `BTRACE_MODEL_SEED` replayed a single schedule — coverage
    /// assertions (distinct-interleaving floors) do not apply to a replay.
    pub replay: bool,
}

/// One modeled execution under construction: the scenario closure registers
/// modeled threads and post-execution checks on it.
#[derive(Default)]
pub struct Sim {
    threads: Vec<Box<dyn FnOnce() + Send + 'static>>,
    finals: Vec<Box<dyn FnOnce() + Send + 'static>>,
}

impl Sim {
    /// Registers a modeled thread. Every sync-facade operation it performs
    /// becomes a scheduling decision.
    pub fn thread(&mut self, f: impl FnOnce() + Send + 'static) {
        self.threads.push(Box::new(f));
    }

    /// Registers a check to run on the harness thread (uninstrumented,
    /// quiescent) after every modeled thread has finished.
    pub fn finally(&mut self, f: impl FnOnce() + Send + 'static) {
        self.finals.push(Box::new(f));
    }
}

impl std::fmt::Debug for Sim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("threads", &self.threads.len())
            .field("finals", &self.finals.len())
            .finish()
    }
}

/// Ends the modeled thread on all exits: normal completion hands the run
/// token on; a panic aborts the schedule so parked siblings free-run out.
struct DoneGuard {
    exec: Arc<Execution>,
    tid: usize,
}

impl Drop for DoneGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.exec.abort();
        } else {
            self.exec.thread_done(self.tid);
        }
        btrace_core::model_rt::uninstall();
    }
}

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => panic!("{name}={raw:?} is not a u64 (decimal or 0x-hex)"),
    }
}

/// Runs one schedule: builds the scenario, drives its threads under the
/// seeded scheduler, then runs the `finally` checks. Returns the schedule's
/// interleaving fingerprint and step count.
fn run_one<F>(scenario: &F, seed: u64, max_steps: u64) -> (u64, u64)
where
    F: Fn(&mut Sim),
{
    let mut sim = Sim::default();
    scenario(&mut sim);
    assert!(!sim.threads.is_empty(), "scenario registered no modeled threads");

    let mut rng = SplitMix64::new(seed);
    // The policy family is drawn from the seed stream (not the schedule
    // index) so a replayed seed reconstructs the identical schedule.
    let family = rng.next_below(2);
    let policy = Policy::for_schedule(family, sim.threads.len(), &mut rng);
    let exec = Execution::new(sim.threads.len(), policy, rng, max_steps);

    let handles: Vec<_> = sim
        .threads
        .into_iter()
        .enumerate()
        .map(|(tid, f)| {
            let exec = Arc::clone(&exec);
            std::thread::Builder::new()
                .name(format!("model-{tid}"))
                .spawn(move || {
                    btrace_core::model_rt::install(Arc::new(ThreadGate::new(
                        Arc::clone(&exec),
                        tid,
                    )));
                    exec.wait_first(tid);
                    let _done = DoneGuard { exec, tid };
                    f();
                })
                .expect("spawning a modeled thread failed")
        })
        .collect();
    exec.kick();

    // Keep the root-cause panic: threads unwound by the scheduler after an
    // abort carry a `ScheduleAborted` payload, which only matters if no
    // thread reported the original failure.
    let mut failure: Option<Box<dyn std::any::Any + Send>> = None;
    for handle in handles {
        if let Err(payload) = handle.join() {
            let keep = match &failure {
                None => true,
                Some(kept) => {
                    kept.is::<sched::ScheduleAborted>() && !payload.is::<sched::ScheduleAborted>()
                }
            };
            if keep {
                failure = Some(payload);
            }
        }
    }
    if let Some(payload) = failure {
        resume_unwind(payload);
    }

    for f in sim.finals {
        f();
    }
    (exec.trace_hash(), exec.steps())
}

/// Runs a single schedule of `scenario` under `seed` and returns its
/// interleaving fingerprint. Two calls with the same seed must return the
/// same fingerprint — the determinism contract the whole harness rests on.
pub fn fingerprint<F>(scenario: F, seed: u64, max_steps: u64) -> u64
where
    F: Fn(&mut Sim),
{
    run_one(&scenario, seed, max_steps).0
}

/// Explores `cfg.schedules` seeded interleavings of `scenario`, running its
/// `finally` checks after each, and self-checks determinism by replaying
/// the first seed. Panics (with the seed and replay instructions) on the
/// first failing schedule.
pub fn explore<F>(name: &str, cfg: ModelConfig, scenario: F) -> Report
where
    F: Fn(&mut Sim),
{
    // Replay mode: exactly one schedule, the given seed.
    if let Some(seed) = env_u64("BTRACE_MODEL_SEED") {
        eprintln!("model: scenario '{name}' replaying seed {seed:#018x}");
        let (hash, steps) = run_with_context(&scenario, name, seed, cfg.max_steps);
        eprintln!("model: replay fingerprint {hash:#018x} ({steps} steps)");
        return Report { schedules: 1, distinct: 1, total_steps: steps, replay: true };
    }

    let base = env_u64("BTRACE_MODEL_BASE_SEED").unwrap_or(cfg.seed);
    let schedules = env_u64("BTRACE_MODEL_SCHEDULES").map(|n| n as usize).unwrap_or(cfg.schedules);
    eprintln!("model: scenario '{name}': {schedules} schedules from base seed {base:#018x}");

    let mut hashes = HashSet::with_capacity(schedules);
    let mut total_steps = 0u64;
    let mut first: Option<(u64, u64)> = None; // (seed, fingerprint)
    for index in 0..schedules {
        let seed = schedule_seed(base, index);
        let (hash, steps) = run_with_context(&scenario, name, seed, cfg.max_steps);
        hashes.insert(hash);
        total_steps += steps;
        first.get_or_insert((seed, hash));
    }

    // Determinism self-check: the first seed, replayed, must reproduce its
    // interleaving bit for bit.
    if let Some((seed, hash)) = first {
        let (replayed, _) = run_with_context(&scenario, name, seed, cfg.max_steps);
        assert_eq!(
            replayed, hash,
            "scenario '{name}': seed {seed:#018x} replayed a different interleaving — \
             the scenario is nondeterministic (wall-clock, OS randomness, or \
             un-faceted synchronization?)"
        );
    }

    let report = Report { schedules, distinct: hashes.len(), total_steps, replay: false };
    eprintln!(
        "model: scenario '{name}': {} distinct interleavings over {} schedules ({} steps)",
        report.distinct, report.schedules, report.total_steps
    );
    report
}

/// Runs one schedule, decorating any failure with the scenario name, seed,
/// and replay instructions.
fn run_with_context<F>(scenario: &F, name: &str, seed: u64, max_steps: u64) -> (u64, u64)
where
    F: Fn(&mut Sim),
{
    match catch_unwind(AssertUnwindSafe(|| run_one(scenario, seed, max_steps))) {
        Ok(result) => result,
        Err(payload) => {
            let detail = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic payload>");
            panic!(
                "scenario '{name}' failed under seed {seed:#018x}\n\
                 --> {detail}\n\
                 replay: BTRACE_MODEL_SEED={seed:#x} cargo test -p btrace-model {name} -- --nocapture"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_counts_schedules() {
        let report =
            explore("unit-counting", ModelConfig { schedules: 8, ..Default::default() }, |sim| {
                sim.thread(|| {});
            });
        assert_eq!(report.schedules, 8);
        assert!(report.distinct >= 1);
    }

    #[test]
    fn failing_schedule_reports_seed() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            explore("unit-failing", ModelConfig { schedules: 2, ..Default::default() }, |sim| {
                sim.thread(|| panic!("injected failure"));
            })
        }));
        let payload = result.expect_err("the injected failure must propagate");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .expect("decorated failure should be a String");
        assert!(message.contains("BTRACE_MODEL_SEED="), "no replay seed in: {message}");
        assert!(message.contains("injected failure"), "original cause lost in: {message}");
    }

    #[test]
    fn failing_finally_reports_seed() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            explore(
                "unit-failing-finally",
                ModelConfig { schedules: 2, ..Default::default() },
                |sim| {
                    sim.thread(|| {});
                    sim.finally(|| panic!("check tripped"));
                },
            )
        }));
        let payload = result.expect_err("the failing check must propagate");
        let message = payload.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(message.contains("check tripped"), "original cause lost in: {message}");
    }
}
