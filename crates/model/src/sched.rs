//! The deterministic scheduler: real OS threads serialized by a run token.
//!
//! Exactly one modeled thread runs at any instant. Every synchronization
//! operation in `btrace-core` (via its `sync` facade) calls back into
//! [`Execution::yield_point`], where the scheduler picks the next thread to
//! run from a seeded PRNG — so the entire interleaving is a pure function
//! of the schedule seed, and any failure replays exactly.
//!
//! Two schedule policies:
//!
//! * [`Policy::RandomWalk`] — uniform choice among runnable threads at every
//!   step; good breadth.
//! * [`Policy::Pct`] — PCT-style priority scheduling (Burckhardt et al.,
//!   ASPLOS 2010): threads get random distinct priorities, the highest
//!   runnable priority always runs, and at a few seeded change points the
//!   running thread is demoted below everyone else. Probabilistically covers
//!   low-depth ordering bugs that a random walk is unlikely to hit.
//!
//! Threads that spin on a condition another thread must establish (mutex
//! acquisition, drain loops) cross [`Execution::yield_spin`] instead, which
//! demotes the spinner so priority schedules cannot starve the thread being
//! waited on.

use crate::rng::{fnv_mix, SplitMix64, FNV_OFFSET};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// No thread holds the run token (before kick-off / after completion).
const NOBODY: usize = usize::MAX;

/// Panic payload used to unwind modeled threads once a sibling has aborted
/// the schedule. A thread spinning on a flag its (now dead) sibling was
/// supposed to set would otherwise free-run forever; unwinding it instead
/// is always safe because the schedule's result is already a failure. The
/// harness recognizes this payload and reports the sibling's original
/// panic, not this one.
#[derive(Debug)]
pub struct ScheduleAborted;

/// Upper bound for drawing PCT change points. Deliberately shorter than
/// even the smallest scenario (~100 steps): a change point beyond the
/// execution's length never fires, and every no-fire PCT schedule collapses
/// into the same max-priority trace, gutting interleaving diversity. Early
/// points always fire; the random-walk family covers late-execution
/// diversity.
const PCT_STEP_RANGE: u64 = 64;

/// Wall-clock watchdog per wait: a modeled execution only stalls this long
/// if the process itself is wedged (the step budget catches algorithmic
/// livelock long before).
const WATCHDOG: Duration = Duration::from_secs(30);

/// Schedule policy: how the next runnable thread is chosen.
#[derive(Debug)]
pub enum Policy {
    /// Uniformly random choice at every yield point.
    RandomWalk,
    /// PCT-style strict priorities with seeded demotion points.
    Pct {
        /// Current priority per thread; highest runnable wins.
        priorities: Vec<i64>,
        /// Remaining scheduler steps at which the running thread is demoted,
        /// descending (so `pop` yields the next one).
        change_points: Vec<u64>,
        /// Next value handed out by a demotion; decreases monotonically so
        /// every demotion lands below all current priorities.
        floor: i64,
    },
}

impl Policy {
    /// Seeds a policy for schedule `index`: even schedules random-walk, odd
    /// schedules PCT, so every scenario gets both families.
    pub fn for_schedule(index: usize, threads: usize, rng: &mut SplitMix64) -> Policy {
        if index.is_multiple_of(2) {
            Policy::RandomWalk
        } else {
            let mut priorities: Vec<i64> = (0..threads as i64).collect();
            // Fisher-Yates with the schedule RNG.
            for i in (1..priorities.len()).rev() {
                priorities.swap(i, rng.next_below(i + 1));
            }
            let depth = 1 + rng.next_below(4);
            let mut change_points: Vec<u64> =
                (0..depth).map(|_| rng.next_u64() % PCT_STEP_RANGE).collect();
            change_points.sort_unstable_by(|a, b| b.cmp(a));
            Policy::Pct { priorities, change_points, floor: -1 }
        }
    }

    /// Picks the next thread among `alive` (at least one true). `avoid` is
    /// the spinning caller to deprioritize, if any.
    fn choose(
        &mut self,
        alive: &[bool],
        step: u64,
        avoid: Option<usize>,
        rng: &mut SplitMix64,
    ) -> usize {
        match self {
            Policy::RandomWalk => {
                let candidates: Vec<usize> = alive
                    .iter()
                    .enumerate()
                    .filter(|&(tid, &a)| a && Some(tid) != avoid)
                    .map(|(tid, _)| tid)
                    .collect();
                if candidates.is_empty() {
                    // The spinner is the only thread left: it must run.
                    return avoid.expect("no runnable thread");
                }
                candidates[rng.next_below(candidates.len())]
            }
            Policy::Pct { priorities, change_points, floor } => {
                if let Some(tid) = avoid {
                    priorities[tid] = *floor;
                    *floor -= 1;
                }
                while change_points.last().is_some_and(|&cp| cp <= step) {
                    change_points.pop();
                    // Demote the currently highest runnable thread.
                    if let Some(top) = alive
                        .iter()
                        .enumerate()
                        .filter(|&(_, &a)| a)
                        .map(|(tid, _)| tid)
                        .max_by_key(|&tid| priorities[tid])
                    {
                        priorities[top] = *floor;
                        *floor -= 1;
                    }
                }
                alive
                    .iter()
                    .enumerate()
                    .filter(|&(_, &a)| a)
                    .map(|(tid, _)| tid)
                    .max_by_key(|&tid| priorities[tid])
                    .expect("no runnable thread")
            }
        }
    }
}

#[derive(Debug)]
struct SchedState {
    policy: Policy,
    rng: SplitMix64,
    alive: Vec<bool>,
    current: usize,
    steps: u64,
    max_steps: u64,
    aborted: bool,
    trace_hash: u64,
}

/// One modeled execution: shared by the harness and every modeled thread's
/// [`ThreadGate`].
#[derive(Debug)]
pub struct Execution {
    state: Mutex<SchedState>,
    cv: Condvar,
}

impl Execution {
    /// Creates an execution for `threads` modeled threads.
    pub fn new(threads: usize, policy: Policy, rng: SplitMix64, max_steps: u64) -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(SchedState {
                policy,
                rng,
                alive: vec![true; threads],
                current: NOBODY,
                steps: 0,
                max_steps,
                aborted: false,
                trace_hash: FNV_OFFSET,
            }),
            cv: Condvar::new(),
        })
    }

    /// Locks the state, tolerating poison (a panicking modeled thread must
    /// not wedge the others' shutdown path).
    fn locked(&self) -> MutexGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Hands the run token to the first scheduled thread. Called once by the
    /// harness after spawning every modeled thread.
    pub fn kick(&self) {
        let mut st = self.locked();
        if st.alive.iter().any(|&a| a) {
            let first = st.pick(None);
            st.current = first;
        }
        self.cv.notify_all();
    }

    /// Parks the calling modeled thread until it is scheduled for the first
    /// time.
    pub fn wait_first(&self, tid: usize) {
        let mut st = self.locked();
        while !st.aborted && st.current != tid {
            let (guard, timeout) =
                self.cv.wait_timeout(st, WATCHDOG).unwrap_or_else(|poisoned| poisoned.into_inner());
            st = guard;
            if timeout.timed_out() && !st.aborted && st.current != tid {
                st.aborted = true;
                self.cv.notify_all();
                drop(st);
                panic!("model scheduler watchdog: thread {tid} never scheduled");
            }
        }
        if st.aborted {
            drop(st);
            self.exit_aborted();
        }
    }

    /// A yield point: the calling thread (which holds the run token) lets
    /// the scheduler pick who runs next, then blocks until re-scheduled.
    pub fn yield_point(&self, tid: usize) {
        self.reschedule(tid, None);
    }

    /// A spinning yield point: like [`Execution::yield_point`] but demotes
    /// the caller, since it waits on a condition only another thread can
    /// establish.
    pub fn yield_spin(&self, tid: usize) {
        self.reschedule(tid, Some(tid));
    }

    /// Exits a yield point on an aborted schedule: a thread that is already
    /// unwinding free-runs (its destructors may cross more yield points); a
    /// thread that is not gets unwound via [`ScheduleAborted`], so loops
    /// waiting on a dead sibling cannot spin forever.
    fn exit_aborted(&self) {
        if !std::thread::panicking() {
            std::panic::panic_any(ScheduleAborted);
        }
    }

    fn reschedule(&self, tid: usize, avoid: Option<usize>) {
        let mut st = self.locked();
        if st.aborted {
            drop(st);
            self.exit_aborted();
            return;
        }
        st.steps += 1;
        if st.steps > st.max_steps {
            let steps = st.steps;
            st.aborted = true;
            self.cv.notify_all();
            drop(st);
            panic!(
                "model step budget exceeded ({steps} steps): \
                 livelock or unbounded retry in the modeled protocol"
            );
        }
        let next = st.pick(avoid);
        st.current = next;
        self.cv.notify_all();
        while !st.aborted && st.current != tid {
            let (guard, timeout) =
                self.cv.wait_timeout(st, WATCHDOG).unwrap_or_else(|poisoned| poisoned.into_inner());
            st = guard;
            if timeout.timed_out() && !st.aborted && st.current != tid {
                st.aborted = true;
                self.cv.notify_all();
                drop(st);
                panic!("model scheduler watchdog: thread {tid} starved");
            }
        }
        if st.aborted {
            drop(st);
            self.exit_aborted();
        }
    }

    /// Marks the calling thread finished and passes the token on.
    pub fn thread_done(&self, tid: usize) {
        let mut st = self.locked();
        st.alive[tid] = false;
        if !st.aborted && st.alive.iter().any(|&a| a) {
            let next = st.pick(None);
            st.current = next;
        } else {
            st.current = NOBODY;
        }
        self.cv.notify_all();
    }

    /// Aborts the execution: every parked thread wakes and free-runs to
    /// completion (used when a modeled thread panics).
    pub fn abort(&self) {
        let mut st = self.locked();
        st.aborted = true;
        self.cv.notify_all();
    }

    /// Fingerprint of the scheduling decisions taken so far; two executions
    /// with equal fingerprints interleaved identically.
    pub fn trace_hash(&self) -> u64 {
        self.locked().trace_hash
    }

    /// Scheduler steps consumed so far.
    pub fn steps(&self) -> u64 {
        self.locked().steps
    }
}

impl SchedState {
    fn pick(&mut self, avoid: Option<usize>) -> usize {
        let next = self.policy.choose(&self.alive, self.steps, avoid, &mut self.rng);
        self.trace_hash = fnv_mix(self.trace_hash, next as u64);
        next
    }
}

/// The per-thread gate installed into `btrace-core`'s sync facade: routes
/// the core's yield points to this execution's scheduler.
#[derive(Debug)]
pub struct ThreadGate {
    exec: Arc<Execution>,
    tid: usize,
}

impl ThreadGate {
    /// Creates the gate for modeled thread `tid`.
    pub fn new(exec: Arc<Execution>, tid: usize) -> Self {
        Self { exec, tid }
    }
}

impl btrace_core::model_rt::Gate for ThreadGate {
    fn yield_point(&self) {
        self.exec.yield_point(self.tid);
    }

    fn yield_spin(&self) {
        self.exec.yield_spin(self.tid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_sequence(policy_idx: usize, seed: u64) -> u64 {
        let mut rng = SplitMix64::new(seed);
        let policy = Policy::for_schedule(policy_idx, 3, &mut rng);
        let exec = Execution::new(3, policy, rng, 10_000);
        let handles: Vec<_> = (0..3)
            .map(|tid| {
                let exec = Arc::clone(&exec);
                std::thread::spawn(move || {
                    exec.wait_first(tid);
                    for _ in 0..50 {
                        exec.yield_point(tid);
                    }
                    exec.thread_done(tid);
                })
            })
            .collect();
        exec.kick();
        for h in handles {
            h.join().unwrap();
        }
        exec.trace_hash()
    }

    #[test]
    fn same_seed_same_trace() {
        for policy_idx in 0..2 {
            assert_eq!(run_sequence(policy_idx, 77), run_sequence(policy_idx, 77));
        }
    }

    #[test]
    fn different_seeds_different_traces() {
        assert_ne!(run_sequence(0, 1), run_sequence(0, 2));
    }

    #[test]
    fn spinner_does_not_starve_under_pct() {
        let mut rng = SplitMix64::new(5);
        let policy = Policy::for_schedule(1, 2, &mut rng); // PCT
        let exec = Execution::new(2, policy, rng, 100_000);
        let flag = Arc::new(std::sync::atomic::AtomicBool::new(false));

        let waiter = {
            let exec = Arc::clone(&exec);
            let flag = Arc::clone(&flag);
            std::thread::spawn(move || {
                exec.wait_first(0);
                while !flag.load(std::sync::atomic::Ordering::SeqCst) {
                    exec.yield_spin(0);
                }
                exec.thread_done(0);
            })
        };
        let setter = {
            let exec = Arc::clone(&exec);
            let flag = Arc::clone(&flag);
            std::thread::spawn(move || {
                exec.wait_first(1);
                for _ in 0..10 {
                    exec.yield_point(1);
                }
                flag.store(true, std::sync::atomic::Ordering::SeqCst);
                exec.thread_done(1);
            })
        };
        exec.kick();
        waiter.join().unwrap();
        setter.join().unwrap();
    }

    #[test]
    fn step_budget_aborts_runaway() {
        let mut rng = SplitMix64::new(9);
        let policy = Policy::for_schedule(0, 1, &mut rng);
        let exec = Execution::new(1, policy, rng, 100);
        let runaway = {
            let exec = Arc::clone(&exec);
            std::thread::spawn(move || {
                exec.wait_first(0);
                loop {
                    exec.yield_point(0);
                }
            })
        };
        exec.kick();
        assert!(runaway.join().is_err(), "budget must abort the runaway loop");
    }
}
