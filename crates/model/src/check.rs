//! Invariant checkers run against every modeled execution.
//!
//! Each checker encodes one correctness claim of the paper; all panic with
//! a description on violation (the harness attaches the schedule seed).
//!
//! | checker | claim | paper |
//! |---|---|---|
//! | [`check_conservation`] | every drained event was produced, exactly once | §3.4 out-of-order confirm |
//! | [`check_effectivity`] | effectivity ratio ≥ `1 − A/N` | §3.2 block closing |
//! | [`check_effectivity_with_slack`] | as above, minus at most `slack` in-flight blocks | §3.2 block closing |
//! | [`check_counter_coherence`] | allocate/confirm counters agree at quiescence (no lost update) | §3.3 implicit reclaiming |
//! | [`check_pin`] | an unconfirmed grant's round is never recycled | §3.3 counters as refcounts |
//! | [`MonotonicObserver`] | per-block counters never regress | §4.1 single-fetch-add transitions |
//!
//! The sixth claim — advancement past a preempted thread terminates within
//! a bounded step count (§3.4 never-blocking) — is enforced by the
//! scheduler itself: every modeled execution runs under a hard step budget,
//! so any livelock fails the schedule with a "step budget exceeded" panic.

use btrace_core::introspect::{self, MetaView};
use btrace_core::{BTrace, Readout};
use std::collections::BTreeSet;

/// Event conservation: every drained stamp was produced and none is drained
/// twice. With `require_all` (scenarios that never wrap the buffer) the
/// drained set must equal the produced set — nothing silently lost either.
pub fn check_conservation(readout: &Readout, produced: &BTreeSet<u64>, require_all: bool) {
    let mut seen = BTreeSet::new();
    for event in &readout.events {
        let stamp = event.stamp();
        assert!(
            produced.contains(&stamp),
            "conservation: drained stamp {stamp} was never produced (invented/torn event)"
        );
        assert!(seen.insert(stamp), "conservation: stamp {stamp} drained twice (duplicated event)");
    }
    if require_all {
        assert_eq!(
            seen.len(),
            produced.len(),
            "conservation: {} produced events missing from the drain (no-wrap scenario): {:?}",
            produced.len() - seen.len(),
            produced.difference(&seen).take(8).collect::<Vec<_>>()
        );
    }
}

/// Effectivity ratio never below the analytic `1 − A/N` bound (§3.2): block
/// closing wastes at most the `A` active blocks out of every `N` written.
pub fn check_effectivity(tracer: &BTrace) {
    let stats = tracer.stats();
    let a = tracer.active_blocks() as f64;
    let n = tracer.capacity_blocks() as f64;
    let bound = 1.0 - a / n;
    let observed = stats.effectivity_ratio();
    assert!(
        observed + 1e-9 >= bound,
        "effectivity: observed {observed:.4} below analytic bound {bound:.4} \
         (A={a}, N={n}, recorded={}, dummy={})",
        stats.recorded_bytes,
        stats.dummy_bytes
    );
}

/// Like [`check_effectivity`], but tolerates up to `slack_blocks` extra
/// blocks of dummy bytes. The analytic `1 − A/N` bound is asymptotic: it
/// amortizes the at-most-`A` active blocks that are still open (or were
/// closed by the final advancement without ever filling) at the moment the
/// run stops. Short modeled executions don't get that amortization, so an
/// adversarial schedule can legitimately land a hair under the strict bound
/// without any protocol bug. `slack_blocks = A` covers exactly that
/// in-flight set; anything past it is a real closing-waste regression.
pub fn check_effectivity_with_slack(tracer: &BTrace, slack_blocks: u32) {
    let stats = tracer.stats();
    let total = (stats.recorded_bytes + stats.dummy_bytes) as f64;
    if total == 0.0 {
        return;
    }
    let a = tracer.active_blocks() as f64;
    let n = tracer.capacity_blocks() as f64;
    let slack = f64::from(slack_blocks) * tracer.block_bytes() as f64 / total;
    let bound = (1.0 - a / n) - slack;
    let observed = stats.effectivity_ratio();
    assert!(
        observed + 1e-9 >= bound,
        "effectivity: observed {observed:.4} below bound {bound:.4} \
         (1 - {a}/{n} with {slack_blocks} blocks of in-flight slack; \
         recorded={}, dummy={})",
        stats.recorded_bytes,
        stats.dummy_bytes
    );
}

/// Counter coherence at quiescence (§3.3): with no operation in flight,
/// `Confirmed` must have caught up with `Allocated` — same round, and every
/// in-capacity allocated byte confirmed. A lost confirm (dropped fetch-add)
/// or a premature round advance leaves a permanent mismatch here.
pub fn check_counter_coherence(tracer: &BTrace) {
    let cap = introspect::block_cap(tracer);
    for (idx, m) in introspect::meta_states(tracer).iter().enumerate() {
        assert!(
            m.conf_pos <= cap,
            "coherence: meta {idx} confirmed {} beyond capacity {cap}",
            m.conf_pos
        );
        assert_eq!(
            m.conf_rnd, m.alloc_rnd,
            "coherence: meta {idx} rounds diverged at quiescence ({m:?})"
        );
        assert_eq!(
            m.conf_pos,
            m.alloc_pos.min(cap),
            "coherence: meta {idx} confirmed bytes lag allocation at quiescence ({m:?})"
        );
    }
}

/// Implicit-reclaiming pin (§3.3): while a producer holds an unconfirmed
/// in-capacity grant in round `rnd` of `meta_idx`, the metadata block's
/// confirmed round must still be `rnd` — the round cannot be locked (and
/// its data block cannot be recycled) until the grant confirms.
pub fn check_pin(tracer: &BTrace, meta_idx: usize, rnd: u32) {
    let m = introspect::meta_state(tracer, meta_idx);
    let cap = introspect::block_cap(tracer);
    assert_eq!(
        m.conf_rnd, rnd,
        "pin: meta {meta_idx} advanced to round {} while a grant pinned round {rnd} — \
         the block was recycled under a live producer reference",
        m.conf_rnd
    );
    assert!(
        m.conf_pos < cap,
        "pin: meta {meta_idx} fully confirmed ({}/{cap}) despite an open grant",
        m.conf_pos
    );
}

/// Watches the metadata counters across an execution and asserts they never
/// regress: both `Allocated` and `Confirmed` move strictly forward in
/// `(rnd, pos)` lexicographic order (§4.1 — every transition is a fetch-add
/// or a round-advancing CAS). Feed it snapshots from a modeled observer
/// thread; each snapshot is itself a sequence of yield points, so the
/// observer races the producers at every interleaving the seed generates.
#[derive(Debug, Default)]
pub struct MonotonicObserver {
    last: Vec<MetaView>,
}

impl MonotonicObserver {
    /// Creates an observer with no history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes one snapshot of every metadata block and asserts nothing moved
    /// backwards since the previous call.
    pub fn observe(&mut self, tracer: &BTrace) {
        let now = introspect::meta_states(tracer);
        if !self.last.is_empty() {
            for (idx, (prev, cur)) in self.last.iter().zip(&now).enumerate() {
                assert!(
                    (cur.alloc_rnd, cur.alloc_pos) >= (prev.alloc_rnd, prev.alloc_pos),
                    "regression: meta {idx} Allocated went backwards: {prev:?} -> {cur:?}"
                );
                assert!(
                    (cur.conf_rnd, cur.conf_pos) >= (prev.conf_rnd, prev.conf_pos),
                    "regression: meta {idx} Confirmed went backwards: {prev:?} -> {cur:?}"
                );
            }
        }
        self.last = now;
    }
}
