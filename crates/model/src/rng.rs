//! SplitMix64: the seed-expansion PRNG. Small state, full-period, and —
//! crucially for replay — the entire schedule derives from one `u64`.

/// A SplitMix64 stream.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a stream seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..bound` (`bound > 0`), via 128-bit multiply-shift.
    pub fn next_below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as usize
    }
}

/// Derives the per-schedule seed `i` of a base seed: one SplitMix64 step
/// keyed by the index, so adjacent schedules share no structure.
pub fn schedule_seed(base: u64, index: usize) -> u64 {
    SplitMix64::new(base ^ (index as u64).wrapping_mul(0xA076_1D64_78BD_642F)).next_u64()
}

/// One FNV-1a step: mixes `value` into the running `hash`. Used to
/// fingerprint the sequence of scheduling decisions.
pub fn fnv_mix(hash: u64, value: u64) -> u64 {
    let mut h = hash;
    for byte in value.to_le_bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// FNV-1a offset basis: the initial fingerprint value.
pub const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = SplitMix64::new(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn next_below_is_in_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(r.next_below(3) < 3);
        }
    }

    #[test]
    fn next_below_hits_every_residue() {
        let mut r = SplitMix64::new(9);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[r.next_below(5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn schedule_seeds_differ() {
        let s: Vec<u64> = (0..64).map(|i| schedule_seed(0xBEEF, i)).collect();
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), s.len());
    }
}
