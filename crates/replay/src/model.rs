//! The synthetic mobile workload model, parameterised from the paper's
//! published measurements (Figs. 2, 3, 4, 6).
//!
//! All constants are *shape-preserving* approximations read off the paper's
//! charts: absolute magnitudes matter less than the relationships the
//! evaluation depends on — little cores out-produce big cores in most
//! scenarios, oversubscription is tens of threads per core per second, and
//! level-3 tracing generates on the order of 100 MB per core per minute.

/// Number of cores of the evaluation device (paper ref. 24): 4 little, 6 middle, 2 big.
pub const CORES: usize = 12;

/// Index ranges of the asymmetric clusters (Fig. 4 caption).
pub const LITTLE_CORES: std::ops::Range<usize> = 0..4;
/// Middle cluster.
pub const MIDDLE_CORES: std::ops::Range<usize> = 4..10;
/// Big cluster.
pub const BIG_CORES: std::ops::Range<usize> = 10..12;

/// Nominal duration the paper's traces cover (§5: 30 seconds).
pub const TRACE_SECONDS: u32 = 30;

/// Trace detail levels (Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TraceLevel {
    /// Minimal events (binder) for thread dependencies and hangs.
    Level1 = 1,
    /// Plus scheduling decisions and IRQs for performance issues.
    Level2 = 2,
    /// Plus custom energy/thermal detail for system-wide analysis.
    Level3 = 3,
}

/// An atrace-style event category (Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Category {
    /// Category name as in Fig. 2.
    pub name: &'static str,
    /// Trace production rate in MB per core per minute (Fig. 2 bar height).
    pub mb_per_core_min: f64,
    /// The lowest level that enables this category (Fig. 3).
    pub level: TraceLevel,
}

/// The Fig. 2 category table. Values approximate the published bars; the
/// high-frequency categories the paper calls out (idle, freq, sched,
/// energy/thermal) average ≈100 MB/core/min.
pub const CATEGORIES: &[Category] = &[
    Category { name: "binder_driver", mb_per_core_min: 28.0, level: TraceLevel::Level1 },
    Category { name: "binder_lock", mb_per_core_min: 6.0, level: TraceLevel::Level1 },
    Category { name: "sched", mb_per_core_min: 90.0, level: TraceLevel::Level2 },
    Category { name: "irq", mb_per_core_min: 35.0, level: TraceLevel::Level2 },
    Category { name: "view", mb_per_core_min: 18.0, level: TraceLevel::Level2 },
    Category { name: "gfx", mb_per_core_min: 15.0, level: TraceLevel::Level2 },
    Category { name: "input", mb_per_core_min: 4.0, level: TraceLevel::Level2 },
    Category { name: "am", mb_per_core_min: 14.0, level: TraceLevel::Level2 },
    Category { name: "wm", mb_per_core_min: 11.0, level: TraceLevel::Level2 },
    Category { name: "dalvik", mb_per_core_min: 19.0, level: TraceLevel::Level2 },
    Category { name: "pagecache", mb_per_core_min: 9.0, level: TraceLevel::Level2 },
    Category { name: "network", mb_per_core_min: 8.0, level: TraceLevel::Level2 },
    Category { name: "hal", mb_per_core_min: 12.0, level: TraceLevel::Level2 },
    Category { name: "res", mb_per_core_min: 5.0, level: TraceLevel::Level2 },
    Category { name: "ss", mb_per_core_min: 7.0, level: TraceLevel::Level2 },
    Category { name: "idle", mb_per_core_min: 150.0, level: TraceLevel::Level3 },
    Category { name: "freq", mb_per_core_min: 115.0, level: TraceLevel::Level3 },
    Category { name: "power", mb_per_core_min: 10.0, level: TraceLevel::Level3 },
    Category { name: "energy/thermal", mb_per_core_min: 95.0, level: TraceLevel::Level3 },
];

/// Aggregate production rate (MB per core per minute) with every category
/// up to `level` enabled (the Fig. 3 level volumes).
pub fn level_rate_mb_per_core_min(level: TraceLevel) -> f64 {
    CATEGORIES.iter().filter(|c| c.level <= level).map(|c| c.mb_per_core_min).sum()
}

/// One replay scenario: the shape of a real 30-second smartphone trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Workload name (Table 2 column).
    pub name: &'static str,
    /// Events per second per core (Fig. 4; thousands of entries/sec).
    pub core_rates: [u32; CORES],
    /// Distinct threads producing traces per core within one second
    /// (Fig. 6 "Per Sec.").
    pub threads_per_core_sec: u32,
    /// Distinct threads per core over the whole trace (Fig. 6 "Total 30s").
    pub total_threads_per_core: u32,
    /// Mean payload size in bytes (entry body, before header/padding).
    pub mean_payload: u32,
    /// Fraction of time the workload is bursty-idle (lock screen wakes up
    /// periodically; games run flat out). 0.0 = steady, 0.9 = mostly idle
    /// with bursts.
    pub burstiness: f32,
    /// Probability that a thread-level writer is preempted between its
    /// reservation and its commit (per record). Scales with
    /// oversubscription (§2.2 Observation 2).
    pub preempt_mid_write: f32,
}

impl Scenario {
    /// Number of simulated cores (always the 12-core phone).
    pub fn cores(&self) -> usize {
        CORES
    }

    /// Total events this scenario generates over the full trace at scale 1.
    pub fn total_events(&self) -> u64 {
        self.core_rates.iter().map(|&r| r as u64 * TRACE_SECONDS as u64).sum()
    }

    /// Skew ratio: fastest core rate over slowest non-zero core rate.
    pub fn skew(&self) -> f64 {
        let max = self.core_rates.iter().copied().max().unwrap_or(0) as f64;
        let min = self.core_rates.iter().copied().filter(|&r| r > 0).min().unwrap_or(1) as f64;
        max / min
    }
}

/// Builds a core-rate array from per-cluster rates (entries/sec).
const fn rates(little: u32, middle: u32, big: u32) -> [u32; CORES] {
    [little, little, little, little, middle, middle, middle, middle, middle, middle, big, big]
}

macro_rules! scenario {
    ($name:literal, $little:expr, $mid:expr, $big:expr, tps: $tps:expr, total: $total:expr,
     payload: $payload:expr, burst: $burst:expr, preempt: $preempt:expr) => {
        Scenario {
            name: $name,
            core_rates: rates($little, $mid, $big),
            threads_per_core_sec: $tps,
            total_threads_per_core: $total,
            mean_payload: $payload,
            burstiness: $burst,
            preempt_mid_write: $preempt,
        }
    };
}

/// The 20 replay workloads of §5: top applications and games, developer
/// testing software, and typical usage scenarios. Rates (entries/sec/core)
/// follow Fig. 4: video and shopping apps hammer the little cores while the
/// big cores doze; IM is symmetric; the lock screen is bursty and
/// little-core-heavy; benchmarks load everything.
pub static SCENARIOS: &[Scenario] = &[
    // Typical usage scenarios.
    scenario!("LockScr.", 9000, 1500, 400, tps: 18, total: 160, payload: 56, burst: 0.8, preempt: 0.004),
    scenario!("Desktop", 15000, 5000, 1500, tps: 25, total: 260, payload: 56, burst: 0.3, preempt: 0.006),
    scenario!("IM", 7000, 6500, 6000, tps: 30, total: 300, payload: 64, burst: 0.2, preempt: 0.008),
    scenario!("Browser", 12000, 7000, 3000, tps: 32, total: 380, payload: 64, burst: 0.25, preempt: 0.008),
    scenario!("Camera", 11000, 9000, 5000, tps: 28, total: 320, payload: 72, burst: 0.1, preempt: 0.007),
    // Online video playback (Fig. 4: strongly little-heavy).
    scenario!("Video-1", 16000, 6000, 1200, tps: 35, total: 420, payload: 64, burst: 0.15, preempt: 0.010),
    scenario!("Video-2", 14000, 5500, 1000, tps: 33, total: 400, payload: 64, burst: 0.15, preempt: 0.009),
    scenario!("Video-3", 17000, 7000, 1500, tps: 38, total: 450, payload: 64, burst: 0.1, preempt: 0.012),
    // Shopping apps: heavy oversubscription (the paper's e-shop2 is the
    // worst case for BBQ latency and LTTng drops).
    scenario!("eShop-1", 13000, 8000, 2500, tps: 36, total: 430, payload: 72, burst: 0.2, preempt: 0.012),
    scenario!("eShop-2", 15000, 9500, 3000, tps: 42, total: 500, payload: 72, burst: 0.2, preempt: 0.016),
    // Social / media apps.
    scenario!("SocNet-1", 12000, 8500, 4000, tps: 34, total: 410, payload: 64, burst: 0.2, preempt: 0.010),
    scenario!("SocNet-2", 11000, 7500, 3500, tps: 32, total: 390, payload: 64, burst: 0.25, preempt: 0.009),
    scenario!("News", 10000, 6000, 2000, tps: 28, total: 340, payload: 64, burst: 0.3, preempt: 0.007),
    scenario!("Music", 8000, 4000, 1000, tps: 22, total: 240, payload: 56, burst: 0.4, preempt: 0.006),
    scenario!("Map", 13000, 9000, 5000, tps: 33, total: 400, payload: 72, burst: 0.1, preempt: 0.009),
    // Games: symmetric, high rate, big cores active.
    scenario!("Game-1", 12000, 11000, 9000, tps: 26, total: 300, payload: 72, burst: 0.05, preempt: 0.008),
    scenario!("Game-2", 13000, 12000, 10000, tps: 28, total: 320, payload: 72, burst: 0.05, preempt: 0.009),
    // Developer testing software (memory/CPU/system performance).
    scenario!("BenchCPU", 14000, 14000, 14000, tps: 20, total: 200, payload: 56, burst: 0.0, preempt: 0.006),
    scenario!("BenchMem", 12000, 12000, 12000, tps: 20, total: 200, payload: 56, burst: 0.0, preempt: 0.006),
    scenario!("BenchSys", 15000, 13000, 11000, tps: 30, total: 350, payload: 64, burst: 0.05, preempt: 0.010),
];

/// Scenario lookup helpers.
pub mod scenarios {
    use super::{Scenario, SCENARIOS};

    /// All 20 scenarios, in Table 2 order.
    pub fn all() -> &'static [Scenario] {
        SCENARIOS
    }

    /// Finds a scenario by its Table 2 name.
    pub fn by_name(name: &str) -> Option<&'static Scenario> {
        SCENARIOS.iter().find(|s| s.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_scenarios_with_unique_names() {
        assert_eq!(SCENARIOS.len(), 20);
        let mut names: Vec<_> = SCENARIOS.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 20);
    }

    #[test]
    fn video_is_little_heavy_and_im_is_symmetric() {
        let video = scenarios::by_name("Video-1").unwrap();
        let im = scenarios::by_name("IM").unwrap();
        assert!(video.skew() > 10.0, "video must be strongly skewed (Fig. 4)");
        assert!(im.skew() < 1.5, "IM must be near-symmetric (Fig. 4)");
    }

    #[test]
    fn level3_rate_is_about_100mb_per_core_min() {
        // §2.2: "each core generates approximately 100 MB of trace data per
        // minute on average" for the high-frequency categories; the full
        // level-3 set lands in the few-hundred range of Fig. 2's axis.
        let l3 = level_rate_mb_per_core_min(TraceLevel::Level3);
        let l2 = level_rate_mb_per_core_min(TraceLevel::Level2);
        let l1 = level_rate_mb_per_core_min(TraceLevel::Level1);
        assert!(l1 < l2 && l2 < l3);
        assert!((30.0..=60.0).contains(&l1), "level 1 is binder-only: {l1}");
        assert!(l3 - l2 > 300.0, "level 3 adds the heavy custom categories");
    }

    #[test]
    fn oversubscription_matches_fig6_magnitudes() {
        for s in SCENARIOS {
            assert!(s.threads_per_core_sec >= 15, "{}: tens of threads/core/sec", s.name);
            assert!(s.total_threads_per_core >= s.threads_per_core_sec);
            assert!(s.total_threads_per_core <= 600);
        }
        let heavy = scenarios::by_name("eShop-2").unwrap();
        assert!(heavy.total_threads_per_core >= 400, "heavy load averages 400 threads (§2.2)");
    }

    #[test]
    fn total_events_scale_with_rates() {
        let s = scenarios::by_name("BenchCPU").unwrap();
        assert_eq!(s.total_events(), 14_000u64 * 12 * 30);
    }

    #[test]
    fn lookup_by_name() {
        assert!(scenarios::by_name("eShop-2").is_some());
        assert!(scenarios::by_name("DoesNotExist").is_none());
    }
}
