//! The replay engine: drives a [`TraceSink`] with a [`Scenario`]'s event
//! stream at core level or thread level (paper §5, "replaying setup").
//!
//! One OS thread simulates each of the 12 phone cores. The virtual 30
//! seconds are divided into time slices; workers synchronize on a barrier
//! at every slice boundary, so the *relative* production rates across cores
//! (the Fig. 4 skew) shape the global interleaving of logic stamps without
//! any real-time sleeping.
//!
//! In thread-level mode each core worker multiplexes the scenario's
//! simulated threads. A context switch can strike **between** a writer's
//! reservation and its commit — the reservation is parked in the thread's
//! context and committed when that thread is scheduled again, exactly the
//! preempted-writer scenario of §2.2 Observation 2. Sinks that "disable
//! preemption" ([`TraceSink::preemptible_writes`] `== false`) never have
//! writes split this way.

use crate::model::Scenario;
use crate::report::ReplayReport;
use crate::state::{check_handoff, BoundaryDefect, BoundaryExpectation, TraceState};
use btrace_core::sink::{Begin, CollectedEvent, RecordOutcome, SinkGrant, TraceSink};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::Instant;

/// Shared payload bytes; content is irrelevant to buffer behaviour.
static PAYLOAD: [u8; 1024] = [0xA5; 1024];

/// Replay granularity (paper §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplayMode {
    /// One producer thread per core produces all of that core's traces.
    CoreLevel,
    /// The scenario's thread population is multiplexed per core, with
    /// simulated preemption mid-write.
    ThreadLevel,
}

/// Replay tuning knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayConfig {
    /// Core- or thread-level replay.
    pub mode: ReplayMode,
    /// Fraction of the full 30-second workload to generate (1.0 ≈ millions
    /// of events; keep small in tests).
    pub scale: f64,
    /// Number of barrier-synchronized time slices.
    pub slices: u32,
    /// Sample every n-th record's latency; 0 disables sampling.
    pub latency_sample_every: u32,
    /// RNG seed (each core derives its own stream).
    pub seed: u64,
    /// Cap on concurrently preempted writers per core (see `run_core`).
    /// Real preemption is transient; a cap of a handful per core matches a
    /// phone. Callers replaying against tracers with *few* active blocks
    /// must keep `cores × max_parked_per_core` below the block budget, or
    /// the replay models an impossible machine where every block is pinned
    /// at once.
    pub max_parked_per_core: usize,
}

impl ReplayConfig {
    /// Thread-level replay of the full workload — the Table 2 setup.
    pub fn table2() -> Self {
        Self {
            mode: ReplayMode::ThreadLevel,
            scale: 1.0,
            slices: 120,
            latency_sample_every: 64,
            seed: 42,
            max_parked_per_core: 4,
        }
    }

    /// A tiny deterministic configuration for unit tests.
    pub fn quick_test() -> Self {
        Self {
            mode: ReplayMode::ThreadLevel,
            scale: 0.01,
            slices: 6,
            latency_sample_every: 0,
            seed: 7,
            max_parked_per_core: 4,
        }
    }

    /// Sets the mode, builder style.
    pub fn mode(mut self, mode: ReplayMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the scale, builder style.
    pub fn scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }
}

impl Default for ReplayConfig {
    fn default() -> Self {
        Self::table2()
    }
}

/// A configured replay, ready to run against any tracer.
#[derive(Debug)]
pub struct Replayer {
    scenario: &'static Scenario,
    config: ReplayConfig,
}

/// A parked reservation of a preempted simulated thread.
struct Pending<G> {
    grant: G,
    stamp: u64,
    payload_len: usize,
    tid: u32,
}

struct ThreadCtx<G> {
    tid: u32,
    pending: Option<Pending<G>>,
}

/// Per-core results gathered by a worker.
struct WorkerOut {
    written: u64,
    written_bytes: u64,
    dropped: u64,
    latencies: Vec<u64>,
    tids: usize,
}

impl Replayer {
    /// Creates a replayer for `scenario` with `config`.
    pub fn new(scenario: &'static Scenario, config: ReplayConfig) -> Self {
        Self { scenario, config }
    }

    /// Runs the replay against `sink` and drains it afterwards.
    pub fn run<S: TraceSink>(&self, sink: &S) -> ReplayReport {
        let scenario = self.scenario;
        let config = &self.config;
        let cores = scenario.cores();
        let stamp = AtomicU64::new(0);
        let barrier = Barrier::new(cores);
        let syncs = syncs_per_slice(scenario, config, sink.capacity_bytes());
        let start = Instant::now();

        let outs: Vec<WorkerOut> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..cores)
                .map(|core| {
                    let stamp = &stamp;
                    let barrier = &barrier;
                    scope.spawn(move || {
                        run_core(sink, scenario, config, core, stamp, barrier, syncs)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("replay worker panicked")).collect()
        });

        let wall = start.elapsed();
        let retained = sink.drain();
        ReplayReport {
            tracer: sink.name(),
            scenario: scenario.name,
            written: outs.iter().map(|o| o.written).sum(),
            written_per_core: outs.iter().map(|o| o.written).collect(),
            written_bytes: outs.iter().map(|o| o.written_bytes).sum(),
            dropped_at_record: outs.iter().map(|o| o.dropped).sum(),
            retained,
            latencies_ns: outs.into_iter().flat_map(|o| o.latencies).collect(),
            tids_per_core: Vec::new(), // filled below for thread-level runs
            capacity_bytes: sink.capacity_bytes(),
            wall,
        }
        .with_tids(scenario, config)
    }
}

impl ReplayReport {
    fn with_tids(mut self, scenario: &Scenario, config: &ReplayConfig) -> Self {
        // Distinct tids per core are a property of the schedule, which is
        // deterministic given the config; recompute rather than thread
        // HashSets through the hot path.
        let per_core = match config.mode {
            ReplayMode::CoreLevel => 1,
            ReplayMode::ThreadLevel => {
                let events_per_core = (scenario.core_rates[0] as f64
                    * crate::model::TRACE_SECONDS as f64
                    * config.scale) as u32;
                scenario.total_threads_per_core.min(events_per_core.max(1))
            }
        };
        self.tids_per_core = vec![per_core as usize; scenario.cores()];
        self
    }
}

/// How many barrier synchronizations to run per time slice.
///
/// The slice barrier keeps the *relative* production rates across cores
/// honest, but on a loaded host (CI runners, 1-CPU machines) the OS can
/// deschedule one worker for long enough that the others produce a whole
/// slice quota around it — enough to wrap a small buffer over blocks the
/// laggard's parked grants still pin, which skip-recycling then discards.
/// That cross-core skew is an artifact of the *replay host*, not of the
/// modeled phone, so bound it: add intra-slice barriers whenever one
/// slice's global production spans a large fraction of the sink's
/// capacity, capping the skew at roughly `capacity / 8` bytes of global
/// production between synchronization points.
fn syncs_per_slice(scenario: &Scenario, config: &ReplayConfig, capacity_bytes: usize) -> u64 {
    let slices = config.slices.max(1) as u64;
    let total_events: u64 = (0..scenario.cores())
        .map(|core| {
            (scenario.core_rates[core] as f64 * crate::model::TRACE_SECONDS as f64 * config.scale)
                .round() as u64
        })
        .sum();
    let mean_entry = btrace_core::event::encoded_len(scenario.mean_payload as usize) as u64;
    let slice_bytes = (total_events / slices) * mean_entry;
    let chunk = (capacity_bytes as u64 / 8).max(1);
    slice_bytes.div_ceil(chunk).clamp(1, 64)
}

#[allow(clippy::too_many_arguments)]
fn run_core<S: TraceSink>(
    sink: &S,
    scenario: &Scenario,
    config: &ReplayConfig,
    core: usize,
    stamp: &AtomicU64,
    barrier: &Barrier,
    syncs: u64,
) -> WorkerOut {
    let mut rng =
        StdRng::seed_from_u64(config.seed.wrapping_mul(0x9E37_79B9).wrapping_add(core as u64));
    let total_events =
        (scenario.core_rates[core] as f64 * crate::model::TRACE_SECONDS as f64 * config.scale)
            .round() as u64;
    let slices = config.slices.max(1) as u64;
    let preemptible = sink.preemptible_writes() && matches!(config.mode, ReplayMode::ThreadLevel);

    // Simulated thread population for this core.
    let total_threads = match config.mode {
        ReplayMode::CoreLevel => 1,
        ReplayMode::ThreadLevel => scenario.total_threads_per_core.max(1),
    } as u64;
    let window = match config.mode {
        ReplayMode::CoreLevel => 1,
        ReplayMode::ThreadLevel => scenario.threads_per_core_sec.max(1),
    } as u64;
    let mut threads: Vec<ThreadCtx<S::Grant>> = (0..total_threads)
        .map(|i| ThreadCtx { tid: (core as u32) << 20 | i as u32, pending: None })
        .collect();
    let mut tids_seen: HashSet<u32> = HashSet::new();
    // Real preemption is transient: a writer is off-core for microseconds,
    // so only a handful of a core's threads can ever sit inside the
    // reservation window at once. Parking unboundedly many grants would
    // model an impossible machine (and pin every active block of every
    // tracer at once), so cap the concurrently preempted writers per core.
    let max_parked = config.max_parked_per_core;
    let mut parked = 0usize;

    let mut out =
        WorkerOut { written: 0, written_bytes: 0, dropped: 0, latencies: Vec::new(), tids: 0 };
    let sample_every = config.latency_sample_every as u64;

    for slice in 0..slices {
        // Burstiness: a bursty workload emits only a trickle in idle slices.
        let nominal = total_events / slices;
        let n = if scenario.burstiness > 0.0 && rng.gen::<f32>() < scenario.burstiness {
            nominal / 8
        } else {
            nominal
        };
        // The active thread window slides across the population over time
        // (thread churn: short-lived threads come and go, Fig. 6).
        let window_base = slice * total_threads / slices;
        // Context switch cadence: roughly `window` switches per slice.
        let quantum = (n / window.max(1)).max(1);
        let mut current = 0u64;
        let mut i = 0u64;

        // `syncs` intra-slice barriers bound cross-core skew (see
        // `syncs_per_slice`); every core performs exactly `syncs` waits per
        // slice regardless of its own quota, so the barrier count matches.
        for sync in 0..syncs {
            let chunk_end = n * (sync + 1) / syncs;
            while i < chunk_end {
                if i.is_multiple_of(quantum) {
                    current = (window_base + rng.gen_range(0..window)) % total_threads;
                }
                let ctx = &mut threads[current as usize];
                // A running thread first finishes any interrupted write (it
                // is by definition no longer preempted).
                if let Some(p) = ctx.pending.take() {
                    p.grant.commit(p.stamp, p.tid, &PAYLOAD[..p.payload_len]);
                    parked -= 1;
                }
                tids_seen.insert(ctx.tid);
                let payload_len = sample_payload(&mut rng, scenario.mean_payload);
                let s = stamp.fetch_add(1, Ordering::Relaxed);
                out.written += 1;
                out.written_bytes += btrace_core::event::encoded_len(payload_len) as u64;

                let timing = sample_every != 0 && out.written.is_multiple_of(sample_every);
                let t0 = timing.then(Instant::now);

                if preemptible
                    && parked < max_parked
                    && rng.gen::<f32>() < scenario.preempt_mid_write
                {
                    // Reserve now, get "preempted", commit on reschedule.
                    match sink.try_begin(core, ctx.tid, payload_len) {
                        Begin::Granted(grant) => {
                            ctx.pending =
                                Some(Pending { grant, stamp: s, payload_len, tid: ctx.tid });
                            parked += 1;
                        }
                        Begin::Dropped => out.dropped += 1,
                    }
                } else if sink.record(core, ctx.tid, s, &PAYLOAD[..payload_len])
                    == RecordOutcome::Dropped
                {
                    out.dropped += 1;
                }

                if let Some(t0) = t0 {
                    out.latencies.push(t0.elapsed().as_nanos() as u64);
                }
                i += 1;
            }
            if sync + 1 == syncs {
                // Preemption is transient (§2.2): a parked writer is
                // rescheduled within its slice, never across one. Flushing
                // here keeps a laggard core's parked grants from pinning
                // blocks through the next slice's production.
                for ctx in &mut threads {
                    if let Some(p) = ctx.pending.take() {
                        p.grant.commit(p.stamp, p.tid, &PAYLOAD[..p.payload_len]);
                        parked -= 1;
                    }
                }
            }
            barrier.wait();
        }
    }

    debug_assert_eq!(parked, 0, "every parked grant flushed at its slice boundary");
    out.tids = tids_seen.len();
    out
}

fn sample_payload(rng: &mut StdRng, mean: u32) -> usize {
    // Uniform on [mean/2, 3*mean/2): same mean, realistic spread of small
    // entries with the occasional longer format string.
    let lo = (mean / 2).max(1);
    let hi = mean + mean / 2;
    rng.gen_range(lo..hi.max(lo + 1)) as usize
}

// ---------------------------------------------------------------------------
// Fragment-parallel state reconstruction
// ---------------------------------------------------------------------------

/// Result of [`reconstruct_fragments`]: per-fragment states, their ordered
/// merge, and any boundary hand-off defects.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct StateReconstruction {
    /// One reconstructed state per fragment, in fragment order.
    pub per_fragment: Vec<TraceState>,
    /// The ordered merge of all fragment states — bit-identical to a
    /// sequential walk of the whole trace.
    pub merged: TraceState,
    /// Boundary hand-off disagreements (fragment `i`'s exit state vs
    /// fragment `i+1`'s seeded entry state). Empty for a healthy trace.
    pub defects: Vec<BoundaryDefect>,
}

/// Reconstructs trace state fragment-parallel on up to `threads` scoped
/// workers, then runs the boundary hand-off check.
///
/// `expectations` are the index-derived entry seeds (one per fragment); pass
/// `None` to derive them from the fragments themselves via
/// [`derive_expectations`], which exercises the hand-off machinery as a
/// self-check when no external index exists.
pub fn reconstruct_fragments<F>(
    fragments: &[F],
    threads: usize,
    expectations: Option<&[BoundaryExpectation]>,
) -> StateReconstruction
where
    F: AsRef<[CollectedEvent]> + Sync,
{
    let per_fragment =
        btrace_analysis::map_reduce(fragments, threads, |_, f| TraceState::map(f.as_ref()));
    let derived;
    let expectations = match expectations {
        Some(e) => e,
        None => {
            derived = derive_expectations(&per_fragment);
            &derived
        }
    };
    let defects = check_handoff(&per_fragment, expectations);
    let merged = btrace_analysis::fold_merge(per_fragment.clone(), TraceState::merge)
        .unwrap_or_else(TraceState::empty);
    StateReconstruction { per_fragment, merged, defects }
}

/// Builds per-fragment entry expectations by prefix-merging the states in
/// fragment order — what a trustworthy frame index would have promised.
pub fn derive_expectations(states: &[TraceState]) -> Vec<BoundaryExpectation> {
    let mut out = Vec::with_capacity(states.len());
    let mut prefix = TraceState::empty();
    for (i, state) in states.iter().enumerate() {
        out.push(BoundaryExpectation {
            fragment: i,
            events_before: prefix.events,
            bytes_before: Some(prefix.bytes),
            max_stamp_before: (!prefix.is_empty()).then_some(prefix.last_stamp),
            core_bitmap_before: Some(prefix.core_bitmap),
        });
        prefix = prefix.merge(state.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::scenarios;
    use btrace_baselines::{Bbq, PerCoreDropNewest, PerCoreOverwrite, PerThread};
    use btrace_core::{BTrace, Config};

    fn btrace_sink() -> BTrace {
        BTrace::new(
            Config::new(12)
                .active_blocks(48)
                .block_bytes(1024)
                .buffer_bytes(1024 * 48 * 4)
                .backing(btrace_core::Backing::Heap),
        )
        .unwrap()
    }

    #[test]
    fn replays_against_btrace() {
        let scenario = scenarios::by_name("IM").unwrap();
        let report = Replayer::new(scenario, ReplayConfig::quick_test()).run(&btrace_sink());
        assert!(report.written > 1000);
        assert_eq!(report.dropped_at_record, 0, "BTrace never drops");
        assert!(!report.retained.is_empty());
        // Every retained stamp was actually written.
        let max = report.retained_stamps().last().copied().unwrap();
        assert!(max < report.written);
    }

    #[test]
    fn replays_against_all_baselines() {
        let scenario = scenarios::by_name("LockScr.").unwrap();
        let cfg = ReplayConfig::quick_test();
        let r = Replayer::new(scenario, cfg.clone());
        let total = 1 << 20;
        assert!(!r.run(&Bbq::new(total, 4096)).retained.is_empty());
        assert!(!r.run(&PerCoreOverwrite::new(12, total)).retained.is_empty());
        assert!(!r.run(&PerCoreDropNewest::new(12, total, 4)).retained.is_empty());
        assert!(!r.run(&PerThread::new(total, 480)).retained.is_empty());
    }

    #[test]
    fn core_level_uses_one_thread_per_core() {
        let scenario = scenarios::by_name("Desktop").unwrap();
        let cfg = ReplayConfig::quick_test().mode(ReplayMode::CoreLevel);
        let report = Replayer::new(scenario, cfg).run(&btrace_sink());
        assert!(report.tids_per_core.iter().all(|&t| t == 1));
    }

    #[test]
    fn thread_level_oversubscribes() {
        let scenario = scenarios::by_name("eShop-2").unwrap();
        let cfg = ReplayConfig { scale: 0.05, ..ReplayConfig::quick_test() };
        let report = Replayer::new(scenario, cfg).run(&btrace_sink());
        assert!(
            report.tids_per_core.iter().all(|&t| t > 30),
            "heavy workloads multiplex many threads per core: {:?}",
            report.tids_per_core
        );
    }

    #[test]
    fn stamps_are_unique_across_cores() {
        let scenario = scenarios::by_name("IM").unwrap();
        let report = Replayer::new(scenario, ReplayConfig::quick_test()).run(&btrace_sink());
        let stamps = report.retained_stamps();
        // retained_stamps dedups; equal length to raw retained means no dups.
        assert_eq!(stamps.len(), report.retained.len());
    }

    #[test]
    fn latency_sampling_collects() {
        let scenario = scenarios::by_name("Music").unwrap();
        let cfg = ReplayConfig { latency_sample_every: 16, ..ReplayConfig::quick_test() };
        let report = Replayer::new(scenario, cfg).run(&btrace_sink());
        assert!(!report.latencies_ns.is_empty());
        // Sampling is per core, so counts round per worker.
        let expect = report.written / 16;
        let got = report.latencies_ns.len() as u64;
        assert!(got.abs_diff(expect) <= 12, "got {got}, expected ≈{expect}");
    }

    #[test]
    fn preempted_writers_eventually_commit_everything() {
        // With drops impossible (BTrace) and all pendings flushed, the
        // newest stamp must always be retained.
        let scenario = scenarios::by_name("Video-3").unwrap();
        let report = Replayer::new(scenario, ReplayConfig::quick_test()).run(&btrace_sink());
        let newest = report.retained_stamps().last().copied().unwrap();
        assert!(newest >= report.written - (report.written / 10).max(2));
    }
}
