//! Replay results handed to the analysis crate.

use btrace_core::sink::CollectedEvent;
use std::time::Duration;

/// Everything a replay produced, ready for `btrace-analysis`.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ReplayReport {
    /// Tracer under test ([`TraceSink::name`](btrace_core::sink::TraceSink::name)).
    pub tracer: &'static str,
    /// Scenario name.
    pub scenario: &'static str,
    /// Total events generated (each consumed one logic stamp, whether or
    /// not the tracer kept it).
    pub written: u64,
    /// Events generated per simulated core (the Fig. 4 skew as realized).
    pub written_per_core: Vec<u64>,
    /// Total on-buffer bytes the events would occupy if all were kept.
    pub written_bytes: u64,
    /// Events the tracer refused at record time (LTTng-style drops).
    pub dropped_at_record: u64,
    /// Events drained from the buffer after the replay quiesced.
    pub retained: Vec<CollectedEvent>,
    /// Sampled per-record latencies in nanoseconds.
    pub latencies_ns: Vec<u64>,
    /// Distinct producing threads observed per core.
    pub tids_per_core: Vec<usize>,
    /// The tracer's total buffer capacity.
    pub capacity_bytes: usize,
    /// Wall-clock duration of the replay.
    pub wall: Duration,
}

impl ReplayReport {
    /// Sorted, deduplicated retained stamps (for gap maps).
    pub fn retained_stamps(&self) -> Vec<u64> {
        let mut stamps: Vec<u64> = self.retained.iter().map(|e| e.stamp).collect();
        stamps.sort_unstable();
        stamps.dedup();
        stamps
    }

    /// Fraction of written events that survived to the readout.
    pub fn retention(&self) -> f64 {
        if self.written == 0 {
            0.0
        } else {
            self.retained.len() as f64 / self.written as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamps_are_sorted_and_deduped() {
        let ev = |stamp| CollectedEvent { stamp, core: 0, tid: 0, stored_bytes: 8 };
        let r = ReplayReport {
            tracer: "x",
            scenario: "y",
            written: 4,
            written_per_core: vec![4],
            written_bytes: 32,
            dropped_at_record: 0,
            retained: vec![ev(3), ev(1), ev(3)],
            latencies_ns: vec![],
            tids_per_core: vec![],
            capacity_bytes: 0,
            wall: Duration::ZERO,
        };
        assert_eq!(r.retained_stamps(), vec![1, 3]);
        assert!((r.retention() - 0.75).abs() < 1e-9);
    }
}
