//! Replay results handed to the analysis crate.

use crate::engine::{reconstruct_fragments, StateReconstruction};
use btrace_analysis::{
    fold_merge, map_reduce, LatencyPartial, LatencyStats, TraceAnalysis, TracePartial,
};
use btrace_core::sink::CollectedEvent;
use std::time::Duration;

/// Everything a replay produced, ready for `btrace-analysis`.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ReplayReport {
    /// Tracer under test ([`TraceSink::name`](btrace_core::sink::TraceSink::name)).
    pub tracer: &'static str,
    /// Scenario name.
    pub scenario: &'static str,
    /// Total events generated (each consumed one logic stamp, whether or
    /// not the tracer kept it).
    pub written: u64,
    /// Events generated per simulated core (the Fig. 4 skew as realized).
    pub written_per_core: Vec<u64>,
    /// Total on-buffer bytes the events would occupy if all were kept.
    pub written_bytes: u64,
    /// Events the tracer refused at record time (LTTng-style drops).
    pub dropped_at_record: u64,
    /// Events drained from the buffer after the replay quiesced.
    pub retained: Vec<CollectedEvent>,
    /// Sampled per-record latencies in nanoseconds.
    pub latencies_ns: Vec<u64>,
    /// Distinct producing threads observed per core.
    pub tids_per_core: Vec<usize>,
    /// The tracer's total buffer capacity.
    pub capacity_bytes: usize,
    /// Wall-clock duration of the replay.
    pub wall: Duration,
}

impl ReplayReport {
    /// Sorted, deduplicated retained stamps (for gap maps).
    pub fn retained_stamps(&self) -> Vec<u64> {
        let mut stamps: Vec<u64> = self.retained.iter().map(|e| e.stamp).collect();
        stamps.sort_unstable();
        stamps.dedup();
        stamps
    }

    /// Fraction of written events that survived to the readout.
    pub fn retention(&self) -> f64 {
        if self.written == 0 {
            0.0
        } else {
            self.retained.len() as f64 / self.written as f64
        }
    }

    /// Runs the full readout fragment-parallel: the retained events are cut
    /// into `events_per_fragment`-sized fragments, mapped to analysis and
    /// state partials on up to `threads` scoped workers, and merged in
    /// fragment order — bit-identical to the sequential readout for any
    /// `threads` and any fragment size (see `btrace_analysis::parallel`).
    pub fn parallel_analysis(
        &self,
        threads: usize,
        events_per_fragment: usize,
        top_threads: usize,
    ) -> ParallelReportAnalysis {
        let chunk = events_per_fragment.max(1);
        let fragments: Vec<&[CollectedEvent]> = self.retained.chunks(chunk).collect();
        let parts = map_reduce(&fragments, threads, |_, frag| TracePartial::map(frag));
        let analysis = fold_merge(parts, TracePartial::merge)
            .unwrap_or_default()
            .finish(self.capacity_bytes, top_threads);
        let latency_chunks: Vec<&[u64]> = self.latencies_ns.chunks(chunk).collect();
        let latency_parts = map_reduce(&latency_chunks, threads, |_, c| LatencyPartial::map(c));
        let latency = fold_merge(latency_parts, LatencyPartial::merge).unwrap_or_default().finish();
        let state = reconstruct_fragments(&fragments, threads, None);
        ParallelReportAnalysis { analysis, latency, state, fragments: fragments.len(), threads }
    }
}

/// The fragment-parallel readout of one replay ([`ReplayReport::parallel_analysis`]).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ParallelReportAnalysis {
    /// Retention metrics plus per-core / per-thread breakdowns.
    pub analysis: TraceAnalysis,
    /// Latency summary over the sampled per-record latencies.
    pub latency: LatencyStats,
    /// Reconstructed trace state with boundary hand-off results.
    pub state: StateReconstruction,
    /// Number of fragments the readout was cut into.
    pub fragments: usize,
    /// Worker threads requested.
    pub threads: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamps_are_sorted_and_deduped() {
        let ev = |stamp| CollectedEvent { stamp, core: 0, tid: 0, stored_bytes: 8 };
        let r = ReplayReport {
            tracer: "x",
            scenario: "y",
            written: 4,
            written_per_core: vec![4],
            written_bytes: 32,
            dropped_at_record: 0,
            retained: vec![ev(3), ev(1), ev(3)],
            latencies_ns: vec![],
            tids_per_core: vec![],
            capacity_bytes: 0,
            wall: Duration::ZERO,
        };
        assert_eq!(r.retained_stamps(), vec![1, 3]);
        assert!((r.retention() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn parallel_analysis_matches_sequential_readout() {
        let ev = |stamp: u64| CollectedEvent {
            stamp,
            core: (stamp % 4) as u16,
            tid: 100 + (stamp % 6) as u32,
            stored_bytes: 24 + (stamp % 5) as u32,
        };
        let retained: Vec<CollectedEvent> = (0..500).chain(650..900).map(ev).collect();
        let r = ReplayReport {
            tracer: "x",
            scenario: "y",
            written: 900,
            written_per_core: vec![225; 4],
            written_bytes: 24_000,
            dropped_at_record: 0,
            retained: retained.clone(),
            latencies_ns: (0..97).map(|i| (i * 131) % 4096).collect(),
            tids_per_core: vec![6; 4],
            capacity_bytes: 1 << 16,
            wall: Duration::ZERO,
        };
        let sequential = r.parallel_analysis(1, 64, 8);
        for threads in [2, 4] {
            let parallel = r.parallel_analysis(threads, 64, 8);
            assert_eq!(parallel.analysis, sequential.analysis);
            assert_eq!(parallel.latency, sequential.latency);
            assert_eq!(parallel.state.merged, sequential.state.merged);
            assert!(parallel.state.defects.is_empty());
        }
        assert_eq!(sequential.analysis.metrics, btrace_analysis::analyze(&retained, 1 << 16));
        assert_eq!(sequential.analysis.per_core, btrace_analysis::by_core(&retained));
        assert_eq!(sequential.state.merged, crate::state::TraceState::map(&retained));
    }
}
