//! # btrace-replay — mobile workload model and trace replayer
//!
//! The paper evaluates tracers by replaying 20 real traces collected from a
//! 12-core production smartphone (§5). Those traces are proprietary, so
//! this crate substitutes a **synthetic workload model** parameterised from
//! the paper's published measurements:
//!
//! * per-core trace production rates across scenarios (Fig. 4, including
//!   the skew between little/middle/big cores that drives per-core buffer
//!   fragmentation),
//! * per-core distinct-thread counts — oversubscription (Fig. 6),
//! * atrace category volumes (Fig. 2) and trace levels (Fig. 3).
//!
//! The replayer drives any [`TraceSink`](btrace_core::sink::TraceSink)
//! through identical code paths:
//!
//! * **core-level replay** — one producer thread per simulated core;
//! * **thread-level replay** — each core multiplexes many simulated
//!   threads, with context switches that can preempt a writer **between**
//!   its space reservation and its commit, the adversarial interleaving
//!   that separates BTrace, ftrace, LTTng, and BBQ (§2.2, §5).
//!
//! Every event gets a unique, globally monotone logic stamp at record time;
//! missing stamps in the drained trace are dropped events by construction
//! (§5 "replaying setup").
//!
//! ```rust
//! use btrace_replay::{Replayer, ReplayConfig, scenarios};
//! use btrace_baselines::PerCoreOverwrite;
//!
//! let scenario = scenarios::by_name("LockScr.").expect("scenario exists");
//! let config = ReplayConfig::quick_test();
//! let sink = PerCoreOverwrite::new(scenario.cores(), 1 << 20);
//! let report = Replayer::new(scenario, config).run(&sink);
//! assert!(report.written > 0);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod engine;
pub mod model;
mod report;
mod state;

pub use engine::{
    derive_expectations, reconstruct_fragments, ReplayConfig, ReplayMode, Replayer,
    StateReconstruction,
};
pub use model::{scenarios, Category, Scenario, TraceLevel};
pub use report::{ParallelReportAnalysis, ReplayReport};
pub use state::{check_handoff, BoundaryDefect, BoundaryExpectation, CoreCursor, TraceState};
