//! Reconstructed trace state for fragment-parallel replay.
//!
//! A [`TraceState`] summarizes everything the replayer's sequential walk
//! would know after ingesting a prefix of the trace: per-core cursors
//! (event/byte counts, first/last stamps), global totals, the set of cores
//! and producing threads observed. It is a **monoid**: [`TraceState::merge`]
//! is associative, and ingesting a concatenation equals merging the
//! ingestions of the pieces, so per-fragment states computed on a worker
//! pool reduce to exactly the sequential state.
//!
//! The *boundary hand-off check* is deliberately not part of the monoid:
//! fragment `i`'s exit state (the merged prefix `0..=i`) is compared against
//! fragment `i+1`'s seeded entry expectation (what the frame index promised
//! lies before it). Any mismatch means the index and the decoded bytes
//! disagree — a trace defect to report, never a panic.

use std::collections::BTreeSet;

use btrace_core::sink::CollectedEvent;

/// Per-core replay cursor inside a [`TraceState`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct CoreCursor {
    /// Events observed on this core.
    pub events: u64,
    /// Bytes observed on this core (whatever byte accounting the caller
    /// feeds [`TraceState::record`] — stored bytes for drained events,
    /// payload bytes for decoded frames).
    pub bytes: u64,
    /// Smallest stamp observed; `u64::MAX` when the core is untouched.
    pub first_stamp: u64,
    /// Largest stamp observed; 0 when the core is untouched.
    pub last_stamp: u64,
}

impl Default for CoreCursor {
    fn default() -> Self {
        Self { events: 0, bytes: 0, first_stamp: u64::MAX, last_stamp: 0 }
    }
}

impl CoreCursor {
    /// True when no event has touched this core.
    pub fn is_empty(&self) -> bool {
        self.events == 0
    }

    fn absorb(&mut self, other: &CoreCursor) {
        self.events += other.events;
        self.bytes += other.bytes;
        self.first_stamp = self.first_stamp.min(other.first_stamp);
        self.last_stamp = self.last_stamp.max(other.last_stamp);
    }
}

/// Trace state reconstructed from one fragment (or a merged run of them).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct TraceState {
    /// Per-core cursors, indexed by core; sized to the largest core seen.
    pub cores: Vec<CoreCursor>,
    /// Total events ingested.
    pub events: u64,
    /// Total bytes ingested (same accounting caveat as [`CoreCursor::bytes`]).
    pub bytes: u64,
    /// Smallest stamp ingested; `u64::MAX` when empty.
    pub first_stamp: u64,
    /// Largest stamp ingested; 0 when empty.
    pub last_stamp: u64,
    /// Folded 64-bit core bitmap (bit `min(core, 63)`), matching the frame
    /// index footer's encoding.
    pub core_bitmap: u64,
    /// Distinct producing threads observed.
    pub tids: BTreeSet<u32>,
}

impl TraceState {
    /// An empty state (identity of [`merge`](Self::merge)).
    pub fn empty() -> Self {
        Self { first_stamp: u64::MAX, ..Self::default() }
    }

    /// Ingests one event with an explicit byte accounting.
    pub fn record(&mut self, core: u16, tid: u32, stamp: u64, bytes: u64) {
        if self.cores.len() <= core as usize {
            self.cores.resize(core as usize + 1, CoreCursor::default());
        }
        let cursor = &mut self.cores[core as usize];
        cursor.events += 1;
        cursor.bytes += bytes;
        cursor.first_stamp = cursor.first_stamp.min(stamp);
        cursor.last_stamp = cursor.last_stamp.max(stamp);
        self.events += 1;
        self.bytes += bytes;
        self.first_stamp = self.first_stamp.min(stamp);
        self.last_stamp = self.last_stamp.max(stamp);
        self.core_bitmap |= 1u64 << (core as u64).min(63);
        self.tids.insert(tid);
    }

    /// Maps one fragment of drained events (stored-byte accounting).
    pub fn map(events: &[CollectedEvent]) -> Self {
        let mut state = Self::empty();
        for e in events {
            state.record(e.core, e.tid, e.stamp, e.stored_bytes as u64);
        }
        state
    }

    /// Associative merge; `merge(map(A), map(B)) == map(A ++ B)`.
    pub fn merge(mut self, other: Self) -> Self {
        if self.cores.len() < other.cores.len() {
            self.cores.resize(other.cores.len(), CoreCursor::default());
        }
        for (mine, theirs) in self.cores.iter_mut().zip(other.cores.iter()) {
            mine.absorb(theirs);
        }
        self.events += other.events;
        self.bytes += other.bytes;
        self.first_stamp = self.first_stamp.min(other.first_stamp);
        self.last_stamp = self.last_stamp.max(other.last_stamp);
        self.core_bitmap |= other.core_bitmap;
        self.tids.extend(other.tids);
        self
    }

    /// True when nothing has been ingested.
    pub fn is_empty(&self) -> bool {
        self.events == 0
    }
}

/// What a fragment's index-derived seed promises about the stream **before**
/// the fragment starts. Fields the index cannot know (footer-less legacy
/// frames) are `None` and simply not checked.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BoundaryExpectation {
    /// Fragment index this expectation seeds (0-based).
    pub fragment: usize,
    /// Events in all preceding fragments.
    pub events_before: u64,
    /// Bytes in all preceding fragments (index accounting), if known.
    pub bytes_before: Option<u64>,
    /// Largest stamp in all preceding fragments, if known and non-empty.
    pub max_stamp_before: Option<u64>,
    /// Folded core bitmap of all preceding fragments, if known.
    pub core_bitmap_before: Option<u64>,
}

/// One disagreement between a fragment's decoded exit state and the next
/// fragment's seeded entry expectation — a trace defect (corrupt index,
/// truncated frame, or a consumer that lied), reported instead of panicking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct BoundaryDefect {
    /// Fragment whose seeded entry state disagreed.
    pub fragment: usize,
    /// Which field disagreed.
    pub field: &'static str,
    /// Value the index promised.
    pub expected: u64,
    /// Value the decoded prefix actually produced.
    pub found: u64,
}

impl std::fmt::Display for BoundaryDefect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fragment {}: seeded {} = {} but decoded prefix has {}",
            self.fragment, self.field, self.expected, self.found
        )
    }
}

/// Checks the boundary hand-off: for every fragment `i > 0`, the merged exit
/// state of fragments `0..i` must equal fragment `i`'s seeded entry
/// expectation. Returns all disagreements (empty for a healthy trace).
///
/// `states` are the per-fragment states in fragment order; `expectations`
/// carry one entry per fragment (the first fragment's expectation is the
/// empty prefix and is checked too — a nonzero `events_before` there is an
/// index defect in its own right).
pub fn check_handoff(
    states: &[TraceState],
    expectations: &[BoundaryExpectation],
) -> Vec<BoundaryDefect> {
    let mut defects = Vec::new();
    let mut prefix = TraceState::empty();
    for expect in expectations {
        let i = expect.fragment;
        if expect.events_before != prefix.events {
            defects.push(BoundaryDefect {
                fragment: i,
                field: "events_before",
                expected: expect.events_before,
                found: prefix.events,
            });
        }
        if let Some(bytes) = expect.bytes_before {
            if bytes != prefix.bytes {
                defects.push(BoundaryDefect {
                    fragment: i,
                    field: "bytes_before",
                    expected: bytes,
                    found: prefix.bytes,
                });
            }
        }
        if let Some(max_stamp) = expect.max_stamp_before {
            if !prefix.is_empty() && max_stamp != prefix.last_stamp {
                defects.push(BoundaryDefect {
                    fragment: i,
                    field: "max_stamp_before",
                    expected: max_stamp,
                    found: prefix.last_stamp,
                });
            }
        }
        if let Some(bitmap) = expect.core_bitmap_before {
            if bitmap != prefix.core_bitmap {
                defects.push(BoundaryDefect {
                    fragment: i,
                    field: "core_bitmap_before",
                    expected: bitmap,
                    found: prefix.core_bitmap,
                });
            }
        }
        if i < states.len() {
            prefix = prefix.merge(states[i].clone());
        }
    }
    defects
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(stamp: u64, core: u16, tid: u32, bytes: u32) -> CollectedEvent {
        CollectedEvent { stamp, core, tid, stored_bytes: bytes }
    }

    fn sample() -> Vec<CollectedEvent> {
        (0..200).map(|s| ev(s, (s % 5) as u16, 10 + (s % 3) as u32, 16 + (s % 9) as u32)).collect()
    }

    #[test]
    fn merge_matches_whole_for_any_split() {
        let events = sample();
        for split in [0, 1, 50, 133, events.len()] {
            let (a, b) = events.split_at(split);
            assert_eq!(TraceState::map(a).merge(TraceState::map(b)), TraceState::map(&events));
        }
    }

    #[test]
    fn merge_is_associative() {
        let events = sample();
        let (a, rest) = events.split_at(60);
        let (b, c) = rest.split_at(70);
        let (sa, sb, sc) = (TraceState::map(a), TraceState::map(b), TraceState::map(c));
        assert_eq!(sa.clone().merge(sb.clone()).merge(sc.clone()), sa.merge(sb.merge(sc)));
    }

    #[test]
    fn cursors_track_per_core_ranges() {
        let events = vec![ev(5, 2, 1, 8), ev(9, 2, 1, 8), ev(7, 0, 2, 16)];
        let state = TraceState::map(&events);
        assert_eq!(state.cores.len(), 3);
        assert_eq!(state.cores[2].events, 2);
        assert_eq!(state.cores[2].first_stamp, 5);
        assert_eq!(state.cores[2].last_stamp, 9);
        assert!(state.cores[1].is_empty());
        assert_eq!(state.core_bitmap, 0b101);
        assert_eq!(state.tids.len(), 2);
        assert_eq!(state.bytes, 32);
    }

    #[test]
    fn handoff_accepts_consistent_seeds() {
        let events = sample();
        let (a, b) = events.split_at(80);
        let states = [TraceState::map(a), TraceState::map(b)];
        let expectations = [
            BoundaryExpectation { fragment: 0, ..Default::default() },
            BoundaryExpectation {
                fragment: 1,
                events_before: 80,
                bytes_before: Some(states[0].bytes),
                max_stamp_before: Some(79),
                core_bitmap_before: Some(states[0].core_bitmap),
            },
        ];
        assert!(check_handoff(&states, &expectations).is_empty());
    }

    #[test]
    fn handoff_reports_mismatch_as_defect() {
        let events = sample();
        let (a, b) = events.split_at(80);
        let states = [TraceState::map(a), TraceState::map(b)];
        let expectations = [
            BoundaryExpectation { fragment: 0, ..Default::default() },
            BoundaryExpectation {
                fragment: 1,
                events_before: 81, // index lies by one event
                bytes_before: None,
                max_stamp_before: Some(42), // and about the newest stamp
                core_bitmap_before: None,
            },
        ];
        let defects = check_handoff(&states, &expectations);
        assert_eq!(defects.len(), 2);
        assert_eq!(defects[0].field, "events_before");
        assert_eq!(defects[0].expected, 81);
        assert_eq!(defects[0].found, 80);
        assert_eq!(defects[1].field, "max_stamp_before");
        assert!(defects[1].to_string().contains("fragment 1"));
    }
}
