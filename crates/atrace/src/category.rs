//! Tracepoint categories and the paper's trace levels (Figs. 2–3).

use std::fmt;
use std::ops::{BitAnd, BitOr};

/// A set of tracepoint categories, as a bitmask.
///
/// Matches the atrace categories of the paper's Fig. 2. Combine with `|`;
/// test membership with [`Category::contains`].
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Category(u32);

macro_rules! categories {
    ($(($name:ident, $bit:expr, $label:literal, $level:expr)),+ $(,)?) => {
        impl Category {
            $(
                #[doc = concat!("The `", $label, "` category.")]
                pub const $name: Category = Category(1 << $bit);
            )+

            /// No categories.
            pub const NONE: Category = Category(0);

            /// Every category.
            pub const ALL: Category = Category($( (1 << $bit) )|+);

            /// The human-readable label of a single-bit category.
            pub fn label(self) -> &'static str {
                match self {
                    $(Category::$name => $label,)+
                    _ => "(set)",
                }
            }

            /// All single categories with their labels and levels.
            pub fn catalog() -> &'static [(Category, &'static str, Level)] {
                &[ $((Category::$name, $label, $level)),+ ]
            }
        }
    };
}

categories! {
    (BINDER_DRIVER, 0, "binder_driver", Level::Level1),
    (BINDER_LOCK, 1, "binder_lock", Level::Level1),
    (SCHED, 2, "sched", Level::Level2),
    (IRQ, 3, "irq", Level::Level2),
    (VIEW, 4, "view", Level::Level2),
    (GFX, 5, "gfx", Level::Level2),
    (INPUT, 6, "input", Level::Level2),
    (AM, 7, "am", Level::Level2),
    (WM, 8, "wm", Level::Level2),
    (DALVIK, 9, "dalvik", Level::Level2),
    (PAGECACHE, 10, "pagecache", Level::Level2),
    (NETWORK, 11, "network", Level::Level2),
    (HAL, 12, "hal", Level::Level2),
    (RES, 13, "res", Level::Level2),
    (SS, 14, "ss", Level::Level2),
    (IDLE, 15, "idle", Level::Level3),
    (FREQ, 16, "freq", Level::Level3),
    (POWER, 17, "power", Level::Level3),
    (ENERGY_THERMAL, 18, "energy/thermal", Level::Level3),
}

impl Category {
    /// Whether every bit of `other` is enabled in `self`.
    pub fn contains(self, other: Category) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether no category is enabled.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The raw bitmask.
    pub fn bits(self) -> u32 {
        self.0
    }

    /// Reconstructs a set from raw bits (unknown bits are dropped).
    pub fn from_bits(bits: u32) -> Category {
        Category(bits) & Category::ALL
    }
}

impl BitOr for Category {
    type Output = Category;
    fn bitor(self, rhs: Category) -> Category {
        Category(self.0 | rhs.0)
    }
}

impl BitAnd for Category {
    type Output = Category;
    fn bitand(self, rhs: Category) -> Category {
        Category(self.0 & rhs.0)
    }
}

impl fmt::Debug for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "Category(NONE)");
        }
        let names: Vec<&str> = Category::catalog()
            .iter()
            .filter(|(c, _, _)| self.contains(*c))
            .map(|&(_, label, _)| label)
            .collect();
        write!(f, "Category({})", names.join("|"))
    }
}

/// The paper's trace detail levels (Fig. 3): each level enables every
/// category of the levels below it plus its own.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Level {
    /// Minimal: binder events for thread dependencies and hangs.
    Level1,
    /// Plus scheduling, IRQs, and framework events for performance issues.
    Level2,
    /// Plus idle/frequency/energy/thermal detail for system-wide analysis.
    Level3,
}

impl Level {
    /// The category set this level enables (cumulative).
    pub fn categories(self) -> Category {
        Category::catalog()
            .iter()
            .filter(|&&(_, _, level)| level <= self)
            .fold(Category::NONE, |acc, &(c, _, _)| acc | c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_cumulative() {
        let l1 = Level::Level1.categories();
        let l2 = Level::Level2.categories();
        let l3 = Level::Level3.categories();
        assert!(l2.contains(l1));
        assert!(l3.contains(l2));
        assert!(l3.contains(Category::FREQ));
        assert!(!l2.contains(Category::FREQ));
        assert!(!l1.contains(Category::SCHED));
        assert!(l1.contains(Category::BINDER_DRIVER));
    }

    #[test]
    fn set_operations() {
        let set = Category::SCHED | Category::IRQ;
        assert!(set.contains(Category::SCHED));
        assert!(!set.contains(Category::FREQ));
        assert!(!set.contains(Category::SCHED | Category::FREQ));
        assert_eq!(set & Category::SCHED, Category::SCHED);
        assert!(Category::NONE.is_empty());
        assert!(Category::ALL.contains(set));
    }

    #[test]
    fn bits_roundtrip_and_mask_unknown() {
        let set = Category::FREQ | Category::IDLE;
        assert_eq!(Category::from_bits(set.bits()), set);
        assert_eq!(Category::from_bits(0xFFFF_FFFF), Category::ALL);
    }

    #[test]
    fn labels_and_debug() {
        assert_eq!(Category::SCHED.label(), "sched");
        assert_eq!(Category::ENERGY_THERMAL.label(), "energy/thermal");
        let dbg = format!("{:?}", Category::SCHED | Category::IRQ);
        assert!(dbg.contains("sched") && dbg.contains("irq"));
        assert_eq!(format!("{:?}", Category::NONE), "Category(NONE)");
    }

    #[test]
    fn catalog_is_complete_and_distinct() {
        let catalog = Category::catalog();
        assert_eq!(catalog.len(), 19);
        let mut seen = 0u32;
        for &(c, _, _) in catalog {
            assert_eq!(seen & c.bits(), 0, "overlapping category bits");
            seen |= c.bits();
        }
        assert_eq!(seen, Category::ALL.bits());
    }
}
