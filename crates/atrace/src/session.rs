//! The atrace session: category filtering in front of any tracer sink.

use crate::category::Category;
use crate::codec::{OwnedEvent, TraceEvent, MAX_ENCODED};
use btrace_core::sink::{RecordOutcome, TraceSink};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// An atrace-style tracing session over a [`TraceSink`].
///
/// Tracepoints fire constantly in an instrumented system; whether they
/// *record* is decided here by one relaxed atomic load against the enabled
/// [`Category`] mask — a disabled tracepoint costs a few nanoseconds and
/// touches no shared state, which is what makes leaving instrumentation
/// compiled into production builds viable (§2.1).
pub struct Atrace<S> {
    sink: S,
    enabled: AtomicU32,
    clock: AtomicU64,
    filtered: AtomicU64,
    dropped: AtomicU64,
}

impl<S: TraceSink> Atrace<S> {
    /// Wraps `sink`, enabling `categories`.
    pub fn new(sink: S, categories: Category) -> Self {
        Self {
            sink,
            enabled: AtomicU32::new(categories.bits()),
            clock: AtomicU64::new(0),
            filtered: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Changes the enabled category set at runtime (e.g. switching trace
    /// levels when a suspicious scenario begins).
    pub fn set_categories(&self, categories: Category) {
        self.enabled.store(categories.bits(), Ordering::SeqCst);
    }

    /// The currently enabled categories.
    pub fn categories(&self) -> Category {
        Category::from_bits(self.enabled.load(Ordering::SeqCst))
    }

    /// Emits a typed event from `core`/`tid`. Returns `true` when the event
    /// was recorded, `false` when it was filtered out or the sink dropped it.
    pub fn event(&self, core: usize, tid: u32, event: TraceEvent<'_>) -> bool {
        let mask = Category::from_bits(self.enabled.load(Ordering::Relaxed));
        if !mask.contains(event.category()) {
            self.filtered.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let mut buf = [0u8; MAX_ENCODED];
        let len = event.encode(&mut buf);
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        match self.sink.record(core, tid, stamp, &buf[..len]) {
            RecordOutcome::Recorded => true,
            RecordOutcome::Dropped => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Opens a named duration: emits [`TraceEvent::Begin`] now and
    /// [`TraceEvent::End`] when the guard drops.
    pub fn scope<'a>(&'a self, core: usize, tid: u32, msg: &str) -> ScopeGuard<'a, S> {
        self.event(core, tid, TraceEvent::Begin { msg });
        ScopeGuard { atrace: self, core, tid }
    }

    /// Events suppressed by the category mask so far.
    pub fn filtered(&self) -> u64 {
        self.filtered.load(Ordering::Relaxed)
    }

    /// Events the sink refused so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The wrapped sink.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Unwraps the session.
    pub fn into_inner(self) -> S {
        self.sink
    }

    /// Drains the sink and decodes every retained event. Events whose
    /// payloads fail to decode (foreign writers on the same sink) are
    /// skipped.
    pub fn drain_decoded(&self) -> Vec<DecodedEvent> {
        self.sink
            .drain_full()
            .into_iter()
            .filter_map(|e| {
                OwnedEvent::decode(&e.payload).ok().map(|event| DecodedEvent {
                    stamp: e.stamp,
                    core: e.core as usize,
                    tid: e.tid,
                    event,
                })
            })
            .collect()
    }
}

impl<S> std::fmt::Debug for Atrace<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Atrace")
            .field("enabled", &Category::from_bits(self.enabled.load(Ordering::Relaxed)))
            .field("filtered", &self.filtered.load(Ordering::Relaxed))
            .field("dropped", &self.dropped.load(Ordering::Relaxed))
            .finish()
    }
}

/// A decoded, retained event with its recording context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedEvent {
    /// Logic stamp (session order).
    pub stamp: u64,
    /// Core it was recorded on.
    pub core: usize,
    /// Recording thread.
    pub tid: u32,
    /// The decoded payload.
    pub event: OwnedEvent,
}

/// RAII duration marker returned by [`Atrace::scope`].
#[must_use = "the scope ends when the guard drops"]
#[derive(Debug)]
pub struct ScopeGuard<'a, S: TraceSink> {
    atrace: &'a Atrace<S>,
    core: usize,
    tid: u32,
}

impl<S: TraceSink> Drop for ScopeGuard<'_, S> {
    fn drop(&mut self) {
        self.atrace.event(self.core, self.tid, TraceEvent::End);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Level;
    use btrace_core::{BTrace, Config};

    fn session(categories: Category) -> Atrace<BTrace> {
        let sink = BTrace::new(
            Config::new(2)
                .active_blocks(8)
                .block_bytes(512)
                .buffer_bytes(512 * 16)
                .backing(btrace_core::Backing::Heap),
        )
        .expect("valid configuration");
        Atrace::new(sink, categories)
    }

    #[test]
    fn filtering_respects_the_mask() {
        let a = session(Category::SCHED);
        assert!(a.event(0, 1, TraceEvent::SchedSwitch { prev: 1, next: 2, prio: 0 }));
        assert!(!a.event(0, 1, TraceEvent::FreqChange { cpu: 0, khz: 1_000_000 }));
        assert_eq!(a.filtered(), 1);
        let events = a.drain_decoded();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].event, OwnedEvent::SchedSwitch { prev: 1, next: 2, prio: 0 });
    }

    #[test]
    fn level_switch_at_runtime() {
        let a = session(Level::Level1.categories());
        assert!(!a.event(0, 1, TraceEvent::SchedSwitch { prev: 1, next: 2, prio: 0 }));
        a.set_categories(Level::Level3.categories());
        assert!(a.event(0, 1, TraceEvent::SchedSwitch { prev: 1, next: 2, prio: 0 }));
        assert!(a.event(0, 1, TraceEvent::ThermalThrottle { zone: 0, mdeg: 45_000 }));
        assert_eq!(a.drain_decoded().len(), 2);
    }

    #[test]
    fn scope_emits_begin_and_end_in_order() {
        let a = session(Category::ALL);
        {
            let _outer = a.scope(0, 1, "outer");
            let _inner = a.scope(0, 1, "inner");
        }
        let events = a.drain_decoded();
        let kinds: Vec<&OwnedEvent> = events.iter().map(|e| &e.event).collect();
        assert_eq!(kinds.len(), 4);
        assert_eq!(*kinds[0], OwnedEvent::Begin { msg: "outer".into() });
        assert_eq!(*kinds[1], OwnedEvent::Begin { msg: "inner".into() });
        assert_eq!(*kinds[2], OwnedEvent::End);
        assert_eq!(*kinds[3], OwnedEvent::End);
    }

    #[test]
    fn stamps_are_session_monotone() {
        let a = session(Category::ALL);
        for i in 0..50 {
            a.event((i % 2) as usize, i, TraceEvent::IdleExit { cpu: 0 });
        }
        let events = a.drain_decoded();
        let mut stamps: Vec<u64> = events.iter().map(|e| e.stamp).collect();
        let sorted = {
            let mut s = stamps.clone();
            s.sort_unstable();
            s
        };
        stamps.sort_unstable();
        assert_eq!(stamps, sorted);
        assert_eq!(stamps.len(), 50);
    }

    #[test]
    fn works_over_baseline_sinks_too() {
        use btrace_baselines::PerCoreOverwrite;
        let a = Atrace::new(PerCoreOverwrite::new(2, 8192), Level::Level2.categories());
        assert!(a.event(1, 3, TraceEvent::Irq { irq: 11, enter: true }));
        assert!(!a.event(1, 3, TraceEvent::IdleEnter { cpu: 1, state: 2 })); // level 3
        let events = a.drain_decoded();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].core, 1);
        assert_eq!(events[0].event, OwnedEvent::Irq { irq: 11, enter: true });
    }
}
