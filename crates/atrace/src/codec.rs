//! Typed trace events with a compact, allocation-free binary codec.
//!
//! Real mobile tracepoints are structured records, not strings — the
//! 100 MB/core/min figures of Fig. 2 assume compact encodings. Every event
//! encodes as `[tag: u8][category bits: u32][fields…]`, at most
//! [`MAX_ENCODED`] bytes, into a caller-provided stack buffer.

use crate::category::Category;
use std::fmt;

/// Upper bound of an encoded event (tag + category + fields/string).
pub const MAX_ENCODED: usize = 64;

/// Longest string payload carried by marker events; longer input is
/// truncated at a character boundary-agnostic byte cut.
pub const MAX_STRING: usize = MAX_ENCODED - 7;

/// A typed tracepoint event (the level-1/2/3 vocabulary of §2.2).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceEvent<'a> {
    /// Scheduler context switch (category `sched`, level 2).
    SchedSwitch {
        /// Previous thread.
        prev: u32,
        /// Next thread.
        next: u32,
        /// Priority of the incoming thread.
        prio: u8,
    },
    /// Scheduler wakeup (category `sched`, level 2).
    SchedWakeup {
        /// Woken thread.
        tid: u32,
        /// Target CPU.
        cpu: u8,
    },
    /// Thread migration (category `sched`, level 2 — §6's energy case).
    SchedMigrate {
        /// Migrated thread.
        tid: u32,
        /// Source CPU.
        from_cpu: u8,
        /// Destination CPU.
        to_cpu: u8,
    },
    /// IRQ entry/exit (category `irq`, level 2).
    Irq {
        /// IRQ number.
        irq: u16,
        /// `true` on entry, `false` on exit.
        enter: bool,
    },
    /// Binder transaction (category `binder_driver`, level 1).
    BinderTxn {
        /// Sending thread.
        from: u32,
        /// Receiving thread.
        to: u32,
        /// Transaction code.
        code: u32,
    },
    /// CPU frequency change (category `freq`, level 3).
    FreqChange {
        /// CPU index.
        cpu: u8,
        /// New frequency in kHz.
        khz: u32,
    },
    /// CPU idle-state entry (category `idle`, level 3).
    IdleEnter {
        /// CPU index.
        cpu: u8,
        /// Idle state (deeper = higher).
        state: u8,
    },
    /// CPU idle-state exit (category `idle`, level 3).
    IdleExit {
        /// CPU index.
        cpu: u8,
    },
    /// Thermal throttling decision (category `energy/thermal`, level 3).
    ThermalThrottle {
        /// Thermal zone.
        zone: u8,
        /// Zone temperature in milli-degrees Celsius.
        mdeg: u32,
    },
    /// Energy-model estimate (category `energy/thermal`, level 3).
    EnergyEstimate {
        /// Cluster index (0 little, 1 middle, 2 big).
        cluster: u8,
        /// Estimated power in milliwatts.
        mw: u32,
    },
    /// Named counter sample (any category).
    Counter {
        /// Counter name (truncated to [`MAX_STRING`] bytes).
        name: &'a str,
        /// Sampled value.
        value: i64,
    },
    /// Begin of a named duration (scoped marker).
    Begin {
        /// Label (truncated to [`MAX_STRING`] bytes).
        msg: &'a str,
    },
    /// End of the innermost open duration.
    End,
}

impl TraceEvent<'_> {
    /// The category this event belongs to.
    pub fn category(&self) -> Category {
        match self {
            TraceEvent::SchedSwitch { .. }
            | TraceEvent::SchedWakeup { .. }
            | TraceEvent::SchedMigrate { .. } => Category::SCHED,
            TraceEvent::Irq { .. } => Category::IRQ,
            TraceEvent::BinderTxn { .. } => Category::BINDER_DRIVER,
            TraceEvent::FreqChange { .. } => Category::FREQ,
            TraceEvent::IdleEnter { .. } | TraceEvent::IdleExit { .. } => Category::IDLE,
            TraceEvent::ThermalThrottle { .. } | TraceEvent::EnergyEstimate { .. } => {
                Category::ENERGY_THERMAL
            }
            TraceEvent::Counter { .. } => Category::SS,
            TraceEvent::Begin { .. } | TraceEvent::End => Category::VIEW,
        }
    }

    /// Encodes into `buf`, returning the used prefix length.
    pub fn encode(&self, buf: &mut [u8; MAX_ENCODED]) -> usize {
        let mut w = Writer { buf, at: 0 };
        w.u8(self.tag());
        w.u32(self.category().bits());
        match *self {
            TraceEvent::SchedSwitch { prev, next, prio } => {
                w.u32(prev);
                w.u32(next);
                w.u8(prio);
            }
            TraceEvent::SchedWakeup { tid, cpu } => {
                w.u32(tid);
                w.u8(cpu);
            }
            TraceEvent::SchedMigrate { tid, from_cpu, to_cpu } => {
                w.u32(tid);
                w.u8(from_cpu);
                w.u8(to_cpu);
            }
            TraceEvent::Irq { irq, enter } => {
                w.u16(irq);
                w.u8(enter as u8);
            }
            TraceEvent::BinderTxn { from, to, code } => {
                w.u32(from);
                w.u32(to);
                w.u32(code);
            }
            TraceEvent::FreqChange { cpu, khz } => {
                w.u8(cpu);
                w.u32(khz);
            }
            TraceEvent::IdleEnter { cpu, state } => {
                w.u8(cpu);
                w.u8(state);
            }
            TraceEvent::IdleExit { cpu } => w.u8(cpu),
            TraceEvent::ThermalThrottle { zone, mdeg } => {
                w.u8(zone);
                w.u32(mdeg);
            }
            TraceEvent::EnergyEstimate { cluster, mw } => {
                w.u8(cluster);
                w.u32(mw);
            }
            TraceEvent::Counter { name, value } => {
                w.i64(value);
                w.str(name);
            }
            TraceEvent::Begin { msg } => w.str(msg),
            TraceEvent::End => {}
        }
        w.at
    }

    fn tag(&self) -> u8 {
        match self {
            TraceEvent::SchedSwitch { .. } => 1,
            TraceEvent::SchedWakeup { .. } => 2,
            TraceEvent::SchedMigrate { .. } => 3,
            TraceEvent::Irq { .. } => 4,
            TraceEvent::BinderTxn { .. } => 5,
            TraceEvent::FreqChange { .. } => 6,
            TraceEvent::IdleEnter { .. } => 7,
            TraceEvent::IdleExit { .. } => 8,
            TraceEvent::ThermalThrottle { .. } => 9,
            TraceEvent::EnergyEstimate { .. } => 10,
            TraceEvent::Counter { .. } => 11,
            TraceEvent::Begin { .. } => 12,
            TraceEvent::End => 13,
        }
    }
}

/// An owned, decoded event (string payloads copied out of the buffer).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum OwnedEvent {
    /// See [`TraceEvent::SchedSwitch`].
    SchedSwitch {
        /// Previous thread.
        prev: u32,
        /// Next thread.
        next: u32,
        /// Incoming priority.
        prio: u8,
    },
    /// See [`TraceEvent::SchedWakeup`].
    SchedWakeup {
        /// Woken thread.
        tid: u32,
        /// Target CPU.
        cpu: u8,
    },
    /// See [`TraceEvent::SchedMigrate`].
    SchedMigrate {
        /// Migrated thread.
        tid: u32,
        /// Source CPU.
        from_cpu: u8,
        /// Destination CPU.
        to_cpu: u8,
    },
    /// See [`TraceEvent::Irq`].
    Irq {
        /// IRQ number.
        irq: u16,
        /// Entry or exit.
        enter: bool,
    },
    /// See [`TraceEvent::BinderTxn`].
    BinderTxn {
        /// Sender.
        from: u32,
        /// Receiver.
        to: u32,
        /// Code.
        code: u32,
    },
    /// See [`TraceEvent::FreqChange`].
    FreqChange {
        /// CPU.
        cpu: u8,
        /// kHz.
        khz: u32,
    },
    /// See [`TraceEvent::IdleEnter`].
    IdleEnter {
        /// CPU.
        cpu: u8,
        /// State.
        state: u8,
    },
    /// See [`TraceEvent::IdleExit`].
    IdleExit {
        /// CPU.
        cpu: u8,
    },
    /// See [`TraceEvent::ThermalThrottle`].
    ThermalThrottle {
        /// Zone.
        zone: u8,
        /// Milli-degrees.
        mdeg: u32,
    },
    /// See [`TraceEvent::EnergyEstimate`].
    EnergyEstimate {
        /// Cluster.
        cluster: u8,
        /// Milliwatts.
        mw: u32,
    },
    /// See [`TraceEvent::Counter`].
    Counter {
        /// Name.
        name: String,
        /// Value.
        value: i64,
    },
    /// See [`TraceEvent::Begin`].
    Begin {
        /// Label.
        msg: String,
    },
    /// See [`TraceEvent::End`].
    End,
}

impl OwnedEvent {
    /// Category of the decoded event.
    pub fn category(&self) -> Category {
        self.as_borrowed().category()
    }

    fn as_borrowed(&self) -> TraceEvent<'_> {
        match *self {
            OwnedEvent::SchedSwitch { prev, next, prio } => {
                TraceEvent::SchedSwitch { prev, next, prio }
            }
            OwnedEvent::SchedWakeup { tid, cpu } => TraceEvent::SchedWakeup { tid, cpu },
            OwnedEvent::SchedMigrate { tid, from_cpu, to_cpu } => {
                TraceEvent::SchedMigrate { tid, from_cpu, to_cpu }
            }
            OwnedEvent::Irq { irq, enter } => TraceEvent::Irq { irq, enter },
            OwnedEvent::BinderTxn { from, to, code } => TraceEvent::BinderTxn { from, to, code },
            OwnedEvent::FreqChange { cpu, khz } => TraceEvent::FreqChange { cpu, khz },
            OwnedEvent::IdleEnter { cpu, state } => TraceEvent::IdleEnter { cpu, state },
            OwnedEvent::IdleExit { cpu } => TraceEvent::IdleExit { cpu },
            OwnedEvent::ThermalThrottle { zone, mdeg } => {
                TraceEvent::ThermalThrottle { zone, mdeg }
            }
            OwnedEvent::EnergyEstimate { cluster, mw } => {
                TraceEvent::EnergyEstimate { cluster, mw }
            }
            OwnedEvent::Counter { ref name, value } => TraceEvent::Counter { name, value },
            OwnedEvent::Begin { ref msg } => TraceEvent::Begin { msg },
            OwnedEvent::End => TraceEvent::End,
        }
    }

    /// Decodes an encoded event.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on truncated input, unknown tags, or invalid UTF-8 in
    /// string payloads.
    pub fn decode(bytes: &[u8]) -> Result<OwnedEvent, DecodeError> {
        let mut r = Reader { bytes, at: 0 };
        let tag = r.u8()?;
        let _category = r.u32()?; // self-describing; recomputed on demand
        let event = match tag {
            1 => OwnedEvent::SchedSwitch { prev: r.u32()?, next: r.u32()?, prio: r.u8()? },
            2 => OwnedEvent::SchedWakeup { tid: r.u32()?, cpu: r.u8()? },
            3 => OwnedEvent::SchedMigrate { tid: r.u32()?, from_cpu: r.u8()?, to_cpu: r.u8()? },
            4 => OwnedEvent::Irq { irq: r.u16()?, enter: r.u8()? != 0 },
            5 => OwnedEvent::BinderTxn { from: r.u32()?, to: r.u32()?, code: r.u32()? },
            6 => OwnedEvent::FreqChange { cpu: r.u8()?, khz: r.u32()? },
            7 => OwnedEvent::IdleEnter { cpu: r.u8()?, state: r.u8()? },
            8 => OwnedEvent::IdleExit { cpu: r.u8()? },
            9 => OwnedEvent::ThermalThrottle { zone: r.u8()?, mdeg: r.u32()? },
            10 => OwnedEvent::EnergyEstimate { cluster: r.u8()?, mw: r.u32()? },
            11 => OwnedEvent::Counter { value: r.i64()?, name: r.str()? },
            12 => OwnedEvent::Begin { msg: r.str()? },
            13 => OwnedEvent::End,
            other => return Err(DecodeError::UnknownTag(other)),
        };
        Ok(event)
    }
}

/// Codec failure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeError {
    /// Fewer bytes than the event's fields require.
    Truncated,
    /// The tag byte does not name a known event.
    UnknownTag(u8),
    /// A string payload was not valid UTF-8.
    BadString,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "encoded event is truncated"),
            DecodeError::UnknownTag(t) => write!(f, "unknown event tag {t}"),
            DecodeError::BadString => write!(f, "string payload is not valid utf-8"),
        }
    }
}

impl std::error::Error for DecodeError {}

struct Writer<'a> {
    buf: &'a mut [u8; MAX_ENCODED],
    at: usize,
}

impl Writer<'_> {
    fn u8(&mut self, v: u8) {
        self.buf[self.at] = v;
        self.at += 1;
    }
    fn u16(&mut self, v: u16) {
        self.buf[self.at..self.at + 2].copy_from_slice(&v.to_le_bytes());
        self.at += 2;
    }
    fn u32(&mut self, v: u32) {
        self.buf[self.at..self.at + 4].copy_from_slice(&v.to_le_bytes());
        self.at += 4;
    }
    fn i64(&mut self, v: i64) {
        self.buf[self.at..self.at + 8].copy_from_slice(&v.to_le_bytes());
        self.at += 8;
    }
    fn str(&mut self, s: &str) {
        let avail = MAX_ENCODED - self.at - 2;
        let mut take = s.len().min(avail).min(MAX_STRING);
        while take > 0 && !s.is_char_boundary(take) {
            take -= 1;
        }
        self.u16(take as u16);
        self.buf[self.at..self.at + take].copy_from_slice(&s.as_bytes()[..take]);
        self.at += take;
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], DecodeError> {
        if self.at + n > self.bytes.len() {
            return Err(DecodeError::Truncated);
        }
        let out = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(out)
    }
    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }
    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }
    fn i64(&mut self) -> Result<i64, DecodeError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
    fn str(&mut self) -> Result<String, DecodeError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadString)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(event: TraceEvent<'_>) -> OwnedEvent {
        let mut buf = [0u8; MAX_ENCODED];
        let len = event.encode(&mut buf);
        assert!(len <= MAX_ENCODED);
        OwnedEvent::decode(&buf[..len]).expect("roundtrip decodes")
    }

    #[test]
    fn all_variants_roundtrip() {
        assert_eq!(
            roundtrip(TraceEvent::SchedSwitch { prev: 1, next: 2, prio: 3 }),
            OwnedEvent::SchedSwitch { prev: 1, next: 2, prio: 3 }
        );
        assert_eq!(
            roundtrip(TraceEvent::SchedWakeup { tid: 9, cpu: 4 }),
            OwnedEvent::SchedWakeup { tid: 9, cpu: 4 }
        );
        assert_eq!(
            roundtrip(TraceEvent::SchedMigrate { tid: 7, from_cpu: 1, to_cpu: 10 }),
            OwnedEvent::SchedMigrate { tid: 7, from_cpu: 1, to_cpu: 10 }
        );
        assert_eq!(
            roundtrip(TraceEvent::Irq { irq: 300, enter: true }),
            OwnedEvent::Irq { irq: 300, enter: true }
        );
        assert_eq!(
            roundtrip(TraceEvent::BinderTxn { from: 1, to: 2, code: 0xABCD }),
            OwnedEvent::BinderTxn { from: 1, to: 2, code: 0xABCD }
        );
        assert_eq!(
            roundtrip(TraceEvent::FreqChange { cpu: 11, khz: 2_841_600 }),
            OwnedEvent::FreqChange { cpu: 11, khz: 2_841_600 }
        );
        assert_eq!(
            roundtrip(TraceEvent::IdleEnter { cpu: 0, state: 2 }),
            OwnedEvent::IdleEnter { cpu: 0, state: 2 }
        );
        assert_eq!(roundtrip(TraceEvent::IdleExit { cpu: 0 }), OwnedEvent::IdleExit { cpu: 0 });
        assert_eq!(
            roundtrip(TraceEvent::ThermalThrottle { zone: 1, mdeg: 48_000 }),
            OwnedEvent::ThermalThrottle { zone: 1, mdeg: 48_000 }
        );
        assert_eq!(
            roundtrip(TraceEvent::EnergyEstimate { cluster: 2, mw: 3400 }),
            OwnedEvent::EnergyEstimate { cluster: 2, mw: 3400 }
        );
        assert_eq!(
            roundtrip(TraceEvent::Counter { name: "gpu_busy", value: -42 }),
            OwnedEvent::Counter { name: "gpu_busy".into(), value: -42 }
        );
        assert_eq!(
            roundtrip(TraceEvent::Begin { msg: "doFrame" }),
            OwnedEvent::Begin { msg: "doFrame".into() }
        );
        assert_eq!(roundtrip(TraceEvent::End), OwnedEvent::End);
    }

    #[test]
    fn categories_are_sensible() {
        use crate::Category;
        assert_eq!(
            TraceEvent::SchedSwitch { prev: 0, next: 0, prio: 0 }.category(),
            Category::SCHED
        );
        assert_eq!(TraceEvent::FreqChange { cpu: 0, khz: 0 }.category(), Category::FREQ);
        assert_eq!(
            TraceEvent::BinderTxn { from: 0, to: 0, code: 0 }.category(),
            Category::BINDER_DRIVER
        );
    }

    #[test]
    fn long_strings_truncate_cleanly() {
        let long = "x".repeat(500);
        let decoded = roundtrip(TraceEvent::Begin { msg: &long });
        match decoded {
            OwnedEvent::Begin { msg } => {
                assert!(msg.len() <= MAX_STRING && msg.chars().all(|c| c == 'x'))
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn multibyte_truncation_respects_char_boundaries() {
        let s = "é".repeat(100); // 2 bytes per char
        let decoded = roundtrip(TraceEvent::Counter { name: &s, value: 0 });
        match decoded {
            OwnedEvent::Counter { name, .. } => assert!(name.chars().all(|c| c == 'é')),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(OwnedEvent::decode(&[]), Err(DecodeError::Truncated));
        assert_eq!(OwnedEvent::decode(&[200, 0, 0, 0, 0]), Err(DecodeError::UnknownTag(200)));
        // Truncated sched switch.
        let mut buf = [0u8; MAX_ENCODED];
        let len = TraceEvent::SchedSwitch { prev: 1, next: 2, prio: 3 }.encode(&mut buf);
        assert_eq!(OwnedEvent::decode(&buf[..len - 2]), Err(DecodeError::Truncated));
        // Invalid UTF-8 in a counter name.
        let mut buf = [0u8; MAX_ENCODED];
        let len = TraceEvent::Counter { name: "ab", value: 1 }.encode(&mut buf);
        let mut corrupted = buf[..len].to_vec();
        let str_start = len - 2;
        corrupted[str_start] = 0xFF;
        assert_eq!(OwnedEvent::decode(&corrupted), Err(DecodeError::BadString));
    }
}
