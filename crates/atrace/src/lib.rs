//! # btrace-atrace — the tracepoint front-end
//!
//! The BTrace paper's traces come from Android's `atrace` (paper ref. 17): tracepoint
//! *categories* (sched, irq, freq, idle, binder, …) that developers enable
//! per debugging session, grouped into *levels* of increasing detail and
//! volume (Fig. 2, Fig. 3). This crate is that front-end for any
//! [`TraceSink`](btrace_core::sink::TraceSink):
//!
//! * [`Category`] — a bitmask of tracepoint categories with the paper's
//!   [`Level`] presets (level-1: binder; level-2: + sched/irq/…;
//!   level-3: + idle/freq/energy/thermal);
//! * [`TraceEvent`] — compact, typed, self-describing event payloads with
//!   an allocation-free binary codec;
//! * [`Atrace`] — the session object: category filtering happens *before*
//!   touching the buffer, disabled tracepoints cost one atomic load;
//! * [`Atrace::scope`] — RAII begin/end markers for duration events.
//!
//! ```rust
//! use btrace_atrace::{Atrace, Category, Level, TraceEvent};
//! use btrace_core::{BTrace, Config};
//!
//! # fn main() -> Result<(), btrace_core::TraceError> {
//! let sink = BTrace::new(Config::new(2).buffer_bytes(1 << 20).active_blocks(32))?;
//! let atrace = Atrace::new(sink, Level::Level3.categories());
//!
//! atrace.event(0, 7, TraceEvent::SchedSwitch { prev: 100, next: 200, prio: 5 });
//! atrace.event(1, 8, TraceEvent::FreqChange { cpu: 1, khz: 2_400_000 });
//! {
//!     let _scope = atrace.scope(0, 7, "binder: transact");
//! } // end marker emitted here
//!
//! let events = atrace.drain_decoded();
//! assert_eq!(events.len(), 4); // two events + begin + end
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod category;
mod codec;
mod session;

pub use category::{Category, Level};
pub use codec::{DecodeError, OwnedEvent, TraceEvent, MAX_ENCODED, MAX_STRING};
pub use session::{Atrace, DecodedEvent, ScopeGuard};
