//! Stamp-based retention metrics (paper Table 2).

use btrace_core::sink::CollectedEvent;

/// Retention metrics for one drained trace.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct Metrics {
    /// Number of retained events.
    pub retained_events: usize,
    /// Total retained bytes (on-buffer encoding).
    pub retained_bytes: u64,
    /// Bytes of the latest fragment: the contiguous-stamp run ending at the
    /// newest retained event.
    pub latest_fragment_bytes: u64,
    /// Events in the latest fragment.
    pub latest_fragment_events: usize,
    /// Number of maximal contiguous runs.
    pub fragments: usize,
    /// Fraction of events missing within the retained range
    /// `[oldest stamp, newest stamp]`; 0.0 for an empty or gapless trace.
    pub loss_rate: f64,
    /// `latest_fragment_bytes / capacity_bytes`.
    pub effectivity_ratio: f64,
}

impl Metrics {
    /// Metrics of an empty readout.
    pub fn empty() -> Self {
        Self {
            retained_events: 0,
            retained_bytes: 0,
            latest_fragment_bytes: 0,
            latest_fragment_events: 0,
            fragments: 0,
            loss_rate: 0.0,
            effectivity_ratio: 0.0,
        }
    }
}

/// Computes retention metrics from drained events and the tracer's buffer
/// capacity.
///
/// Events may arrive in any order and may contain duplicates (a defensive
/// consumer could return a block twice); stamps are deduplicated first.
///
/// # Examples
///
/// ```rust
/// use btrace_analysis::analyze;
/// use btrace_core::sink::CollectedEvent;
///
/// let ev = |stamp| CollectedEvent { stamp, core: 0, tid: 0, stored_bytes: 32 };
/// // Stamps 5..=9 and 12..=13 retained: gap at 10..=11.
/// let events: Vec<_> = (5..10).chain(12..14).map(ev).collect();
/// let m = analyze(&events, 1024);
/// assert_eq!(m.fragments, 2);
/// assert_eq!(m.latest_fragment_events, 2);
/// assert!((m.loss_rate - 2.0 / 9.0).abs() < 1e-9);
/// ```
pub fn analyze(events: &[CollectedEvent], capacity_bytes: usize) -> Metrics {
    // One fragment covering the whole trace: the sequential path is the
    // degenerate case of the fragment monoid, so parallel and sequential
    // results agree by construction (see `parallel`).
    crate::parallel::MetricsPartial::map(events).finish(capacity_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(stamp: u64, bytes: u32) -> CollectedEvent {
        CollectedEvent { stamp, core: 0, tid: 0, stored_bytes: bytes }
    }

    #[test]
    fn empty_trace() {
        let m = analyze(&[], 100);
        assert_eq!(m, Metrics::empty());
    }

    #[test]
    fn gapless_trace_is_one_fragment() {
        let events: Vec<_> = (0..100).map(|s| ev(s, 10)).collect();
        let m = analyze(&events, 1000);
        assert_eq!(m.fragments, 1);
        assert_eq!(m.loss_rate, 0.0);
        assert_eq!(m.latest_fragment_bytes, 1000);
        assert_eq!(m.retained_bytes, 1000);
        assert!((m.effectivity_ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_event() {
        let m = analyze(&[ev(42, 24)], 1024);
        assert_eq!(m.fragments, 1);
        assert_eq!(m.latest_fragment_bytes, 24);
        assert_eq!(m.loss_rate, 0.0);
    }

    #[test]
    fn interior_gap_splits_fragments() {
        // 0..10 and 20..30 retained.
        let events: Vec<_> = (0..10).chain(20..30).map(|s| ev(s, 16)).collect();
        let m = analyze(&events, 320);
        assert_eq!(m.fragments, 2);
        assert_eq!(m.latest_fragment_events, 10);
        assert_eq!(m.latest_fragment_bytes, 160);
        // 10 missing out of range 30.
        assert!((m.loss_rate - 10.0 / 30.0).abs() < 1e-9);
    }

    #[test]
    fn many_small_gaps() {
        // Every other stamp retained: fragments == events.
        let events: Vec<_> = (0..100).step_by(2).map(|s| ev(s, 8)).collect();
        let m = analyze(&events, 1000);
        assert_eq!(m.fragments, 50);
        assert_eq!(m.latest_fragment_events, 1);
        assert!((m.loss_rate - 49.0 / 99.0).abs() < 1e-9);
    }

    #[test]
    fn unordered_and_duplicated_input() {
        let mut events: Vec<_> = (10..20).map(|s| ev(s, 8)).collect();
        events.push(ev(15, 8)); // duplicate
        events.reverse();
        let m = analyze(&events, 80);
        assert_eq!(m.retained_events, 10);
        assert_eq!(m.fragments, 1);
        assert_eq!(m.retained_bytes, 80);
    }

    #[test]
    fn latest_fragment_ends_at_newest() {
        // Newest run is tiny; older run is huge. Latest fragment must be
        // the newest run, not the biggest.
        let events: Vec<_> = (0..90).chain(95..97).map(|s| ev(s, 10)).collect();
        let m = analyze(&events, 1000);
        assert_eq!(m.latest_fragment_events, 2);
        assert_eq!(m.latest_fragment_bytes, 20);
        assert_eq!(m.fragments, 2);
    }
}
