//! Loss forensics: correlating the flight-recorder timeline with health
//! counters and (optionally) a decoded dump into a causal diagnosis.
//!
//! The recorder gives *when* and *what order*; the snapshot gives
//! cumulative *how much*; the dump gives ground truth about what actually
//! survived. [`diagnose`] joins the three:
//!
//! 1. Loss **symptoms** (skip storms, pipeline sheds, export drops) are
//!    merged into time windows.
//! 2. Each window is annotated with its **cause chain** — the
//!    control-plane events (fault injections, resize retries and
//!    fallbacks, EBR stalls, backpressure) that precede it within the
//!    lookback horizon, in causal order.
//! 3. Global findings grade overall health: sticky degradation bits,
//!    capacity shortfalls, dump-observed loss.

use btrace_telemetry::json::Json;
use btrace_telemetry::{degraded, EventKind, HealthSnapshot, RecordedEvent, STAGE_NAMES};

use crate::Metrics;

/// Loss symptoms closer together than this merge into one window.
const LOSS_MERGE_NS: u64 = 500_000_000;
/// How far back from a loss window causes are correlated.
const CAUSE_LOOKBACK_NS: u64 = 2_000_000_000;
/// Fault injections closer together than this form one episode.
const FAULT_CLUSTER_NS: u64 = 250_000_000;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Context, not a problem.
    Info,
    /// Degraded but self-limiting.
    Warning,
    /// Data was lost or capacity is permanently below target.
    Critical,
}

impl Severity {
    fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        }
    }
}

/// One diagnostic statement with its supporting evidence lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// How bad it is.
    pub severity: Severity,
    /// One-line statement.
    pub title: String,
    /// Supporting detail, one line each.
    pub evidence: Vec<String>,
}

/// A time window in which the system demonstrably lost data, with the
/// control-plane events that explain it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LossWindow {
    /// Window start (recorder ns).
    pub start_ns: u64,
    /// Window end (recorder ns).
    pub end_ns: u64,
    /// Items lost inside the window (block skips + shed batches +
    /// dropped frames — mixed units, a volume indicator not a count).
    pub lost_items: u64,
    /// What the loss looked like, in time order.
    pub symptoms: Vec<String>,
    /// Why it happened: preceding control-plane events in causal order.
    pub causes: Vec<String>,
}

impl LossWindow {
    /// `"loss window 2.103–2.290s: ~187 items lost"`.
    pub fn headline(&self) -> String {
        format!(
            "loss window {:.3}\u{2013}{:.3}s: ~{} items lost",
            secs(self.start_ns),
            secs(self.end_ns),
            self.lost_items
        )
    }

    /// The cause chain as one arrow-joined line, or a shrug.
    pub fn chain(&self) -> String {
        if self.causes.is_empty() {
            "no control-plane cause recorded in lookback horizon".to_string()
        } else {
            self.causes.join(" \u{2192} ")
        }
    }
}

/// The full diagnosis: global findings plus per-window forensics.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnosis {
    /// Graded findings, most severe first.
    pub findings: Vec<Finding>,
    /// Loss windows in time order.
    pub loss_windows: Vec<LossWindow>,
    /// Recorder events examined.
    pub events_examined: usize,
    /// No loss windows and nothing above `Info`.
    pub healthy: bool,
}

fn secs(ns: u64) -> f64 {
    ns as f64 / 1e9
}

fn stage_name(source: u32) -> &'static str {
    STAGE_NAMES.get(source as usize).copied().unwrap_or("?")
}

/// One clustered run of fault injections.
struct FaultEpisode {
    start_ns: u64,
    end_ns: u64,
    count: u64,
}

fn cluster_faults(events: &[RecordedEvent]) -> Vec<FaultEpisode> {
    let mut episodes: Vec<FaultEpisode> = Vec::new();
    for e in events.iter().filter(|e| e.kind == EventKind::FaultInjected) {
        match episodes.last_mut() {
            Some(ep) if e.t_ns.saturating_sub(ep.end_ns) <= FAULT_CLUSTER_NS => {
                ep.end_ns = e.t_ns;
                ep.count += 1;
            }
            _ => episodes.push(FaultEpisode { start_ns: e.t_ns, end_ns: e.t_ns, count: 1 }),
        }
    }
    episodes
}

/// A loss symptom extracted from one recorder event.
fn symptom(e: &RecordedEvent) -> Option<(u64, String)> {
    match e.kind {
        EventKind::SkipStorm => Some((
            e.a,
            format!(
                "skip storm on core {}: {} block skips in {:.1}ms",
                e.source,
                e.a,
                e.b as f64 / 1e6
            ),
        )),
        EventKind::StageDrop => {
            Some((e.b, format!("pipeline {} stage shed {} item(s)", stage_name(e.source), e.b)))
        }
        EventKind::ExportDrop => {
            Some((e.b, format!("export dropped {} frame(s) after retries (total {})", e.b, e.a)))
        }
        _ => None,
    }
}

/// A cause-chain entry extracted from one recorder event.
fn cause(e: &RecordedEvent) -> Option<String> {
    match e.kind {
        EventKind::FaultInjected => None, // reported as clustered episodes
        EventKind::ResizeRetry => Some(format!(
            "resize retry #{} (backoff {}\u{00b5}s) at {:.3}s",
            e.a,
            e.b,
            secs(e.t_ns)
        )),
        EventKind::ResizeFallback => Some(format!(
            "resize fallback: wanted {} blocks, kept {} at {:.3}s",
            e.a,
            e.b,
            secs(e.t_ns)
        )),
        EventKind::EbrStall => Some(format!(
            "reclamation stalled {:.1}ms behind epoch {} at {:.3}s",
            e.a as f64 / 1e6,
            e.b,
            secs(e.t_ns)
        )),
        EventKind::Backpressure => Some(format!(
            "{} stage backpressure {:.1}ms at {:.3}s",
            stage_name(e.source),
            e.b as f64 / 1e6,
            secs(e.t_ns)
        )),
        EventKind::StateSet => Some(format!(
            "degradation bit set: {} at {:.3}s",
            degraded::describe(e.a),
            secs(e.t_ns)
        )),
        // Controller actions: a resize, back-off, or budget clamp inside
        // the lookback horizon is part of the loss story — either the
        // adaptation that was still catching up, or the constraint that
        // stopped it from adapting at all.
        EventKind::CtrlResize => Some(format!(
            "controller {} buffer {} -> {} bytes at {:.3}s",
            if e.source == 2 { "shrank" } else { "grew" },
            e.b,
            e.a,
            secs(e.t_ns)
        )),
        EventKind::CtrlBackoff => Some(format!(
            "controller backed off resizing ({} tick cooldown after {} failure(s)) at {:.3}s",
            e.a,
            e.b,
            secs(e.t_ns)
        )),
        EventKind::CtrlBudgetClamp => Some(format!(
            "controller budget clamp: wanted {} bytes, held to {} at {:.3}s",
            e.a,
            e.b,
            secs(e.t_ns)
        )),
        _ => None,
    }
}

/// Correlates the recorder timeline with an optional health snapshot and
/// an optional decoded-dump analysis into a [`Diagnosis`].
///
/// `events` need not be pre-sorted; they are ordered by timestamp here.
pub fn diagnose(
    events: &[RecordedEvent],
    snapshot: Option<&HealthSnapshot>,
    dump: Option<&Metrics>,
) -> Diagnosis {
    let mut timeline: Vec<&RecordedEvent> = events.iter().collect();
    timeline.sort_by_key(|e| e.t_ns);

    let episodes = cluster_faults(events);

    // Phase 1: merge loss symptoms into windows.
    let mut windows: Vec<LossWindow> = Vec::new();
    for &e in &timeline {
        let Some((lost, label)) = symptom(e) else { continue };
        match windows.last_mut() {
            Some(w) if e.t_ns.saturating_sub(w.end_ns) <= LOSS_MERGE_NS => {
                w.end_ns = e.t_ns;
                w.lost_items += lost;
                w.symptoms.push(label);
            }
            _ => windows.push(LossWindow {
                start_ns: e.t_ns,
                end_ns: e.t_ns,
                lost_items: lost,
                symptoms: vec![label],
                causes: Vec::new(),
            }),
        }
    }

    // Phase 2: attach cause chains from the lookback horizon.
    for w in &mut windows {
        let horizon = w.start_ns.saturating_sub(CAUSE_LOOKBACK_NS);
        for ep in &episodes {
            if ep.end_ns >= horizon && ep.start_ns <= w.end_ns {
                w.causes.push(format!(
                    "{} injected commit fault(s) {:.3}\u{2013}{:.3}s",
                    ep.count,
                    secs(ep.start_ns),
                    secs(ep.end_ns)
                ));
            }
        }
        for &e in &timeline {
            if e.t_ns < horizon || e.t_ns > w.end_ns {
                continue;
            }
            if let Some(label) = cause(e) {
                w.causes.push(label);
            }
        }
        w.causes.dedup();
    }

    // Phase 3: global findings.
    let mut findings: Vec<Finding> = Vec::new();

    let total_faults: u64 = episodes.iter().map(|ep| ep.count).sum();
    if total_faults > 0 {
        findings.push(Finding {
            severity: Severity::Warning,
            title: format!(
                "{total_faults} commit fault(s) injected across {} episode(s)",
                episodes.len()
            ),
            evidence: episodes
                .iter()
                .map(|ep| {
                    format!(
                        "{} fault(s) {:.3}\u{2013}{:.3}s",
                        ep.count,
                        secs(ep.start_ns),
                        secs(ep.end_ns)
                    )
                })
                .collect(),
        });
    }

    for e in &timeline {
        if e.kind == EventKind::ResizeFallback {
            let retries = timeline
                .iter()
                .filter(|r| {
                    r.kind == EventKind::ResizeRetry
                        && r.t_ns <= e.t_ns
                        && e.t_ns.saturating_sub(r.t_ns) <= CAUSE_LOOKBACK_NS
                })
                .count();
            findings.push(Finding {
                severity: Severity::Critical,
                title: format!(
                    "resize fell back at {:.3}s: wanted {} blocks, kept {}",
                    secs(e.t_ns),
                    e.a,
                    e.b
                ),
                evidence: vec![format!("{retries} retry attempt(s) in the preceding horizon")],
            });
        }
        if e.kind == EventKind::EbrStall {
            findings.push(Finding {
                severity: Severity::Warning,
                title: format!(
                    "shrink reclamation stalled {:.1}ms at {:.3}s",
                    e.a as f64 / 1e6,
                    secs(e.t_ns)
                ),
                evidence: vec![format!("waiting on grace epoch {}", e.b)],
            });
        }
    }

    if let Some(snap) = snapshot {
        let sticky: u64 = degraded::ALL
            .iter()
            .filter(|i| i.sticky && snap.degraded_bits & i.bit != 0)
            .map(|i| i.bit)
            .sum();
        if sticky != 0 {
            findings.push(Finding {
                severity: Severity::Critical,
                title: format!("sticky degradation bits set: {}", degraded::describe(sticky)),
                evidence: vec![format!(
                    "commit_failures={} resize_fallbacks={} lock_recoveries={}",
                    snap.commit_failures, snap.resize_fallbacks, snap.lock_recoveries
                )],
            });
        } else if snap.degraded_bits != 0 {
            findings.push(Finding {
                severity: Severity::Warning,
                title: format!(
                    "self-healing degradation active: {}",
                    degraded::describe(snap.degraded_bits)
                ),
                evidence: Vec::new(),
            });
        }
        if snap.skips > 0 {
            findings.push(Finding {
                severity: Severity::Warning,
                title: format!("{} block skip(s) recorded by the tracer", snap.skips),
                evidence: vec![format!(
                    "skip rate {:.4}, mean occupancy {:.1}%",
                    snap.skip_rate,
                    snap.mean_occupancy * 100.0
                )],
            });
        }
    }

    if let Some(m) = dump {
        if m.loss_rate > 0.0 {
            findings.push(Finding {
                severity: Severity::Critical,
                title: format!(
                    "dump confirms loss: {:.2}% of the stamp range missing across {} fragment(s)",
                    m.loss_rate * 100.0,
                    m.fragments
                ),
                evidence: vec![format!(
                    "{} events retained, latest fragment {} bytes (effectivity {:.2})",
                    m.retained_events, m.latest_fragment_bytes, m.effectivity_ratio
                )],
            });
        } else {
            findings.push(Finding {
                severity: Severity::Info,
                title: format!("dump is gap-free: {} events, 1 fragment", m.retained_events),
                evidence: Vec::new(),
            });
        }
    }

    let healthy = windows.is_empty() && findings.iter().all(|f| f.severity == Severity::Info);
    if healthy {
        findings.push(Finding {
            severity: Severity::Info,
            title: "no loss events in the recorded window".to_string(),
            evidence: Vec::new(),
        });
    }
    findings.sort_by_key(|f| std::cmp::Reverse(f.severity));

    Diagnosis { findings, loss_windows: windows, events_examined: events.len(), healthy }
}

impl Diagnosis {
    /// The one-word status line: `healthy`, `degraded`, or `losing-data`.
    pub fn status(&self) -> &'static str {
        if !self.loss_windows.is_empty() {
            "losing-data"
        } else if self.healthy {
            "healthy"
        } else {
            "degraded"
        }
    }

    /// The human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "btrace doctor \u{2014} {} recorder event(s) examined\nstatus: {} ({} loss window(s), {} finding(s))\n",
            self.events_examined,
            self.status(),
            self.loss_windows.len(),
            self.findings.len()
        ));
        out.push_str("\nfindings:\n");
        for f in &self.findings {
            out.push_str(&format!("  [{}] {}\n", f.severity.label(), f.title));
            for line in &f.evidence {
                out.push_str(&format!("      {line}\n"));
            }
        }
        if !self.loss_windows.is_empty() {
            out.push_str("\nloss windows:\n");
            for w in &self.loss_windows {
                out.push_str(&format!("  {}\n", w.headline()));
                for s in &w.symptoms {
                    out.push_str(&format!("      symptom: {s}\n"));
                }
                out.push_str(&format!("      cause chain: {}\n", w.chain()));
            }
        }
        out
    }

    /// The machine-readable report (`btrace doctor --json`).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("status".into(), Json::Str(self.status().into())),
            ("events_examined".into(), Json::from_u64(self.events_examined as u64)),
            (
                "findings".into(),
                Json::Arr(
                    self.findings
                        .iter()
                        .map(|f| {
                            Json::Obj(vec![
                                ("severity".into(), Json::Str(f.severity.label().into())),
                                ("title".into(), Json::Str(f.title.clone())),
                                (
                                    "evidence".into(),
                                    Json::Arr(f.evidence.iter().cloned().map(Json::Str).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "loss_windows".into(),
                Json::Arr(
                    self.loss_windows
                        .iter()
                        .map(|w| {
                            Json::Obj(vec![
                                ("start_s".into(), Json::from_f64(secs(w.start_ns))),
                                ("end_s".into(), Json::from_f64(secs(w.end_ns))),
                                ("lost_items".into(), Json::from_u64(w.lost_items)),
                                (
                                    "symptoms".into(),
                                    Json::Arr(w.symptoms.iter().cloned().map(Json::Str).collect()),
                                ),
                                (
                                    "causes".into(),
                                    Json::Arr(w.causes.iter().cloned().map(Json::Str).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t_ms: u64, kind: EventKind, source: u32, a: u64, b: u64) -> RecordedEvent {
        RecordedEvent { seq: 0, shard: 0, t_ns: t_ms * 1_000_000, kind, source, a, b }
    }

    /// The canned fault-storm timeline: faults → retries → fallback →
    /// skip storm. The golden shape of a degraded run.
    fn storm_timeline() -> Vec<RecordedEvent> {
        vec![
            ev(2000, EventKind::ResizeBegin, 0, 64, 128),
            ev(2081, EventKind::FaultInjected, 0, 1, 1),
            ev(2082, EventKind::ResizeRetry, 0, 1, 100),
            ev(2086, EventKind::FaultInjected, 0, 2, 2),
            ev(2087, EventKind::ResizeRetry, 0, 2, 200),
            ev(2090, EventKind::FaultInjected, 0, 3, 3),
            ev(2091, EventKind::ResizeRetry, 0, 3, 400),
            ev(2093, EventKind::FaultInjected, 0, 4, 4),
            ev(2095, EventKind::ResizeFallback, 0, 128, 64),
            ev(2095, EventKind::StateSet, 0, degraded::COMMIT_FAILED, degraded::COMMIT_FAILED),
            ev(2103, EventKind::SkipStorm, 1, 187, 10_000_000),
            ev(2290, EventKind::SkipStorm, 1, 201, 10_000_000),
        ]
    }

    #[test]
    fn golden_fault_storm_report() {
        let d = diagnose(&storm_timeline(), None, None);
        assert_eq!(d.status(), "losing-data");
        assert!(!d.healthy);
        assert_eq!(d.loss_windows.len(), 1, "storms 187ms apart merge: {d:?}");
        let w = &d.loss_windows[0];
        assert_eq!(w.lost_items, 388);
        assert_eq!((w.start_ns, w.end_ns), (2_103_000_000, 2_290_000_000));
        let chain = w.chain();
        assert!(chain.contains("4 injected commit fault(s)"), "chain: {chain}");
        assert!(chain.contains("resize fallback: wanted 128 blocks, kept 64"), "chain: {chain}");
        let report = d.render();
        assert!(report.contains("loss window 2.103\u{2013}2.290s: ~388 items lost"), "{report}");
        assert!(report.contains("[critical] resize fell back at 2.095s"), "{report}");
    }

    #[test]
    fn golden_report_json_shape() {
        let d = diagnose(&storm_timeline(), None, None);
        let json = d.to_json();
        let text = json.render();
        let parsed = Json::parse(&text).expect("doctor json parses back");
        assert_eq!(parsed.get("status").and_then(|s| s.as_str()), Some("losing-data"));
        let windows = parsed.get("loss_windows").and_then(|w| w.as_arr()).unwrap();
        assert_eq!(windows.len(), 1);
        assert_eq!(windows[0].get("lost_items").and_then(|l| l.as_u64()), Some(388));
        assert!(!windows[0].get("causes").and_then(|c| c.as_arr()).unwrap().is_empty());
    }

    #[test]
    fn controller_actions_join_the_cause_chain() {
        // A launch spike overwhelms an auto-sized buffer: the controller
        // observes loss, grows twice, hits the budget, and the remaining
        // loss window must name all three actions as part of its story.
        let events = vec![
            ev(1000, EventKind::CtrlObserve, 0, 42_000, 310),
            ev(1001, EventKind::CtrlResize, 1, 2_097_152, 1_048_576),
            ev(1400, EventKind::CtrlObserve, 0, 35_000, 940),
            ev(1401, EventKind::CtrlBudgetClamp, 0, 4_194_304, 3_145_728),
            ev(1402, EventKind::CtrlResize, 1, 3_145_728, 2_097_152),
            ev(1600, EventKind::CtrlBackoff, 0, 8, 2),
            ev(1700, EventKind::SkipStorm, 2, 64, 10_000_000),
        ];
        let d = diagnose(&events, None, None);
        assert_eq!(d.loss_windows.len(), 1);
        let chain = d.loss_windows[0].chain();
        assert!(
            chain.contains("controller grew buffer 1048576 -> 2097152 bytes"),
            "chain: {chain}"
        );
        assert!(
            chain.contains("controller budget clamp: wanted 4194304 bytes, held to 3145728"),
            "chain: {chain}"
        );
        assert!(
            chain.contains("controller backed off resizing (8 tick cooldown after 2 failure(s))"),
            "chain: {chain}"
        );
        // Observations are heartbeat, not cause: they stay out.
        assert!(!chain.contains("loss_ppm"), "chain: {chain}");
    }

    #[test]
    fn healthy_timeline_reports_healthy() {
        let events = vec![
            ev(100, EventKind::StageEnter, 0, 1, 0),
            ev(101, EventKind::StageExit, 0, 1, 900_000),
            ev(500, EventKind::ResizeBegin, 0, 64, 128),
            ev(505, EventKind::ResizeCommit, 0, 128, 5_000_000),
        ];
        let d = diagnose(&events, None, None);
        assert!(d.healthy);
        assert_eq!(d.status(), "healthy");
        assert!(d.loss_windows.is_empty());
        assert!(d.render().contains("no loss events"));
    }

    #[test]
    fn distant_storms_form_separate_windows() {
        let events = vec![
            ev(1000, EventKind::SkipStorm, 0, 20, 10_000_000),
            ev(5000, EventKind::SkipStorm, 0, 30, 10_000_000),
        ];
        let d = diagnose(&events, None, None);
        assert_eq!(d.loss_windows.len(), 2);
        assert_eq!(d.loss_windows[0].lost_items, 20);
        assert_eq!(d.loss_windows[1].lost_items, 30);
        assert!(d.loss_windows[0].chain().contains("no control-plane cause"));
    }

    #[test]
    fn snapshot_and_dump_evidence_are_graded() {
        let snap = HealthSnapshot {
            degraded_bits: degraded::COMMIT_FAILED,
            commit_failures: 4,
            skips: 12,
            ..HealthSnapshot::default()
        };
        let mut dump = Metrics::empty();
        dump.loss_rate = 0.25;
        dump.fragments = 7;
        dump.retained_events = 900;
        let d = diagnose(&[], Some(&snap), Some(&dump));
        assert_eq!(d.status(), "degraded");
        let titles: Vec<&str> = d.findings.iter().map(|f| f.title.as_str()).collect();
        assert!(titles.iter().any(|t| t.contains("sticky degradation bits")), "{titles:?}");
        assert!(titles.iter().any(|t| t.contains("dump confirms loss")), "{titles:?}");
        // Critical findings sort first.
        assert_eq!(d.findings[0].severity, Severity::Critical);
    }
}
