//! Minimal fixed-width table rendering for the benchmark binaries that
//! regenerate the paper's tables on stdout.

use std::fmt::Write as _;

/// A simple left-aligned text table.
///
/// # Examples
///
/// ```rust
/// use btrace_analysis::Table;
///
/// let mut t = Table::new(vec!["Tracer".into(), "Latency".into()]);
/// t.row(vec!["BTrace".into(), "53 ns".into()]);
/// let text = t.render();
/// assert!(text.contains("BTrace"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(header: Vec<String>) -> Self {
        Self { header, rows: Vec::new() }
    }

    /// Appends a row. Short rows are padded with empty cells; long rows
    /// extend the column count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Renders with aligned columns and a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.rows.iter().map(Vec::len).chain([self.header.len()]).max().unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for row in std::iter::once(&self.header).chain(self.rows.iter()) {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let emit = |row: &[String], out: &mut String| {
            for (i, width) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                let _ = write!(out, "{cell:<width$}  ");
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        emit(&self.header, &mut out);
        let total: usize = widths.iter().map(|w| w + 2).sum::<usize>().saturating_sub(2);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            emit(row, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a".into(), "bb".into()]);
        t.row(vec!["xxxx".into(), "y".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a     bb"));
        assert!(lines[2].starts_with("xxxx  y"));
    }

    #[test]
    fn ragged_rows_are_padded() {
        let mut t = Table::new(vec!["h".into()]);
        t.row(vec!["1".into(), "2".into(), "3".into()]);
        t.row(vec![]);
        let text = t.render();
        assert_eq!(text.lines().count(), 4);
    }
}
