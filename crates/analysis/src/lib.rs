//! # btrace-analysis — readout metrics for the BTrace evaluation
//!
//! Computes the four quantities of the paper's Table 2 from a drained trace
//! plus the latency distributions of Fig. 11 and the retention gap maps of
//! Fig. 1:
//!
//! * **latest fragment** — the most recent sequence of retained events with
//!   no interior drops, in bytes (§1, §5.2);
//! * **loss rate** — the fraction of events missing between the oldest and
//!   newest retained event (§5.2);
//! * **fragments** — the number of maximal contiguous runs in the retained
//!   trace, a proxy for how many *indistinguishable small gaps* a developer
//!   would face (§2.2);
//! * **effectivity ratio** — latest fragment over total buffer capacity
//!   (§2.2, Fig. 5).
//!
//! Events are identified by the unique, monotonically increasing logic
//! stamps the replayer assigns at record time (§5 "replaying setup"), so a
//! missing stamp is a dropped event by construction.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod breakdown;
mod doctor;
mod gapmap;
mod metrics;
pub mod parallel;
mod stats;
mod table;

pub use breakdown::{by_core, by_thread, core_skew, GroupStats};
pub use doctor::{diagnose, Diagnosis, Finding, LossWindow, Severity};
pub use gapmap::{gap_map, GapMapOptions};
pub use metrics::{analyze, Metrics};
pub use parallel::{
    fold_merge, map_reduce, tree_merge, GapMapPartial, GroupPartial, LatencyPartial,
    MetricsPartial, TraceAnalysis, TracePartial,
};
pub use stats::{geometric_mean, percentile, BoxStats, LatencyStats};
pub use table::Table;
