//! Fragment-parallel analysis: per-fragment `map` partials with associative
//! `merge` for every pass in this crate, plus a small `std::thread::scope`
//! map-reduce pool.
//!
//! Every partial in this module is a **monoid homomorphism** over event
//! slices: for any split of an event sequence into fragments `A ++ B`,
//!
//! ```text
//! map(A ++ B) == merge(map(A), map(B))
//! ```
//!
//! and `merge` is associative, so folding per-fragment partials in fragment
//! order produces *bit-identical* results to a single sequential pass no
//! matter how the work was scheduled across threads. The sequential entry
//! points (`analyze`, `gap_map`, `by_core`, …) are themselves implemented as
//! `map(whole).finish()`, so there is exactly one code path to trust.
//!
//! Where the underlying data admits ties (duplicate stamps carrying
//! different byte counts, which a defensive consumer can produce by
//! delivering a block twice around a resize), the monoid fixes a canonical
//! resolution — the **smallest** stored byte count wins — because `min` is
//! associative while "whichever an unstable sort left first" is not.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use btrace_core::sink::CollectedEvent;

use crate::{GapMapOptions, GroupStats, LatencyStats, Metrics};

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

/// Maps `items` to partials on up to `threads` scoped worker threads and
/// returns the results **in item order** (the schedule never leaks into the
/// output). `threads <= 1` degenerates to a plain sequential loop on the
/// calling thread — the parallel and sequential paths share `map`.
///
/// Work is claimed from a shared atomic index, so uneven items still
/// balance: a worker that finishes a cheap fragment immediately steals the
/// next unclaimed one.
pub fn map_reduce<T, P, F>(items: &[T], threads: usize, map: F) -> Vec<P>
where
    T: Sync,
    P: Send,
    F: Fn(usize, &T) -> P + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, item)| map(i, item)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<P>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let partial = map(i, &items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(partial);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("result slot poisoned").expect("worker filled slot"))
        .collect()
}

/// Left-folds partials **in order** with an associative `merge`. Returns
/// `None` for an empty input. Keeping the fold ordered (even though `merge`
/// is associative) makes the reduction deterministic by inspection.
pub fn fold_merge<P>(parts: Vec<P>, mut merge: impl FnMut(P, P) -> P) -> Option<P> {
    let mut iter = parts.into_iter();
    let first = iter.next()?;
    Some(iter.fold(first, &mut merge))
}

/// Balanced pairwise reduction of partials with an associative `merge`.
/// Returns `None` for an empty input.
///
/// Produces the same result as [`fold_merge`] (associativity), but each
/// partial participates in O(log n) merges instead of up to n — the right
/// shape when there are *many* small partials (e.g. one per frame) and
/// `merge` copies its operands, where a linear fold over a growing
/// accumulator turns quadratic. Adjacent pairing preserves operand order,
/// so order-sensitive merges stay deterministic by inspection too.
pub fn tree_merge<P>(mut parts: Vec<P>, mut merge: impl FnMut(P, P) -> P) -> Option<P> {
    if parts.is_empty() {
        return None;
    }
    while parts.len() > 1 {
        let mut next = Vec::with_capacity(parts.len().div_ceil(2));
        let mut iter = parts.into_iter();
        while let Some(a) = iter.next() {
            match iter.next() {
                Some(b) => next.push(merge(a, b)),
                None => next.push(a),
            }
        }
        parts = next;
    }
    parts.pop()
}

// ---------------------------------------------------------------------------
// Metrics monoid
// ---------------------------------------------------------------------------

/// Per-fragment partial for [`crate::analyze`]: the fragment's retained
/// stamps, sorted and deduplicated, each carrying its stored byte count.
///
/// Duplicate stamps resolve to the smallest byte count (see module docs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsPartial {
    /// Sorted by stamp, no duplicate stamps.
    entries: Vec<(u64, u32)>,
}

impl MetricsPartial {
    /// Maps one fragment's events to a partial.
    pub fn map(events: &[CollectedEvent]) -> Self {
        let mut entries: Vec<(u64, u32)> =
            events.iter().map(|e| (e.stamp, e.stored_bytes)).collect();
        // Sorting by (stamp, bytes) puts the smallest byte count first in
        // every equal-stamp run, so the first-wins dedup below implements
        // the canonical min-bytes rule.
        entries.sort_unstable();
        entries.dedup_by_key(|&mut (stamp, _)| stamp);
        Self { entries }
    }

    /// Associative merge: sorted multiset union with min-bytes on stamp
    /// collisions.
    pub fn merge(self, other: Self) -> Self {
        if self.entries.is_empty() {
            return other;
        }
        if other.entries.is_empty() {
            return self;
        }
        let mut out = Vec::with_capacity(self.entries.len() + other.entries.len());
        let mut a = self.entries.into_iter().peekable();
        let mut b = other.entries.into_iter().peekable();
        while let (Some(&(sa, ba)), Some(&(sb, bb))) = (a.peek(), b.peek()) {
            match sa.cmp(&sb) {
                std::cmp::Ordering::Less => out.push(a.next().expect("peeked")),
                std::cmp::Ordering::Greater => out.push(b.next().expect("peeked")),
                std::cmp::Ordering::Equal => {
                    out.push((sa, ba.min(bb)));
                    a.next();
                    b.next();
                }
            }
        }
        out.extend(a);
        out.extend(b);
        Self { entries: out }
    }

    /// Finishes the reduction into [`Metrics`]. Identical arithmetic to the
    /// historical sequential `analyze` (which now delegates here).
    pub fn finish(&self, capacity_bytes: usize) -> Metrics {
        let sorted = &self.entries;
        if sorted.is_empty() {
            return Metrics::empty();
        }
        let retained_events = sorted.len();
        let retained_bytes: u64 = sorted.iter().map(|&(_, b)| b as u64).sum();

        let mut fragments = 1usize;
        let mut last_run_start = 0usize;
        for i in 1..sorted.len() {
            if sorted[i].0 != sorted[i - 1].0 + 1 {
                fragments += 1;
                last_run_start = i;
            }
        }
        let latest = &sorted[last_run_start..];
        let latest_fragment_bytes: u64 = latest.iter().map(|&(_, b)| b as u64).sum();

        let oldest = sorted.first().expect("non-empty").0;
        let newest = sorted.last().expect("non-empty").0;
        let range = newest - oldest + 1;
        let loss_rate = (range - retained_events as u64) as f64 / range as f64;

        Metrics {
            retained_events,
            retained_bytes,
            latest_fragment_bytes,
            latest_fragment_events: latest.len(),
            fragments,
            loss_rate,
            effectivity_ratio: if capacity_bytes == 0 {
                0.0
            } else {
                latest_fragment_bytes as f64 / capacity_bytes as f64
            },
        }
    }

    /// The deduplicated retained stamps, sorted ascending.
    pub fn stamps(&self) -> impl Iterator<Item = u64> + '_ {
        self.entries.iter().map(|&(stamp, _)| stamp)
    }

    /// Newest retained stamp, if any.
    pub fn newest(&self) -> Option<u64> {
        self.entries.last().map(|&(stamp, _)| stamp)
    }

    /// Number of deduplicated retained events.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the partial holds no events.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Breakdown monoid
// ---------------------------------------------------------------------------

/// Per-fragment partial for the per-core / per-thread breakdowns. Keys map
/// to running [`GroupStats`]; merge is field-wise (`+`, `min`, `max`), all
/// associative and commutative.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GroupPartial {
    groups: BTreeMap<u32, GroupStats>,
}

impl GroupPartial {
    /// Maps one fragment's events keyed by core index.
    pub fn by_core(events: &[CollectedEvent]) -> Self {
        Self::map(events, |e| e.core as u32)
    }

    /// Maps one fragment's events keyed by thread id.
    pub fn by_thread(events: &[CollectedEvent]) -> Self {
        Self::map(events, |e| e.tid)
    }

    fn map(events: &[CollectedEvent], key: impl Fn(&CollectedEvent) -> u32) -> Self {
        let mut groups: BTreeMap<u32, GroupStats> = BTreeMap::new();
        for e in events {
            let k = key(e);
            let entry = groups.entry(k).or_insert(GroupStats {
                key: k,
                events: 0,
                bytes: 0,
                oldest: u64::MAX,
                newest: 0,
            });
            entry.events += 1;
            entry.bytes += e.stored_bytes as u64;
            entry.oldest = entry.oldest.min(e.stamp);
            entry.newest = entry.newest.max(e.stamp);
        }
        Self { groups }
    }

    /// Associative merge of two partials.
    pub fn merge(mut self, other: Self) -> Self {
        for (k, g) in other.groups {
            match self.groups.entry(k) {
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(g);
                }
                std::collections::btree_map::Entry::Occupied(mut slot) => {
                    let mine = slot.get_mut();
                    mine.events += g.events;
                    mine.bytes += g.bytes;
                    mine.oldest = mine.oldest.min(g.oldest);
                    mine.newest = mine.newest.max(g.newest);
                }
            }
        }
        self
    }

    /// Finishes into the [`crate::by_core`] ordering: ascending by key.
    pub fn finish_by_key(&self) -> Vec<GroupStats> {
        self.groups.values().copied().collect()
    }

    /// Finishes into the [`crate::by_thread`] ordering: descending by event
    /// count (ties broken by key), truncated to the `top` busiest groups.
    pub fn finish_hot(&self, top: usize) -> Vec<GroupStats> {
        let mut all: Vec<GroupStats> = self.groups.values().copied().collect();
        all.sort_by(|a, b| b.events.cmp(&a.events).then(a.key.cmp(&b.key)));
        all.truncate(top);
        all
    }

    /// Max-over-min event-count skew across groups, as in
    /// [`crate::core_skew`]; `None` with fewer than two groups.
    pub fn skew(&self) -> Option<f64> {
        if self.groups.len() < 2 {
            return None;
        }
        let max = self.groups.values().map(|g| g.events).max()? as f64;
        let min = self.groups.values().map(|g| g.events).min()?.max(1) as f64;
        Some(max / min)
    }
}

// ---------------------------------------------------------------------------
// Gap-map monoid
// ---------------------------------------------------------------------------

/// Per-fragment partial for [`crate::gap_map`]: bucket hit counts over a
/// fixed `(newest_written, options)` window. Merging partials adds counts
/// element-wise — associative and commutative — so the rendered map is
/// independent of fragmentation.
///
/// The window parameters are fixed at construction: all partials that merge
/// must share them (checked with `assert_eq!`; mixing windows is a
/// programming error, not a data defect).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GapMapPartial {
    newest_written: u64,
    options: GapMapOptions,
    buckets: Vec<u64>,
}

impl GapMapPartial {
    /// Creates an empty partial for the given window.
    pub fn new(newest_written: u64, options: GapMapOptions) -> Self {
        let width = if options.window == 0 { 0 } else { options.width };
        Self { newest_written, options, buckets: vec![0; width] }
    }

    /// Maps one fragment's retained stamps.
    pub fn map(
        stamps: impl IntoIterator<Item = u64>,
        newest_written: u64,
        options: GapMapOptions,
    ) -> Self {
        let mut p = Self::new(newest_written, options);
        p.accumulate(stamps);
        p
    }

    /// Adds retained stamps to the bucket counts; stamps outside the window
    /// are ignored.
    pub fn accumulate(&mut self, stamps: impl IntoIterator<Item = u64>) {
        let GapMapOptions { window, width } = self.options;
        if width == 0 || window == 0 {
            return;
        }
        let start = self.newest_written.saturating_sub(window - 1);
        for stamp in stamps {
            if stamp < start || stamp > self.newest_written {
                continue;
            }
            let idx = ((stamp - start) * width as u64 / window) as usize;
            self.buckets[idx.min(width - 1)] += 1;
        }
    }

    /// Associative merge: element-wise bucket addition.
    ///
    /// # Panics
    ///
    /// Panics when the two partials were built for different windows.
    pub fn merge(mut self, other: Self) -> Self {
        assert_eq!(self.newest_written, other.newest_written, "gap-map window mismatch");
        assert_eq!(self.options, other.options, "gap-map options mismatch");
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets) {
            *mine += theirs;
        }
        self
    }

    /// Renders the merged buckets into the Fig. 1 retention row.
    pub fn render(&self) -> String {
        let GapMapOptions { window, width } = self.options;
        if width == 0 || window == 0 {
            return String::new();
        }
        let per_bucket_lo = window / width as u64; // bucket sizes differ by at most 1
        self.buckets
            .iter()
            .map(|&count| {
                let full = per_bucket_lo.max(1);
                let frac = count as f64 / full as f64;
                if frac >= 1.0 {
                    '█'
                } else if frac >= 0.66 {
                    '▓'
                } else if frac >= 0.33 {
                    '▒'
                } else if count > 0 {
                    '░'
                } else {
                    '·'
                }
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Latency monoid
// ---------------------------------------------------------------------------

/// Per-fragment partial for [`LatencyStats`]: the fragment's samples kept
/// sorted; merge is a sorted merge, so the reduced sample is exactly the
/// sorted concatenation regardless of fragmentation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyPartial {
    sorted: Vec<u64>,
}

impl LatencyPartial {
    /// Maps one fragment's latency samples.
    pub fn map(samples: &[u64]) -> Self {
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        Self { sorted }
    }

    /// Associative merge of two sorted samples.
    pub fn merge(self, other: Self) -> Self {
        if self.sorted.is_empty() {
            return other;
        }
        if other.sorted.is_empty() {
            return self;
        }
        let mut out = Vec::with_capacity(self.sorted.len() + other.sorted.len());
        let mut a = self.sorted.into_iter().peekable();
        let mut b = other.sorted.into_iter().peekable();
        while let (Some(&va), Some(&vb)) = (a.peek(), b.peek()) {
            if va <= vb {
                out.push(a.next().expect("peeked"));
            } else {
                out.push(b.next().expect("peeked"));
            }
        }
        out.extend(a);
        out.extend(b);
        Self { sorted: out }
    }

    /// Finishes into [`LatencyStats`] — identical to
    /// [`LatencyStats::from_samples`] on the concatenated sample.
    pub fn finish(&self) -> LatencyStats {
        LatencyStats::from_sorted(&self.sorted)
    }

    /// Number of samples held.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when no samples are held.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Combined one-pass partial
// ---------------------------------------------------------------------------

/// Everything the standard readout needs, mapped in one pass per fragment:
/// retention metrics, per-core and per-thread breakdowns.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TracePartial {
    /// Retention-metrics partial.
    pub metrics: MetricsPartial,
    /// Per-core breakdown partial.
    pub cores: GroupPartial,
    /// Per-thread breakdown partial.
    pub threads: GroupPartial,
}

impl TracePartial {
    /// Maps one fragment's events.
    pub fn map(events: &[CollectedEvent]) -> Self {
        Self {
            metrics: MetricsPartial::map(events),
            cores: GroupPartial::by_core(events),
            threads: GroupPartial::by_thread(events),
        }
    }

    /// Associative merge of two fragment partials.
    pub fn merge(self, other: Self) -> Self {
        Self {
            metrics: self.metrics.merge(other.metrics),
            cores: self.cores.merge(other.cores),
            threads: self.threads.merge(other.threads),
        }
    }

    /// Finishes the reduction into a [`TraceAnalysis`].
    pub fn finish(&self, capacity_bytes: usize, top_threads: usize) -> TraceAnalysis {
        TraceAnalysis {
            metrics: self.metrics.finish(capacity_bytes),
            per_core: self.cores.finish_by_key(),
            per_thread: self.threads.finish_hot(top_threads),
            core_skew: self.cores.skew(),
        }
    }
}

/// The finished standard readout: what [`crate::analyze`], [`crate::by_core`],
/// [`crate::by_thread`] and [`crate::core_skew`] would report sequentially.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct TraceAnalysis {
    /// Retention metrics (Table 2).
    pub metrics: Metrics,
    /// Per-core aggregates, ascending by core index.
    pub per_core: Vec<GroupStats>,
    /// Hottest threads, descending by event count.
    pub per_thread: Vec<GroupStats>,
    /// Max-over-min per-core event skew.
    pub core_skew: Option<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, by_core, by_thread, core_skew, gap_map};

    fn ev(stamp: u64, core: u16, tid: u32, bytes: u32) -> CollectedEvent {
        CollectedEvent { stamp, core, tid, stored_bytes: bytes }
    }

    fn sample_events() -> Vec<CollectedEvent> {
        // Two runs with a gap, multiple cores/threads, one duplicate stamp.
        let mut events: Vec<CollectedEvent> = (0..40)
            .chain(55..90)
            .map(|s| ev(s, (s % 3) as u16, 100 + (s % 5) as u32, 16 + (s % 7) as u32))
            .collect();
        events.push(ev(60, 1, 103, 16 + 60 % 7));
        events
    }

    #[test]
    fn tree_merge_matches_fold_merge() {
        let events = sample_events();
        for chunk in [1, 2, 3, 7, events.len()] {
            let parts: Vec<TracePartial> = events.chunks(chunk).map(TracePartial::map).collect();
            let folded = fold_merge(parts.clone(), TracePartial::merge).unwrap();
            let treed = tree_merge(parts, TracePartial::merge).unwrap();
            assert_eq!(treed, folded, "chunk size {chunk}");
        }
        assert!(tree_merge(Vec::<TracePartial>::new(), TracePartial::merge).is_none());
    }

    #[test]
    fn metrics_map_merge_matches_whole() {
        let events = sample_events();
        for split in [0, 1, 17, 40, events.len()] {
            let (a, b) = events.split_at(split);
            let merged = MetricsPartial::map(a).merge(MetricsPartial::map(b));
            assert_eq!(merged, MetricsPartial::map(&events), "split at {split}");
            assert_eq!(merged.finish(4096), analyze(&events, 4096));
        }
    }

    #[test]
    fn metrics_merge_is_associative() {
        let events = sample_events();
        let (a, rest) = events.split_at(20);
        let (b, c) = rest.split_at(30);
        let (pa, pb, pc) = (MetricsPartial::map(a), MetricsPartial::map(b), MetricsPartial::map(c));
        let left = pa.clone().merge(pb.clone()).merge(pc.clone());
        let right = pa.merge(pb.merge(pc));
        assert_eq!(left, right);
    }

    #[test]
    fn duplicate_stamps_resolve_to_min_bytes() {
        let a = [ev(5, 0, 0, 32)];
        let b = [ev(5, 1, 1, 8)];
        let m = MetricsPartial::map(&a).merge(MetricsPartial::map(&b));
        assert_eq!(m.finish(64).retained_bytes, 8);
        // Same answer regardless of merge order or of mapping them together.
        let m2 = MetricsPartial::map(&b).merge(MetricsPartial::map(&a));
        let together = MetricsPartial::map(&[a[0], b[0]]);
        assert_eq!(m, m2);
        assert_eq!(m, together);
    }

    #[test]
    fn group_partial_matches_sequential() {
        let events = sample_events();
        let (a, b) = events.split_at(33);
        let merged = GroupPartial::by_core(a).merge(GroupPartial::by_core(b));
        assert_eq!(merged.finish_by_key(), by_core(&events));
        assert_eq!(merged.skew(), core_skew(&events));
        let threads = GroupPartial::by_thread(a).merge(GroupPartial::by_thread(b));
        assert_eq!(threads.finish_hot(3), by_thread(&events, 3));
    }

    #[test]
    fn gap_map_partial_matches_sequential() {
        let events = sample_events();
        let stamps: Vec<u64> = events.iter().map(|e| e.stamp).collect();
        let opts = GapMapOptions { window: 90, width: 12 };
        let (a, b) = stamps.split_at(41);
        let merged = GapMapPartial::map(a.iter().copied(), 89, opts).merge(GapMapPartial::map(
            b.iter().copied(),
            89,
            opts,
        ));
        assert_eq!(merged.render(), gap_map(&stamps, 89, opts));
    }

    #[test]
    fn latency_partial_matches_from_samples() {
        let samples: Vec<u64> = (0..500).map(|i| (i * 7919) % 1000).collect();
        let (a, b) = samples.split_at(123);
        let merged = LatencyPartial::map(a).merge(LatencyPartial::map(b));
        assert_eq!(merged.finish(), LatencyStats::from_samples(samples.clone()));
    }

    #[test]
    fn map_reduce_returns_in_item_order() {
        let items: Vec<u64> = (0..97).collect();
        for threads in [1, 2, 4, 8] {
            let out = map_reduce(&items, threads, |i, &v| (i as u64, v * 2));
            assert_eq!(out.len(), items.len());
            for (i, &(idx, doubled)) in out.iter().enumerate() {
                assert_eq!(idx, i as u64);
                assert_eq!(doubled, items[i] * 2);
            }
        }
    }

    #[test]
    fn trace_partial_round_trip() {
        let events = sample_events();
        let chunks: Vec<&[CollectedEvent]> = events.chunks(13).collect();
        for threads in [1, 3] {
            let parts = map_reduce(&chunks, threads, |_, chunk| TracePartial::map(chunk));
            let reduced = fold_merge(parts, TracePartial::merge).expect("non-empty");
            let finished = reduced.finish(4096, 8);
            assert_eq!(finished.metrics, analyze(&events, 4096));
            assert_eq!(finished.per_core, by_core(&events));
            assert_eq!(finished.per_thread, by_thread(&events, 8));
            assert_eq!(finished.core_skew, core_skew(&events));
        }
    }

    #[test]
    fn fold_merge_empty_is_none() {
        assert!(fold_merge(Vec::<MetricsPartial>::new(), MetricsPartial::merge).is_none());
    }
}
