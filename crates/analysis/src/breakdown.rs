//! Per-core and per-thread breakdowns of a drained trace — the first
//! questions an analyst asks of a dump (which cores produced what, how
//! skewed was the load, which threads dominate).

use btrace_core::sink::CollectedEvent;

/// Aggregates for one core (or one thread).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct GroupStats {
    /// Group key (core index or tid).
    pub key: u32,
    /// Retained events from this group.
    pub events: usize,
    /// Retained bytes from this group.
    pub bytes: u64,
    /// Oldest retained stamp.
    pub oldest: u64,
    /// Newest retained stamp.
    pub newest: u64,
}

/// Per-core aggregates, sorted by core index.
pub fn by_core(events: &[CollectedEvent]) -> Vec<GroupStats> {
    crate::parallel::GroupPartial::by_core(events).finish_by_key()
}

/// Per-thread aggregates, sorted descending by event count (hot threads
/// first). Limited to the `top` busiest threads.
pub fn by_thread(events: &[CollectedEvent], top: usize) -> Vec<GroupStats> {
    crate::parallel::GroupPartial::by_thread(events).finish_hot(top)
}

/// Production-speed skew across cores: max over min of per-core event
/// counts (1.0 when perfectly balanced; `None` with fewer than two cores).
pub fn core_skew(events: &[CollectedEvent]) -> Option<f64> {
    crate::parallel::GroupPartial::by_core(events).skew()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(stamp: u64, core: u16, tid: u32, bytes: u32) -> CollectedEvent {
        CollectedEvent { stamp, core, tid, stored_bytes: bytes }
    }

    #[test]
    fn groups_by_core_with_ranges() {
        let events = vec![ev(1, 0, 10, 32), ev(2, 1, 11, 16), ev(3, 0, 10, 32), ev(9, 0, 12, 8)];
        let cores = by_core(&events);
        assert_eq!(cores.len(), 2);
        assert_eq!(cores[0].key, 0);
        assert_eq!(cores[0].events, 3);
        assert_eq!(cores[0].bytes, 72);
        assert_eq!(cores[0].oldest, 1);
        assert_eq!(cores[0].newest, 9);
        assert_eq!(cores[1].events, 1);
    }

    #[test]
    fn hot_threads_first() {
        let mut events = Vec::new();
        for i in 0..10 {
            events.push(ev(i, 0, 7, 8));
        }
        events.push(ev(100, 0, 3, 8));
        let threads = by_thread(&events, 5);
        assert_eq!(threads[0].key, 7);
        assert_eq!(threads[0].events, 10);
        assert_eq!(threads.len(), 2);
        let limited = by_thread(&events, 1);
        assert_eq!(limited.len(), 1);
    }

    #[test]
    fn skew_and_edge_cases() {
        assert_eq!(core_skew(&[]), None);
        assert_eq!(core_skew(&[ev(1, 0, 0, 8)]), None);
        let balanced = vec![ev(1, 0, 0, 8), ev(2, 1, 0, 8)];
        assert_eq!(core_skew(&balanced), Some(1.0));
        let skewed = vec![ev(1, 0, 0, 8), ev(2, 0, 0, 8), ev(3, 0, 0, 8), ev(4, 1, 0, 8)];
        assert_eq!(core_skew(&skewed), Some(3.0));
    }
}
