//! Latency statistics (Fig. 11) and box-plot summaries (Figs. 6, 10).

/// Geometric mean of a sample, the paper's choice for recording latency "to
/// mitigate the impact of outliers" (§5.2). Zero values are clamped to 1 so
/// a single zero cannot null the product. Returns 0.0 for an empty sample.
pub fn geometric_mean(samples: &[u64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = samples.iter().map(|&v| (v.max(1) as f64).ln()).sum();
    (log_sum / samples.len() as f64).exp()
}

/// The `q`-th percentile (0.0 ..= 100.0) of a sample using linear
/// interpolation. Returns 0.0 for an empty sample.
///
/// # Panics
///
/// Panics when `q` is outside `0.0..=100.0`.
pub fn percentile(sorted: &[u64], q: f64) -> f64 {
    assert!((0.0..=100.0).contains(&q), "percentile out of range: {q}");
    if sorted.is_empty() {
        return 0.0;
    }
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input must be sorted");
    let rank = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo] as f64
    } else {
        let frac = rank - lo as f64;
        sorted[lo] as f64 * (1.0 - frac) + sorted[hi] as f64 * frac
    }
}

/// Summary of a recording-latency sample (Table 2 bottom block, Fig. 11).
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct LatencyStats {
    /// Number of samples.
    pub count: usize,
    /// Geometric mean in nanoseconds.
    pub geomean_ns: f64,
    /// Median.
    pub p50_ns: f64,
    /// 90th percentile.
    pub p90_ns: f64,
    /// 99th percentile.
    pub p99_ns: f64,
    /// Maximum observed.
    pub max_ns: u64,
}

impl LatencyStats {
    /// Computes the summary, consuming (and sorting) the sample.
    pub fn from_samples(mut samples: Vec<u64>) -> Self {
        samples.sort_unstable();
        Self::from_sorted(&samples)
    }

    /// Computes the summary from an already-sorted sample (the merge side of
    /// [`crate::parallel::LatencyPartial`] keeps samples sorted).
    pub fn from_sorted(samples: &[u64]) -> Self {
        debug_assert!(samples.windows(2).all(|w| w[0] <= w[1]), "input must be sorted");
        Self {
            count: samples.len(),
            geomean_ns: geometric_mean(samples),
            p50_ns: percentile(samples, 50.0),
            p90_ns: percentile(samples, 90.0),
            p99_ns: percentile(samples, 99.0),
            max_ns: samples.last().copied().unwrap_or(0),
        }
    }

    /// Cumulative distribution over `points` evenly spaced latency values
    /// up to `max_ns`, as `(latency_ns, fraction ≤ latency)` pairs — the
    /// series plotted in Fig. 11.
    pub fn cdf(sorted_samples: &[u64], points: usize, max_ns: u64) -> Vec<(u64, f64)> {
        if sorted_samples.is_empty() || points == 0 {
            return Vec::new();
        }
        (1..=points)
            .map(|i| {
                let x = max_ns * i as u64 / points as u64;
                let below = sorted_samples.partition_point(|&v| v <= x);
                (x, below as f64 / sorted_samples.len() as f64)
            })
            .collect()
    }
}

/// Five-number summary plus outliers, for the box plots of Figs. 6 and 10.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct BoxStats {
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Lowest sample within `q1 - 1.5·IQR`.
    pub whisker_lo: f64,
    /// Highest sample within `q3 + 1.5·IQR`.
    pub whisker_hi: f64,
    /// Samples outside the whiskers.
    pub outliers: Vec<u64>,
}

impl BoxStats {
    /// Computes the summary, consuming (and sorting) the sample. Returns
    /// `None` for an empty sample.
    pub fn from_samples(mut samples: Vec<u64>) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        samples.sort_unstable();
        let q1 = percentile(&samples, 25.0);
        let median = percentile(&samples, 50.0);
        let q3 = percentile(&samples, 75.0);
        let iqr = q3 - q1;
        let lo_bound = q1 - 1.5 * iqr;
        let hi_bound = q3 + 1.5 * iqr;
        let whisker_lo =
            samples.iter().copied().find(|&v| v as f64 >= lo_bound).unwrap_or(samples[0]) as f64;
        let whisker_hi = samples
            .iter()
            .rev()
            .copied()
            .find(|&v| v as f64 <= hi_bound)
            .unwrap_or(*samples.last().expect("non-empty")) as f64;
        let outliers = samples
            .iter()
            .copied()
            .filter(|&v| (v as f64) < lo_bound || (v as f64) > hi_bound)
            .collect();
        Some(Self { q1, median, q3, whisker_lo, whisker_hi, outliers })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert_eq!(geometric_mean(&[]), 0.0);
        assert!((geometric_mean(&[4, 4, 4]) - 4.0).abs() < 1e-9);
        // GM(1, 100) = 10.
        assert!((geometric_mean(&[1, 100]) - 10.0).abs() < 1e-9);
        // Outlier robustness: one huge sample barely moves the GM.
        let mostly_small = [50u64; 99].iter().copied().chain([50_000]).collect::<Vec<_>>();
        let gm = geometric_mean(&mostly_small);
        assert!(gm < 60.0, "geomean {gm} must stay near the mode");
    }

    #[test]
    fn percentile_interpolates() {
        let s = [10, 20, 30, 40];
        assert_eq!(percentile(&s, 0.0), 10.0);
        assert_eq!(percentile(&s, 100.0), 40.0);
        assert_eq!(percentile(&s, 50.0), 25.0);
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_validates_q() {
        percentile(&[1], 101.0);
    }

    #[test]
    fn latency_stats_summary() {
        let stats = LatencyStats::from_samples((1..=100).collect());
        assert_eq!(stats.count, 100);
        assert_eq!(stats.max_ns, 100);
        assert!((stats.p50_ns - 50.5).abs() < 1e-9);
        assert!(stats.p99_ns > 98.0);
    }

    #[test]
    fn cdf_is_monotone_and_reaches_one() {
        let samples: Vec<u64> = (1..=1000).collect();
        let cdf = LatencyStats::cdf(&samples, 10, 1000);
        assert_eq!(cdf.len(), 10);
        for w in cdf.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn box_stats_flag_outliers() {
        let mut samples: Vec<u64> = (10..=20).collect();
        samples.push(1000);
        let b = BoxStats::from_samples(samples).unwrap();
        assert_eq!(b.outliers, vec![1000]);
        assert!(b.whisker_hi <= 20.0);
        assert!(BoxStats::from_samples(vec![]).is_none());
    }
}
