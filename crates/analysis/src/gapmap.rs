//! ASCII retention maps — the textual rendering of the paper's Fig. 1:
//! for the last `N` written events, which are still retained in the buffer?

/// Options for [`gap_map`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GapMapOptions {
    /// Window of most recent written stamps to visualize.
    pub window: u64,
    /// Output width in characters (each column is a bucket of stamps).
    pub width: usize,
}

impl Default for GapMapOptions {
    fn default() -> Self {
        Self { window: 100_000, width: 80 }
    }
}

/// Renders the retention pattern of the last `options.window` written stamps
/// as one text row, newest to the **right** (as in Fig. 1).
///
/// * `█` — every stamp in the bucket retained
/// * `▓` / `▒` / `░` — decreasing partial retention
/// * `·` — the whole bucket was dropped
///
/// `retained_stamps` need not be sorted. `newest_written` is the largest
/// stamp the workload produced (retention is measured against what was
/// *written*, not what survived).
///
/// # Examples
///
/// ```rust
/// use btrace_analysis::{gap_map, GapMapOptions};
///
/// // Only the second half of a 100-stamp window survived.
/// let retained: Vec<u64> = (50..100).collect();
/// let map = gap_map(&retained, 99, GapMapOptions { window: 100, width: 10 });
/// assert_eq!(map, "·····█████");
/// ```
pub fn gap_map(retained_stamps: &[u64], newest_written: u64, options: GapMapOptions) -> String {
    crate::parallel::GapMapPartial::map(retained_stamps.iter().copied(), newest_written, options)
        .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_retention_is_solid() {
        let retained: Vec<u64> = (0..100).collect();
        let map = gap_map(&retained, 99, GapMapOptions { window: 100, width: 10 });
        assert_eq!(map, "██████████");
    }

    #[test]
    fn empty_retention_is_dots() {
        let map = gap_map(&[], 99, GapMapOptions { window: 100, width: 5 });
        assert_eq!(map, "·····");
    }

    #[test]
    fn interior_gap_shows_in_the_middle() {
        // Drop stamps 40..60 of 0..100.
        let retained: Vec<u64> = (0..40).chain(60..100).collect();
        let map = gap_map(&retained, 99, GapMapOptions { window: 100, width: 10 });
        assert!(map.starts_with("████"));
        assert!(map.ends_with("████"));
        assert!(map.contains('·'));
    }

    #[test]
    fn newest_is_rightmost() {
        // Only the newest 10 of 100 retained -> rightmost column solid.
        let retained: Vec<u64> = (90..100).collect();
        let map = gap_map(&retained, 99, GapMapOptions { window: 100, width: 10 });
        assert_eq!(map.chars().last().unwrap(), '█');
        assert_eq!(map.chars().next().unwrap(), '·');
    }

    #[test]
    fn stamps_outside_window_ignored() {
        let retained: Vec<u64> = (0..1000).collect();
        let map = gap_map(&retained, 1999, GapMapOptions { window: 100, width: 4 });
        // Window covers 1900..=1999, none of which were retained.
        assert_eq!(map, "····");
    }

    #[test]
    fn partial_buckets_use_shading() {
        // Half of each bucket retained.
        let retained: Vec<u64> = (0..100).step_by(2).collect();
        let map = gap_map(&retained, 99, GapMapOptions { window: 100, width: 10 });
        assert!(map.chars().all(|c| c == '▒'), "got {map}");
    }

    #[test]
    fn zero_width_or_window_is_empty() {
        assert_eq!(gap_map(&[1], 10, GapMapOptions { window: 0, width: 10 }), "");
        assert_eq!(gap_map(&[1], 10, GapMapOptions { window: 10, width: 0 }), "");
    }
}
