//! # btrace-smr — epoch-based reclamation for trace consumers
//!
//! BTrace's *producers* never need a safe-memory-reclamation scheme: filling
//! a block is itself the end of an epoch, and the allocate/confirm counters
//! double as reference counts (*implicit reclaiming*, paper §3.3). Consumers,
//! however, are off the critical path, so the paper gives them "a simple EBR
//! directly" (§3.3) and the shrinker "traverses all consumers to ensure they
//! are not in the shrinking epoch and have left" (§4.4). This crate is that
//! simple EBR.
//!
//! * A consumer registers a [`Participant`] with the buffer's [`Domain`] and
//!   wraps every speculative block read in a [`Participant::pin`] guard.
//! * The shrinker calls [`Domain::synchronize`], which advances the global
//!   epoch and waits until every participant has either unpinned or observed
//!   the new epoch — after which no consumer can still hold a reference into
//!   the pages being decommitted.
//!
//! ```rust
//! use btrace_smr::Domain;
//!
//! let domain = Domain::new();
//! let consumer = domain.register();
//! {
//!     let _guard = consumer.pin();
//!     // ... speculatively read trace blocks ...
//! } // unpinned here
//! domain.synchronize(); // returns immediately: nobody is pinned
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

use crossbeam_utils::CachePadded;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Slot value meaning "not currently pinned".
const QUIESCENT: u64 = 0;

struct Slot {
    /// `QUIESCENT`, or the epoch the participant pinned at.
    pinned_at: CachePadded<AtomicU64>,
}

struct Inner {
    /// Global epoch. Starts at 1 so that `QUIESCENT` (0) never collides with
    /// a real epoch value stored in a slot.
    epoch: CachePadded<AtomicU64>,
    participants: Mutex<Vec<Arc<Slot>>>,
    /// Epoch advances performed ([`Domain::advance`] / [`Domain::synchronize`]).
    advances: AtomicU64,
    /// Bounded grace waits started ([`Domain::wait_quiescent_bounded`]).
    grace_waits: AtomicU64,
    /// Bounded grace waits that gave up at their deadline with a participant
    /// still pinned in a pre-target epoch.
    grace_timeouts: AtomicU64,
}

/// A snapshot of a [`Domain`]'s reclamation counters.
///
/// The interesting invariant for callers is that `grace_timeouts` bounds how
/// often a stalled reader forced reclamation to be deferred: a shrinker that
/// uses [`Domain::wait_quiescent_bounded`] never spins past its deadline, so
/// `grace_timeouts <= grace_waits` and each timeout corresponds to exactly one
/// bounded (deadline-long) wait rather than an unbounded stall.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct DomainStats {
    /// Number of epoch advances.
    pub advances: u64,
    /// Number of bounded grace waits started.
    pub grace_waits: u64,
    /// Number of bounded grace waits that hit their deadline.
    pub grace_timeouts: u64,
    /// Registered participants at snapshot time (including quiescent ones).
    pub participants: usize,
}

/// A reclamation domain: one per resizable buffer.
///
/// `Domain` is cheaply cloneable (it is an `Arc` internally); clones share
/// the same epoch and participant registry.
#[derive(Clone)]
pub struct Domain {
    inner: Arc<Inner>,
}

impl Domain {
    /// Creates an empty domain at epoch 1.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Inner {
                epoch: CachePadded::new(AtomicU64::new(1)),
                participants: Mutex::new(Vec::new()),
                advances: AtomicU64::new(0),
                grace_waits: AtomicU64::new(0),
                grace_timeouts: AtomicU64::new(0),
            }),
        }
    }

    /// Registers a new participant (one per consumer thread).
    ///
    /// Participants may be dropped at any time; their slot is garbage
    /// collected during subsequent [`Domain::synchronize`] calls.
    pub fn register(&self) -> Participant {
        let slot = Arc::new(Slot { pinned_at: CachePadded::new(AtomicU64::new(QUIESCENT)) });
        self.inner
            .participants
            .lock()
            .expect("participant registry poisoned")
            .push(Arc::clone(&slot));
        Participant { slot, inner: Arc::clone(&self.inner) }
    }

    /// Current global epoch.
    pub fn epoch(&self) -> u64 {
        self.inner.epoch.load(Ordering::SeqCst)
    }

    /// Advances the global epoch and blocks until every participant has left
    /// the previous epoch.
    ///
    /// On return, any memory made unreachable *before* this call can no
    /// longer be referenced by a pinned consumer: each participant is either
    /// quiescent or pinned at the new epoch (and therefore re-read the
    /// buffer's metadata after the caller's updates).
    ///
    /// This never blocks producers; only the (rare) shrinker waits here.
    pub fn synchronize(&self) {
        let target = self.advance();
        let mut spins = 0u32;
        while !self.sweep_quiescent_at(target) {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// Non-blocking variant of [`Domain::synchronize`]: advances the epoch
    /// and returns a target to poll with [`Domain::quiescent_at`].
    pub fn advance(&self) -> u64 {
        self.inner.advances.fetch_add(1, Ordering::Relaxed);
        self.inner.epoch.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Polls [`Domain::sweep_quiescent_at`] until it succeeds or `deadline`
    /// passes, calling `pause` between polls. Returns `true` when the grace
    /// period completed, `false` on timeout (a participant is still pinned in
    /// a pre-`target` epoch).
    ///
    /// This is the *bounded* grace period a shrinker should use before
    /// physical reclamation: a reader that stalls while pinned (the classic
    /// EBR failure mode — see the neutralization discussion in DESIGN.md)
    /// costs at most one deadline per shrink instead of wedging the resize
    /// path forever. Outcomes are tallied in [`Domain::stats`] so tests can
    /// assert the bound.
    ///
    /// `pause` is a caller-supplied yield point so cooperative schedulers
    /// (e.g. the model runtime) get a scheduling opportunity per iteration.
    pub fn wait_quiescent_bounded(
        &self,
        target: u64,
        deadline: std::time::Instant,
        mut pause: impl FnMut(),
    ) -> bool {
        self.inner.grace_waits.fetch_add(1, Ordering::Relaxed);
        loop {
            if self.sweep_quiescent_at(target) {
                return true;
            }
            if std::time::Instant::now() >= deadline {
                self.inner.grace_timeouts.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            pause();
        }
    }

    /// Snapshot of this domain's reclamation counters.
    pub fn stats(&self) -> DomainStats {
        DomainStats {
            advances: self.inner.advances.load(Ordering::Relaxed),
            grace_waits: self.inner.grace_waits.load(Ordering::Relaxed),
            grace_timeouts: self.inner.grace_timeouts.load(Ordering::Relaxed),
            participants: self.participants(),
        }
    }

    /// Whether every participant has left all epochs before `target`.
    pub fn quiescent_at(&self, target: u64) -> bool {
        let participants = self.inner.participants.lock().expect("participant registry poisoned");
        participants.iter().all(|slot| {
            let pinned = slot.pinned_at.load(Ordering::SeqCst);
            pinned == QUIESCENT || pinned >= target
        })
    }

    /// Like [`Domain::quiescent_at`], but also drops registry entries whose
    /// [`Participant`] has been dropped, so leaked threads cannot wedge the
    /// shrinker.
    ///
    /// Public so callers that must not block inside this crate (e.g. a
    /// cooperative scheduler that needs every wait iteration to be a yield
    /// point) can spell [`Domain::synchronize`] as `advance` + their own
    /// polling loop around this check.
    pub fn sweep_quiescent_at(&self, target: u64) -> bool {
        let mut participants =
            self.inner.participants.lock().expect("participant registry poisoned");
        participants.retain(|slot| Arc::strong_count(slot) > 1);
        participants.iter().all(|slot| {
            let pinned = slot.pinned_at.load(Ordering::SeqCst);
            pinned == QUIESCENT || pinned >= target
        })
    }

    /// Number of currently registered participants (including quiescent
    /// ones). Intended for diagnostics and tests.
    pub fn participants(&self) -> usize {
        self.inner.participants.lock().expect("participant registry poisoned").len()
    }
}

impl Default for Domain {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Domain")
            .field("epoch", &self.epoch())
            .field("participants", &self.participants())
            .finish()
    }
}

/// A registered consumer. Create with [`Domain::register`].
pub struct Participant {
    slot: Arc<Slot>,
    inner: Arc<Inner>,
}

impl Participant {
    /// Pins this participant at the current epoch. While the returned
    /// [`Guard`] lives, [`Domain::synchronize`] calls that advanced the epoch
    /// after this pin will wait for the guard to drop.
    ///
    /// Nested pins are allowed and keep the outermost epoch.
    pub fn pin(&self) -> Guard<'_> {
        if self.slot.pinned_at.load(Ordering::Relaxed) != QUIESCENT {
            return Guard { participant: self, nested: true };
        }
        loop {
            // Publish a pin at the current epoch, then re-check: if the epoch
            // advanced concurrently we must not appear pinned at an epoch the
            // shrinker may already have waited out.
            let epoch = self.inner.epoch.load(Ordering::SeqCst);
            self.slot.pinned_at.store(epoch, Ordering::SeqCst);
            if self.inner.epoch.load(Ordering::SeqCst) == epoch {
                return Guard { participant: self, nested: false };
            }
            self.slot.pinned_at.store(QUIESCENT, Ordering::SeqCst);
        }
    }

    /// Whether this participant currently holds a pin.
    pub fn is_pinned(&self) -> bool {
        self.slot.pinned_at.load(Ordering::SeqCst) != QUIESCENT
    }
}

impl fmt::Debug for Participant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Participant").field("pinned", &self.is_pinned()).finish()
    }
}

/// RAII pin token returned by [`Participant::pin`].
#[must_use = "dropping the guard immediately unpins the participant"]
pub struct Guard<'a> {
    participant: &'a Participant,
    nested: bool,
}

impl Drop for Guard<'_> {
    fn drop(&mut self) {
        if !self.nested {
            self.participant.slot.pinned_at.store(QUIESCENT, Ordering::SeqCst);
        }
    }
}

impl fmt::Debug for Guard<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Guard").field("nested", &self.nested).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::time::Duration;

    #[test]
    fn unpinned_synchronize_is_immediate() {
        let domain = Domain::new();
        let _p = domain.register();
        let before = domain.epoch();
        domain.synchronize();
        assert_eq!(domain.epoch(), before + 1);
    }

    #[test]
    fn pin_records_epoch_and_guard_clears_it() {
        let domain = Domain::new();
        let p = domain.register();
        assert!(!p.is_pinned());
        {
            let _g = p.pin();
            assert!(p.is_pinned());
        }
        assert!(!p.is_pinned());
    }

    #[test]
    fn nested_pins_keep_outer_epoch() {
        let domain = Domain::new();
        let p = domain.register();
        let g1 = p.pin();
        let g2 = p.pin();
        drop(g2);
        assert!(p.is_pinned(), "inner guard must not unpin the outer one");
        drop(g1);
        assert!(!p.is_pinned());
    }

    #[test]
    fn synchronize_waits_for_pinned_reader() {
        let domain = Domain::new();
        let p = domain.register();
        let released = Arc::new(AtomicBool::new(false));
        let done = Arc::new(AtomicBool::new(false));

        let guard_flag = Arc::clone(&released);
        let reader = std::thread::spawn(move || {
            let g = p.pin();
            while !guard_flag.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
            drop(g);
        });

        // Give the reader time to pin.
        while domain.participants() == 0 {
            std::thread::yield_now();
        }
        std::thread::sleep(Duration::from_millis(20));

        let d2 = domain.clone();
        let done2 = Arc::clone(&done);
        let shrinker = std::thread::spawn(move || {
            d2.synchronize();
            done2.store(true, Ordering::SeqCst);
        });

        std::thread::sleep(Duration::from_millis(50));
        assert!(!done.load(Ordering::SeqCst), "synchronize must wait for the pinned reader");
        released.store(true, Ordering::SeqCst);
        reader.join().unwrap();
        shrinker.join().unwrap();
        assert!(done.load(Ordering::SeqCst));
    }

    #[test]
    fn pin_after_advance_does_not_block_that_target() {
        let domain = Domain::new();
        let p = domain.register();
        let target = domain.advance();
        let _g = p.pin(); // pinned at the *new* epoch
        assert!(
            domain.quiescent_at(target),
            "a pin at the new epoch must not block the old target"
        );
    }

    #[test]
    fn dropped_participants_are_swept() {
        let domain = Domain::new();
        let p = domain.register();
        drop(p);
        assert_eq!(domain.participants(), 1, "sweep is lazy");
        domain.synchronize();
        assert_eq!(domain.participants(), 0, "synchronize sweeps dead participants");
    }

    #[test]
    fn many_readers_stress() {
        let domain = Domain::new();
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let p = domain.register();
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut pins = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let _g = p.pin();
                        pins += 1;
                        std::hint::spin_loop();
                    }
                    pins
                })
            })
            .collect();
        for _ in 0..50 {
            domain.synchronize();
        }
        stop.store(true, Ordering::SeqCst);
        let total: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
        assert!(total > 0);
    }

    #[test]
    fn bounded_wait_times_out_under_a_stalled_reader() {
        let domain = Domain::new();
        let p = domain.register();
        let _g = p.pin(); // deliberately never released
        let target = domain.advance();
        let deadline = std::time::Instant::now() + Duration::from_millis(20);
        let ok = domain.wait_quiescent_bounded(target, deadline, std::thread::yield_now);
        assert!(!ok, "a stalled pre-target pin must time the wait out");
        let stats = domain.stats();
        assert_eq!(stats.grace_waits, 1);
        assert_eq!(stats.grace_timeouts, 1);
        assert!(stats.advances >= 1);
    }

    #[test]
    fn bounded_wait_succeeds_without_counting_a_timeout() {
        let domain = Domain::new();
        let _p = domain.register();
        let target = domain.advance();
        let deadline = std::time::Instant::now() + Duration::from_millis(20);
        assert!(domain.wait_quiescent_bounded(target, deadline, std::thread::yield_now));
        let stats = domain.stats();
        assert_eq!(stats.grace_waits, 1);
        assert_eq!(stats.grace_timeouts, 0);
    }

    #[test]
    fn domain_and_participant_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Domain>();
        assert_send::<Participant>();
    }
}
