//! A minimal JSON tree, writer, and parser.
//!
//! The build environment has no registry access, so serde is not
//! available; this module implements exactly what the telemetry export
//! path needs — objects, arrays, strings, bools, and numbers. Numbers are
//! kept as their literal text so `u64` counters round-trip losslessly
//! (an `f64`-only representation would corrupt counts above 2^53).

use std::fmt;

/// A parsed or constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, stored as its literal text for lossless round-trips.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds a number from a `u64` (lossless).
    pub fn from_u64(v: u64) -> Json {
        Json::Num(v.to_string())
    }

    /// Builds a number from an `f64` using Rust's shortest round-trip
    /// formatting; non-finite values become `null` (JSON has no NaN).
    pub fn from_f64(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(format!("{v:?}"))
        } else {
            Json::Null
        }
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as a `usize`, if it is an integral number.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|v| v as usize)
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(s) => out.push_str(s),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document, rejecting trailing garbage.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(ParseError { pos, reason: "trailing characters" });
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// A parse failure, with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub pos: usize,
    /// Human-readable reason.
    pub reason: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.reason)
    }
}

impl std::error::Error for ParseError {}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), ParseError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(ParseError { pos: *pos, reason: "unexpected token" })
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(ParseError { pos: *pos, reason: "unexpected end of input" }),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(ParseError { pos: *pos, reason: "expected ',' or ']'" }),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(ParseError { pos: *pos, reason: "expected ':'" });
                }
                *pos += 1;
                fields.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(ParseError { pos: *pos, reason: "expected ',' or '}'" }),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *pos;
            *pos += 1;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            {
                *pos += 1;
            }
            let literal = core::str::from_utf8(&bytes[start..*pos])
                .map_err(|_| ParseError { pos: start, reason: "invalid number" })?;
            // Validate up front so accessors can't observe garbage.
            literal
                .parse::<f64>()
                .map_err(|_| ParseError { pos: start, reason: "invalid number" })?;
            Ok(Json::Num(literal.to_string()))
        }
        Some(_) => Err(ParseError { pos: *pos, reason: "unexpected character" }),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(ParseError { pos: *pos, reason: "expected string" });
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(ParseError { pos: *pos, reason: "unterminated string" }),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or(ParseError { pos: *pos, reason: "truncated \\u escape" })?;
                        let code = core::str::from_utf8(hex)
                            .ok()
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or(ParseError { pos: *pos, reason: "invalid \\u escape" })?;
                        // Surrogates are replaced; telemetry strings are ASCII.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(ParseError { pos: *pos, reason: "invalid escape" }),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are valid by construction).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && bytes[*pos] & 0xC0 == 0x80 {
                    *pos += 1;
                }
                out.push_str(core::str::from_utf8(&bytes[start..*pos]).unwrap());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_structures() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::Str("btrace \"live\"\n".into())),
            ("count".into(), Json::from_u64(u64::MAX)),
            ("ratio".into(), Json::from_f64(0.9375)),
            ("flags".into(), Json::Arr(vec![Json::Bool(true), Json::Null])),
        ]);
        let text = doc.render();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, doc);
        assert_eq!(parsed.get("count").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(parsed.get("ratio").unwrap().as_f64(), Some(0.9375));
    }

    #[test]
    fn u64_counters_survive_unlike_f64() {
        let big = (1u64 << 53) + 1; // not representable as f64
        let text = Json::from_u64(big).render();
        assert_eq!(Json::parse(&text).unwrap().as_u64(), Some(big));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse("nope").is_err());
    }
}
