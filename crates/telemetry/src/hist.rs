//! Lock-free log-linear latency histograms.
//!
//! The layout is the classic HDR-histogram compromise: the first
//! `2^LINEAR_BITS` buckets are exact (one per value), and every later
//! octave is split into `2^LINEAR_BITS` linear sub-buckets, giving a
//! bounded relative error of `2^-LINEAR_BITS` (~6% at 4 bits) across the
//! full `u64` range in under 8 KiB of counters. Recording is a single
//! relaxed `fetch_add` on the bucket plus one on the running sum — no CAS
//! loops, no locks — so a histogram can sit on the tracer's fast path
//! without becoming the thing it is measuring.

use core::sync::atomic::{AtomicU64, Ordering::Relaxed};

use crossbeam_utils::CachePadded;

use crate::snapshot::LatencySummary;

/// Sub-bucket resolution: each octave is split into `2^LINEAR_BITS`
/// buckets, bounding relative quantile error at `2^-LINEAR_BITS`.
const LINEAR_BITS: u32 = 4;
const M: u64 = 1 << LINEAR_BITS; // sub-buckets per octave

/// Total bucket count: `M` exact buckets for values `< M`, then
/// `M` sub-buckets for each of the `64 - LINEAR_BITS` remaining octaves.
pub const NUM_BUCKETS: usize = (M + (64 - LINEAR_BITS) as u64 * M) as usize;

/// Maps a value to its bucket index.
#[inline]
fn bucket_index(value: u64) -> usize {
    if value < M {
        return value as usize;
    }
    let exp = 63 - value.leading_zeros(); // >= LINEAR_BITS
    let mantissa = (value >> (exp - LINEAR_BITS)) & (M - 1);
    (M + (exp - LINEAR_BITS) as u64 * M + mantissa) as usize
}

/// Largest value that maps to bucket `index` (the conservative bound
/// reported for quantiles).
fn bucket_upper_bound(index: usize) -> u64 {
    let index = index as u64;
    if index < M {
        return index;
    }
    let b = index - M;
    let exp = (b / M) as u32 + LINEAR_BITS;
    let mantissa = b % M;
    let width = 1u64 << (exp - LINEAR_BITS);
    ((M + mantissa) << (exp - LINEAR_BITS)) + (width - 1)
}

/// A lock-free log-linear histogram of `u64` samples (typically
/// nanoseconds).
///
/// Concurrent [`record`](Histogram::record) calls are safe from any number
/// of threads; all operations use relaxed ordering, so a concurrent
/// [`snapshot`](Histogram::snapshot) sees some valid prefix of the
/// recorded samples, and counts are never lost.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    /// Running sum of recorded values, for the mean. May transiently
    /// disagree with the buckets under concurrency; both are exact once
    /// writers quiesce.
    sum: AtomicU64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample. Lock-free: two relaxed `fetch_add`s.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Relaxed);
        self.sum.fetch_add(value, Relaxed);
    }

    /// Takes a point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self.buckets.iter().map(|b| b.load(Relaxed)).collect();
        let count = buckets.iter().sum();
        HistogramSnapshot { buckets, count, sum: self.sum.load(Relaxed) }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl core::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Histogram").field("count", &self.snapshot().count).finish()
    }
}

/// A [`Histogram`] split into per-core cache-padded shards so concurrent
/// recorders on different cores never contend on a cache line.
pub struct ShardedHistogram {
    shards: Box<[CachePadded<Histogram>]>,
}

impl ShardedHistogram {
    /// Creates a histogram with `shards` independent shards (at least 1).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        Self { shards: (0..shards).map(|_| CachePadded::new(Histogram::new())).collect() }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Records `value` on `shard` (clamped to the shard count, so callers
    /// can pass a raw core id).
    #[inline]
    pub fn record(&self, shard: usize, value: u64) {
        self.shards[shard.min(self.shards.len() - 1)].record(value);
    }

    /// Merged snapshot across all shards.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut merged = HistogramSnapshot { buckets: vec![0; NUM_BUCKETS], count: 0, sum: 0 };
        for shard in self.shards.iter() {
            let snap = shard.snapshot();
            for (m, b) in merged.buckets.iter_mut().zip(&snap.buckets) {
                *m += b;
            }
            merged.count += snap.count;
            merged.sum = merged.sum.wrapping_add(snap.sum);
        }
        merged
    }
}

impl core::fmt::Debug for ShardedHistogram {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ShardedHistogram").field("shards", &self.shards.len()).finish()
    }
}

/// An owned, immutable copy of a histogram's state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
}

impl HistogramSnapshot {
    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values (wrapping under extreme totals).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean recorded value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`, reported as the upper bound
    /// of the containing bucket (conservative, and monotone in `q`).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(self.buckets.len() - 1)
    }

    /// Upper bound of the highest occupied bucket (0 when empty).
    pub fn max(&self) -> u64 {
        self.buckets.iter().rposition(|&c| c > 0).map(bucket_upper_bound).unwrap_or(0)
    }

    /// Condenses the histogram into the fixed quantile set carried by
    /// [`crate::HealthSnapshot`].
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count,
            mean_ns: self.mean(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
            max: self.max(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut values: Vec<u64> = (0..64)
            .flat_map(|shift| [0u64, 1, 3].map(|off| (1u64 << shift).saturating_add(off)))
            .collect();
        values.sort_unstable();
        let mut prev = 0;
        for v in values {
            let i = bucket_index(v);
            assert!(i < NUM_BUCKETS, "index {i} out of range for {v}");
            assert!(i >= prev, "index not monotone at {v}");
            prev = i;
            assert!(bucket_upper_bound(i) >= v, "upper bound below value at {v}");
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 16);
        assert_eq!(s.quantile(0.0), 0);
        assert_eq!(s.max(), 15);
        assert_eq!(s.mean(), 7.5);
    }

    #[test]
    fn relative_error_is_bounded() {
        let h = Histogram::new();
        for v in [100u64, 1_000, 10_000, 123_456, 9_999_999] {
            h.record(v);
            let s = h.snapshot();
            let reported = s.max();
            assert!(reported >= v);
            assert!(
                (reported - v) as f64 <= v as f64 / M as f64 + 1.0,
                "error too large for {v}: reported {reported}"
            );
        }
    }

    #[test]
    fn quantiles_are_monotone() {
        let h = Histogram::new();
        let mut x = 1u64;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            h.record(x >> 44); // ~20-bit values
        }
        let s = h.snapshot();
        let mut prev = 0;
        for q in [0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let v = s.quantile(q);
            assert!(v >= prev, "quantile({q}) = {v} < {prev}");
            prev = v;
        }
        assert!(s.quantile(1.0) <= s.max());
    }

    #[test]
    fn sharded_merges_all_shards() {
        let h = ShardedHistogram::new(4);
        for shard in 0..4 {
            for _ in 0..25 {
                h.record(shard, (shard as u64 + 1) * 100);
            }
        }
        // Out-of-range shard ids clamp instead of panicking.
        h.record(99, 400);
        let s = h.snapshot();
        assert_eq!(s.count(), 101);
        assert!(s.quantile(0.01) >= 100);
        assert!(s.max() >= 400);
    }
}
