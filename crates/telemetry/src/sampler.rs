//! The background sampler: periodically snapshots a source, derives
//! rate-windowed deltas, and fans out to exporters.
//!
//! The sampler owns one OS thread. Shutdown is graceful and synchronous:
//! [`Sampler::stop`] (or drop) flags the thread through a condvar —
//! waking it immediately rather than waiting out the period — and joins
//! it, so tests can assert no thread leaks and processes exit promptly.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use crate::snapshot::HealthSnapshot;

/// Anything that can report tracer health. `btrace-core` implements this
/// for `BTrace` behind its `telemetry` feature.
pub trait SnapshotSource: Send + Sync {
    /// Captures the current health state. Called from the sampler thread;
    /// must not block on producer progress.
    fn health_snapshot(&self) -> HealthSnapshot;
}

impl<S: SnapshotSource + ?Sized> SnapshotSource for Arc<S> {
    fn health_snapshot(&self) -> HealthSnapshot {
        (**self).health_snapshot()
    }
}

/// Cumulative I/O accounting for an [`Exporter`] that retries and drops on
/// sink errors (bounded retry-with-backoff, drop-and-count overflow).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExportIoStats {
    /// Retries performed after a failed sink write.
    pub retries: u64,
    /// Snapshots dropped after exhausting the retry budget.
    pub drops: u64,
}

impl ExportIoStats {
    /// Element-wise sum, for aggregating across exporters.
    pub fn merge(self, other: ExportIoStats) -> ExportIoStats {
        ExportIoStats { retries: self.retries + other.retries, drops: self.drops + other.drops }
    }
}

/// A sink for sampled snapshots (JSONL file, Prometheus textfile, stdout
/// table, ...). Exporters run on the sampler thread, one snapshot at a
/// time, so implementations need no internal locking.
pub trait Exporter: Send {
    /// Consumes one snapshot. Errors are counted (see
    /// [`Sampler::export_errors`]) but do not stop the sampler.
    fn export(&mut self, snapshot: &HealthSnapshot) -> io::Result<()>;

    /// Flushes any buffered output; called once at shutdown.
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }

    /// Retry/drop accounting, when the exporter keeps any. The sampler sums
    /// these into each snapshot's `export_retries`/`export_drops` fields so
    /// sink trouble is visible in the exported stream itself.
    fn io_stats(&self) -> ExportIoStats {
        ExportIoStats::default()
    }
}

/// Sampler tuning.
#[derive(Debug, Clone, Copy)]
pub struct SamplerConfig {
    /// Interval between snapshots.
    pub period: Duration,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        Self { period: Duration::from_secs(1) }
    }
}

struct Shared {
    stop: Mutex<bool>,
    wake: Condvar,
    latest: Mutex<Option<HealthSnapshot>>,
    export_errors: AtomicU64,
}

/// Handle to a running sampler thread.
#[derive(Debug)]
pub struct Sampler {
    shared: Arc<Shared>,
    handle: Option<thread::JoinHandle<()>>,
}

impl core::fmt::Debug for Shared {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Shared").finish_non_exhaustive()
    }
}

impl Sampler {
    /// Starts the sampler thread. The first snapshot is taken immediately,
    /// then one per `config.period` until [`stop`](Sampler::stop).
    pub fn spawn<S: SnapshotSource + 'static>(
        source: S,
        mut exporters: Vec<Box<dyn Exporter>>,
        config: SamplerConfig,
    ) -> Sampler {
        let shared = Arc::new(Shared {
            stop: Mutex::new(false),
            wake: Condvar::new(),
            latest: Mutex::new(None),
            export_errors: AtomicU64::new(0),
        });
        let thread_shared = Arc::clone(&shared);
        let handle = thread::Builder::new()
            .name("btrace-sampler".into())
            .spawn(move || {
                let mut seq = 0u64;
                let mut prev: Option<(Instant, HealthSnapshot)> = None;
                loop {
                    let now = Instant::now();
                    let mut snap = source.health_snapshot();
                    snap.seq = seq;
                    seq += 1;
                    snap.unix_ms = SystemTime::now()
                        .duration_since(UNIX_EPOCH)
                        .map(|d| d.as_millis() as u64)
                        .unwrap_or(0);
                    if let Some((prev_at, prev_snap)) = &prev {
                        let gap = now.duration_since(*prev_at);
                        // The realized gap, not the configured period: condvar
                        // pacing oversleeps under host load, and consumers
                        // (the controller, `btrace watch`) must see the honest
                        // width of the window this snapshot covers.
                        snap.age_ms = gap.as_millis() as u64;
                        fill_rates(&mut snap, prev_snap, gap);
                    }
                    // Sink trouble up to (but not including) this export is
                    // part of the health report being exported.
                    let io = exporters
                        .iter()
                        .map(|e| e.io_stats())
                        .fold(ExportIoStats::default(), ExportIoStats::merge);
                    snap.export_retries = io.retries;
                    snap.export_drops = io.drops;
                    for exporter in &mut exporters {
                        if exporter.export(&snap).is_err() {
                            thread_shared.export_errors.fetch_add(1, Relaxed);
                        }
                    }
                    *thread_shared.latest.lock().unwrap() = Some(snap.clone());
                    prev = Some((now, snap));

                    let stop = thread_shared.stop.lock().unwrap();
                    let (stop, _timeout) = thread_shared
                        .wake
                        .wait_timeout_while(stop, config.period, |s| !*s)
                        .unwrap();
                    if *stop {
                        break;
                    }
                }
                for exporter in &mut exporters {
                    let _ = exporter.flush();
                }
            })
            .expect("spawn btrace-sampler thread");
        Sampler { shared, handle: Some(handle) }
    }

    /// The most recent snapshot, if one has been taken yet.
    pub fn latest(&self) -> Option<HealthSnapshot> {
        self.shared.latest.lock().unwrap().clone()
    }

    /// Number of exporter calls that returned an error.
    pub fn export_errors(&self) -> u64 {
        self.shared.export_errors.load(Relaxed)
    }

    /// Stops the sampler and joins its thread. Idempotent; also runs on
    /// drop. When this returns, the thread has exited and exporters are
    /// flushed.
    pub fn stop(&mut self) {
        *self.shared.stop.lock().unwrap() = true;
        self.shared.wake.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }

    /// Whether the sampler thread is still running.
    pub fn is_running(&self) -> bool {
        self.handle.as_ref().is_some_and(|h| !h.is_finished())
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop();
    }
}

fn fill_rates(snap: &mut HealthSnapshot, prev: &HealthSnapshot, window: Duration) {
    let secs = window.as_secs_f64();
    if secs <= 0.0 {
        return;
    }
    let per_sec = |now: u64, before: u64| now.saturating_sub(before) as f64 / secs;
    snap.rates.window_secs = secs;
    snap.rates.records_per_sec = per_sec(snap.records, prev.records);
    snap.rates.bytes_per_sec = per_sec(snap.recorded_bytes, prev.recorded_bytes);
    snap.rates.advances_per_sec = per_sec(snap.advances, prev.advances);
    snap.rates.skips_per_sec = per_sec(snap.skips, prev.skips);
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FakeSource {
        records: AtomicU64,
    }

    impl SnapshotSource for FakeSource {
        fn health_snapshot(&self) -> HealthSnapshot {
            HealthSnapshot {
                records: self.records.fetch_add(1000, Relaxed),
                ..HealthSnapshot::default()
            }
        }
    }

    struct CountingExporter {
        exports: Arc<AtomicU64>,
        flushes: Arc<AtomicU64>,
    }

    impl Exporter for CountingExporter {
        fn export(&mut self, _snapshot: &HealthSnapshot) -> io::Result<()> {
            self.exports.fetch_add(1, Relaxed);
            Ok(())
        }

        fn flush(&mut self) -> io::Result<()> {
            self.flushes.fetch_add(1, Relaxed);
            Ok(())
        }
    }

    #[test]
    fn samples_export_and_stop_joins() {
        let exports = Arc::new(AtomicU64::new(0));
        let flushes = Arc::new(AtomicU64::new(0));
        let mut sampler = Sampler::spawn(
            Arc::new(FakeSource { records: AtomicU64::new(0) }),
            vec![Box::new(CountingExporter {
                exports: Arc::clone(&exports),
                flushes: Arc::clone(&flushes),
            })],
            SamplerConfig { period: Duration::from_millis(5) },
        );
        while exports.load(Relaxed) < 3 {
            thread::sleep(Duration::from_millis(2));
        }
        sampler.stop();
        assert!(!sampler.is_running());
        assert_eq!(flushes.load(Relaxed), 1, "flush runs exactly once at shutdown");
        let last = sampler.latest().expect("at least one snapshot");
        assert!(last.seq >= 2);
        // Rates are derived after the first sample: 1000 records per tick.
        assert!(last.rates.window_secs > 0.0);
        assert!(last.rates.records_per_sec > 0.0);
        // Age stamping: every non-first sample carries its realized gap,
        // which can never undercut the configured period.
        assert!(last.age_ms >= 5, "realized gap at least the period: {}", last.age_ms);
        assert_eq!(sampler.export_errors(), 0);
    }

    #[test]
    fn failing_exporter_is_counted_not_fatal() {
        struct Failing;
        impl Exporter for Failing {
            fn export(&mut self, _s: &HealthSnapshot) -> io::Result<()> {
                Err(io::Error::other("disk full"))
            }
        }
        let mut sampler = Sampler::spawn(
            Arc::new(FakeSource { records: AtomicU64::new(0) }),
            vec![Box::new(Failing)],
            SamplerConfig { period: Duration::from_millis(2) },
        );
        while sampler.export_errors() < 2 {
            thread::sleep(Duration::from_millis(2));
        }
        sampler.stop();
        assert!(sampler.latest().is_some(), "snapshots continue despite exporter errors");
    }

    #[test]
    fn drop_stops_promptly_even_with_long_period() {
        let sampler = Sampler::spawn(
            Arc::new(FakeSource { records: AtomicU64::new(0) }),
            Vec::new(),
            SamplerConfig { period: Duration::from_secs(3600) },
        );
        let started = Instant::now();
        drop(sampler); // must not wait out the hour
        assert!(started.elapsed() < Duration::from_secs(5));
    }
}
