//! The adaptive-sizing controller: closes the paper's §4 resizing loop.
//!
//! Resizing has existed since the seed (in-production grow/shrink with
//! implicit reclamation), but nothing *drove* it — the right-sized-buffer
//! story stayed unrealized. This module consumes [`HealthSnapshot`]s
//! (occupancy, skip rate, observed effectivity vs the `1 − A/N` bound,
//! degradation bits) and drives `resize_bytes` to hold a target loss-rate
//! under a hard memory budget, following the budgeted-retention framing of
//! *Budgeted Dynamic Trace Structures* and *Tree Buffers*: spend a fixed
//! budget to retain the most *useful* history, not merely the most recent.
//!
//! The control law, in one paragraph: every tick the controller diffs the
//! newest snapshot against the last one it acted on and derives a
//! block-level loss rate (skipped blocks per closed-or-skipped block, in
//! ppm). Loss above target or occupancy above the grow band doubles the
//! buffer; zero loss with occupancy below the shrink band for a patience
//! streak shrinks it, with the shrink size ranked by a retention score
//! over the recent windows rather than raw recency. Every proposed size is
//! clamped to the budget (emitting [`EventKind::CtrlBudgetClamp`] when the
//! clamp bites), a cooldown separates consecutive resizes (hysteresis in
//! time as well as amplitude, so the controller never thrashes), and a
//! failed or fallen-back resize doubles the cooldown exponentially
//! ([`EventKind::CtrlBackoff`]) — a tracer whose backing store is
//! rejecting commits (PR-4 fault fallbacks) must be probed gently, not
//! hammered. Every decision lands in the [`FlightRecorder`] so `btrace
//! doctor` can attach controller actions to the loss windows they caused
//! or failed to prevent.
//!
//! [`Controller`] is the pure, deterministically testable law: feed it
//! snapshots, get [`Decision`]s. [`ControllerThread`] is the production
//! wrapper: one background thread that samples a [`SnapshotSource`],
//! stamps sequence and realized age (condvar pacing oversleeps under host
//! load — stale snapshots are skipped and counted, never silently acted
//! on), and applies decisions to a [`ResizeTarget`].

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use crate::recorder::{EventKind, FlightRecorder};
use crate::sampler::SnapshotSource;
use crate::snapshot::{degraded, HealthSnapshot};

/// Something whose buffer the controller can resize. `btrace-core`
/// implements this for `BTrace` behind its `telemetry` feature.
pub trait ResizeTarget: Send + Sync {
    /// Current buffer capacity in bytes.
    fn current_bytes(&self) -> u64;
    /// Resize granularity in bytes (`block_bytes × active_blocks`); every
    /// target the controller proposes is a positive multiple of this.
    fn stride_bytes(&self) -> u64;
    /// The reserved ceiling in bytes; resizes above this are impossible.
    fn max_bytes(&self) -> u64;
    /// Performs the resize. An `Err` is treated as a resize failure and
    /// triggers exponential back-off.
    fn resize_bytes(&self, bytes: u64) -> Result<(), String>;
}

impl<T: ResizeTarget + ?Sized> ResizeTarget for Arc<T> {
    fn current_bytes(&self) -> u64 {
        (**self).current_bytes()
    }
    fn stride_bytes(&self) -> u64 {
        (**self).stride_bytes()
    }
    fn max_bytes(&self) -> u64 {
        (**self).max_bytes()
    }
    fn resize_bytes(&self, bytes: u64) -> Result<(), String> {
        (**self).resize_bytes(bytes)
    }
}

/// Controller tuning. The defaults hold a trace buffer steady under the
/// replay-model workloads; the CLI exposes the budget and loss target.
#[derive(Debug, Clone, Copy)]
pub struct ControllerConfig {
    /// Hard memory budget in bytes: the controller never proposes a size
    /// above this, and shrinks toward it when the buffer already exceeds
    /// it (a lowered budget is honored, not grandfathered).
    pub budget_bytes: u64,
    /// Target block-level loss rate in parts per million. Loss above this
    /// grows the buffer.
    pub target_loss_ppm: u64,
    /// Grow band: occupancy at or above this proposes a grow even before
    /// loss materializes.
    pub grow_occupancy: f64,
    /// Shrink band: occupancy below this (with zero loss) accumulates
    /// patience toward a shrink. Keep well below `grow_occupancy` — the
    /// gap is the hysteresis that prevents thrash.
    pub shrink_occupancy: f64,
    /// Consecutive calm observations required before a shrink.
    pub shrink_patience: u32,
    /// Ticks to wait after any resize decision before the next one.
    pub cooldown_ticks: u32,
    /// Ceiling for the exponential back-off cooldown after failed
    /// resizes.
    pub max_backoff_ticks: u32,
    /// Snapshots whose realized age exceeds this are skipped and counted
    /// (stale input; see `HealthSnapshot::age_ms`).
    pub stale_after_ms: u64,
    /// Recent windows kept for the retention score.
    pub retention_windows: usize,
    /// When set, decisions are emitted and counted but never applied —
    /// `btrace tune`'s what-would-it-do mode.
    pub dry_run: bool,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        Self {
            budget_bytes: u64::MAX,
            target_loss_ppm: 10_000, // 1% of blocks
            grow_occupancy: 0.85,
            shrink_occupancy: 0.30,
            shrink_patience: 5,
            cooldown_ticks: 3,
            max_backoff_ticks: 64,
            stale_after_ms: 5_000,
            retention_windows: 16,
            dry_run: false,
        }
    }
}

/// Why an observation produced no resize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdleReason {
    /// Loss within target and occupancy inside the hysteresis bands.
    Healthy,
    /// A recent resize decision's cooldown (or back-off) is still
    /// running.
    Cooldown,
    /// A grow was warranted but the budget clamp left no headroom.
    AtBudget,
    /// The buffer is calm but the shrink patience streak is still
    /// accumulating.
    AwaitingPatience,
}

/// Why an observation was skipped outright.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StaleReason {
    /// The snapshot's sequence number did not advance past the last
    /// observation (the sampler has not produced new data).
    NoNewData,
    /// The snapshot's realized age exceeded `stale_after_ms` — the window
    /// it covers is too wide to act on.
    TooOld,
}

/// Direction of a proposed resize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResizeReason {
    /// Measured loss above the target.
    Loss,
    /// Occupancy at or above the grow band.
    Occupancy,
    /// Calm buffer: shrink ranked by the retention score.
    Retention,
    /// Capacity above the (possibly lowered) budget.
    Budget,
}

/// One controller decision, returned by [`Controller::observe`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Decision {
    /// No action this tick.
    Idle(IdleReason),
    /// The snapshot was skipped as stale and counted.
    Stale(StaleReason),
    /// Resize the buffer to `to` bytes (a stride multiple within budget).
    Resize {
        /// Proposed capacity in bytes.
        to: u64,
        /// Capacity in bytes at decision time.
        from: u64,
        /// What drove the proposal.
        reason: ResizeReason,
    },
}

/// Cumulative controller accounting, readable while it runs.
#[derive(Debug, Default)]
pub struct ControllerStats {
    /// Snapshots observed (including stale skips).
    pub ticks: AtomicU64,
    /// Snapshots skipped as stale.
    pub stale_skips: AtomicU64,
    /// Resize decisions applied successfully.
    pub resizes: AtomicU64,
    /// Resize failures (apply errors or observed fault fallbacks).
    pub failures: AtomicU64,
    /// Times the budget clamp reduced a proposal.
    pub budget_clamps: AtomicU64,
}

/// One observed sampling window, kept for the retention score.
#[derive(Debug, Clone, Copy, Default)]
struct WindowStat {
    /// Payload bytes the workload produced in the window.
    bytes: u64,
    /// Blocks lost (skipped) in the window.
    skips: u64,
}

/// The pure control law. Deterministic: identical snapshot sequences
/// produce identical decision sequences, which is what makes the seeded
/// load-storm scenarios replayable tests.
#[derive(Debug)]
pub struct Controller {
    cfg: ControllerConfig,
    recorder: Arc<FlightRecorder>,
    stats: Arc<ControllerStats>,
    last: Option<HealthSnapshot>,
    cooldown: u32,
    calm_streak: u32,
    consecutive_failures: u32,
    windows: Vec<WindowStat>,
}

impl Controller {
    /// Creates a controller emitting its decisions onto `recorder`'s
    /// control shard.
    pub fn new(cfg: ControllerConfig, recorder: Arc<FlightRecorder>) -> Self {
        Self {
            cfg,
            recorder,
            stats: Arc::new(ControllerStats::default()),
            last: None,
            cooldown: 0,
            calm_streak: 0,
            consecutive_failures: 0,
            windows: Vec::new(),
        }
    }

    /// Shared handle to the cumulative accounting.
    pub fn stats(&self) -> Arc<ControllerStats> {
        Arc::clone(&self.stats)
    }

    /// Rounds `bytes` down to a positive stride multiple.
    fn floor_to_stride(bytes: u64, stride: u64) -> u64 {
        (bytes / stride).max(1) * stride
    }

    /// Block-level loss rate over the window, in ppm: skipped blocks per
    /// closed-or-skipped block. Skips are §3.4's forced abandonment — the
    /// mechanism by which an undersized buffer actually loses history.
    fn window_loss_ppm(d_skips: u64, d_closes: u64) -> u64 {
        (d_skips * 1_000_000).checked_div(d_skips + d_closes).unwrap_or(0)
    }

    /// The retention score of running at `candidate` bytes, over the
    /// recent windows: how much of each window's produced history a
    /// buffer that size could have retained, weighted toward windows that
    /// produced more (dense activity is the history worth keeping — the
    /// Tree-Buffers framing — and a window that skipped is weighted up
    /// further, since it marks history we already failed to keep once).
    fn retention_score(&self, candidate: u64) -> f64 {
        let mut score = 0.0;
        for w in &self.windows {
            if w.bytes == 0 {
                continue;
            }
            let weight = w.bytes as f64 * (1.0 + w.skips as f64);
            let retained = (candidate as f64 / w.bytes as f64).min(1.0);
            score += weight * retained;
        }
        score
    }

    /// Picks the smallest shrink candidate (stride multiples between one
    /// stride and `from`) that still retains at least 95% of the score of
    /// staying at `from` — shrink as far as the recent history's
    /// usefulness allows, not as far as the current instant's emptiness
    /// suggests.
    fn shrink_target(&self, from: u64, stride: u64) -> u64 {
        let full = self.retention_score(from);
        if full == 0.0 {
            // No history observed yet: fall back to halving.
            return Self::floor_to_stride(from / 2, stride);
        }
        let mut candidate = from;
        let mut size = stride;
        while size < from {
            if self.retention_score(size) >= 0.95 * full {
                candidate = size;
                break;
            }
            size += stride;
        }
        candidate.min(Self::floor_to_stride(from / 2, stride).max(stride))
    }

    /// Emits one decision event on the recorder's control shard.
    fn emit(&self, kind: EventKind, source: u32, a: u64, b: u64) {
        self.recorder.emit(self.recorder.control_shard(), kind, source, a, b);
    }

    /// Consumes one snapshot and returns the controller's decision.
    /// `geometry` supplies the live stride/ceiling (the snapshot's
    /// capacity can lag a just-applied resize).
    pub fn observe(&mut self, snap: &HealthSnapshot, geometry: &dyn ResizeTarget) -> Decision {
        self.stats.ticks.fetch_add(1, Relaxed);

        // Staleness guard (the sampler stamps seq and realized age): act
        // only on fresh windows, count what was skipped.
        let stale = match &self.last {
            Some(prev) if snap.seq <= prev.seq => Some(StaleReason::NoNewData),
            _ if snap.age_ms > self.cfg.stale_after_ms => Some(StaleReason::TooOld),
            _ => None,
        };
        if let Some(reason) = stale {
            self.stats.stale_skips.fetch_add(1, Relaxed);
            self.emit(EventKind::CtrlObserve, 1, 0, (snap.mean_occupancy * 1000.0) as u64);
            return Decision::Stale(reason);
        }

        let (d_skips, d_closes, d_bytes, d_fallbacks, d_commit_failures) = match &self.last {
            Some(prev) => (
                snap.skips.saturating_sub(prev.skips),
                snap.closes.saturating_sub(prev.closes),
                snap.recorded_bytes.saturating_sub(prev.recorded_bytes),
                snap.resize_fallbacks.saturating_sub(prev.resize_fallbacks),
                snap.commit_failures.saturating_sub(prev.commit_failures),
            ),
            None => (0, 0, 0, 0, 0),
        };
        let first = self.last.is_none();
        self.last = Some(snap.clone());
        let loss_ppm = Self::window_loss_ppm(d_skips, d_closes);

        self.windows.push(WindowStat { bytes: d_bytes, skips: d_skips });
        let keep = self.cfg.retention_windows.max(1);
        if self.windows.len() > keep {
            let drop = self.windows.len() - keep;
            self.windows.drain(..drop);
        }

        self.emit(
            EventKind::CtrlObserve,
            0,
            loss_ppm,
            (snap.mean_occupancy.clamp(0.0, 1.0) * 1000.0) as u64,
        );
        if first {
            // The first snapshot has no window to diff; observe only.
            return Decision::Idle(IdleReason::Healthy);
        }

        // A resize that fell back to its old geometry (PR-4 fault path)
        // reports success to its caller but shows up in the fallback
        // counter and the degradation bits: back off before probing the
        // failing backing store again.
        if d_fallbacks > 0
            || (d_commit_failures > 0 && snap.degraded_bits & degraded::COMMIT_FAILED != 0)
        {
            self.register_failure();
        }

        if self.cooldown > 0 {
            self.cooldown -= 1;
            return Decision::Idle(IdleReason::Cooldown);
        }

        let stride = geometry.stride_bytes().max(1);
        let from = geometry.current_bytes();
        let ceiling =
            Self::floor_to_stride(self.cfg.budget_bytes.min(geometry.max_bytes()), stride);

        // Budget enforcement dominates: a buffer above a (lowered) budget
        // shrinks toward it regardless of load, ranked by retention like
        // any other shrink.
        if from > ceiling {
            let to = self.shrink_target(from, stride).min(ceiling);
            self.stats.budget_clamps.fetch_add(1, Relaxed);
            self.emit(EventKind::CtrlBudgetClamp, 0, from, to);
            return self.decide_resize(to, from, ResizeReason::Budget);
        }

        let growing =
            loss_ppm > self.cfg.target_loss_ppm || snap.mean_occupancy >= self.cfg.grow_occupancy;
        if growing {
            self.calm_streak = 0;
            // Double under pressure; when the observed effectivity is
            // below the paper's 1 − A/N bound the buffer is additionally
            // wasting bytes on dummy fill, so round one more stride up.
            let mut want = from.saturating_mul(2).max(from + stride);
            if snap.effectivity_observed > 0.0 && snap.effectivity_observed < snap.effectivity_bound
            {
                want = want.saturating_add(stride);
            }
            let to = want.min(ceiling);
            if to <= from {
                self.stats.budget_clamps.fetch_add(1, Relaxed);
                self.emit(EventKind::CtrlBudgetClamp, 0, want, from);
                return Decision::Idle(IdleReason::AtBudget);
            }
            if to < want {
                self.stats.budget_clamps.fetch_add(1, Relaxed);
                self.emit(EventKind::CtrlBudgetClamp, 0, want, to);
            }
            let reason = if loss_ppm > self.cfg.target_loss_ppm {
                ResizeReason::Loss
            } else {
                ResizeReason::Occupancy
            };
            return self.decide_resize(to, from, reason);
        }

        if loss_ppm == 0 && snap.mean_occupancy < self.cfg.shrink_occupancy {
            self.calm_streak += 1;
            if self.calm_streak < self.cfg.shrink_patience {
                return Decision::Idle(IdleReason::AwaitingPatience);
            }
            let to = self.shrink_target(from, stride);
            if to >= from {
                return Decision::Idle(IdleReason::Healthy);
            }
            self.calm_streak = 0;
            return self.decide_resize(to, from, ResizeReason::Retention);
        }

        self.calm_streak = 0;
        Decision::Idle(IdleReason::Healthy)
    }

    /// Emits the resize decision and starts its cooldown.
    fn decide_resize(&mut self, to: u64, from: u64, reason: ResizeReason) -> Decision {
        let source = if to >= from { 1 } else { 2 };
        self.emit(EventKind::CtrlResize, source, to, from);
        self.cooldown = self.cfg.cooldown_ticks;
        Decision::Resize { to, from, reason }
    }

    /// Books a resize failure: bumps the failure streak and replaces the
    /// cooldown with an exponentially backed-off one.
    fn register_failure(&mut self) {
        self.consecutive_failures += 1;
        self.stats.failures.fetch_add(1, Relaxed);
        let backoff = self
            .cfg
            .cooldown_ticks
            .max(1)
            .saturating_mul(1 << self.consecutive_failures.min(16))
            .min(self.cfg.max_backoff_ticks);
        self.cooldown = self.cooldown.max(backoff);
        self.emit(EventKind::CtrlBackoff, 0, backoff as u64, self.consecutive_failures as u64);
    }

    /// Applies a decision to `target`. Resize successes reset the failure
    /// streak; failures trigger exponential back-off. In dry-run mode the
    /// resize is counted but not performed.
    pub fn apply(&mut self, decision: &Decision, target: &dyn ResizeTarget) {
        let Decision::Resize { to, .. } = decision else { return };
        if self.cfg.dry_run {
            self.stats.resizes.fetch_add(1, Relaxed);
            return;
        }
        match target.resize_bytes(*to) {
            Ok(()) => {
                self.stats.resizes.fetch_add(1, Relaxed);
                self.consecutive_failures = 0;
            }
            Err(_) => self.register_failure(),
        }
    }
}

struct ThreadShared {
    stop: Mutex<bool>,
    wake: Condvar,
}

/// Handle to a running controller thread. Stops (and joins) on drop.
#[derive(Debug)]
pub struct ControllerThread {
    shared: Arc<ThreadShared>,
    stats: Arc<ControllerStats>,
    handle: Option<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadShared").finish_non_exhaustive()
    }
}

impl ControllerThread {
    /// Starts the controller loop: every `period` it snapshots `target`,
    /// stamps sequence and realized age (its own pacing can oversleep —
    /// such windows are skipped as stale, not silently acted on), runs
    /// the control law, and applies the decision.
    pub fn spawn<T>(
        target: Arc<T>,
        recorder: Arc<FlightRecorder>,
        cfg: ControllerConfig,
        period: Duration,
    ) -> ControllerThread
    where
        T: SnapshotSource + ResizeTarget + 'static,
    {
        let mut controller = Controller::new(cfg, recorder);
        let stats = controller.stats();
        let shared = Arc::new(ThreadShared { stop: Mutex::new(false), wake: Condvar::new() });
        let thread_shared = Arc::clone(&shared);
        let handle = thread::Builder::new()
            .name("btrace-controller".into())
            .spawn(move || {
                let mut seq = 0u64;
                let mut prev_at: Option<Instant> = None;
                loop {
                    let now = Instant::now();
                    let mut snap = target.health_snapshot();
                    snap.seq = seq;
                    seq += 1;
                    if let Some(prev) = prev_at {
                        snap.age_ms = now.duration_since(prev).as_millis() as u64;
                    }
                    prev_at = Some(now);
                    let decision = controller.observe(&snap, &target);
                    controller.apply(&decision, &target);

                    let stop = thread_shared.stop.lock().unwrap();
                    let (stop, _) =
                        thread_shared.wake.wait_timeout_while(stop, period, |s| !*s).unwrap();
                    if *stop {
                        break;
                    }
                }
            })
            .expect("spawn btrace-controller thread");
        ControllerThread { shared, stats, handle: Some(handle) }
    }

    /// Cumulative controller accounting.
    pub fn stats(&self) -> &ControllerStats {
        &self.stats
    }

    /// Stops the controller and joins its thread. Idempotent; also runs
    /// on drop.
    pub fn stop(&mut self) {
        *self.shared.stop.lock().unwrap() = true;
        self.shared.wake.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ControllerThread {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fake buffer: remembers its size, can be told to fail resizes.
    struct FakeTarget {
        bytes: AtomicU64,
        fail: std::sync::atomic::AtomicBool,
        resizes: AtomicU64,
    }

    impl FakeTarget {
        fn new(bytes: u64) -> Self {
            Self {
                bytes: AtomicU64::new(bytes),
                fail: std::sync::atomic::AtomicBool::new(false),
                resizes: AtomicU64::new(0),
            }
        }
    }

    impl ResizeTarget for FakeTarget {
        fn current_bytes(&self) -> u64 {
            self.bytes.load(Relaxed)
        }
        fn stride_bytes(&self) -> u64 {
            4096
        }
        fn max_bytes(&self) -> u64 {
            1 << 30
        }
        fn resize_bytes(&self, bytes: u64) -> Result<(), String> {
            if self.fail.load(Relaxed) {
                return Err("injected".into());
            }
            self.bytes.store(bytes, Relaxed);
            self.resizes.fetch_add(1, Relaxed);
            Ok(())
        }
    }

    /// Builds the snapshot at `seq` of a workload that skips `skips`
    /// blocks and closes `closes` blocks *per window* (counters are
    /// cumulative, so they scale with `seq`).
    fn snap(seq: u64, skips: u64, closes: u64, occupancy: f64) -> HealthSnapshot {
        HealthSnapshot {
            seq,
            age_ms: 10,
            skips: seq * skips,
            closes: seq * closes,
            recorded_bytes: seq * closes * 4096,
            mean_occupancy: occupancy,
            effectivity_observed: 1.0,
            effectivity_bound: 0.9,
            ..HealthSnapshot::default()
        }
    }

    fn controller(cfg: ControllerConfig) -> Controller {
        Controller::new(cfg, Arc::new(FlightRecorder::with_default_capacity(1)))
    }

    #[test]
    fn loss_above_target_grows_and_respects_budget() {
        let target = FakeTarget::new(8 * 4096);
        let mut c = controller(ControllerConfig {
            budget_bytes: 24 * 4096,
            target_loss_ppm: 1_000,
            cooldown_ticks: 0,
            ..ControllerConfig::default()
        });
        assert_eq!(c.observe(&snap(0, 0, 0, 0.5), &target), Decision::Idle(IdleReason::Healthy));
        // 50% of blocks skipped: way over a 1000 ppm target.
        let d = c.observe(&snap(1, 50, 50, 0.6), &target);
        let Decision::Resize { to, from, reason } = d else { panic!("expected grow, got {d:?}") };
        assert_eq!(from, 8 * 4096);
        assert_eq!(reason, ResizeReason::Loss);
        assert_eq!(to, 16 * 4096, "doubling within budget");
        c.apply(&d, &target);
        assert_eq!(target.current_bytes(), 16 * 4096);
        // Still losing: the next grow wants 32 strides but clamps to 24.
        let d = c.observe(&snap(2, 50, 50, 0.6), &target);
        let Decision::Resize { to, .. } = d else { panic!("expected clamped grow, got {d:?}") };
        assert_eq!(to, 24 * 4096, "budget clamp");
        c.apply(&d, &target);
        // At budget: growing further is impossible, decision says so.
        let d = c.observe(&snap(3, 50, 50, 0.6), &target);
        assert_eq!(d, Decision::Idle(IdleReason::AtBudget));
        assert!(c.stats().budget_clamps.load(Relaxed) >= 2);
    }

    #[test]
    fn cooldown_prevents_thrash() {
        let target = FakeTarget::new(8 * 4096);
        let mut c = controller(ControllerConfig {
            target_loss_ppm: 1_000,
            cooldown_ticks: 3,
            ..ControllerConfig::default()
        });
        c.observe(&snap(0, 0, 0, 0.5), &target);
        let d = c.observe(&snap(1, 50, 50, 0.6), &target);
        assert!(matches!(d, Decision::Resize { .. }));
        c.apply(&d, &target);
        // The next three losing windows sit out the cooldown.
        for s in 2..5 {
            assert_eq!(
                c.observe(&snap(s, 50, 50, 0.6), &target),
                Decision::Idle(IdleReason::Cooldown),
                "tick {s} must be inside the cooldown"
            );
        }
        assert!(matches!(c.observe(&snap(5, 50, 50, 0.6), &target), Decision::Resize { .. }));
    }

    #[test]
    fn calm_buffer_shrinks_after_patience_with_retention_ranking() {
        let target = FakeTarget::new(32 * 4096);
        let mut c = controller(ControllerConfig {
            target_loss_ppm: 1_000,
            cooldown_ticks: 0,
            shrink_patience: 3,
            ..ControllerConfig::default()
        });
        // Light steady load: ~2 blocks per window, occupancy low.
        let mut d = Decision::Idle(IdleReason::Healthy);
        for s in 0..8 {
            d = c.observe(&snap(s, 0, 2, 0.1), &target);
            if matches!(d, Decision::Resize { .. }) {
                break;
            }
        }
        let Decision::Resize { to, from, reason } = d else {
            panic!("calm buffer must shrink, got {d:?}")
        };
        assert_eq!(reason, ResizeReason::Retention);
        assert!(to < from);
        assert!(to >= 4096, "never below one stride");
        // The retention score keeps enough for the recent windows (2
        // blocks ≈ 8 KiB each): candidate covers the observed history.
        assert!(to >= 2 * 4096, "retention keeps the recent window: {to}");
    }

    #[test]
    fn failed_resizes_back_off_exponentially() {
        let target = FakeTarget::new(8 * 4096);
        target.fail.store(true, Relaxed);
        let mut c = controller(ControllerConfig {
            target_loss_ppm: 1_000,
            cooldown_ticks: 1,
            max_backoff_ticks: 64,
            ..ControllerConfig::default()
        });
        c.observe(&snap(0, 0, 0, 0.5), &target);
        let mut seq = 1;
        let mut gaps = Vec::new();
        for _ in 0..3 {
            // Drive losing windows until the next resize attempt.
            let mut gap = 0;
            loop {
                let d = c.observe(&snap(seq, 50, 50, 0.6), &target);
                seq += 1;
                match d {
                    Decision::Resize { .. } => {
                        c.apply(&d, &target);
                        break;
                    }
                    _ => gap += 1,
                }
                assert!(gap < 1000, "controller stopped attempting resizes");
            }
            gaps.push(gap);
        }
        assert!(
            gaps[2] > gaps[1] && gaps[1] > gaps[0],
            "back-off must lengthen after consecutive failures: {gaps:?}"
        );
        assert_eq!(target.resizes.load(Relaxed), 0);
        assert!(c.stats().failures.load(Relaxed) >= 3);
    }

    #[test]
    fn stale_snapshots_are_skipped_and_counted() {
        let target = FakeTarget::new(8 * 4096);
        let mut c = controller(ControllerConfig {
            stale_after_ms: 100,
            cooldown_ticks: 0,
            ..ControllerConfig::default()
        });
        c.observe(&snap(0, 0, 0, 0.5), &target);
        // Same sequence re-delivered: no new data.
        assert_eq!(
            c.observe(&snap(0, 50, 50, 0.6), &target),
            Decision::Stale(StaleReason::NoNewData)
        );
        // Fresh sequence but an overslept window: too old to act on.
        let mut old = snap(1, 50, 50, 0.6);
        old.age_ms = 5_000;
        assert_eq!(c.observe(&old, &target), Decision::Stale(StaleReason::TooOld));
        assert_eq!(c.stats().stale_skips.load(Relaxed), 2);
        // A fresh window still works afterwards.
        assert!(matches!(c.observe(&snap(2, 50, 50, 0.6), &target), Decision::Resize { .. }));
    }

    #[test]
    fn lowered_budget_shrinks_even_under_load() {
        let target = FakeTarget::new(32 * 4096);
        let mut c = controller(ControllerConfig {
            budget_bytes: 8 * 4096,
            cooldown_ticks: 0,
            ..ControllerConfig::default()
        });
        c.observe(&snap(0, 0, 0, 0.9), &target);
        let d = c.observe(&snap(1, 10, 90, 0.9), &target);
        let Decision::Resize { to, reason, .. } = d else {
            panic!("over-budget buffer must shrink, got {d:?}")
        };
        assert_eq!(reason, ResizeReason::Budget);
        assert!(to <= 8 * 4096, "shrink target within budget: {to}");
    }

    #[test]
    fn every_decision_lands_in_the_flight_recorder() {
        let recorder = Arc::new(FlightRecorder::with_default_capacity(1));
        let target = FakeTarget::new(8 * 4096);
        let mut c = Controller::new(
            ControllerConfig {
                budget_bytes: 16 * 4096,
                target_loss_ppm: 1_000,
                cooldown_ticks: 0,
                ..ControllerConfig::default()
            },
            Arc::clone(&recorder),
        );
        c.observe(&snap(0, 0, 0, 0.5), &target);
        let d = c.observe(&snap(1, 50, 50, 0.6), &target); // grow
        c.apply(&d, &target);
        let d = c.observe(&snap(2, 50, 50, 0.6), &target); // clamped at budget
        c.apply(&d, &target);
        c.observe(&snap(1, 0, 0, 0.5), &target); // stale
        let kinds: Vec<EventKind> = recorder.snapshot().events.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EventKind::CtrlObserve));
        assert!(kinds.contains(&EventKind::CtrlResize));
        assert!(kinds.contains(&EventKind::CtrlBudgetClamp));
    }

    #[test]
    fn controller_thread_runs_and_stops_cleanly() {
        struct Source(FakeTarget, AtomicU64);
        impl SnapshotSource for Source {
            fn health_snapshot(&self) -> HealthSnapshot {
                let n = self.1.fetch_add(1, Relaxed);
                HealthSnapshot {
                    skips: n * 10,
                    closes: n * 10,
                    mean_occupancy: 0.9,
                    ..HealthSnapshot::default()
                }
            }
        }
        impl ResizeTarget for Source {
            fn current_bytes(&self) -> u64 {
                self.0.current_bytes()
            }
            fn stride_bytes(&self) -> u64 {
                self.0.stride_bytes()
            }
            fn max_bytes(&self) -> u64 {
                self.0.max_bytes()
            }
            fn resize_bytes(&self, bytes: u64) -> Result<(), String> {
                self.0.resize_bytes(bytes)
            }
        }
        let source = Arc::new(Source(FakeTarget::new(8 * 4096), AtomicU64::new(0)));
        let recorder = Arc::new(FlightRecorder::with_default_capacity(1));
        let mut thread = ControllerThread::spawn(
            Arc::clone(&source),
            recorder,
            ControllerConfig {
                target_loss_ppm: 1_000,
                cooldown_ticks: 0,
                ..ControllerConfig::default()
            },
            Duration::from_millis(2),
        );
        let deadline = Instant::now() + Duration::from_secs(5);
        while source.0.resizes.load(Relaxed) == 0 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(2));
        }
        thread.stop();
        assert!(source.0.resizes.load(Relaxed) > 0, "thread must apply at least one grow");
        assert!(thread.stats().ticks.load(Relaxed) > 0);
    }
}
