//! The flight recorder: a bounded, lock-free ring of control-plane events.
//!
//! `HealthSnapshot` answers *what is the tracer's state now*; the flight
//! recorder answers *what happened and when*. Every interesting state
//! transition — resize begin/retry/fallback/commit, injected faults,
//! `TracerState` bit flips, skip storms, EBR stalls, stream-stage spans
//! and drops, export retries — is emitted as a fixed-size typed event
//! into a per-shard ring that overwrites oldest, so the last few thousand
//! control-plane events are always available for forensics at a fixed
//! memory cost and without ever blocking the paths being observed.
//!
//! # Ring protocol
//!
//! Each shard is a power-of-two ring of 40-byte slots claimed by a
//! monotonically increasing ticket (`head.fetch_add`). The ticket doubles
//! as the event's **sequence number**, so a reader can prove that the
//! only missing events in a shard are the oldest, overwritten ones:
//! surviving sequence numbers are a contiguous tail (gap-only-on-
//! overwrite). Each slot carries a seqlock-style version word,
//! `2*ticket + 1` while the writer fills the payload and `2*ticket + 2`
//! once it is published, and readers validate the version before and
//! after copying the payload — a torn or in-flight event is skipped, never
//! returned. Writers whose slot was already reclaimed by a ticket a full
//! lap ahead abandon the write (their event is by definition the oldest
//! in the shard and would be overwritten immediately anyway); writers that
//! catch the *previous* lap's owner mid-publish spin for the remainder of
//! its four payload stores, which requires the ring to wrap entirely
//! within that window and does not occur outside adversarial tests.
//!
//! # Shard layout
//!
//! Rare control events (a resize takes milliseconds) and high-rate span
//! events (a pipeline stage can turn over thousands of batches per
//! second) must not share a ring, or the spans would evict the very
//! events `btrace doctor` needs. [`FlightRecorder::new`] therefore lays
//! out `cores` per-core shards, one control shard, and
//! [`STAGE_SHARDS`] pipeline-stage shards.

use core::sync::atomic::{
    fence, AtomicU64, Ordering::Acquire, Ordering::Relaxed, Ordering::Release,
};
use std::time::Instant;

use crossbeam_utils::CachePadded;

use crate::json::Json;

/// Number of dedicated pipeline-stage shards (drain, batch, encode, sink).
pub const STAGE_SHARDS: usize = 4;

/// Stage names matching the shard order used by [`FlightRecorder::stage_shard`]
/// and the `btrace-persist` stream pipeline.
pub const STAGE_NAMES: [&str; STAGE_SHARDS] = ["drain", "batch", "encode", "sink"];

/// Default ring capacity per shard, in events.
pub const DEFAULT_SLOTS: usize = 1024;

/// The typed control-plane events the recorder understands.
///
/// Each event carries two `u64` payload words `a`/`b` whose meaning is
/// per-kind (documented on the variant) plus a `source` id: the core for
/// per-core events, the stage index for pipeline events, 0 otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum EventKind {
    /// Payload words did not decode to a known kind (forward compat).
    Unknown = 0,
    /// A resize began: `a` = current capacity (blocks), `b` = target.
    ResizeBegin = 1,
    /// A backing-store op failed and will be retried: `a` = attempt
    /// number (1-based), `b` = backoff before the retry, in µs.
    ResizeRetry = 2,
    /// A grow commit exhausted its retries and fell back to the largest
    /// committed prefix: `a` = wanted capacity (blocks), `b` = kept.
    ResizeFallback = 3,
    /// A resize completed: `a` = new capacity (blocks), `b` = elapsed ns.
    ResizeCommit = 4,
    /// An injected backing fault fired: `a` = cumulative commit failures,
    /// `b` = attempt number the fault hit.
    FaultInjected = 5,
    /// A `TracerState` degradation bit was set: `a` = the bit, `b` = the
    /// full bitset after the transition.
    StateSet = 6,
    /// A degradation bit was cleared (self-healing): `a` = the bit,
    /// `b` = the full bitset after the transition.
    StateClear = 7,
    /// A rate window observed an abnormal skip burst: `a` = skips in the
    /// window, `b` = window length in ns.
    SkipStorm = 8,
    /// An EBR grace period outlived its patience threshold: `a` = wait so
    /// far in ns, `b` = the epoch being waited on.
    EbrStall = 9,
    /// A pipeline stage dequeued work: `source` = stage, `a` = span id,
    /// `b` = queue wait in ns.
    StageEnter = 10,
    /// A pipeline stage finished work: `source` = stage, `a` = span id,
    /// `b` = stage latency in ns.
    StageExit = 11,
    /// A stage dropped work under `DropAndCount`: `source` = stage,
    /// `a` = span id, `b` = items dropped.
    StageDrop = 12,
    /// A stage blocked on a full downstream queue under `Block`:
    /// `source` = stage, `a` = span id, `b` = wait in ns.
    Backpressure = 13,
    /// An exporter retried a failed sink write: `a` = cumulative retries.
    ExportRetry = 14,
    /// An exporter dropped a snapshot after exhausting its retry budget:
    /// `a` = cumulative drops.
    ExportDrop = 15,
    /// The adaptive-sizing controller observed a snapshot: `a` = measured
    /// loss rate in ppm over the window, `b` = mean occupancy in
    /// thousandths. `source` = 1 when the observation was skipped as
    /// stale, 0 otherwise.
    CtrlObserve = 16,
    /// The controller drove a resize: `a` = target capacity in bytes,
    /// `b` = capacity in bytes before the resize. `source` = 1 for a
    /// grow, 2 for a shrink.
    CtrlResize = 17,
    /// A controller resize failed (fault fallback or protocol error) and
    /// the controller entered exponential back-off: `a` = cooldown ticks
    /// it will now wait, `b` = consecutive failures so far.
    CtrlBackoff = 18,
    /// The controller wanted more memory than the budget allows and
    /// clamped: `a` = wanted bytes, `b` = clamped bytes actually asked.
    CtrlBudgetClamp = 19,
}

impl EventKind {
    /// Wire value, stored in the slot's packed word.
    pub fn as_u16(self) -> u16 {
        self as u16
    }

    /// Decodes a wire value; unknown values map to [`EventKind::Unknown`].
    pub fn from_u16(v: u16) -> EventKind {
        use EventKind::*;
        match v {
            1 => ResizeBegin,
            2 => ResizeRetry,
            3 => ResizeFallback,
            4 => ResizeCommit,
            5 => FaultInjected,
            6 => StateSet,
            7 => StateClear,
            8 => SkipStorm,
            9 => EbrStall,
            10 => StageEnter,
            11 => StageExit,
            12 => StageDrop,
            13 => Backpressure,
            14 => ExportRetry,
            15 => ExportDrop,
            16 => CtrlObserve,
            17 => CtrlResize,
            18 => CtrlBackoff,
            19 => CtrlBudgetClamp,
            _ => Unknown,
        }
    }

    /// Stable snake_case name, used in reports and `--json` output.
    pub fn name(self) -> &'static str {
        use EventKind::*;
        match self {
            Unknown => "unknown",
            ResizeBegin => "resize_begin",
            ResizeRetry => "resize_retry",
            ResizeFallback => "resize_fallback",
            ResizeCommit => "resize_commit",
            FaultInjected => "fault_injected",
            StateSet => "state_set",
            StateClear => "state_clear",
            SkipStorm => "skip_storm",
            EbrStall => "ebr_stall",
            StageEnter => "stage_enter",
            StageExit => "stage_exit",
            StageDrop => "stage_drop",
            Backpressure => "backpressure",
            ExportRetry => "export_retry",
            ExportDrop => "export_drop",
            CtrlObserve => "ctrl_observe",
            CtrlResize => "ctrl_resize",
            CtrlBackoff => "ctrl_backoff",
            CtrlBudgetClamp => "ctrl_budget_clamp",
        }
    }
}

/// One decoded recorder event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordedEvent {
    /// Per-shard sequence number (the writer's ticket). Within a shard,
    /// surviving events form a contiguous tail of the ticket space.
    pub seq: u64,
    /// Shard the event was recorded on.
    pub shard: u32,
    /// Nanoseconds since the recorder was created (monotonic).
    pub t_ns: u64,
    /// Event type.
    pub kind: EventKind,
    /// Kind-specific source id: core, stage index, or 0.
    pub source: u32,
    /// First kind-specific payload word.
    pub a: u64,
    /// Second kind-specific payload word.
    pub b: u64,
}

impl RecordedEvent {
    /// Renders a single human-readable timeline line, e.g.
    /// `[  1.203s] resize_fallback src=0 wanted=4096 kept=1024`.
    pub fn describe(&self) -> String {
        let secs = self.t_ns as f64 / 1e9;
        let detail = match self.kind {
            EventKind::ResizeBegin => format!("from={} to={} blocks", self.a, self.b),
            EventKind::ResizeRetry => format!("attempt={} backoff_us={}", self.a, self.b),
            EventKind::ResizeFallback => format!("wanted={} kept={} blocks", self.a, self.b),
            EventKind::ResizeCommit => format!("capacity={} blocks elapsed_ns={}", self.a, self.b),
            EventKind::FaultInjected => format!("commit_failures={} attempt={}", self.a, self.b),
            EventKind::StateSet | EventKind::StateClear => {
                format!("bit={:#x} bits={:#x}", self.a, self.b)
            }
            EventKind::SkipStorm => format!("skips={} window_ns={}", self.a, self.b),
            EventKind::EbrStall => format!("waited_ns={} epoch={}", self.a, self.b),
            EventKind::StageEnter => format!("span={} queue_wait_ns={}", self.a, self.b),
            EventKind::StageExit => format!("span={} stage_ns={}", self.a, self.b),
            EventKind::StageDrop => format!("span={} dropped={}", self.a, self.b),
            EventKind::Backpressure => format!("span={} wait_ns={}", self.a, self.b),
            EventKind::ExportRetry => format!("retries={}", self.a),
            EventKind::ExportDrop => format!("drops={}", self.a),
            EventKind::CtrlObserve => format!(
                "loss_ppm={} occupancy={}{}",
                self.a,
                self.b as f64 / 1000.0,
                if self.source == 1 { " (stale, skipped)" } else { "" }
            ),
            EventKind::CtrlResize => format!(
                "{} {} -> {} bytes",
                if self.source == 2 { "shrink" } else { "grow" },
                self.b,
                self.a
            ),
            EventKind::CtrlBackoff => format!("cooldown_ticks={} failures={}", self.a, self.b),
            EventKind::CtrlBudgetClamp => format!("wanted={} clamped={} bytes", self.a, self.b),
            EventKind::Unknown => format!("a={} b={}", self.a, self.b),
        };
        let src = match self.kind {
            EventKind::StageEnter
            | EventKind::StageExit
            | EventKind::StageDrop
            | EventKind::Backpressure => {
                format!("stage={}", STAGE_NAMES.get(self.source as usize).unwrap_or(&"?"))
            }
            _ => format!("src={}", self.source),
        };
        format!("[{secs:>9.4}s] {:<15} {src} {detail}", self.kind.name())
    }

    /// Structured form for `--json` output.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("seq".into(), Json::from_u64(self.seq)),
            ("shard".into(), Json::from_u64(self.shard as u64)),
            ("t_ns".into(), Json::from_u64(self.t_ns)),
            ("kind".into(), Json::Str(self.kind.name().into())),
            ("source".into(), Json::from_u64(self.source as u64)),
            ("a".into(), Json::from_u64(self.a)),
            ("b".into(), Json::from_u64(self.b)),
        ])
    }
}

/// Slot state: a seqlock version word plus four payload words
/// (timestamp, packed kind/source, `a`, `b`).
struct Slot {
    version: AtomicU64,
    words: [AtomicU64; 4],
}

struct Shard {
    head: AtomicU64,
    /// Writers that found their slot already reclaimed by a newer lap.
    abandoned: AtomicU64,
    slots: Box<[Slot]>,
    mask: u64,
}

impl Shard {
    fn new(slots: usize) -> Self {
        let cap = slots.next_power_of_two().max(8);
        Shard {
            head: AtomicU64::new(0),
            abandoned: AtomicU64::new(0),
            slots: (0..cap)
                .map(|_| Slot {
                    version: AtomicU64::new(0),
                    words: [
                        AtomicU64::new(0),
                        AtomicU64::new(0),
                        AtomicU64::new(0),
                        AtomicU64::new(0),
                    ],
                })
                .collect(),
            mask: cap as u64 - 1,
        }
    }
}

/// Lock-free bounded flight recorder; see the module docs for the ring
/// protocol and shard layout.
pub struct FlightRecorder {
    shards: Box<[CachePadded<Shard>]>,
    cores: usize,
    start: Instant,
}

impl FlightRecorder {
    /// Creates a recorder laid out for `cores` producer cores:
    /// `cores` per-core shards, one control shard, and [`STAGE_SHARDS`]
    /// pipeline shards, each a ring of `slots_per_shard` events (rounded
    /// up to a power of two, minimum 8).
    pub fn new(cores: usize, slots_per_shard: usize) -> FlightRecorder {
        let cores = cores.max(1);
        let shards = cores + 1 + STAGE_SHARDS;
        FlightRecorder {
            shards: (0..shards).map(|_| CachePadded::new(Shard::new(slots_per_shard))).collect(),
            cores,
            start: Instant::now(),
        }
    }

    /// Recorder with [`DEFAULT_SLOTS`] events per shard.
    pub fn with_default_capacity(cores: usize) -> FlightRecorder {
        FlightRecorder::new(cores, DEFAULT_SLOTS)
    }

    /// Total shard count (`cores + 1 + STAGE_SHARDS`).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Shard for events attributed to `core` (clamped).
    pub fn core_shard(&self, core: usize) -> usize {
        core.min(self.cores - 1)
    }

    /// Shard for global control events (resize, faults, state bits, EBR).
    pub fn control_shard(&self) -> usize {
        self.cores
    }

    /// Shard for pipeline-stage `stage` (clamped to [`STAGE_SHARDS`]).
    pub fn stage_shard(&self, stage: usize) -> usize {
        self.cores + 1 + stage.min(STAGE_SHARDS - 1)
    }

    /// Nanoseconds since the recorder was created; the timebase of every
    /// event timestamp. Monotonic across threads.
    pub fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Fixed memory held by the event rings, in bytes (the recorder's
    /// retention bound: older events are overwritten, never spilled).
    pub fn memory_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.slots.len() * core::mem::size_of::<Slot>()).sum()
    }

    /// Emits one event, stamped with [`now_ns`](FlightRecorder::now_ns).
    /// Lock-free and wait-free absent a full ring wrap inside another
    /// writer's four-store publish window.
    #[inline]
    pub fn emit(&self, shard: usize, kind: EventKind, source: u32, a: u64, b: u64) {
        self.emit_at(shard, self.now_ns(), kind, source, a, b);
    }

    /// Emits one event with an explicit timestamp (tests and replayed
    /// timelines; live emitters use [`emit`](FlightRecorder::emit)).
    pub fn emit_at(&self, shard: usize, t_ns: u64, kind: EventKind, source: u32, a: u64, b: u64) {
        let shard = &self.shards[shard.min(self.shards.len() - 1)];
        let ticket = shard.head.fetch_add(1, Relaxed);
        let slot = &shard.slots[(ticket & shard.mask) as usize];
        let claimed = 2 * ticket + 1;
        let mut v = slot.version.load(Relaxed);
        loop {
            if v >= claimed {
                // A writer a full lap ahead already owns (or finished) this
                // slot; our event is the shard's oldest and is dropped as an
                // ordinary overwrite.
                shard.abandoned.fetch_add(1, Relaxed);
                return;
            }
            if v & 1 == 1 {
                // Previous lap's owner is mid-publish; its four stores are
                // imminent. Wait them out rather than tearing the slot.
                core::hint::spin_loop();
                v = slot.version.load(Relaxed);
                continue;
            }
            // Acquire: the payload stores below must not be reordered above
            // the claim, or a reader could validate a half-old payload.
            match slot.version.compare_exchange_weak(v, claimed, Acquire, Relaxed) {
                Ok(_) => break,
                Err(cur) => v = cur,
            }
        }
        slot.words[0].store(t_ns, Relaxed);
        slot.words[1].store(((kind.as_u16() as u64) << 32) | source as u64, Relaxed);
        slot.words[2].store(a, Relaxed);
        slot.words[3].store(b, Relaxed);
        // Release: publishes the payload; readers seeing the even version
        // see all four words.
        slot.version.store(claimed + 1, Release);
    }

    /// Decodes every published event across all shards, merged and sorted
    /// by timestamp. Events mid-write or overwritten during the read are
    /// skipped, never returned torn.
    pub fn snapshot(&self) -> RecorderSnapshot {
        let mut events = Vec::new();
        let mut emitted = 0u64;
        let mut overwritten = 0u64;
        for (shard_idx, shard) in self.shards.iter().enumerate() {
            let head = shard.head.load(Relaxed);
            emitted += head;
            let cap = shard.slots.len() as u64;
            overwritten += head.saturating_sub(cap) + shard.abandoned.load(Relaxed);
            for slot in shard.slots.iter() {
                // Seqlock read: validate the version on both sides of the
                // payload copy; retry once, then treat the slot as in-flux.
                for _ in 0..2 {
                    let v1 = slot.version.load(Acquire);
                    if v1 == 0 || v1 & 1 == 1 {
                        break;
                    }
                    let w: [u64; 4] = core::array::from_fn(|i| slot.words[i].load(Relaxed));
                    // The payload loads above must complete before the
                    // validating re-read below.
                    fence(Acquire);
                    let v2 = slot.version.load(Relaxed);
                    if v1 != v2 {
                        continue;
                    }
                    events.push(RecordedEvent {
                        seq: v2 / 2 - 1,
                        shard: shard_idx as u32,
                        t_ns: w[0],
                        kind: EventKind::from_u16((w[1] >> 32) as u16),
                        source: w[1] as u32,
                        a: w[2],
                        b: w[3],
                    });
                    break;
                }
            }
        }
        events.sort_by_key(|e| (e.t_ns, e.shard, e.seq));
        RecorderSnapshot { events, emitted, overwritten }
    }
}

impl core::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("shards", &self.shards.len())
            .field("memory_bytes", &self.memory_bytes())
            .finish()
    }
}

/// A merged, time-sorted copy of the recorder's retained events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecorderSnapshot {
    /// Retained events, sorted by `(t_ns, shard, seq)`.
    pub events: Vec<RecordedEvent>,
    /// Total events ever emitted across all shards.
    pub emitted: u64,
    /// Events lost to ring wrap (overwritten oldest plus abandoned
    /// same-slot races).
    pub overwritten: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn shard_layout_is_cores_control_stages() {
        let r = FlightRecorder::new(4, 64);
        assert_eq!(r.shards(), 4 + 1 + STAGE_SHARDS);
        assert_eq!(r.core_shard(2), 2);
        assert_eq!(r.core_shard(99), 3);
        assert_eq!(r.control_shard(), 4);
        assert_eq!(r.stage_shard(0), 5);
        assert_eq!(r.stage_shard(99), 5 + STAGE_SHARDS - 1);
        assert!(r.memory_bytes() >= (4 + 1 + STAGE_SHARDS) * 64 * 40);
    }

    #[test]
    fn events_round_trip_in_order() {
        let r = FlightRecorder::new(1, 16);
        r.emit(r.control_shard(), EventKind::ResizeBegin, 0, 256, 512);
        r.emit(r.control_shard(), EventKind::ResizeCommit, 0, 512, 1_000);
        let snap = r.snapshot();
        assert_eq!(snap.emitted, 2);
        assert_eq!(snap.overwritten, 0);
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.events[0].kind, EventKind::ResizeBegin);
        assert_eq!(snap.events[0].seq, 0);
        assert_eq!(snap.events[0].a, 256);
        assert_eq!(snap.events[1].kind, EventKind::ResizeCommit);
        assert_eq!(snap.events[1].seq, 1);
        assert!(snap.events[0].t_ns <= snap.events[1].t_ns);
    }

    #[test]
    fn wrap_keeps_newest_with_contiguous_sequence_tail() {
        let r = FlightRecorder::new(1, 16);
        let shard = r.control_shard();
        for i in 0..100u64 {
            r.emit_at(shard, i, EventKind::SkipStorm, 0, i, 0);
        }
        let snap = r.snapshot();
        assert_eq!(snap.emitted, 100);
        assert_eq!(snap.overwritten, 100 - 16);
        let mut seqs: Vec<u64> = snap.events.iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (84..100).collect::<Vec<_>>(), "only the oldest events are lost");
        for e in &snap.events {
            assert_eq!(e.a, e.seq, "payload matches the ticket that wrote it");
        }
    }

    #[test]
    fn kind_wire_values_round_trip() {
        for v in 0..32u16 {
            let kind = EventKind::from_u16(v);
            if kind != EventKind::Unknown {
                assert_eq!(kind.as_u16(), v);
            }
        }
        assert_eq!(EventKind::from_u16(999), EventKind::Unknown);
    }

    #[test]
    fn describe_and_json_name_the_kind() {
        let e = RecordedEvent {
            seq: 7,
            shard: 0,
            t_ns: 1_500_000_000,
            kind: EventKind::ResizeFallback,
            source: 0,
            a: 4096,
            b: 1024,
        };
        let line = e.describe();
        assert!(line.contains("resize_fallback"), "{line}");
        assert!(line.contains("wanted=4096"), "{line}");
        let j = e.to_json();
        assert_eq!(j.get("kind").unwrap().as_str(), Some("resize_fallback"));
        assert_eq!(j.get("a").unwrap().as_u64(), Some(4096));
    }

    /// The satellite test: concurrent multi-core emit under heavy wrap.
    /// Every decoded event must be internally consistent (no torn reads)
    /// and per-shard sequence numbers must be unique with gaps only
    /// attributable to overwrite.
    #[test]
    fn concurrent_emit_under_wrap_yields_no_torn_events() {
        const CORES: usize = 4;
        const PER_THREAD: u64 = 20_000;
        let r = Arc::new(FlightRecorder::new(CORES, 64));
        let mut handles = Vec::new();
        for core in 0..CORES {
            let r = Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                let shard = r.core_shard(core);
                for i in 0..PER_THREAD {
                    // a/b are derived from each other so a torn mix of two
                    // writers' payloads cannot validate.
                    let a = (core as u64) << 32 | i;
                    r.emit_at(shard, i, EventKind::StageExit, core as u32, a, !a);
                }
            }));
        }
        // A reader races the writers the whole time.
        let reader = {
            let r = Arc::clone(&r);
            std::thread::spawn(move || {
                for _ in 0..200 {
                    for e in r.snapshot().events {
                        assert_eq!(e.b, !e.a, "torn event observed mid-run: {e:?}");
                    }
                }
            })
        };
        for h in handles {
            h.join().unwrap();
        }
        reader.join().unwrap();

        let snap = r.snapshot();
        assert_eq!(snap.emitted, CORES as u64 * PER_THREAD);
        for shard in 0..CORES as u32 {
            let mut seqs: Vec<u64> =
                snap.events.iter().filter(|e| e.shard == shard).map(|e| e.seq).collect();
            seqs.sort_unstable();
            seqs.dedup();
            assert_eq!(
                seqs.len(),
                snap.events.iter().filter(|e| e.shard == shard).count(),
                "duplicate sequence numbers on shard {shard}"
            );
            // Single writer per shard: survivors are exactly the newest
            // ring-capacity tickets — a contiguous tail.
            if let (Some(&lo), Some(&hi)) = (seqs.first(), seqs.last()) {
                assert_eq!(hi, PER_THREAD - 1);
                assert_eq!(hi - lo + 1, seqs.len() as u64, "interior gap on shard {shard}");
            }
            for e in snap.events.iter().filter(|e| e.shard == shard) {
                assert_eq!(e.b, !e.a, "torn event after quiesce: {e:?}");
                assert_eq!(e.a, (e.source as u64) << 32 | e.t_ns, "payload from wrong writer");
            }
        }
    }

    /// Two writers forced onto the same shard under wrap: events may be
    /// abandoned, but never torn, and accounting covers every emit.
    #[test]
    fn same_shard_contention_never_tears() {
        const THREADS: u64 = 4;
        const PER_THREAD: u64 = 30_000;
        let r = Arc::new(FlightRecorder::new(1, 8));
        let shard = r.core_shard(0);
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        let a = t << 40 | i;
                        r.emit_at(shard, i, EventKind::StageEnter, t as u32, a, a ^ u64::MAX);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = r.snapshot();
        assert_eq!(snap.emitted, THREADS * PER_THREAD);
        for e in snap.events.iter().filter(|e| e.shard == 0) {
            assert_eq!(e.b, e.a ^ u64::MAX, "torn event: {e:?}");
        }
    }
}
