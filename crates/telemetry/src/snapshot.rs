//! Health snapshots: the unit of export.
//!
//! A [`HealthSnapshot`] is everything the tracer can say about itself at
//! one instant: cumulative mechanism counters (records, advances, closes,
//! skips — the events of §3.2–§3.4 of the paper), buffer gauges, per-core
//! breakdowns, latency summaries from the histograms, and the observed
//! effectivity ratio side by side with the paper's `1 − A/N` bound.
//! Snapshots serialize to single-line JSON (for JSONL streams) and to
//! Prometheus text exposition format, and parse back losslessly.

use crate::json::{Json, ParseError};

/// The tracer's degradation bits, as carried in
/// [`HealthSnapshot::degraded_bits`].
///
/// The constants mirror `btrace-core`'s internal `TracerState` bitset
/// (a cross-crate test in core keeps them in sync). Each bit is either
/// **sticky** — it records that a degradation happened and stays set for
/// the life of the tracer — or **self-healing** — it reflects an ongoing
/// condition and clears when the condition resolves.
pub mod degraded {
    /// A backing commit failed permanently; capacity may be below target.
    /// Sticky.
    pub const COMMIT_FAILED: u64 = 1 << 0;
    /// Memory reclamation after a shrink was deferred; physical footprint
    /// temporarily exceeds the logical capacity. Self-healing.
    pub const RECLAIM_DEFERRED: u64 = 1 << 1;
    /// The resize lock was recovered from a poisoned state. Sticky.
    pub const LOCK_RECOVERED: u64 = 1 << 2;

    /// Description of one degradation bit.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct BitInfo {
        /// The bit value.
        pub bit: u64,
        /// Stable snake_case name.
        pub name: &'static str,
        /// `true` if the bit never clears once set.
        pub sticky: bool,
    }

    /// Every known degradation bit, in bit order.
    pub const ALL: [BitInfo; 3] = [
        BitInfo { bit: COMMIT_FAILED, name: "commit_failed", sticky: true },
        BitInfo { bit: RECLAIM_DEFERRED, name: "reclaim_deferred", sticky: false },
        BitInfo { bit: LOCK_RECOVERED, name: "lock_recovered", sticky: true },
    ];

    /// Renders a bitset as a compact label, e.g.
    /// `commit_failed!+reclaim_deferred` (`!` marks sticky bits), or
    /// `ok` when no bits are set.
    pub fn describe(bits: u64) -> String {
        if bits == 0 {
            return "ok".to_string();
        }
        let mut parts: Vec<String> = ALL
            .iter()
            .filter(|info| bits & info.bit != 0)
            .map(|info| if info.sticky { format!("{}!", info.name) } else { info.name.to_string() })
            .collect();
        let known: u64 = ALL.iter().map(|i| i.bit).sum();
        if bits & !known != 0 {
            parts.push(format!("{:#x}", bits & !known));
        }
        parts.join("+")
    }
}

/// Condensed latency distribution (nanoseconds), produced by
/// [`crate::HistogramSnapshot::summary`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencySummary {
    /// Number of timed samples (for sampled paths this is less than the
    /// operation count).
    pub count: u64,
    /// Mean latency in nanoseconds.
    pub mean_ns: f64,
    /// 50th-percentile latency (ns, bucket upper bound).
    pub p50: u64,
    /// 90th-percentile latency (ns).
    pub p90: u64,
    /// 99th-percentile latency (ns).
    pub p99: u64,
    /// 99.9th-percentile latency (ns).
    pub p999: u64,
    /// Maximum observed latency (ns, bucket upper bound).
    pub max: u64,
}

impl LatencySummary {
    fn to_json(self) -> Json {
        Json::Obj(vec![
            ("count".into(), Json::from_u64(self.count)),
            ("mean_ns".into(), Json::from_f64(self.mean_ns)),
            ("p50".into(), Json::from_u64(self.p50)),
            ("p90".into(), Json::from_u64(self.p90)),
            ("p99".into(), Json::from_u64(self.p99)),
            ("p999".into(), Json::from_u64(self.p999)),
            ("max".into(), Json::from_u64(self.max)),
        ])
    }

    fn from_json(v: &Json) -> Option<Self> {
        Some(Self {
            count: v.get("count")?.as_u64()?,
            mean_ns: v.get("mean_ns")?.as_f64()?,
            p50: v.get("p50")?.as_u64()?,
            p90: v.get("p90")?.as_u64()?,
            p99: v.get("p99")?.as_u64()?,
            p999: v.get("p999")?.as_u64()?,
            max: v.get("max")?.as_u64()?,
        })
    }
}

/// Per-core slice of the health report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CoreHealth {
    /// Core (shard) index.
    pub core: usize,
    /// Entries recorded from this core.
    pub records: u64,
    /// Payload bytes recorded from this core.
    pub recorded_bytes: u64,
}

impl CoreHealth {
    fn to_json(self) -> Json {
        Json::Obj(vec![
            ("core".into(), Json::from_u64(self.core as u64)),
            ("records".into(), Json::from_u64(self.records)),
            ("recorded_bytes".into(), Json::from_u64(self.recorded_bytes)),
        ])
    }

    fn from_json(v: &Json) -> Option<Self> {
        Some(Self {
            core: v.get("core")?.as_usize()?,
            records: v.get("records")?.as_u64()?,
            recorded_bytes: v.get("recorded_bytes")?.as_u64()?,
        })
    }
}

/// Per-stage gauges of a streaming drain pipeline (`drain → batch →
/// encode → sink`), attached to snapshots while a stream session runs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StageHealth {
    /// Stage name (`drain`, `batch`, `encode`, `sink`).
    pub stage: String,
    /// Items currently queued at the stage's inlet.
    pub depth: usize,
    /// Bound of the stage's inlet queue (0 for the unqueued first stage).
    pub capacity: usize,
    /// Items accepted by the stage so far.
    pub in_items: u64,
    /// Items the stage has handed downstream.
    pub out_items: u64,
    /// Items dropped at this stage by the backpressure policy.
    pub dropped: u64,
    /// Per-item stage processing latency (span-timed, ns).
    pub latency: LatencySummary,
    /// Time items spent waiting in the stage's inlet queue (ns).
    pub queue_wait: LatencySummary,
}

impl StageHealth {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("stage".into(), Json::Str(self.stage.clone())),
            ("depth".into(), Json::from_u64(self.depth as u64)),
            ("capacity".into(), Json::from_u64(self.capacity as u64)),
            ("in_items".into(), Json::from_u64(self.in_items)),
            ("out_items".into(), Json::from_u64(self.out_items)),
            ("dropped".into(), Json::from_u64(self.dropped)),
            ("latency".into(), self.latency.to_json()),
            ("queue_wait".into(), self.queue_wait.to_json()),
        ])
    }

    fn from_json(v: &Json) -> Option<Self> {
        // `latency`/`queue_wait` are absent on lines written before span
        // instrumentation; decode those as empty summaries.
        let summary = |key: &str| match v.get(key) {
            Some(obj) => LatencySummary::from_json(obj),
            None => Some(LatencySummary::default()),
        };
        Some(Self {
            stage: v.get("stage")?.as_str()?.to_string(),
            depth: v.get("depth")?.as_usize()?,
            capacity: v.get("capacity")?.as_usize()?,
            in_items: v.get("in_items")?.as_u64()?,
            out_items: v.get("out_items")?.as_u64()?,
            dropped: v.get("dropped")?.as_u64()?,
            latency: summary("latency")?,
            queue_wait: summary("queue_wait")?,
        })
    }
}

/// Rate-windowed deltas between consecutive sampler snapshots. All zeros
/// on a raw (non-sampler) snapshot or the first sample of a run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Rates {
    /// Width of the measurement window in seconds (0 when unavailable).
    pub window_secs: f64,
    /// Entries recorded per second over the window.
    pub records_per_sec: f64,
    /// Payload bytes recorded per second over the window.
    pub bytes_per_sec: f64,
    /// Block advances (slow-path entries) per second over the window.
    pub advances_per_sec: f64,
    /// Block skips per second over the window.
    pub skips_per_sec: f64,
}

impl Rates {
    fn to_json(self) -> Json {
        Json::Obj(vec![
            ("window_secs".into(), Json::from_f64(self.window_secs)),
            ("records_per_sec".into(), Json::from_f64(self.records_per_sec)),
            ("bytes_per_sec".into(), Json::from_f64(self.bytes_per_sec)),
            ("advances_per_sec".into(), Json::from_f64(self.advances_per_sec)),
            ("skips_per_sec".into(), Json::from_f64(self.skips_per_sec)),
        ])
    }

    fn from_json(v: &Json) -> Option<Self> {
        Some(Self {
            window_secs: v.get("window_secs")?.as_f64()?,
            records_per_sec: v.get("records_per_sec")?.as_f64()?,
            bytes_per_sec: v.get("bytes_per_sec")?.as_f64()?,
            advances_per_sec: v.get("advances_per_sec")?.as_f64()?,
            skips_per_sec: v.get("skips_per_sec")?.as_f64()?,
        })
    }
}

/// A point-in-time health report for one tracer instance.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HealthSnapshot {
    /// Monotone sequence number assigned by the sampler (0 for raw
    /// snapshots).
    pub seq: u64,
    /// Wall-clock capture time, milliseconds since the Unix epoch (0 for
    /// raw snapshots).
    pub unix_ms: u64,
    /// Realized sampling gap in milliseconds: time elapsed between the
    /// previous sampler capture and this one (0 for raw snapshots and the
    /// first sample of a run). Condvar pacing can oversleep under host
    /// load, so this is the honest age of the *window* the snapshot
    /// covers — consumers acting on snapshots (the adaptive-sizing
    /// controller, `btrace watch`) compare it against the configured
    /// period to detect stale input instead of trusting the schedule.
    pub age_ms: u64,
    /// Producer cores / counter shards.
    pub cores: usize,
    /// Total data blocks `N`.
    pub capacity_blocks: usize,
    /// Active metadata blocks `A`.
    pub active_blocks: usize,
    /// Bytes per data block.
    pub block_bytes: usize,
    /// Total buffer capacity in bytes.
    pub capacity_bytes: usize,
    /// High-water mark of physically committed buffer bytes.
    pub committed_bytes: u64,
    /// Active metadata rounds whose block is not yet full.
    pub open_blocks: usize,
    /// Mean confirmed fraction of the active metadata rounds, `[0, 1]`.
    pub mean_occupancy: f64,
    /// Cumulative entries recorded.
    pub records: u64,
    /// Cumulative payload bytes recorded.
    pub recorded_bytes: u64,
    /// Cumulative bytes lost to dummy (abandoned) entries.
    pub dummy_bytes: u64,
    /// Cumulative slow-path advances (§3.2).
    pub advances: u64,
    /// Cumulative block closes.
    pub closes: u64,
    /// Cumulative block skips (§3.4).
    pub skips: u64,
    /// Cumulative straggler repairs.
    pub straggler_repairs: u64,
    /// Cumulative buffer resizes.
    pub resizes: u64,
    /// Cumulative failed backing commit/decommit attempts (retries count).
    pub commit_failures: u64,
    /// Resizes that fell back to their pre-resize geometry.
    pub resize_fallbacks: u64,
    /// Poisoned resize locks recovered.
    pub lock_recoveries: u64,
    /// Current `TracerState` degradation bitset (see [`degraded`]).
    pub degraded_bits: u64,
    /// Exporter I/O retries performed (filled by the sampler).
    pub export_retries: u64,
    /// Snapshots dropped after exhausting exporter retries (sampler).
    pub export_drops: u64,
    /// Observed effectivity: recorded bytes over recorded + dummy bytes.
    pub effectivity_observed: f64,
    /// The paper's effectivity bound `1 − A/N`.
    pub effectivity_bound: f64,
    /// Skips per advance (how often the slow path found a stuck block).
    pub skip_rate: f64,
    /// Per-core record counts and bytes.
    pub per_core: Vec<CoreHealth>,
    /// Fast-path record latency (sampled).
    pub record_latency: LatencySummary,
    /// Slow-path advance/close/skip latency.
    pub advance_latency: LatencySummary,
    /// Consumer drain latency.
    pub drain_latency: LatencySummary,
    /// Rate-windowed deltas (filled by the sampler).
    pub rates: Rates,
    /// Streaming pipeline stage gauges (empty when no stream session is
    /// attached).
    pub stream_stages: Vec<StageHealth>,
}

impl HealthSnapshot {
    /// Serializes to a single-line JSON object (one JSONL record).
    pub fn to_json(&self) -> String {
        Json::Obj(vec![
            ("seq".into(), Json::from_u64(self.seq)),
            ("unix_ms".into(), Json::from_u64(self.unix_ms)),
            ("age_ms".into(), Json::from_u64(self.age_ms)),
            ("cores".into(), Json::from_u64(self.cores as u64)),
            ("capacity_blocks".into(), Json::from_u64(self.capacity_blocks as u64)),
            ("active_blocks".into(), Json::from_u64(self.active_blocks as u64)),
            ("block_bytes".into(), Json::from_u64(self.block_bytes as u64)),
            ("capacity_bytes".into(), Json::from_u64(self.capacity_bytes as u64)),
            ("committed_bytes".into(), Json::from_u64(self.committed_bytes)),
            ("open_blocks".into(), Json::from_u64(self.open_blocks as u64)),
            ("mean_occupancy".into(), Json::from_f64(self.mean_occupancy)),
            ("records".into(), Json::from_u64(self.records)),
            ("recorded_bytes".into(), Json::from_u64(self.recorded_bytes)),
            ("dummy_bytes".into(), Json::from_u64(self.dummy_bytes)),
            ("advances".into(), Json::from_u64(self.advances)),
            ("closes".into(), Json::from_u64(self.closes)),
            ("skips".into(), Json::from_u64(self.skips)),
            ("straggler_repairs".into(), Json::from_u64(self.straggler_repairs)),
            ("resizes".into(), Json::from_u64(self.resizes)),
            ("commit_failures".into(), Json::from_u64(self.commit_failures)),
            ("resize_fallbacks".into(), Json::from_u64(self.resize_fallbacks)),
            ("lock_recoveries".into(), Json::from_u64(self.lock_recoveries)),
            ("degraded_bits".into(), Json::from_u64(self.degraded_bits)),
            ("export_retries".into(), Json::from_u64(self.export_retries)),
            ("export_drops".into(), Json::from_u64(self.export_drops)),
            ("effectivity_observed".into(), Json::from_f64(self.effectivity_observed)),
            ("effectivity_bound".into(), Json::from_f64(self.effectivity_bound)),
            ("skip_rate".into(), Json::from_f64(self.skip_rate)),
            ("per_core".into(), Json::Arr(self.per_core.iter().map(|c| c.to_json()).collect())),
            ("record_latency".into(), self.record_latency.to_json()),
            ("advance_latency".into(), self.advance_latency.to_json()),
            ("drain_latency".into(), self.drain_latency.to_json()),
            ("rates".into(), self.rates.to_json()),
            (
                "stream_stages".into(),
                Json::Arr(self.stream_stages.iter().map(|s| s.to_json()).collect()),
            ),
        ])
        .render()
    }

    /// Parses a snapshot previously produced by
    /// [`to_json`](HealthSnapshot::to_json).
    pub fn from_json(text: &str) -> Result<HealthSnapshot, ParseError> {
        let v = Json::parse(text)?;
        Self::decode(&v).ok_or(ParseError { pos: 0, reason: "missing or mistyped field" })
    }

    fn decode(v: &Json) -> Option<HealthSnapshot> {
        Some(HealthSnapshot {
            seq: v.get("seq")?.as_u64()?,
            unix_ms: v.get("unix_ms")?.as_u64()?,
            // Absent on snapshots written before the sampler stamped its
            // realized gap; decode those as "age unknown" (0).
            age_ms: match v.get("age_ms") {
                Some(age) => age.as_u64()?,
                None => 0,
            },
            cores: v.get("cores")?.as_usize()?,
            capacity_blocks: v.get("capacity_blocks")?.as_usize()?,
            active_blocks: v.get("active_blocks")?.as_usize()?,
            block_bytes: v.get("block_bytes")?.as_usize()?,
            capacity_bytes: v.get("capacity_bytes")?.as_usize()?,
            committed_bytes: v.get("committed_bytes")?.as_u64()?,
            open_blocks: v.get("open_blocks")?.as_usize()?,
            mean_occupancy: v.get("mean_occupancy")?.as_f64()?,
            records: v.get("records")?.as_u64()?,
            recorded_bytes: v.get("recorded_bytes")?.as_u64()?,
            dummy_bytes: v.get("dummy_bytes")?.as_u64()?,
            advances: v.get("advances")?.as_u64()?,
            closes: v.get("closes")?.as_u64()?,
            skips: v.get("skips")?.as_u64()?,
            straggler_repairs: v.get("straggler_repairs")?.as_u64()?,
            resizes: v.get("resizes")?.as_u64()?,
            commit_failures: v.get("commit_failures")?.as_u64()?,
            resize_fallbacks: v.get("resize_fallbacks")?.as_u64()?,
            lock_recoveries: v.get("lock_recoveries")?.as_u64()?,
            // Absent on snapshots written before state bits were exported.
            degraded_bits: match v.get("degraded_bits") {
                Some(bits) => bits.as_u64()?,
                None => 0,
            },
            export_retries: v.get("export_retries")?.as_u64()?,
            export_drops: v.get("export_drops")?.as_u64()?,
            effectivity_observed: v.get("effectivity_observed")?.as_f64()?,
            effectivity_bound: v.get("effectivity_bound")?.as_f64()?,
            skip_rate: v.get("skip_rate")?.as_f64()?,
            per_core: v
                .get("per_core")?
                .as_arr()?
                .iter()
                .map(CoreHealth::from_json)
                .collect::<Option<Vec<_>>>()?,
            record_latency: LatencySummary::from_json(v.get("record_latency")?)?,
            advance_latency: LatencySummary::from_json(v.get("advance_latency")?)?,
            drain_latency: LatencySummary::from_json(v.get("drain_latency")?)?,
            rates: Rates::from_json(v.get("rates")?)?,
            // Absent on snapshots written before streaming existed: decode
            // those as "no stream session" rather than rejecting the line.
            stream_stages: match v.get("stream_stages") {
                Some(arr) => {
                    arr.as_arr()?.iter().map(StageHealth::from_json).collect::<Option<Vec<_>>>()?
                }
                None => Vec::new(),
            },
        })
    }

    /// Renders the snapshot in Prometheus text exposition format
    /// (metric families with `# HELP`/`# TYPE` headers, suitable for a
    /// node-exporter textfile collector or a `/metrics` endpoint).
    pub fn to_prometheus(&self) -> String {
        fn family(out: &mut String, kind: &str, name: &str, help: &str, value: &str) {
            out.push_str(&format!(
                "# HELP btrace_{name} {help}\n# TYPE btrace_{name} {kind}\nbtrace_{name} {value}\n"
            ));
        }
        let mut out = String::new();
        for (name, help, value) in [
            ("records_total", "Entries recorded.", self.records),
            ("recorded_bytes_total", "Payload bytes recorded.", self.recorded_bytes),
            ("dummy_bytes_total", "Bytes lost to dummy entries.", self.dummy_bytes),
            ("advances_total", "Slow-path block advances.", self.advances),
            ("closes_total", "Blocks closed.", self.closes),
            ("skips_total", "Blocks skipped.", self.skips),
            ("straggler_repairs_total", "Straggler repairs.", self.straggler_repairs),
            ("resizes_total", "Buffer resizes.", self.resizes),
            ("commit_failures_total", "Failed backing commit attempts.", self.commit_failures),
            (
                "resize_fallbacks_total",
                "Resizes fallen back to old geometry.",
                self.resize_fallbacks,
            ),
            ("lock_recoveries_total", "Poisoned resize locks recovered.", self.lock_recoveries),
            ("export_retries_total", "Exporter I/O retries.", self.export_retries),
            ("export_drops_total", "Snapshots dropped after exporter retries.", self.export_drops),
        ] {
            family(&mut out, "counter", name, help, &value.to_string());
        }
        for (name, help, value) in [
            ("capacity_blocks", "Total data blocks N.", self.capacity_blocks.to_string()),
            ("active_blocks", "Active metadata blocks A.", self.active_blocks.to_string()),
            ("capacity_bytes", "Buffer capacity in bytes.", self.capacity_bytes.to_string()),
            ("committed_bytes", "Committed buffer bytes.", self.committed_bytes.to_string()),
            ("open_blocks", "Active rounds not yet full.", self.open_blocks.to_string()),
            (
                "mean_occupancy",
                "Mean confirmed fraction of active rounds.",
                fmt_f64(self.mean_occupancy),
            ),
            (
                "effectivity_observed",
                "Observed effectivity ratio.",
                fmt_f64(self.effectivity_observed),
            ),
            ("effectivity_bound", "Paper bound 1 - A/N.", fmt_f64(self.effectivity_bound)),
            ("skip_rate", "Skips per advance.", fmt_f64(self.skip_rate)),
            (
                "records_per_sec",
                "Record rate over the sample window.",
                fmt_f64(self.rates.records_per_sec),
            ),
            (
                "bytes_per_sec",
                "Byte rate over the sample window.",
                fmt_f64(self.rates.bytes_per_sec),
            ),
        ] {
            family(&mut out, "gauge", name, help, &value);
        }

        family(
            &mut out,
            "gauge",
            "degraded_bits",
            "TracerState degradation bitset (0 = healthy).",
            &self.degraded_bits.to_string(),
        );
        out.push_str("# HELP btrace_degraded TracerState degradation bits (1 = set).\n");
        out.push_str("# TYPE btrace_degraded gauge\n");
        for info in degraded::ALL {
            out.push_str(&format!(
                "btrace_degraded{{bit=\"{}\",sticky=\"{}\"}} {}\n",
                info.name,
                info.sticky,
                u64::from(self.degraded_bits & info.bit != 0)
            ));
        }

        out.push_str("# HELP btrace_core_records_total Entries recorded per core.\n");
        out.push_str("# TYPE btrace_core_records_total counter\n");
        for core in &self.per_core {
            out.push_str(&format!(
                "btrace_core_records_total{{core=\"{}\"}} {}\n",
                core.core, core.records
            ));
        }

        if !self.stream_stages.is_empty() {
            for (name, kind, help, pick) in [
                (
                    "stream_stage_depth",
                    "gauge",
                    "Items queued at the stage inlet.",
                    (|s: &StageHealth| s.depth as u64) as fn(&StageHealth) -> u64,
                ),
                ("stream_stage_in_total", "counter", "Items accepted by the stage.", |s| {
                    s.in_items
                }),
                ("stream_stage_out_total", "counter", "Items handed downstream.", |s| s.out_items),
                ("stream_stage_dropped_total", "counter", "Items dropped by backpressure.", |s| {
                    s.dropped
                }),
            ] {
                out.push_str(&format!(
                    "# HELP btrace_{name} {help}\n# TYPE btrace_{name} {kind}\n"
                ));
                for stage in &self.stream_stages {
                    out.push_str(&format!(
                        "btrace_{name}{{stage=\"{}\"}} {}\n",
                        stage.stage,
                        pick(stage)
                    ));
                }
            }
            for (name, help, pick) in [
                (
                    "stream_stage_latency_ns",
                    "Per-item stage latency quantiles (span-timed, ns).",
                    (|s: &StageHealth| &s.latency) as fn(&StageHealth) -> &LatencySummary,
                ),
                (
                    "stream_stage_queue_wait_ns",
                    "Inlet queue wait quantiles (span-timed, ns).",
                    |s| &s.queue_wait,
                ),
            ] {
                out.push_str(&format!(
                    "# HELP btrace_{name} {help}\n# TYPE btrace_{name} summary\n"
                ));
                for stage in &self.stream_stages {
                    let summary = pick(stage);
                    for (q, v) in [("0.5", summary.p50), ("0.99", summary.p99)] {
                        out.push_str(&format!(
                            "btrace_{name}{{stage=\"{}\",quantile=\"{q}\"}} {v}\n",
                            stage.stage
                        ));
                    }
                    out.push_str(&format!(
                        "btrace_{name}_count{{stage=\"{}\"}} {}\n",
                        stage.stage, summary.count
                    ));
                }
            }
        }

        for (path, summary) in [
            ("record", &self.record_latency),
            ("advance", &self.advance_latency),
            ("drain", &self.drain_latency),
        ] {
            out.push_str(&format!(
                "# HELP btrace_{path}_latency_ns {path} latency quantiles (sampled, ns).\n\
                 # TYPE btrace_{path}_latency_ns summary\n"
            ));
            for (q, v) in [
                ("0.5", summary.p50),
                ("0.9", summary.p90),
                ("0.99", summary.p99),
                ("0.999", summary.p999),
            ] {
                out.push_str(&format!("btrace_{path}_latency_ns{{quantile=\"{q}\"}} {v}\n"));
            }
            out.push_str(&format!("btrace_{path}_latency_ns_count {}\n", summary.count));
            out.push_str(&format!(
                "btrace_{path}_latency_ns_sum {}\n",
                fmt_f64(summary.mean_ns * summary.count as f64)
            ));
        }
        out
    }
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> HealthSnapshot {
        HealthSnapshot {
            seq: 7,
            unix_ms: 1_754_000_000_123,
            age_ms: 1007,
            cores: 2,
            capacity_blocks: 3072,
            active_blocks: 192,
            block_bytes: 4096,
            capacity_bytes: 12 << 20,
            committed_bytes: 1 << 20,
            open_blocks: 150,
            mean_occupancy: 0.42,
            records: (1 << 53) + 17, // exercise > f64-exact integers
            recorded_bytes: 999,
            dummy_bytes: 1,
            advances: 10,
            closes: 9,
            skips: 1,
            straggler_repairs: 0,
            resizes: 2,
            commit_failures: 5,
            resize_fallbacks: 1,
            lock_recoveries: 1,
            degraded_bits: degraded::COMMIT_FAILED | degraded::RECLAIM_DEFERRED,
            export_retries: 3,
            export_drops: 1,
            effectivity_observed: 0.999,
            effectivity_bound: 0.9375,
            skip_rate: 0.1,
            per_core: vec![
                CoreHealth { core: 0, records: 600, recorded_bytes: 500 },
                CoreHealth { core: 1, records: 400, recorded_bytes: 499 },
            ],
            record_latency: LatencySummary {
                count: 100,
                mean_ns: 12.5,
                p50: 11,
                p90: 15,
                p99: 31,
                p999: 63,
                max: 95,
            },
            advance_latency: LatencySummary::default(),
            drain_latency: LatencySummary::default(),
            rates: Rates {
                window_secs: 1.0,
                records_per_sec: 1000.0,
                bytes_per_sec: 999.0,
                advances_per_sec: 10.0,
                skips_per_sec: 1.0,
            },
            stream_stages: vec![
                StageHealth {
                    stage: "drain".into(),
                    depth: 0,
                    capacity: 0,
                    in_items: 5000,
                    out_items: 5000,
                    dropped: 0,
                    ..StageHealth::default()
                },
                StageHealth {
                    stage: "sink".into(),
                    depth: 3,
                    capacity: 8,
                    in_items: 41,
                    out_items: 38,
                    dropped: 2,
                    latency: LatencySummary {
                        count: 41,
                        mean_ns: 820.0,
                        p50: 700,
                        p90: 1200,
                        p99: 2100,
                        p999: 2500,
                        max: 2600,
                    },
                    queue_wait: LatencySummary {
                        count: 41,
                        mean_ns: 90.0,
                        p50: 80,
                        p90: 150,
                        p99: 240,
                        p999: 300,
                        max: 310,
                    },
                },
            ],
        }
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let snap = sample();
        let line = snap.to_json();
        assert!(!line.contains('\n'), "JSONL records must be single-line");
        let parsed = HealthSnapshot::from_json(&line).unwrap();
        assert_eq!(parsed, snap);
    }

    #[test]
    fn default_round_trips_too() {
        let snap = HealthSnapshot::default();
        assert_eq!(HealthSnapshot::from_json(&snap.to_json()).unwrap(), snap);
    }

    #[test]
    fn pre_streaming_snapshots_still_decode() {
        // A JSONL line written before `stream_stages` existed must parse
        // as "no stream session attached".
        let old = HealthSnapshot {
            stream_stages: vec![StageHealth { stage: "sink".into(), ..StageHealth::default() }],
            ..HealthSnapshot::default()
        };
        let line = old.to_json();
        let key_at = line.find(",\"stream_stages\"").unwrap();
        let trimmed = format!("{}}}", &line[..key_at]);
        let parsed = HealthSnapshot::from_json(&trimmed).unwrap();
        assert!(parsed.stream_stages.is_empty());
    }

    #[test]
    fn pre_observability_snapshots_still_decode() {
        // Lines written before `degraded_bits` and the stage latency
        // summaries existed must still parse, with the new fields at
        // their defaults.
        let line = "{\"seq\":0,\"unix_ms\":0,\"cores\":1,\"capacity_blocks\":1,\
            \"active_blocks\":1,\"block_bytes\":1,\"capacity_bytes\":1,\
            \"committed_bytes\":0,\"open_blocks\":0,\"mean_occupancy\":0.0,\
            \"records\":0,\"recorded_bytes\":0,\"dummy_bytes\":0,\"advances\":0,\
            \"closes\":0,\"skips\":0,\"straggler_repairs\":0,\"resizes\":0,\
            \"commit_failures\":0,\"resize_fallbacks\":0,\"lock_recoveries\":0,\
            \"export_retries\":0,\"export_drops\":0,\"effectivity_observed\":0.0,\
            \"effectivity_bound\":0.0,\"skip_rate\":0.0,\"per_core\":[],\
            \"record_latency\":{\"count\":0,\"mean_ns\":0.0,\"p50\":0,\"p90\":0,\
            \"p99\":0,\"p999\":0,\"max\":0},\
            \"advance_latency\":{\"count\":0,\"mean_ns\":0.0,\"p50\":0,\"p90\":0,\
            \"p99\":0,\"p999\":0,\"max\":0},\
            \"drain_latency\":{\"count\":0,\"mean_ns\":0.0,\"p50\":0,\"p90\":0,\
            \"p99\":0,\"p999\":0,\"max\":0},\
            \"rates\":{\"window_secs\":0.0,\"records_per_sec\":0.0,\
            \"bytes_per_sec\":0.0,\"advances_per_sec\":0.0,\"skips_per_sec\":0.0},\
            \"stream_stages\":[{\"stage\":\"sink\",\"depth\":0,\"capacity\":0,\
            \"in_items\":7,\"out_items\":7,\"dropped\":0}]}";
        let parsed = HealthSnapshot::from_json(line).unwrap();
        assert_eq!(parsed.degraded_bits, 0);
        assert_eq!(parsed.age_ms, 0, "pre-age lines decode as age-unknown");
        assert_eq!(parsed.stream_stages[0].in_items, 7);
        assert_eq!(parsed.stream_stages[0].latency, LatencySummary::default());
        assert_eq!(parsed.stream_stages[0].queue_wait, LatencySummary::default());
    }

    #[test]
    fn degraded_describe_marks_sticky_bits() {
        assert_eq!(degraded::describe(0), "ok");
        assert_eq!(degraded::describe(degraded::COMMIT_FAILED), "commit_failed!");
        assert_eq!(
            degraded::describe(degraded::COMMIT_FAILED | degraded::RECLAIM_DEFERRED),
            "commit_failed!+reclaim_deferred"
        );
        assert!(degraded::describe(1 << 40).contains("0x"), "unknown bits stay visible");
    }

    #[test]
    fn rejects_truncated_input() {
        let line = sample().to_json();
        assert!(HealthSnapshot::from_json(&line[..line.len() / 2]).is_err());
        assert!(HealthSnapshot::from_json("{}").is_err());
    }

    #[test]
    fn prometheus_output_has_expected_families() {
        let text = sample().to_prometheus();
        assert!(text.contains("# TYPE btrace_records_total counter"));
        assert!(text.contains(&format!("btrace_records_total {}", (1u64 << 53) + 17)));
        assert!(text.contains("btrace_core_records_total{core=\"1\"} 400"));
        assert!(text.contains("btrace_record_latency_ns{quantile=\"0.99\"} 31"));
        assert!(text.contains("btrace_effectivity_bound 0.9375"));
        assert!(text.contains("# TYPE btrace_commit_failures_total counter"));
        assert!(text.contains("btrace_commit_failures_total 5"));
        assert!(text.contains("btrace_stream_stage_depth{stage=\"sink\"} 3"));
        assert!(text.contains("btrace_stream_stage_dropped_total{stage=\"sink\"} 2"));
        assert!(
            text.contains("btrace_stream_stage_latency_ns{stage=\"sink\",quantile=\"0.99\"} 2100")
        );
        assert!(
            text.contains("btrace_stream_stage_queue_wait_ns{stage=\"sink\",quantile=\"0.5\"} 80")
        );
        assert!(text.contains("btrace_stream_stage_latency_ns_count{stage=\"sink\"} 41"));
        assert!(text.contains("btrace_degraded_bits 3"));
        assert!(text.contains("btrace_degraded{bit=\"commit_failed\",sticky=\"true\"} 1"));
        assert!(text.contains("btrace_degraded{bit=\"lock_recovered\",sticky=\"true\"} 0"));
        assert!(text.contains("btrace_export_drops_total 1"));
        // Every line is either a comment or `name[{labels}] value`.
        for line in text.lines() {
            assert!(line.starts_with('#') || line.contains(' '), "bad line: {line}");
        }
    }
}
