//! # btrace-telemetry — observability for the tracer itself
//!
//! The paper's claims are quantitative (~10 ns records, effectivity
//! `≈ 1 − A/N`, bounded dummy waste), so the tracer needs instrumentation
//! that can *show* those numbers live without perturbing them. This crate
//! provides that layer with the same discipline as the tracer's own fast
//! path — lock-free, cache-padded, relaxed-ordering:
//!
//! * [`Histogram`] / [`ShardedHistogram`] — HDR-style log-linear latency
//!   histograms: one atomic fetch-add per recorded value, bounded ~6%
//!   relative error, per-core shards to keep recording contention-free.
//! * [`HealthSnapshot`] — a point-in-time health report: per-core record
//!   counts, cumulative mechanism counters, buffer gauges (capacity,
//!   committed bytes, occupancy), the observed effectivity ratio next to
//!   the paper's `1 − A/N` bound, and latency summaries.
//! * [`Sampler`] — a background thread that periodically snapshots a
//!   [`SnapshotSource`], derives rate-windowed deltas, and feeds pluggable
//!   [`Exporter`]s (JSONL and Prometheus text formats ship in
//!   `btrace-persist`).
//! * [`Controller`] / [`ControllerThread`] — the adaptive-sizing control
//!   loop: drives `resize_bytes` from snapshot deltas to hold a target
//!   loss-rate under a hard memory budget, with hysteresis, cooldown,
//!   exponential back-off, and retention-ranked shrinking.
//!
//! The crate is dependency-light and tracer-agnostic: `btrace-core`
//! implements [`SnapshotSource`] behind its `telemetry` feature (on by
//! default, compiled out cleanly when disabled).
//!
//! ```rust
//! use btrace_telemetry::{Histogram, HealthSnapshot};
//!
//! let hist = Histogram::new();
//! for ns in [12, 14, 13, 900, 15] {
//!     hist.record(ns);
//! }
//! let summary = hist.snapshot().summary();
//! assert_eq!(summary.count, 5);
//! assert!(summary.p50 >= 12 && summary.p50 <= 16);
//!
//! // Snapshots round-trip through the built-in JSON codec.
//! let snap = HealthSnapshot::default();
//! let parsed = HealthSnapshot::from_json(&snap.to_json()).unwrap();
//! assert_eq!(parsed, snap);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod controller;
mod hist;
pub mod json;
mod recorder;
mod sampler;
mod snapshot;

pub use controller::{
    Controller, ControllerConfig, ControllerStats, ControllerThread, Decision, IdleReason,
    ResizeReason, ResizeTarget, StaleReason,
};
pub use hist::{Histogram, HistogramSnapshot, ShardedHistogram, NUM_BUCKETS};
pub use recorder::{
    EventKind, FlightRecorder, RecordedEvent, RecorderSnapshot, DEFAULT_SLOTS, STAGE_NAMES,
    STAGE_SHARDS,
};
pub use sampler::{ExportIoStats, Exporter, Sampler, SamplerConfig, SnapshotSource};
pub use snapshot::degraded;
pub use snapshot::{CoreHealth, HealthSnapshot, LatencySummary, Rates, StageHealth};
