//! Measures the record fast path after the cached-descriptor overhaul and
//! writes `BENCH_fastpath.json`.
//!
//! Two experiments:
//!
//! * **single** — ns per `record_with` for one producer (the number the
//!   telemetry bench previously put at 63.71 ns with timing off); best of
//!   several interleaved rounds.
//! * **coalesced** — the same loop with confirm coalescing on: the
//!   producer batches its `Confirmed` advances into one Release RMW per
//!   block run instead of one per record, trading confirm latency (a
//!   block's records stay invisible to consumers until its boundary) for
//!   fast-path cycles.
//! * **scaling** — 1/2/4/8 producers on distinct cores hammering the same
//!   tracer; reports ns per record normalized by total records. The paper's
//!   claim is per-core recording performance out of a shared buffer, so
//!   the per-record cost should stay roughly flat as producers are added
//!   (on hosts with that many physical cores; see `host_cpus` in the
//!   output — a 1-CPU container serializes the threads and the scaling
//!   numbers measure scheduler churn, not contention).

use btrace_bench::harness::btrace;
use std::time::Instant;

const PAYLOAD: &[u8] = b"sched: prev=1234 next=5678 flag";
const ITERS: u64 = 2_000_000;
const ROUNDS: usize = 9;
const SCALE_ITERS: u64 = 500_000;

fn single_producer_ns(coalesce: bool) -> f64 {
    let tracer = btrace();
    tracer.set_record_timing(None);
    let producer = tracer.producer(0).expect("core 0 exists");
    producer.set_confirm_coalescing(coalesce);
    let mut stamp = 0u64;
    let mut best = f64::INFINITY;
    for round in 0..=ROUNDS {
        let t0 = Instant::now();
        for _ in 0..ITERS {
            stamp += 1;
            producer.record_with(stamp, 1, PAYLOAD).expect("payload fits");
        }
        let ns = t0.elapsed().as_nanos() as f64 / ITERS as f64;
        if round > 0 {
            best = best.min(ns);
        }
    }
    best
}

fn scaling_ns(producers: usize) -> f64 {
    let tracer = btrace();
    tracer.set_record_timing(None);
    let mut best = f64::INFINITY;
    for round in 0..3 {
        let t0 = Instant::now();
        let threads: Vec<_> = (0..producers)
            .map(|core| {
                let p = tracer.producer(core).expect("core in range");
                std::thread::spawn(move || {
                    for i in 0..SCALE_ITERS {
                        p.record_with(i, core as u32, PAYLOAD).expect("payload fits");
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("producer thread");
        }
        let total = SCALE_ITERS * producers as u64;
        let ns = t0.elapsed().as_nanos() as f64 / total as f64;
        if round > 0 {
            best = best.min(ns);
        }
    }
    best
}

fn main() {
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let single = single_producer_ns(false);
    let coalesced = single_producer_ns(true);
    let scaling: Vec<(usize, f64)> =
        [1usize, 2, 4, 8].iter().map(|&n| (n, scaling_ns(n))).collect();
    let flat_base = scaling[0].1;
    let scaling_json: Vec<String> = scaling
        .iter()
        .map(|(n, ns)| {
            format!(
                "    {{\"producers\": {n}, \"ns_per_record\": {ns:.2}, \"vs_1p_pct\": {:.2}}}",
                (ns / flat_base - 1.0) * 100.0
            )
        })
        .collect();
    let baseline = 63.71; // BENCH_telemetry.json timing_off_ns before this change
    let json = format!(
        "{{\n  \"bench\": \"record_with 31B payload, ns per record (best of {ROUNDS} rounds of {ITERS})\",\n  \
           \"single_producer_ns\": {single:.2},\n  \
           \"single_producer_coalesced_ns\": {coalesced:.2},\n  \
           \"coalescing_reduction_pct\": {:.2},\n  \
           \"baseline_single_producer_ns\": {baseline:.2},\n  \
           \"reduction_pct\": {:.2},\n  \
           \"scaling\": [\n{}\n  ],\n  \
           \"host_cpus\": {host_cpus},\n  \
           \"note\": \"scaling flatness is only meaningful when host_cpus >= producers; on a smaller host the threads time-share one core and the figure measures scheduler churn\"\n}}\n",
        (1.0 - coalesced / single) * 100.0,
        (1.0 - single / baseline) * 100.0,
        scaling_json.join(",\n"),
    );
    print!("{json}");
    std::fs::write("BENCH_fastpath.json", &json).expect("write BENCH_fastpath.json");
    eprintln!("wrote BENCH_fastpath.json");
}
