//! Regenerates **Table 2**: latest fragment (MB), loss rate, number of
//! fragments, and geometric-mean recording latency for all five tracers
//! across the 20 replay workloads, plus the G.M. column.
//!
//! ```text
//! cargo run -p btrace-bench --release --bin table2 -- [--scale 0.25]
//! ```

use btrace_analysis::Table;
use btrace_bench::harness::{config_from_args, geomean_f64, run_tracer, Outcome, TRACERS};
use btrace_replay::scenarios;

fn main() {
    let config = config_from_args(0.25);
    eprintln!(
        "table2: thread-level replay, 12 MB buffer, scale {} ({} workloads x {} tracers)",
        config.scale,
        scenarios::all().len(),
        TRACERS.len()
    );

    // outcomes[tracer][scenario]
    let mut outcomes: Vec<Vec<Outcome>> = Vec::new();
    for tracer in TRACERS {
        let mut row = Vec::new();
        for scenario in scenarios::all() {
            eprint!("\r  {tracer:<8} {:<10}          ", scenario.name);
            row.push(run_tracer(tracer, scenario, &config));
        }
        outcomes.push(row);
    }
    eprintln!();

    let names: Vec<String> = scenarios::all().iter().map(|s| s.name.to_string()).collect();
    let mut header = vec!["Metric/Tracer".to_string()];
    header.extend(names.iter().cloned());
    header.push("G.M.".to_string());

    let mut table = Table::new(header);
    section(
        &mut table,
        "Latest (MB)",
        &outcomes,
        |o| o.metrics.latest_fragment_bytes as f64 / (1 << 20) as f64,
        2,
    );
    section(&mut table, "Loss rate", &outcomes, |o| o.metrics.loss_rate, 2);
    section(&mut table, "# Fragments", &outcomes, |o| o.metrics.fragments as f64, 0);
    section(&mut table, "Latency (ns)", &outcomes, |o| o.latency.geomean_ns, 0);
    println!("{}", table.render());
}

fn section(
    table: &mut Table,
    metric: &str,
    outcomes: &[Vec<Outcome>],
    f: impl Fn(&Outcome) -> f64,
    prec: usize,
) {
    table.row(vec![format!("-- {metric} --")]);
    for row in outcomes {
        let values: Vec<f64> = row.iter().map(&f).collect();
        let mut cells = vec![format!("{} {}", metric_abbrev(metric), row[0].tracer)];
        cells.extend(values.iter().map(|v| format!("{v:.prec$}")));
        cells.push(format!("{:.prec$}", geomean_f64(&values)));
        table.row(cells);
    }
}

fn metric_abbrev(metric: &str) -> &'static str {
    match metric {
        "Latest (MB)" => "MB",
        "Loss rate" => "loss",
        "# Fragments" => "frag",
        _ => "ns",
    }
}
