//! Regenerates **Figure 6**: distinct trace-producing threads per core,
//! per second and over the whole 30-second trace, across the scenarios —
//! plus the thread counts actually realized by a thread-level replay.
//!
//! ```text
//! cargo run -p btrace-bench --release --bin fig6 -- [--scale 0.05]
//! ```

use btrace_analysis::{BoxStats, Table};
use btrace_bench::harness::{btrace, config_from_args};
use btrace_replay::{scenarios, Replayer};

fn main() {
    let config = config_from_args(0.05);
    let mut table = Table::new(vec![
        "Workload".into(),
        "Per sec (model)".into(),
        "Total 30s (model)".into(),
        "Distinct tids/core (replayed)".into(),
    ]);
    let mut per_sec = Vec::new();
    let mut totals = Vec::new();
    for scenario in scenarios::all() {
        let report = Replayer::new(scenario, config.clone()).run(&btrace());
        let realized = report.tids_per_core.first().copied().unwrap_or(0);
        table.row(vec![
            scenario.name.to_string(),
            scenario.threads_per_core_sec.to_string(),
            scenario.total_threads_per_core.to_string(),
            realized.to_string(),
        ]);
        per_sec.push(scenario.threads_per_core_sec as u64);
        totals.push(scenario.total_threads_per_core as u64);
    }
    println!("{}", table.render());

    for (label, samples) in [("Per Sec.", per_sec), ("Total 30s", totals)] {
        let b = BoxStats::from_samples(samples).expect("non-empty");
        println!(
            "{label:<10} box: q1={:.0} median={:.0} q3={:.0} whiskers=[{:.0}, {:.0}]",
            b.q1, b.median, b.q3, b.whisker_lo, b.whisker_hi
        );
    }
    println!("\n(§2.2: under heavy load ≈400 threads/core over 30 s, ≈30 per second)");
}
