//! Regenerates **Figure 10**: the size of BTrace's latest fragment as the
//! number of active blocks sweeps from 1× to 64× the core count, under
//! core-level and thread-level replay. Too few active blocks close
//! partially filled blocks; too many cap the effectivity ratio at
//! `1 − A/N` — the sweet spot the paper picks is 16×C (§5.1).
//!
//! ```text
//! cargo run -p btrace-bench --release --bin fig10 -- [--scale 0.05]
//! ```

use btrace_analysis::{analyze, BoxStats, Table};
use btrace_bench::harness::{btrace_with_active, config_from_args, CORES};
use btrace_replay::{scenarios, ReplayMode, Replayer};

fn main() {
    let base = config_from_args(0.05);
    let multipliers = [1usize, 2, 4, 8, 16, 32, 64];

    let mut table = Table::new(vec![
        "Mode".into(),
        "A".into(),
        "q1 (MB)".into(),
        "median (MB)".into(),
        "q3 (MB)".into(),
        "min".into(),
        "max".into(),
    ]);

    for mode in [ReplayMode::CoreLevel, ReplayMode::ThreadLevel] {
        for &m in &multipliers {
            let active = m * CORES;
            let mut fragments_kb: Vec<u64> = Vec::new();
            for scenario in scenarios::all() {
                let tracer = btrace_with_active(active);
                let mut config = base.clone().mode(mode);
                // Keep preemption pressure IDENTICAL across the sweep (one
                // parked writer per core) so the A-dependence is isolated;
                // at A = C there is no slack for pinned blocks at all, so
                // that row runs without mid-write preemption.
                config.max_parked_per_core = usize::from(active > CORES);
                let report = Replayer::new(scenario, config).run(&tracer);
                let metrics = analyze(&report.retained, report.capacity_bytes);
                fragments_kb.push(metrics.latest_fragment_bytes / 1024);
            }
            let b = BoxStats::from_samples(fragments_kb.clone()).expect("non-empty");
            let min = *fragments_kb.iter().min().expect("non-empty");
            let max = *fragments_kb.iter().max().expect("non-empty");
            table.row(vec![
                format!("{mode:?}"),
                format!("{m}xC={active}"),
                format!("{:.2}", b.q1 / 1024.0),
                format!("{:.2}", b.median / 1024.0),
                format!("{:.2}", b.q3 / 1024.0),
                format!("{:.2}", min as f64 / 1024.0),
                format!("{:.2}", max as f64 / 1024.0),
            ]);
            eprint!("\r{mode:?} A={active}          ");
        }
    }
    eprintln!();
    println!("{}", table.render());
    println!("(12 MB buffer; the paper's sweet spot is A = 16xC, §5.1)");
}
