//! Regenerates **Figure 4**: average per-core trace speed (thousands of
//! entries per second) for selected workloads, both as modelled and as
//! realized by a replay.
//!
//! ```text
//! cargo run -p btrace-bench --release --bin fig4 -- [--scale 0.1]
//! ```

use btrace_analysis::Table;
use btrace_bench::harness::{btrace, config_from_args};
use btrace_replay::model::TRACE_SECONDS;
use btrace_replay::{scenarios, Replayer};

const SELECTED: [&str; 6] = ["Desktop", "Video-1", "Video-2", "eShop-1", "LockScr.", "IM"];

fn main() {
    let config = config_from_args(0.1);
    let mut header = vec!["Workload".to_string()];
    header.extend((0..12).map(|c| format!("C{c}")));
    let mut model_table = Table::new(header.clone());
    let mut measured_table = Table::new(header);

    for name in SELECTED {
        let scenario = scenarios::by_name(name).expect("scenario exists");
        let mut cells = vec![name.to_string()];
        cells.extend(scenario.core_rates.iter().map(|r| format!("{:.1}", *r as f64 / 1000.0)));
        model_table.row(cells);

        let report = Replayer::new(scenario, config.clone()).run(&btrace());
        let mut cells = vec![name.to_string()];
        cells.extend(
            report.written_per_core.iter().map(|&w| {
                format!("{:.1}", w as f64 / (TRACE_SECONDS as f64 * config.scale) / 1000.0)
            }),
        );
        measured_table.row(cells);
    }
    println!("Modelled rates (k entries/sec/core; cores 0-3 little, 4-9 middle, 10-11 big):\n");
    println!("{}", model_table.render());
    println!("Realized by replay (k entries/sec/core, virtual time):\n");
    println!("{}", measured_table.render());
}
