//! Controller-vs-static loss under a seeded launch spike; writes
//! `BENCH_controller.json`.
//!
//! The same deterministic workload (an app-launch spike decaying into a
//! moderate steady state, jittered by one SplitMix64 seed) runs twice
//! against identical tracers: once with the adaptive-sizing controller
//! driving `resize_bytes` under a hard budget, once at the static seed
//! size. Loss is measured by stamp-set retention over the
//! post-convergence window, so the artifact records the paper-shaped
//! claim directly: the controller holds the loss target inside the
//! budget where the static seed-size buffer demonstrably loses data.

use btrace_core::{BTrace, Backing, Config};
use btrace_telemetry::{Controller, ControllerConfig};
use std::collections::HashSet;

const BLOCK: usize = 1024;
const ACTIVE: usize = 8;
const STRIDE: usize = BLOCK * ACTIVE;
const START_BYTES: usize = 2 * STRIDE; // 16 KiB static seed size
const MAX_BYTES: usize = 64 * STRIDE; // 512 KiB reserved ceiling
const BUDGET_BYTES: u64 = 32 * STRIDE as u64; // 256 KiB hard budget
const TARGET_LOSS_PPM: u64 = 20_000;
const TICKS: u64 = 60;
const WARMUP: u64 = 12;
const SEED: u64 = 0xB7_2A_CE_05;
const PAYLOAD: &[u8] = b"controller-bench synthetic event payload";

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

fn launch_spike(tick: u64, rng: &mut SplitMix64) -> u64 {
    if tick < 15 {
        2_500 + rng.next() % 400
    } else {
        250 + rng.next() % 50
    }
}

struct Outcome {
    loss_ppm: u64,
    resizes: u64,
    budget_clamps: u64,
    final_bytes: u64,
    peak_bytes: u64,
}

fn run(controlled: bool) -> Outcome {
    let tracer = BTrace::new(
        Config::new(1)
            .active_blocks(ACTIVE)
            .block_bytes(BLOCK)
            .buffer_bytes(START_BYTES)
            .max_bytes(MAX_BYTES)
            .backing(Backing::Heap),
    )
    .expect("valid configuration");
    let mut controller = Controller::new(
        ControllerConfig {
            budget_bytes: BUDGET_BYTES,
            target_loss_ppm: TARGET_LOSS_PPM,
            cooldown_ticks: 1,
            ..ControllerConfig::default()
        },
        tracer.flight_recorder(),
    );
    let stats = controller.stats();

    let mut rng = SplitMix64(SEED);
    let producer = tracer.producer(0).expect("core 0");
    let mut consumer = tracer.consumer();
    let mut recorded = vec![0u64; TICKS as usize];
    let mut retained: HashSet<u64> = HashSet::new();
    let mut peak_bytes = tracer.capacity_bytes() as u64;

    for tick in 0..TICKS {
        let events = launch_spike(tick, &mut rng);
        recorded[tick as usize] = events;
        for i in 0..events {
            producer.record_with((tick << 32) | i, 0, PAYLOAD).expect("record");
        }
        for e in consumer.collect_and_close().events {
            retained.insert(e.stamp());
        }
        if controlled {
            let mut snap = tracer.health_snapshot();
            snap.seq = tick + 1;
            snap.age_ms = 10;
            let decision = controller.observe(&snap, &tracer);
            controller.apply(&decision, &tracer);
        }
        peak_bytes = peak_bytes.max(tracer.capacity_bytes() as u64);
        assert!(tracer.capacity_bytes() as u64 <= BUDGET_BYTES, "budget breached");
    }
    for e in consumer.collect_and_close().events {
        retained.insert(e.stamp());
    }
    for e in consumer.collect().events {
        retained.insert(e.stamp());
    }

    use std::sync::atomic::Ordering::Relaxed;
    let window: u64 = recorded[WARMUP as usize..].iter().sum();
    let kept = retained.iter().filter(|&&s| (s >> 32) >= WARMUP).count() as u64;
    Outcome {
        loss_ppm: window.saturating_sub(kept) * 1_000_000 / window.max(1),
        resizes: stats.resizes.load(Relaxed),
        budget_clamps: stats.budget_clamps.load(Relaxed),
        final_bytes: tracer.capacity_bytes() as u64,
        peak_bytes,
    }
}

fn main() {
    let auto = run(true);
    let stat = run(false);
    assert!(
        auto.loss_ppm <= TARGET_LOSS_PPM && stat.loss_ppm > auto.loss_ppm,
        "controller must hold the target where the static size loses more \
         (controller {} ppm, static {} ppm)",
        auto.loss_ppm,
        stat.loss_ppm
    );

    let json = format!(
        "{{\n  \"bench\": \"adaptive controller vs static seed size (launch spike, seed {SEED}, {TICKS} ticks, loss over ticks >= {WARMUP})\",\n  \
           \"target_loss_ppm\": {TARGET_LOSS_PPM},\n  \
           \"budget_bytes\": {BUDGET_BYTES},\n  \
           \"start_bytes\": {START_BYTES},\n  \
           \"controller_loss_ppm\": {},\n  \
           \"static_loss_ppm\": {},\n  \
           \"controller_resizes\": {},\n  \
           \"controller_budget_clamps\": {},\n  \
           \"controller_final_bytes\": {},\n  \
           \"controller_peak_bytes\": {},\n  \
           \"note\": \"same seeded workload on identical tracers; the controller grows the 16 KiB seed buffer toward the 256 KiB budget and holds block-level loss at or under the target while the static seed size keeps losing data\"\n}}\n",
        auto.loss_ppm,
        stat.loss_ppm,
        auto.resizes,
        auto.budget_clamps,
        auto.final_bytes,
        auto.peak_bytes,
    );
    print!("{json}");
    std::fs::write("BENCH_controller.json", &json).expect("write BENCH_controller.json");
    eprintln!("wrote BENCH_controller.json");
}
