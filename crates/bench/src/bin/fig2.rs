//! Regenerates **Figure 2**: trace production speed of the atrace
//! categories in MB per core per minute, with the level that enables each
//! (Fig. 3's level structure).
//!
//! ```text
//! cargo run -p btrace-bench --release --bin fig2
//! ```

use btrace_analysis::Table;
use btrace_replay::model::{level_rate_mb_per_core_min, TraceLevel, CATEGORIES};

fn main() {
    let mut table =
        Table::new(vec!["Category".into(), "MB/core/min".into(), "Level".into(), "Bar".into()]);
    let mut sorted = CATEGORIES.to_vec();
    sorted.sort_by(|a, b| b.mb_per_core_min.total_cmp(&a.mb_per_core_min));
    let max = sorted.first().map(|c| c.mb_per_core_min).unwrap_or(1.0);
    for c in &sorted {
        let bar = "#".repeat(((c.mb_per_core_min / max) * 40.0).round() as usize);
        table.row(vec![
            c.name.to_string(),
            format!("{:>6.1}", c.mb_per_core_min),
            format!("{}", c.level as u8),
            bar,
        ]);
    }
    println!("{}", table.render());
    for level in [TraceLevel::Level1, TraceLevel::Level2, TraceLevel::Level3] {
        println!(
            "level {} total: {:>6.1} MB/core/min ({:.0} MB/min on the 12-core device)",
            level as u8,
            level_rate_mb_per_core_min(level),
            level_rate_mb_per_core_min(level) * 12.0
        );
    }
}
