//! Measures the telemetry layer's fast-path overhead and writes
//! `BENCH_telemetry.json`.
//!
//! Three configurations of the same binary (cargo feature unification
//! makes a compiled-out comparison impossible in one process; timing-off
//! differs from compiled-out by a single relaxed load):
//!
//! * `timing_off`      — `set_record_timing(None)`, the disabled baseline
//! * `sampled_1_in_64` — the default shipping configuration
//! * `every_record`    — worst case, two `Instant::now()` per record
//!
//! Each configuration runs several rounds and keeps the fastest (least
//! interference); the acceptance criterion is sampled-vs-off < 5%.

use btrace_bench::harness::btrace;
use btrace_core::{BTrace, Producer};
use std::time::Instant;

const PAYLOAD: &[u8] = b"sched: prev=1234 next=5678 flag";
const ITERS: u64 = 2_000_000;
const ROUNDS: usize = 9;

struct Config {
    _tracer: BTrace,
    producer: Producer,
    stamp: u64,
    best_ns: f64,
}

impl Config {
    fn new(every: Option<u32>) -> Self {
        let tracer = btrace();
        tracer.set_record_timing(every);
        let producer = tracer.producer(0).expect("core 0 exists");
        Self { _tracer: tracer, producer, stamp: 0, best_ns: f64::INFINITY }
    }

    fn round(&mut self, warmup: bool) {
        let t0 = Instant::now();
        for _ in 0..ITERS {
            self.stamp += 1;
            self.producer.record_with(self.stamp, 1, PAYLOAD).expect("payload fits");
        }
        let ns = t0.elapsed().as_nanos() as f64 / ITERS as f64;
        if !warmup {
            self.best_ns = self.best_ns.min(ns);
        }
    }
}

fn main() {
    let mut configs = [Config::new(None), Config::new(Some(64)), Config::new(Some(1))];
    // Interleave rounds across configurations so clock-frequency drift
    // hits all three equally instead of biasing whichever ran last; the
    // per-config minimum then compares like with like.
    for round in 0..=ROUNDS {
        for config in &mut configs {
            config.round(round == 0);
        }
    }
    let [off, sampled, every] = configs.map(|c| c.best_ns);
    let pct = |x: f64| (x / off - 1.0) * 100.0;
    let json = format!(
        "{{\n  \"bench\": \"record_with 31B payload, single producer, ns per record (best of {ROUNDS} interleaved rounds of {ITERS})\",\n  \
           \"timing_off_ns\": {off:.2},\n  \
           \"sampled_1_in_64_ns\": {sampled:.2},\n  \
           \"every_record_ns\": {every:.2},\n  \
           \"sampled_overhead_pct\": {:.2},\n  \
           \"every_record_overhead_pct\": {:.2}\n}}\n",
        pct(sampled),
        pct(every),
    );
    print!("{json}");
    std::fs::write("BENCH_telemetry.json", &json).expect("write BENCH_telemetry.json");
    eprintln!("wrote BENCH_telemetry.json");
    if pct(sampled) >= 5.0 {
        eprintln!("warning: sampled timing overhead {:.2}% exceeds the 5% budget", pct(sampled));
        std::process::exit(1);
    }
}
