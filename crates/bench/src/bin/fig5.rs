//! Reconstructs **Figure 5**: the worked example of how skewed per-core
//! production speeds fragment a distributed-buffer trace.
//!
//! Four cores share 16 entry slots (4 per core in the per-core layout).
//! Twenty timestamped events arrive with the paper's skew — the little
//! core produces eight, the big core two. Per-core buffers keep each
//! core's newest four, so the merged trace interleaves retained and
//! overwritten timestamps into indistinguishable gaps; the paper computes
//! an effectivity ratio of 6/16 = 37.5%. The same events in a BTrace-style
//! shared buffer keep one contiguous suffix.
//!
//! ```text
//! cargo run -p btrace-bench --release --bin fig5
//! ```

use btrace_analysis::analyze;
use btrace_baselines::{Bbq, PerCoreOverwrite};
use btrace_core::sink::TraceSink;

/// (timestamp, core): the arrival pattern of Fig. 5 — a fast little core
/// (3) that wraps its buffer, two middle cores (1, 2), and a mostly idle
/// big core (0). The little core's twelve events overwrite its own ts-2..9
/// *and* ts-12/ts-14, while the neighbouring ts-11/ts-13 survive on the
/// middle cores — the indistinguishable-gap effect.
const ARRIVALS: [(u64, usize); 20] = [
    (1, 0),
    (2, 3),
    (3, 3),
    (4, 1),
    (5, 3),
    (6, 3),
    (7, 2),
    (8, 3),
    (9, 3),
    (10, 0),
    (11, 1),
    (12, 3),
    (13, 2),
    (14, 3),
    (15, 3),
    (16, 2),
    (17, 3),
    (18, 1),
    (19, 3),
    (20, 3),
];

const ENTRY_PAYLOAD: usize = 8; // 24 encoded bytes per entry
const SLOTS_PER_CORE: usize = 4;

fn main() {
    let entry_bytes = btrace_core::event::encoded_len(ENTRY_PAYLOAD);
    let per_core_total = 4 * SLOTS_PER_CORE * entry_bytes;

    // Per-core buffers: 4 slots per core.
    let percore = PerCoreOverwrite::new(4, per_core_total);
    for (ts, core) in ARRIVALS {
        percore.record(core, core as u32, ts, &[0xAA; ENTRY_PAYLOAD]);
    }
    let retained: Vec<u64> = {
        let mut v: Vec<u64> = percore.drain().iter().map(|e| e.stamp).collect();
        v.sort_unstable();
        v
    };

    println!("Fig. 5 — per-core buffers (4 slots x 4 cores), 20 timestamped events\n");
    print!("retained:    ");
    for ts in 1..=20u64 {
        print!("{}", if retained.contains(&ts) { format!("{ts:>3}") } else { "  ·".into() });
    }
    println!();
    let metrics = analyze(&percore.drain(), per_core_total);
    println!(
        "\nlatest fragment: ts-{}..ts-20 ({} events) -> effectivity {:.1}% (paper: 6/16 = 37.5%)",
        21 - metrics.latest_fragment_events as u64,
        metrics.latest_fragment_events,
        metrics.effectivity_ratio * 100.0
    );
    println!(
        "fragments: {} (the interior holes are the 'indistinguishable gaps')",
        metrics.fragments
    );

    // The same arrivals into one global buffer (what BTrace's partitioning
    // approximates at block granularity): the newest 16 survive intact.
    let global = Bbq::new(per_core_total, entry_bytes * SLOTS_PER_CORE);
    for (ts, core) in ARRIVALS {
        global.record(core, core as u32, ts, &[0xAA; ENTRY_PAYLOAD]);
    }
    let retained: Vec<u64> = global.drain().iter().map(|e| e.stamp).collect();
    println!("\nThe same events in one shared buffer (the layout BTrace preserves):\n");
    print!("retained:    ");
    for ts in 1..=20u64 {
        print!("{}", if retained.contains(&ts) { format!("{ts:>3}") } else { "  ·".into() });
    }
    let metrics = analyze(&global.drain(), per_core_total);
    println!(
        "\n\nlatest fragment: {} events, one contiguous suffix (effectivity {:.1}%)",
        metrics.latest_fragment_events,
        metrics.effectivity_ratio * 100.0
    );
}
