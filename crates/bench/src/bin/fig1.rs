//! Regenerates **Figure 1**: retention maps comparing the tracers on the
//! lock-screen scenario (idle big/middle cores) and the shopping-app
//! scenario (imbalanced production + oversubscription). The X axis covers
//! the last `N` written events, newest to the right; `█` is retained, `·`
//! dropped.
//!
//! ```text
//! cargo run -p btrace-bench --release --bin fig1 -- [--scale 0.25]
//! ```

use btrace_analysis::{gap_map, GapMapOptions};
use btrace_bench::harness::{config_from_args, run_tracer, TRACERS};
use btrace_replay::scenarios;

fn main() {
    let config = config_from_args(0.25);
    for (title, scenario_name) in
        [("(a) Lock screen scenario", "LockScr."), ("(b) Running shopping app", "eShop-1")]
    {
        let scenario = scenarios::by_name(scenario_name).expect("scenario exists");
        println!("{title} — last N written events (newest right)\n");
        for tracer in TRACERS {
            let outcome = run_tracer(tracer, scenario, &config);
            // N = the number of events that would fit the buffer if stored
            // contiguously: written_bytes/written gives the mean entry size.
            let mean_entry = (outcome.report.written_bytes / outcome.report.written.max(1)).max(1);
            let window =
                (outcome.report.capacity_bytes as u64 / mean_entry).min(outcome.report.written);
            let map = gap_map(
                &outcome.report.retained_stamps(),
                outcome.report.written.saturating_sub(1),
                GapMapOptions { window, width: 72 },
            );
            println!("{:<8}|{map}|", outcome.tracer);
        }
        println!();
    }
}
