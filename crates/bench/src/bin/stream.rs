//! Streaming drain throughput: how fast the `drain → batch → encode →
//! sink` pipeline moves events out of a *live* tracer (producers still
//! recording), and what it costs the producers.
//!
//! Writes `BENCH_stream.json`. Measurements:
//!
//! * producer-only record rate (no consumer at all) — the reference;
//! * record rate with the pipeline attached (counting sink) plus the
//!   pipeline's sustained drain rate and miss count, at one drain thread
//!   and at four stripe drain threads (`drain_threads`);
//! * the sharded drain again with confirm-coalescing producers — the
//!   producer-recovery configuration: one `Confirmed` Release RMW per
//!   block run instead of one per record;
//! * the same with the small `drop` policy queues, showing the shedding
//!   path stays cheap.

use btrace_core::{BTrace, Config};
use btrace_persist::{Backpressure, NullFrameSink, PipelineConfig, StreamPipeline};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const CORES: usize = 4;
const BLOCK: usize = 4096;
const TOTAL: usize = 4 << 20;
const PAYLOAD: &[u8] = b"stream bench payload, 31B......";
const RUN_MS: u64 = 1500;
const ROUNDS: usize = 3;

fn tracer() -> Arc<BTrace> {
    Arc::new(
        BTrace::new(Config::new(CORES).active_blocks(64).block_bytes(BLOCK).buffer_bytes(TOTAL))
            .expect("valid configuration"),
    )
}

struct LoadResult {
    events_recorded: u64,
    record_rate: f64,
}

/// Runs producers flat-out for `ms`, returning the aggregate record rate.
/// With `coalesce`, each producer batches its confirms into one Release
/// RMW per block run (flushed by `Drop` at thread exit).
fn run_load(t: &Arc<BTrace>, ms: u64, coalesce: bool) -> LoadResult {
    let stop = AtomicBool::new(false);
    let mut recorded = 0u64;
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CORES)
            .map(|core| {
                let p = t.producer(core).expect("core in range");
                p.set_confirm_coalescing(coalesce);
                let stop = &stop;
                scope.spawn(move || {
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        p.record_with(core as u64 * 1_000_000_000 + i, core as u32, PAYLOAD)
                            .expect("payload fits");
                        i += 1;
                        if i.is_multiple_of(4096) {
                            std::thread::yield_now();
                        }
                    }
                    i
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(ms));
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            recorded += h.join().expect("producer thread");
        }
    });
    let secs = t0.elapsed().as_secs_f64();
    LoadResult { events_recorded: recorded, record_rate: recorded as f64 / secs }
}

struct StreamResult {
    load: LoadResult,
    drain_threads: usize,
    coalesced: bool,
    drained: u64,
    drain_rate: f64,
    frames: u64,
    mib_per_sec: f64,
    missed_blocks: u64,
    dropped_items: u64,
}

/// Best-of-`ROUNDS` by drain rate, same discipline as the fastpath bench:
/// on a host with fewer CPUs than threads a single round is at the mercy
/// of scheduler placement.
fn run_streamed(
    policy: Backpressure,
    queue_depth: usize,
    drain_threads: usize,
    coalesce: bool,
) -> StreamResult {
    let mut best: Option<StreamResult> = None;
    for _ in 0..ROUNDS {
        let r = run_streamed_once(policy, queue_depth, drain_threads, coalesce);
        if best.as_ref().is_none_or(|b| r.drain_rate > b.drain_rate) {
            best = Some(r);
        }
    }
    best.expect("at least one round")
}

fn run_streamed_once(
    policy: Backpressure,
    queue_depth: usize,
    drain_threads: usize,
    coalesce: bool,
) -> StreamResult {
    let t = tracer();
    let config = PipelineConfig {
        poll_interval: Duration::from_millis(1),
        queue_depth,
        backpressure: policy,
        drain_threads,
        ..PipelineConfig::default()
    };
    let pipeline =
        StreamPipeline::spawn(Arc::clone(&t), Box::new(NullFrameSink::default()), config);
    let load = run_load(&t, RUN_MS, coalesce);
    let stats = pipeline.stop();
    let secs = stats.elapsed.as_secs_f64();
    StreamResult {
        load,
        drain_threads,
        coalesced: coalesce,
        drained: stats.events_drained,
        drain_rate: stats.events_drained as f64 / secs,
        frames: stats.frames_written,
        mib_per_sec: stats.bytes_written as f64 / secs / (1 << 20) as f64,
        missed_blocks: stats.missed_blocks,
        dropped_items: stats.stages.iter().map(|s| s.dropped).sum(),
    }
}

fn main() {
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    // Reference: producers alone, nothing draining.
    let solo = run_load(&tracer(), RUN_MS, false);

    let block = run_streamed(Backpressure::Block, 8, 1, false);
    let sharded = run_streamed(Backpressure::Block, 8, 4, false);
    let recovered = run_streamed(Backpressure::Block, 8, 4, true);
    let drop = run_streamed(Backpressure::DropAndCount, 2, 1, false);

    let overhead_pct = (1.0 - block.load.record_rate / solo.record_rate) * 100.0;
    let recovered_pct = (1.0 - recovered.load.record_rate / solo.record_rate) * 100.0;
    let fmt = |r: &StreamResult, name: &str| {
        format!(
            "    {{\"policy\": \"{name}\", \"drain_threads\": {}, \"coalesced_producers\": {}, \
             \"events_recorded\": {}, \"record_rate_per_sec\": {:.0}, \
             \"events_drained\": {}, \"drain_rate_per_sec\": {:.0}, \"frames\": {}, \
             \"sink_mib_per_sec\": {:.2}, \"missed_blocks\": {}, \"dropped_items\": {}}}",
            r.drain_threads,
            r.coalesced,
            r.load.events_recorded,
            r.load.record_rate,
            r.drained,
            r.drain_rate,
            r.frames,
            r.mib_per_sec,
            r.missed_blocks,
            r.dropped_items,
        )
    };
    let json = format!(
        "{{\n  \"bench\": \"streaming drain pipeline, {CORES} producers live, 31B payloads, {RUN_MS} ms runs\",\n  \
           \"producer_only_rate_per_sec\": {:.0},\n  \
           \"producer_overhead_with_stream_pct\": {:.2},\n  \
           \"producer_overhead_sharded_coalesced_pct\": {:.2},\n  \
           \"runs\": [\n{},\n{},\n{},\n{}\n  ],\n  \
           \"host_cpus\": {host_cpus},\n  \
           \"note\": \"missed_blocks counts ring laps the consumer lost; on a host with fewer CPUs than producers the drain thread time-shares with the load and misses are expected\"\n}}\n",
        solo.record_rate,
        overhead_pct,
        recovered_pct,
        fmt(&block, "block"),
        fmt(&sharded, "block-sharded"),
        fmt(&recovered, "block-sharded-coalesced"),
        fmt(&drop, "drop"),
    );
    print!("{json}");
    std::fs::write("BENCH_stream.json", &json).expect("write BENCH_stream.json");
    eprintln!("wrote BENCH_stream.json");
}
