//! Measures what the flight recorder costs and writes
//! `BENCH_observability.json`.
//!
//! The record fast path emits no recorder events — events come from resize,
//! skip-storm windows, and pipeline stages — so the recorder's fast-path
//! cost should be exactly zero. Host noise swamps cross-run comparisons
//! (the checked-in `BENCH_fastpath.json` figure came from a quieter host),
//! so the overhead claim is made with a *paired* in-process control:
//! rounds of the identical record loop alternate between two tracers and
//! `overhead_pct` is the best-of delta between them. A worst-case variant
//! (`with_emit_per_record_ns`) fuses one `FlightRecorder::emit` into every
//! record to bound the cost of even pathological event coupling.

use btrace_bench::harness::btrace;
use btrace_telemetry::{EventKind, FlightRecorder};
use std::time::Instant;

const PAYLOAD: &[u8] = b"sched: prev=1234 next=5678 flag";
const ITERS: u64 = 2_000_000;
const ROUNDS: usize = 9;
const EMIT_ITERS: u64 = 2_000_000;

/// Best-of-`ROUNDS` ns/record for one warmed-up measurement round.
fn round_ns(producer: &btrace_core::Producer, stamp: &mut u64) -> f64 {
    let t0 = Instant::now();
    for _ in 0..ITERS {
        *stamp += 1;
        producer.record_with(*stamp, 1, PAYLOAD).expect("payload fits");
    }
    t0.elapsed().as_nanos() as f64 / ITERS as f64
}

/// Paired measurement: alternate rounds between two identical tracers so
/// host-condition drift hits both sides equally. Returns (control, measured).
fn paired_single_producer_ns() -> (f64, f64) {
    let control = btrace();
    let measured = btrace();
    control.set_record_timing(None);
    measured.set_record_timing(None);
    let pc = control.producer(0).expect("core 0 exists");
    let pm = measured.producer(0).expect("core 0 exists");
    let (mut sc, mut sm) = (0u64, 0u64);
    let (mut best_c, mut best_m) = (f64::INFINITY, f64::INFINITY);
    for round in 0..=ROUNDS {
        // Alternate run order so neither side systematically inherits a
        // warmer cache or a quieter scheduler slice.
        let (c, m) = if round % 2 == 0 {
            let c = round_ns(&pc, &mut sc);
            (c, round_ns(&pm, &mut sm))
        } else {
            let m = round_ns(&pm, &mut sm);
            (round_ns(&pc, &mut sc), m)
        };
        if round > 0 {
            best_c = best_c.min(c);
            best_m = best_m.min(m);
        }
    }
    (best_c, best_m)
}

/// Worst case: every record also emits a recorder event on the tracer's
/// own control shard. Real call sites emit orders of magnitude less often.
fn with_emit_per_record_ns() -> f64 {
    let tracer = btrace();
    tracer.set_record_timing(None);
    let producer = tracer.producer(0).expect("core 0 exists");
    let recorder = tracer.flight_recorder();
    let shard = recorder.control_shard();
    let mut stamp = 0u64;
    let mut best = f64::INFINITY;
    for round in 0..=ROUNDS {
        let t0 = Instant::now();
        for _ in 0..ITERS {
            stamp += 1;
            producer.record_with(stamp, 1, PAYLOAD).expect("payload fits");
            recorder.emit(shard, EventKind::StageEnter, 0, stamp, 0);
        }
        let ns = t0.elapsed().as_nanos() as f64 / ITERS as f64;
        if round > 0 {
            best = best.min(ns);
        }
    }
    best
}

fn emit_ns() -> f64 {
    let recorder = FlightRecorder::with_default_capacity(4);
    let shard = recorder.control_shard();
    let mut best = f64::INFINITY;
    for round in 0..=3 {
        let t0 = Instant::now();
        for i in 0..EMIT_ITERS {
            recorder.emit(shard, EventKind::StageEnter, 0, i, i);
        }
        let ns = t0.elapsed().as_nanos() as f64 / EMIT_ITERS as f64;
        if round > 0 {
            best = best.min(ns);
        }
    }
    best
}

fn snapshot_us(recorder: &FlightRecorder) -> f64 {
    let mut best = f64::INFINITY;
    for round in 0..=5 {
        let t0 = Instant::now();
        let snap = recorder.snapshot();
        let us = t0.elapsed().as_nanos() as f64 / 1e3;
        assert!(!snap.events.is_empty(), "snapshot must see the emitted events");
        if round > 0 {
            best = best.min(us);
        }
    }
    best
}

fn main() {
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let (control, single) = paired_single_producer_ns();
    let fused = with_emit_per_record_ns();
    let emit = emit_ns();

    // Fill every shard of a default-capacity recorder, then time reads.
    let recorder = FlightRecorder::with_default_capacity(12);
    for shard in 0..recorder.shards() {
        for i in 0..2048u64 {
            recorder.emit(shard, EventKind::StageExit, shard as u32, i, i);
        }
    }
    let snapshot = snapshot_us(&recorder);

    // Quiet-host reference from BENCH_fastpath.json, kept for context only;
    // the overhead claim uses the paired in-process control above.
    let reference = 38.13;
    let json = format!(
        "{{\n  \"bench\": \"flight recorder overhead (best-of-{ROUNDS} paired rounds of {ITERS} records; {EMIT_ITERS} emits)\",\n  \
           \"single_producer_ns\": {single:.2},\n  \
           \"paired_control_ns\": {control:.2},\n  \
           \"overhead_pct\": {:.2},\n  \
           \"with_emit_per_record_ns\": {fused:.2},\n  \
           \"emit_ns\": {emit:.2},\n  \
           \"snapshot_full_us\": {snapshot:.2},\n  \
           \"recorder_memory_bytes\": {},\n  \
           \"quiet_host_reference_ns\": {reference:.2},\n  \
           \"host_cpus\": {host_cpus},\n  \
           \"note\": \"the record fast path emits no recorder events; overhead_pct pairs identical loops in-process so it measures the true delta, not host drift vs the quiet-host reference\"\n}}\n",
        (single / control - 1.0) * 100.0,
        recorder.memory_bytes(),
    );
    print!("{json}");
    std::fs::write("BENCH_observability.json", &json).expect("write BENCH_observability.json");
    eprintln!("wrote BENCH_observability.json");
}
