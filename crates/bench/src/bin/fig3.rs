//! Regenerates **Figure 3**: how many seconds of level-1/2/3 traces each
//! tracer can retain continuously in a fixed buffer.
//!
//! The paper uses a 450 MB buffer on the phone; here the buffer is 12 MB
//! and the rates are scaled identically, so the *seconds of retainable
//! trace* are comparable: BTrace's latest fragment covers (nearly) the full
//! buffer while per-core tracers cover a fraction, which is exactly why the
//! paper's BTrace holds 30 s of level-3 data where ftrace holds only
//! level-2 (Fig. 3's horizontal lines).
//!
//! ```text
//! cargo run -p btrace-bench --release --bin fig3 -- [--scale 0.25]
//! ```

use btrace_analysis::Table;
use btrace_bench::harness::{config_from_args, run_tracer, TOTAL_BYTES, TRACERS};
use btrace_core::event::encoded_len;
use btrace_replay::model::{level_rate_mb_per_core_min, TraceLevel, TRACE_SECONDS};
use btrace_replay::{scenarios, Scenario};

fn main() {
    let mut config = config_from_args(0.0);
    let base = scenarios::by_name("Desktop").expect("scenario exists");
    let l3 = level_rate_mb_per_core_min(TraceLevel::Level3);

    // The paper sizes its 450 MB buffer to hold ~30 s of level-3 traces;
    // mirror that here: pick the scale at which the level-3 workload's full
    // volume is ~90% of our 12 MB buffer (a near-ideal tracer can then hold
    // the *entire* window at level 3, and proportionally longer at lower
    // levels). A --scale argument overrides.
    if config.scale == 0.0 {
        // Bursty slices emit 1/8 of their nominal volume (see the replay
        // engine), so correct the expected volume for the burst fraction.
        let burst_factor = 1.0 - base.burstiness as f64 * (7.0 / 8.0);
        let bytes_at_scale_1 = base.total_events() as f64
            * encoded_len(base.mean_payload as usize) as f64
            * burst_factor;
        config.scale = 0.85 * TOTAL_BYTES as f64 / bytes_at_scale_1;
    }
    let window_sec = TRACE_SECONDS as f64 * config.scale;

    let mut table = Table::new(vec![
        "Level".into(),
        "Tracer".into(),
        "Latest fragment (MB)".into(),
        "Retained seconds / window".into(),
        "Full window?".into(),
    ]);

    for level in [TraceLevel::Level1, TraceLevel::Level2, TraceLevel::Level3] {
        let factor = level_rate_mb_per_core_min(level) / l3;
        // Scale the Desktop workload's rates to the level's volume.
        let mut scenario = base.clone();
        for rate in &mut scenario.core_rates {
            *rate = (*rate as f64 * factor).round() as u32;
        }
        let scenario: &'static Scenario = Box::leak(Box::new(scenario));
        for tracer in TRACERS {
            let outcome = run_tracer(tracer, scenario, &config);
            // Bytes the workload produces per virtual second (all cores).
            let per_vsec = outcome.report.written_bytes as f64 / window_sec;
            let retained_sec =
                (outcome.metrics.latest_fragment_bytes as f64 / per_vsec).min(window_sec);
            table.row(vec![
                format!("{}", level as u8),
                outcome.tracer.to_string(),
                format!("{:.2}", outcome.metrics.latest_fragment_bytes as f64 / (1 << 20) as f64),
                format!("{:.1} / {window_sec:.1}", retained_sec),
                if retained_sec >= 0.97 * window_sec { "yes".into() } else { "no".to_string() },
            ]);
        }
    }
    println!("{}", table.render());
    println!("(retained seconds = latest fragment / workload volume per second; the paper's");
    println!(" 450 MB buffer and this 12 MB buffer scale identically)");
}
