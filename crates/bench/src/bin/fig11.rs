//! Regenerates **Figure 11**: recording-latency CDFs for the eShop-2
//! workload and over all workloads, per tracer.
//!
//! ```text
//! cargo run -p btrace-bench --release --bin fig11 -- [--scale 0.1]
//! ```

use btrace_analysis::{LatencyStats, Table};
use btrace_bench::harness::{config_from_args, run_tracer, TRACERS};
use btrace_replay::scenarios;

fn main() {
    let mut config = config_from_args(0.1);
    config.latency_sample_every = 16;

    // (a) eShop-2 workload.
    let eshop = scenarios::by_name("eShop-2").expect("scenario exists");
    let mut per_tracer: Vec<(&'static str, Vec<u64>)> = Vec::new();
    let mut overall: Vec<(&'static str, Vec<u64>)> =
        TRACERS.iter().map(|&t| (t, Vec::new())).collect();

    for (ti, &tracer) in TRACERS.iter().enumerate() {
        let outcome = run_tracer(tracer, eshop, &config);
        per_tracer.push((outcome.tracer, outcome.report.latencies_ns.clone()));
        overall[ti].1.extend(outcome.report.latencies_ns);
        // (b) pool the remaining workloads for the overall CDF.
        for scenario in scenarios::all().iter().filter(|s| s.name != "eShop-2") {
            let outcome = run_tracer(tracer, scenario, &config);
            overall[ti].1.extend(outcome.report.latencies_ns);
        }
        eprint!("\r{tracer} done        ");
    }
    eprintln!();

    print_cdf("(a) eShop-2 workload", &per_tracer);
    print_cdf("(b) Overall latency", &overall);
}

fn print_cdf(title: &str, series: &[(&'static str, Vec<u64>)]) {
    println!("{title}\n");
    let mut table = Table::new(vec![
        "Tracer".into(),
        "geo-mean".into(),
        "p50".into(),
        "p90".into(),
        "p99".into(),
        "CDF (share <= 100/200/400/800/1600 ns)".into(),
    ]);
    for (name, samples) in series {
        let stats = LatencyStats::from_samples(samples.clone());
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let shares: Vec<String> = [100u64, 200, 400, 800, 1600]
            .iter()
            .map(|&x| {
                let below = sorted.partition_point(|&v| v <= x);
                format!("{:.0}%", 100.0 * below as f64 / sorted.len().max(1) as f64)
            })
            .collect();
        table.row(vec![
            name.to_string(),
            format!("{:.0} ns", stats.geomean_ns),
            format!("{:.0} ns", stats.p50_ns),
            format!("{:.0} ns", stats.p90_ns),
            format!("{:.0} ns", stats.p99_ns),
            shares.join(" / "),
        ]);
    }
    println!("{}", table.render());
}
