//! Ablations over BTrace's design choices called out in `DESIGN.md`:
//!
//! 1. **Block size** — smaller blocks spread the buffer finer (better
//!    effectivity) but advance more often (more slow-path work); 4 KiB is
//!    the paper's choice (§5).
//! 2. **Preemption intensity** — sweeping the mid-write preemption
//!    probability shows skipping absorbing ever more pinned blocks while
//!    recording stays drop-free, versus LTTng whose drops scale with it.
//! 3. **Mechanism counters** — closes, skips, straggler repairs, and the
//!    dummy-byte overhead actually paid under a heavy workload.
//!
//! ```text
//! cargo run -p btrace-bench --release --bin ablations -- [--scale 0.1]
//! ```

use btrace_analysis::{analyze, Table};
use btrace_baselines::PerCoreDropNewest;
use btrace_bench::harness::{config_from_args, CORES, LTTNG_SUBS, TOTAL_BYTES};
use btrace_core::{BTrace, Config};
use btrace_replay::{scenarios, Replayer, Scenario};

fn main() {
    let config = config_from_args(0.1);
    let eshop = scenarios::by_name("eShop-2").expect("scenario exists");

    // 1. Block-size sweep.
    println!("Ablation 1: data block size (eShop-2, 12 MB buffer, A = 16xC)\n");
    let mut table = Table::new(vec![
        "Block".into(),
        "Latest (MB)".into(),
        "Loss".into(),
        "Advances".into(),
        "Dummy %".into(),
    ]);
    for block in [1024usize, 4096, 16384] {
        let active = 16 * CORES;
        let stride = block * active;
        let buffer = (TOTAL_BYTES / stride).max(1) * stride;
        let tracer = BTrace::new(
            Config::new(CORES).active_blocks(active).block_bytes(block).buffer_bytes(buffer),
        )
        .expect("valid");
        let report = Replayer::new(eshop, config.clone()).run(&tracer);
        let m = analyze(&report.retained, report.capacity_bytes);
        let stats = tracer.stats();
        table.row(vec![
            format!("{} B", block),
            format!("{:.2}", m.latest_fragment_bytes as f64 / (1 << 20) as f64),
            format!("{:.2}", m.loss_rate),
            stats.advances.to_string(),
            format!("{:.1}%", stats.dummy_fraction() * 100.0),
        ]);
    }
    println!("{}", table.render());

    // 2. Preemption sweep: BTrace skips vs LTTng drops.
    println!("Ablation 2: mid-write preemption intensity (eShop-2)\n");
    let mut table = Table::new(vec![
        "Preempt prob".into(),
        "BTrace skips".into(),
        "BTrace dropped".into(),
        "BTrace latest (MB)".into(),
        "LTTng dropped".into(),
        "LTTng latest (MB)".into(),
    ]);
    for factor in [0.0f32, 1.0, 4.0, 16.0] {
        let mut scenario = eshop.clone();
        scenario.preempt_mid_write = eshop.preempt_mid_write * factor;
        let scenario: &'static Scenario = Box::leak(Box::new(scenario));

        let bt = btrace_bench::harness::btrace();
        let bt_report = Replayer::new(scenario, config.clone()).run(&bt);
        let bt_metrics = analyze(&bt_report.retained, bt_report.capacity_bytes);

        let lt = PerCoreDropNewest::new(CORES, TOTAL_BYTES, LTTNG_SUBS);
        let lt_report = Replayer::new(scenario, config.clone()).run(&lt);
        let lt_metrics = analyze(&lt_report.retained, lt_report.capacity_bytes);

        table.row(vec![
            format!("{:.4}", scenario.preempt_mid_write),
            bt.stats().skips.to_string(),
            bt_report.dropped_at_record.to_string(),
            format!("{:.2}", bt_metrics.latest_fragment_bytes as f64 / (1 << 20) as f64),
            lt_report.dropped_at_record.to_string(),
            format!("{:.2}", lt_metrics.latest_fragment_bytes as f64 / (1 << 20) as f64),
        ]);
    }
    println!("{}", table.render());

    // 3. Mechanism counters under a heavy workload.
    println!("Ablation 3: mechanism counters (Video-3)\n");
    let video = scenarios::by_name("Video-3").expect("scenario exists");
    let tracer = btrace_bench::harness::btrace();
    let report = Replayer::new(video, config).run(&tracer);
    let stats = tracer.stats();
    println!("records            {}", stats.records);
    println!("advances           {}", stats.advances);
    println!("closes (partial)   {}", stats.closes);
    println!("skips              {}", stats.skips);
    println!("straggler repairs  {}", stats.straggler_repairs);
    println!("dummy overhead     {:.2}%", stats.dummy_fraction() * 100.0);
    println!("events dropped     {} (BTrace never drops)", report.dropped_at_record);
}
