//! Queryable trace store: compression ratio of the delta/varint frame
//! encoding and the pruning power of footer-indexed predicate queries.
//!
//! Writes `BENCH_query.json`. On a synthetic atrace-payload corpus (the
//! workload shape a phone actually dumps: small encoded tracepoints, not
//! fat blobs):
//!
//! * bytes on disk, plain (PR-5) framing vs compressed (revision 2)
//!   framing of the *same* events, and the ratio between them;
//! * per predicate (time slice, hot core, category, unrestricted):
//!   frames decoded vs frames total, matched events, indexed-query wall
//!   time vs a linear full-decode-then-filter oracle over the same bytes,
//!   and an equality check of the two result sets;
//! * self-asserting: the selective time predicate must decode < 25% of
//!   frames and the compressed file must be >= 1.5x smaller than plain.
//!
//! `BTRACE_BENCH_QUERY_EVENTS` overrides the corpus size (default 2_000_000).

use btrace_atrace::TraceEvent;
use btrace_core::sink::FullEvent;
use btrace_persist::{
    decode_frames, encode_stream, encode_stream_with, FrameEncoding, Predicate, Query,
    QueryOptions, TraceStore,
};
use std::time::Instant;

const EVENTS_PER_FRAME: usize = 1024;
const DEFAULT_EVENTS: usize = 2_000_000;

/// splitmix64 — deterministic corpus run to run.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A drain-shaped corpus: globally increasing stamps with jitter, a hot
/// core, and small atrace-encoded payloads (sched/irq/binder mix).
fn synthesize(total: usize) -> Vec<FullEvent> {
    let mut rng = 0x51u64;
    let mut stamp = 0u64;
    let mut buf = [0u8; btrace_atrace::MAX_ENCODED];
    (0..total)
        .map(|_| {
            let r = mix(&mut rng);
            stamp += 1 + (r & 15);
            let core = if r & 1 == 0 { 0 } else { ((r >> 1) % 8) as u16 };
            let tid = 100 + (r >> 16) as u32 % 32;
            let ev = match (r >> 4) % 4 {
                0 => TraceEvent::SchedSwitch { prev: tid, next: tid + 1, prio: (r >> 40) as u8 },
                1 => TraceEvent::SchedWakeup { tid, cpu: core as u8 },
                2 => TraceEvent::Irq { irq: (r >> 32) as u16 % 64, enter: r & 2 == 0 },
                _ => TraceEvent::BinderTxn { from: tid, to: tid ^ 5, code: (r >> 24) as u32 % 99 },
            };
            let n = ev.encode(&mut buf);
            FullEvent { stamp, core, tid, payload: buf[..n].to_vec() }
        })
        .collect()
}

struct Run {
    name: &'static str,
    frames_total: usize,
    frames_decoded: usize,
    frames_pruned: usize,
    matched_events: u64,
    query_ms: f64,
    linear_ms: f64,
    speedup: f64,
    identical: bool,
}

fn run_predicate(store: &TraceStore, name: &'static str, predicate: Predicate) -> Run {
    let q = Query {
        predicate: predicate.clone(),
        options: QueryOptions { collect_events: true, ..Default::default() },
    };
    let t0 = Instant::now();
    let report = q.run(store);
    let query_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t1 = Instant::now();
    let oracle: Vec<FullEvent> = decode_frames(store.bytes())
        .expect("healthy corpus decodes")
        .into_iter()
        .flat_map(|f| f.events)
        .filter(|e| predicate.admits_event(e))
        .collect();
    let linear_ms = t1.elapsed().as_secs_f64() * 1e3;

    assert!(report.defects.is_empty(), "{name}: healthy corpus reported defects");
    Run {
        name,
        frames_total: report.frames_total,
        frames_decoded: report.frames_decoded,
        frames_pruned: report.frames_pruned,
        matched_events: report.matched_events,
        query_ms,
        linear_ms,
        speedup: linear_ms / query_ms.max(1e-9),
        identical: report.events == oracle,
    }
}

fn main() {
    let total: usize = std::env::var("BTRACE_BENCH_QUERY_EVENTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_EVENTS);

    eprintln!("synthesizing {total} atrace events...");
    let events = synthesize(total);
    let span = events.last().expect("non-empty corpus").stamp;

    let plain = encode_stream(&events, EVENTS_PER_FRAME);
    let compressed = encode_stream_with(&events, EVENTS_PER_FRAME, FrameEncoding::Compressed);
    let ratio = plain.len() as f64 / compressed.len() as f64;
    assert!(ratio >= 1.5, "compressed framing must be >= 1.5x smaller than plain: got {ratio:.2}x");

    let store = TraceStore::from_bytes(compressed);
    assert!(store.defects().is_empty(), "healthy compressed corpus scans clean");

    let predicates = [
        (
            "time_slice_10pct",
            Predicate {
                since: Some(span / 2),
                until: Some(span / 2 + span / 10),
                ..Default::default()
            },
        ),
        ("hot_core", Predicate { cores: vec![3], ..Default::default() }),
        (
            "sched_in_slice",
            Predicate {
                since: Some(span / 4),
                until: Some(span / 2),
                category: Some(btrace_atrace::Category::SCHED),
                ..Default::default()
            },
        ),
        ("unrestricted", Predicate::default()),
    ];
    let runs: Vec<Run> =
        predicates.into_iter().map(|(name, p)| run_predicate(&store, name, p)).collect();

    for r in &runs {
        assert!(r.identical, "{}: indexed query diverged from the linear oracle", r.name);
    }
    let selective = &runs[0];
    let decoded_pct = selective.frames_decoded as f64 * 100.0 / selective.frames_total as f64;
    assert!(
        decoded_pct < 25.0,
        "selective predicate must decode < 25% of frames: got {decoded_pct:.1}%"
    );

    let fmt = |r: &Run| {
        format!(
            "    {{\"predicate\": \"{}\", \"frames_total\": {}, \"frames_decoded\": {}, \
             \"frames_pruned\": {}, \"decoded_pct\": {:.1}, \"matched_events\": {}, \
             \"query_ms\": {:.2}, \"linear_decode_ms\": {:.2}, \"speedup_vs_linear\": {:.2}, \
             \"identical_to_oracle\": {}}}",
            r.name,
            r.frames_total,
            r.frames_decoded,
            r.frames_pruned,
            r.frames_decoded as f64 * 100.0 / r.frames_total as f64,
            r.matched_events,
            r.query_ms,
            r.linear_ms,
            r.speedup,
            r.identical,
        )
    };
    let json = format!(
        "{{\n  \"bench\": \"queryable trace store: {total} atrace events, {} frames of {} events\",\n  \
           \"events\": {total},\n  \
           \"plain_bytes\": {},\n  \
           \"compressed_bytes\": {},\n  \
           \"compression_ratio\": {ratio:.2},\n  \
           \"plain_bytes_per_event\": {:.1},\n  \
           \"compressed_bytes_per_event\": {:.1},\n  \
           \"runs\": [\n{}\n  ],\n  \
           \"note\": \"every query is asserted bit-identical to a linear full-decode-then-filter oracle over the same bytes; the selective time slice must decode < 25% of frames and the compressed framing must be >= 1.5x smaller than the plain (PR-5) framing\"\n}}\n",
        store.frames().len(),
        EVENTS_PER_FRAME,
        plain.len(),
        store.bytes().len(),
        plain.len() as f64 / total as f64,
        store.bytes().len() as f64 / total as f64,
        runs.iter().map(fmt).collect::<Vec<_>>().join(",\n"),
    );
    print!("{json}");
    std::fs::write("BENCH_query.json", &json).expect("write BENCH_query.json");
    eprintln!("wrote BENCH_query.json");
}
