//! Fragment-parallel analysis scaling: how the `scan → split → map →
//! merge` pipeline of `btrace_persist::analyze_frames` behaves as worker
//! threads are added, on a large synthetic BTSF stream.
//!
//! Writes `BENCH_analysis.json`. Measurements, sequential (`K = 1`) and
//! at `K ∈ {2, 4, 8}`:
//!
//! * wall time and end-to-end event throughput of the full analysis
//!   (decode + checksum + metrics + breakdowns + state reconstruction);
//! * speedup over the sequential run;
//! * per-fragment work counters (events, bytes, busy time) and the
//!   partition spread — on a host with fewer CPUs than workers the
//!   wall-clock speedup degenerates toward 1×, and the counters are the
//!   evidence that the *partitioning* is balanced and would scale;
//! * a bit-identical check of every parallel readout against `K = 1`.
//!
//! `BTRACE_BENCH_ANALYSIS_MIB` overrides the stream size (default 256).

use btrace_persist::{analyze_frames, encode_frame, AnalyzeOptions, ParallelAnalysis};

use btrace_core::sink::FullEvent;
use std::time::Instant;

const EVENTS_PER_FRAME: usize = 1024;
const DEFAULT_MIB: usize = 256;

/// splitmix64 — deterministic stream contents run to run.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Encodes frames until the stream reaches `target_bytes`, mimicking a
/// live drain: stamps globally increasing with per-core jitter, a hot-core
/// skew, and payloads between 48 and 96 bytes.
fn synthesize(target_bytes: usize) -> (Vec<u8>, u64) {
    let mut bytes = Vec::with_capacity(target_bytes + (target_bytes >> 4));
    let mut rng = 0x42u64;
    let mut stamp = 0u64;
    let mut seq = 0u64;
    let mut events = 0u64;
    let mut frame = Vec::with_capacity(EVENTS_PER_FRAME);
    while bytes.len() < target_bytes {
        frame.clear();
        for _ in 0..EVENTS_PER_FRAME {
            let r = mix(&mut rng);
            stamp += 1 + (r & 7);
            // Zipf-ish core pick: half the traffic on core 0.
            let core = if r & 1 == 0 { 0 } else { ((r >> 1) % 8) as u16 };
            let payload_len = 48 + (r >> 8) as usize % 49;
            frame.push(FullEvent {
                stamp,
                core,
                tid: 100 + (r >> 16) as u32 % 24,
                payload: vec![0xA5; payload_len],
            });
        }
        events += frame.len() as u64;
        bytes.extend_from_slice(&encode_frame(seq, &frame));
        seq += 1;
    }
    (bytes, events)
}

struct Run {
    threads: usize,
    wall_ms: f64,
    speedup: f64,
    events_per_sec: f64,
    fragments: usize,
    min_fragment_events: u64,
    max_fragment_events: u64,
    balance_spread_pct: f64,
    busy_ms_total: f64,
    bit_identical: bool,
    defects: usize,
}

fn run_once(
    bytes: &[u8],
    threads: usize,
    baseline: Option<&ParallelAnalysis>,
) -> (Run, ParallelAnalysis) {
    let opts = AnalyzeOptions { threads, ..AnalyzeOptions::default() };
    let t0 = Instant::now();
    let out = analyze_frames(bytes, &opts).expect("synthetic stream decodes");
    let wall = t0.elapsed().as_secs_f64();
    let min = out.work.iter().map(|w| w.events).min().unwrap_or(0);
    let max = out.work.iter().map(|w| w.events).max().unwrap_or(0);
    let run = Run {
        threads,
        wall_ms: wall * 1e3,
        speedup: 0.0, // filled by the caller once the sequential wall is known
        events_per_sec: out.state.events as f64 / wall,
        fragments: out.work.len(),
        min_fragment_events: min,
        max_fragment_events: max,
        balance_spread_pct: if max > 0 { (max - min) as f64 * 100.0 / max as f64 } else { 0.0 },
        busy_ms_total: out.work.iter().map(|w| w.busy_ns).sum::<u64>() as f64 / 1e6,
        bit_identical: baseline
            .map(|b| b.analysis == out.analysis && b.state == out.state)
            .unwrap_or(true),
        defects: out.defects.len(),
    };
    (run, out)
}

fn main() {
    let mib: usize = std::env::var("BTRACE_BENCH_ANALYSIS_MIB")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_MIB);
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    eprintln!("synthesizing {mib} MiB stream...");
    let (bytes, events) = synthesize(mib << 20);
    let frames = events as usize / EVENTS_PER_FRAME;

    let (mut seq, baseline) = run_once(&bytes, 1, None);
    seq.speedup = 1.0;
    let mut runs = vec![seq];
    for threads in [2usize, 4, 8] {
        let (mut run, _) = run_once(&bytes, threads, Some(&baseline));
        run.speedup = runs[0].wall_ms / run.wall_ms;
        assert!(run.bit_identical, "parallel analysis diverged at K={threads}");
        assert_eq!(run.defects, 0, "boundary defects on a healthy stream at K={threads}");
        runs.push(run);
    }

    let fmt = |r: &Run| {
        format!(
            "    {{\"threads\": {}, \"wall_ms\": {:.1}, \"speedup\": {:.2}, \
             \"events_per_sec\": {:.0}, \"fragments\": {}, \
             \"min_fragment_events\": {}, \"max_fragment_events\": {}, \
             \"balance_spread_pct\": {:.2}, \"busy_ms_total\": {:.1}, \
             \"bit_identical\": {}, \"defects\": {}}}",
            r.threads,
            r.wall_ms,
            r.speedup,
            r.events_per_sec,
            r.fragments,
            r.min_fragment_events,
            r.max_fragment_events,
            r.balance_spread_pct,
            r.busy_ms_total,
            r.bit_identical,
            r.defects,
        )
    };
    let worst_spread = runs.iter().map(|r| r.balance_spread_pct).fold(0.0f64, f64::max);
    let json = format!(
        "{{\n  \"bench\": \"fragment-parallel analysis, {:.0} MiB synthetic BTSF stream, {} events in {} frames\",\n  \
           \"stream_mib\": {:.0},\n  \
           \"events\": {events},\n  \
           \"frames\": {frames},\n  \
           \"host_cpus\": {host_cpus},\n  \
           \"worst_balance_spread_pct\": {worst_spread:.2},\n  \
           \"runs\": [\n{}\n  ],\n  \
           \"note\": \"every parallel run is asserted bit-identical to K=1; on a host with host_cpus < K the wall-clock speedup degenerates toward 1x and the per-fragment work counters (balance_spread_pct <= 20) are the scaling evidence\"\n}}\n",
        bytes.len() as f64 / (1 << 20) as f64,
        events,
        frames,
        bytes.len() as f64 / (1 << 20) as f64,
        runs.iter().map(fmt).collect::<Vec<_>>().join(",\n"),
    );
    print!("{json}");
    std::fs::write("BENCH_analysis.json", &json).expect("write BENCH_analysis.json");
    eprintln!("wrote BENCH_analysis.json");
}
