//! # btrace-bench — regenerating the paper's tables and figures
//!
//! One binary per evaluation artifact; see `EXPERIMENTS.md` at the
//! repository root for the mapping and for recorded results.
//!
//! | Artifact | Binary | What it prints |
//! |----------|--------|----------------|
//! | Table 2 | `table2` | latest fragment, loss rate, fragments, latency per tracer × workload |
//! | Fig. 1 | `fig1` | retention gap maps (lock screen, shopping) |
//! | Fig. 2 | `fig2` | per-category MB/core/min |
//! | Fig. 3 | `fig3` | retainable seconds per trace level at a fixed buffer |
//! | Fig. 4 | `fig4` | per-core rates across scenarios |
//! | Fig. 6 | `fig6` | threads-per-core box statistics |
//! | Fig. 10 | `fig10` | latest fragment vs. number of active blocks |
//! | Fig. 11 | `fig11` | recording-latency CDFs |
//! | §5.1/§3 ablations | `ablations` | block size and preemption sweeps |
//!
//! All binaries take `--scale <f64>` (fraction of the full 30-second
//! workload; default is sized for CI-class machines), `--seed <u64>`, and
//! where meaningful `--mode core|thread`.
//!
//! Criterion micro-benchmarks for the recording fast path live under
//! `benches/`.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod harness;

pub use harness::{btrace, btrace_with_active, config_from_args, run_tracer, Outcome, TRACERS};
