//! Shared harness for the table/figure binaries: construct the five
//! tracers under the paper's §5 configuration and run replays.

use btrace_analysis::{analyze, LatencyStats, Metrics};
use btrace_baselines::{Bbq, PerCoreDropNewest, PerCoreOverwrite, PerThread};
use btrace_core::{BTrace, Config};
use btrace_replay::{ReplayConfig, ReplayReport, Replayer, Scenario};

/// The evaluation buffer: 12 MB total, 4 KiB blocks, `A = 16 × C` (§5).
pub const TOTAL_BYTES: usize = 12 << 20;
/// Data block size (one page).
pub const BLOCK_BYTES: usize = 4096;
/// Cores of the simulated phone.
pub const CORES: usize = 12;
/// LTTng sub-buffers per core (lttng-ust default of 4).
pub const LTTNG_SUBS: usize = 4;

/// Tracer identifiers, in the paper's presentation order.
pub const TRACERS: [&str; 5] = ["BTrace", "BBQ", "ftrace", "LTTng", "VTrace"];

/// Builds the BTrace instance under the evaluation configuration, with a
/// caller-chosen number of active blocks.
pub fn btrace_with_active(active: usize) -> BTrace {
    let stride = BLOCK_BYTES * active;
    // Round the 12 MB budget to the resize stride.
    let buffer = (TOTAL_BYTES / stride).max(1) * stride;
    BTrace::new(
        Config::new(CORES).active_blocks(active).block_bytes(BLOCK_BYTES).buffer_bytes(buffer),
    )
    .expect("evaluation configuration is valid")
}

/// The default BTrace (sweet spot `A = 16 × C`, §5.1).
pub fn btrace() -> BTrace {
    btrace_with_active(16 * CORES)
}

/// One (metrics, latency) outcome of a replay.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Tracer name.
    pub tracer: &'static str,
    /// Scenario name.
    pub scenario: &'static str,
    /// Retention metrics.
    pub metrics: Metrics,
    /// Latency summary (empty sample when sampling was off).
    pub latency: LatencyStats,
    /// The raw report (for gap maps and CDFs).
    pub report: ReplayReport,
}

/// Replays `scenario` against one named tracer under the §5 configuration.
pub fn run_tracer(name: &str, scenario: &'static Scenario, config: &ReplayConfig) -> Outcome {
    let replayer = Replayer::new(scenario, config.clone());
    let expected_threads = scenario.total_threads_per_core as usize * CORES;
    let report = match name {
        "BTrace" => replayer.run(&btrace()),
        "BBQ" => replayer.run(&Bbq::new(TOTAL_BYTES, BLOCK_BYTES)),
        "ftrace" => replayer.run(&PerCoreOverwrite::new(CORES, TOTAL_BYTES)),
        "LTTng" => replayer.run(&PerCoreDropNewest::new(CORES, TOTAL_BYTES, LTTNG_SUBS)),
        "VTrace" => replayer.run(&PerThread::new(TOTAL_BYTES, expected_threads)),
        other => panic!("unknown tracer {other}"),
    };
    outcome_of(static_name(name), scenario, report)
}

/// Wraps a finished report in an [`Outcome`].
pub fn outcome_of(tracer: &'static str, scenario: &Scenario, report: ReplayReport) -> Outcome {
    let metrics = analyze(&report.retained, report.capacity_bytes);
    let latency = LatencyStats::from_samples(report.latencies_ns.clone());
    Outcome { tracer, scenario: scenario.name, metrics, latency, report }
}

/// Resolves the static name for a tracer string (the outcome carries a
/// `'static` label).
pub fn static_name(name: &str) -> &'static str {
    TRACERS.iter().copied().find(|&t| t == name).unwrap_or("?")
}

/// Parses `--scale X` / `--mode core|thread` style CLI arguments shared by
/// all figure binaries. Unknown arguments are ignored so binaries can layer
/// their own.
pub fn config_from_args(default_scale: f64) -> ReplayConfig {
    let mut config =
        ReplayConfig { scale: default_scale, latency_sample_every: 64, ..ReplayConfig::table2() };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    config.scale = v;
                    i += 1;
                }
            }
            "--mode" => {
                if let Some(v) = args.get(i + 1) {
                    config.mode = match v.as_str() {
                        "core" => btrace_replay::ReplayMode::CoreLevel,
                        _ => btrace_replay::ReplayMode::ThreadLevel,
                    };
                    i += 1;
                }
            }
            "--seed" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    config.seed = v;
                    i += 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    config
}

/// Geometric mean over per-scenario values (the Table 2 "G.M." column).
pub fn geomean_f64(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (sum / values.len() as f64).exp()
}

/// Formats bytes as MB with one decimal.
pub fn mb(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / (1 << 20) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use btrace_replay::scenarios;

    #[test]
    fn btrace_matches_evaluation_geometry() {
        let t = btrace();
        assert_eq!(t.cores(), 12);
        assert_eq!(t.block_bytes(), 4096);
        assert_eq!(t.active_blocks(), 192);
        assert_eq!(t.capacity_bytes(), 12 << 20);
    }

    #[test]
    fn run_tracer_produces_outcomes_for_all_five() {
        let scenario = scenarios::by_name("Music").unwrap();
        let config = ReplayConfig {
            scale: 0.002,
            slices: 4,
            latency_sample_every: 32,
            ..ReplayConfig::table2()
        };
        for name in TRACERS {
            let outcome = run_tracer(name, scenario, &config);
            assert_eq!(outcome.tracer, static_name(name));
            assert!(outcome.report.written > 0, "{name} wrote nothing");
        }
    }

    #[test]
    fn geomean_f64_basics() {
        assert!((geomean_f64(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
        assert_eq!(geomean_f64(&[]), 0.0);
    }
}
