//! Criterion benchmarks for the off-critical-path operations: speculative
//! consumption (§4.3) and runtime resizing (§4.4). The paper's claim is not
//! that these are fast but that they cost producers nothing; the companion
//! `record_under_resize` case quantifies exactly that.

use btrace_bench::harness::{btrace, CORES};
use btrace_core::sink::TraceSink;
use btrace_core::{BTrace, Config};
use criterion::{criterion_group, criterion_main, Criterion};

fn prefilled() -> BTrace {
    let tracer = btrace();
    let producer = tracer.producer(0).expect("core 0 exists");
    for i in 0..20_000u64 {
        producer.record_with(i, 0, b"prefill entry payload bytes").expect("fits");
    }
    tracer
}

fn bench_collect(c: &mut Criterion) {
    let tracer = prefilled();
    let mut consumer = tracer.consumer();
    c.bench_function("consumer_collect_12mb", |b| b.iter(|| consumer.collect().events.len()));
}

fn bench_resize_cycle(c: &mut Criterion) {
    let active = 16 * CORES;
    let stride = 4096 * active;
    let tracer = BTrace::new(
        Config::new(CORES)
            .active_blocks(active)
            .block_bytes(4096)
            .buffer_bytes(4 * stride)
            .max_bytes(16 * stride),
    )
    .expect("valid");
    c.bench_function("resize_grow_shrink_cycle", |b| {
        b.iter(|| {
            tracer.resize_bytes(16 * stride).expect("grow");
            tracer.resize_bytes(4 * stride).expect("shrink");
        })
    });
}

fn bench_record_under_resize(c: &mut Criterion) {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    let active = 16 * CORES;
    let stride = 4096 * active;
    let tracer = BTrace::new(
        Config::new(CORES)
            .active_blocks(active)
            .block_bytes(4096)
            .buffer_bytes(4 * stride)
            .max_bytes(16 * stride),
    )
    .expect("valid");
    let stop = Arc::new(AtomicBool::new(false));
    let resizer = {
        let tracer = tracer.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                tracer.resize_bytes(16 * stride).expect("grow");
                tracer.resize_bytes(4 * stride).expect("shrink");
            }
        })
    };
    let mut stamp = 0u64;
    c.bench_function("record_under_resize_storm", |b| {
        b.iter(|| {
            stamp += 1;
            tracer.record(0, 1, stamp, b"recording while resizing")
        })
    });
    stop.store(true, Ordering::Relaxed);
    resizer.join().expect("resizer thread");
}

criterion_group!(benches, bench_collect, bench_resize_cycle, bench_record_under_resize);
criterion_main!(benches);
