//! Criterion micro-benchmarks of the cached-descriptor fast path: the
//! `Producer::record_with` handle path (cached block descriptor, no
//! core-local load, no gpos mapping) against the uncached `TraceSink`
//! path, plus the two-phase `begin`/`commit` variant — the three shapes a
//! mobile trace point can take.

use btrace_bench::harness::btrace;
use btrace_core::sink::TraceSink;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const PAYLOAD: &[u8] = b"sched: prev=1234 next=5678 flag";

fn bench_record_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("fastpath");
    group.throughput(Throughput::Elements(1));

    {
        // Cached descriptor: the handle skips the core-local load and the
        // gpos mapping on every hit.
        let tracer = btrace();
        tracer.set_record_timing(None);
        let producer = tracer.producer(0).expect("core 0 exists");
        let mut stamp = 0u64;
        group.bench_function(BenchmarkId::from_parameter("producer_cached"), |b| {
            b.iter(|| {
                stamp += 1;
                producer.record_with(stamp, 1, PAYLOAD)
            })
        });
    }
    {
        // Uncached sink path: reloads the core-local word and remaps the
        // gpos per record — the pre-overhaul shape, kept for comparison.
        let tracer = btrace();
        tracer.set_record_timing(None);
        let mut stamp = 0u64;
        group.bench_function(BenchmarkId::from_parameter("sink_uncached"), |b| {
            b.iter(|| {
                stamp += 1;
                tracer.record(0, 1, stamp, PAYLOAD)
            })
        });
    }
    {
        // Two-phase grant path (allocate now, commit later).
        let tracer = btrace();
        tracer.set_record_timing(None);
        let producer = tracer.producer(0).expect("core 0 exists");
        let mut stamp = 0u64;
        group.bench_function(BenchmarkId::from_parameter("begin_commit"), |b| {
            b.iter(|| {
                stamp += 1;
                let grant = producer.begin(PAYLOAD.len()).expect("payload fits");
                grant.commit(stamp, 1, PAYLOAD)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_record_paths);
criterion_main!(benches);
