//! Criterion micro-benchmarks of the recording fast path — the ns-scale
//! numbers behind Table 2's latency block, isolated from the replay
//! harness: uncontended single-producer recording, and a two-producer
//! contended variant that exposes BBQ's shared-cache-line penalty.

use btrace_baselines::{Bbq, PerCoreDropNewest, PerCoreOverwrite, PerThread};
use btrace_bench::harness::{btrace, CORES, LTTNG_SUBS, TOTAL_BYTES};
use btrace_core::sink::TraceSink;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const PAYLOAD: &[u8] = b"sched: prev=1234 next=5678 flag";

fn bench_uncontended(c: &mut Criterion) {
    let mut group = c.benchmark_group("record_uncontended");
    group.throughput(Throughput::Elements(1));

    macro_rules! bench_sink {
        ($name:literal, $sink:expr) => {
            let sink = $sink;
            let mut stamp = 0u64;
            group.bench_function(BenchmarkId::from_parameter($name), |b| {
                b.iter(|| {
                    stamp += 1;
                    sink.record(0, 1, stamp, PAYLOAD)
                })
            });
        };
    }

    bench_sink!("BTrace", btrace());
    bench_sink!("BBQ", Bbq::new(TOTAL_BYTES, 4096));
    bench_sink!("ftrace", PerCoreOverwrite::new(CORES, TOTAL_BYTES));
    bench_sink!("LTTng", PerCoreDropNewest::new(CORES, TOTAL_BYTES, LTTNG_SUBS));
    bench_sink!("VTrace", PerThread::new(TOTAL_BYTES, 480));
    group.finish();
}

/// One background producer hammers core 1 while the measured producer
/// records on core 0: per-core designs are unaffected, the global BBQ
/// buffer bounces its allocation cache line.
fn bench_contended(c: &mut Criterion) {
    let mut group = c.benchmark_group("record_contended");
    group.throughput(Throughput::Elements(1));

    fn with_background<S: TraceSink + Clone + 'static>(sink: S, f: impl FnOnce(&S)) {
        let stop = Arc::new(AtomicBool::new(false));
        let bg = {
            let sink = sink.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut stamp = u64::MAX / 2;
                while !stop.load(Ordering::Relaxed) {
                    stamp += 1;
                    sink.record(1, 2, stamp, PAYLOAD);
                }
            })
        };
        f(&sink);
        stop.store(true, Ordering::Relaxed);
        bg.join().expect("background producer");
    }

    macro_rules! bench_contended_sink {
        ($name:literal, $sink:expr) => {
            with_background($sink, |sink| {
                let mut stamp = 0u64;
                group.bench_function(BenchmarkId::from_parameter($name), |b| {
                    b.iter(|| {
                        stamp += 1;
                        sink.record(0, 1, stamp, PAYLOAD)
                    })
                });
            });
        };
    }

    bench_contended_sink!("BTrace", btrace());
    bench_contended_sink!("BBQ", Bbq::new(TOTAL_BYTES, 4096));
    bench_contended_sink!("ftrace", PerCoreOverwrite::new(CORES, TOTAL_BYTES));
    bench_contended_sink!("LTTng", PerCoreDropNewest::new(CORES, TOTAL_BYTES, LTTNG_SUBS));
    group.finish();
}

fn bench_payload_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("record_payload_size");
    let sink = btrace();
    let buf = vec![0x5Au8; 1024];
    for size in [8usize, 32, 128, 512] {
        group.throughput(Throughput::Bytes(size as u64));
        let mut stamp = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            b.iter(|| {
                stamp += 1;
                sink.record(0, 1, stamp, &buf[..size])
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_uncontended, bench_contended, bench_payload_sizes);
criterion_main!(benches);
