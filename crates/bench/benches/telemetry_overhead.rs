//! Criterion micro-benchmark of the telemetry layer's cost on the record
//! fast path.
//!
//! Feature unification means one binary cannot compile telemetry both in
//! and out, so the "disabled" baseline is the runtime toggle
//! (`set_record_timing(None)`), which leaves exactly one relaxed load on
//! the fast path — the closest observable proxy for the compiled-out
//! build. The acceptance budget: default sampled timing (1-in-64) within
//! 5% of timing-off.

use btrace_bench::harness::btrace;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const PAYLOAD: &[u8] = b"sched: prev=1234 next=5678 flag";

fn bench_telemetry_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("record_telemetry");
    group.throughput(Throughput::Elements(1));
    for (label, every) in
        [("timing_off", None), ("sampled_1_in_64", Some(64u32)), ("every_record", Some(1))]
    {
        let tracer = btrace();
        tracer.set_record_timing(every);
        let producer = tracer.producer(0).expect("core 0 exists");
        let mut stamp = 0u64;
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                stamp += 1;
                producer.record_with(stamp, 1, PAYLOAD)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_telemetry_overhead);
criterion_main!(benches);
