use crate::bitmap::PageBitmap;
use crate::error::{CommitFault, RegionError};
use crate::fault::{
    CommitDecision, DecommitDecision, FaultInjector, FaultPlan, FaultStats, ENOMEM,
};
use crate::heap::HeapBacking;
use crate::PAGE_SIZE;

#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
use crate::mmap::MmapBacking;

/// Which mechanism backs a [`Region`]'s reservation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Backing {
    /// Anonymous `mmap` reservation with `madvise(MADV_DONTNEED)` decommit.
    /// Only available on Linux `x86_64`/`aarch64`; falls back to [`Heap`]
    /// elsewhere.
    ///
    /// [`Heap`]: Backing::Heap
    Mmap,
    /// A plain heap allocation; decommit only poisons (debug builds) and
    /// updates bookkeeping. Fully portable and deterministic for tests.
    Heap,
}

impl Default for Backing {
    /// The platform's best available backing: [`Backing::Mmap`] where
    /// supported, otherwise [`Backing::Heap`].
    fn default() -> Self {
        if cfg!(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))) {
            Backing::Mmap
        } else {
            Backing::Heap
        }
    }
}

enum BackingImpl {
    #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
    Mmap(MmapBacking),
    Heap(HeapBacking),
}

/// A contiguous reserved address range whose pages can be committed and
/// decommitted at [`PAGE_SIZE`] granularity.
///
/// The region's base address is stable for its whole lifetime, which is what
/// allows BTrace to resize the trace buffer by only changing a ratio in its
/// global metadata (§3.3/§4.4) while producers keep using plain offsets.
///
/// # Concurrency
///
/// `Region` is `Send + Sync`; committed bytes are raw shared memory and the
/// *caller* is responsible for data-race freedom (BTrace guarantees it by
/// handing each byte range to exactly one producer via fetch-and-add).
///
/// # Examples
///
/// ```rust
/// use btrace_vmem::{Backing, Region, PAGE_SIZE};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let region = Region::reserve_with(8 * PAGE_SIZE, Backing::Heap)?;
/// region.commit(0, 8 * PAGE_SIZE)?;
/// assert_eq!(region.committed_bytes(), 8 * PAGE_SIZE);
/// # Ok(())
/// # }
/// ```
pub struct Region {
    backing: BackingImpl,
    bitmap: PageBitmap,
    max_bytes: usize,
    faults: Option<FaultInjector>,
}

impl Region {
    /// Reserves `max_bytes` of address space using the default backing for
    /// the platform. No pages are committed yet.
    ///
    /// # Errors
    ///
    /// Returns [`RegionError::InvalidSize`] when `max_bytes` is zero or not a
    /// multiple of [`PAGE_SIZE`], and [`RegionError::ReserveFailed`] when the
    /// OS refuses the reservation.
    pub fn reserve(max_bytes: usize) -> Result<Self, RegionError> {
        Self::reserve_with(max_bytes, Backing::default())
    }

    /// Reserves `max_bytes` with an explicit [`Backing`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Region::reserve`].
    pub fn reserve_with(max_bytes: usize, backing: Backing) -> Result<Self, RegionError> {
        Self::reserve_inner(max_bytes, backing, None)
    }

    /// Reserves `max_bytes` with a deterministic [`FaultPlan`] wrapped around
    /// the backing: commits and decommits consult the plan's seed-replayable
    /// schedule and may fail, partially commit, or defer, exactly as the OS
    /// can under memory pressure. See [`crate::fault`] for the schedule
    /// semantics and [`Region::fault_stats`] for the injection counts.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Region::reserve`] (reservation itself is never
    /// fault-injected — a tracer that cannot reserve has nothing to degrade).
    pub fn reserve_with_faults(
        max_bytes: usize,
        backing: Backing,
        plan: FaultPlan,
    ) -> Result<Self, RegionError> {
        Self::reserve_inner(max_bytes, backing, Some(FaultInjector::new(plan)))
    }

    fn reserve_inner(
        max_bytes: usize,
        backing: Backing,
        faults: Option<FaultInjector>,
    ) -> Result<Self, RegionError> {
        if max_bytes == 0 || !max_bytes.is_multiple_of(PAGE_SIZE) {
            return Err(RegionError::InvalidSize { requested: max_bytes });
        }
        let backing = match backing {
            #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
            Backing::Mmap => BackingImpl::Mmap(MmapBacking::reserve(max_bytes)?),
            #[cfg(not(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            )))]
            Backing::Mmap => BackingImpl::Heap(HeapBacking::reserve(max_bytes)?),
            Backing::Heap => BackingImpl::Heap(HeapBacking::reserve(max_bytes)?),
        };
        Ok(Self { backing, bitmap: PageBitmap::new(max_bytes / PAGE_SIZE), max_bytes, faults })
    }

    /// Injection counts when the region was reserved with
    /// [`Region::reserve_with_faults`]; `None` otherwise.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.faults.as_ref().map(FaultInjector::stats)
    }

    /// Total reserved size in bytes.
    pub fn len(&self) -> usize {
        self.max_bytes
    }

    /// Whether the reservation is empty (never true: reservations are
    /// validated to be non-zero).
    pub fn is_empty(&self) -> bool {
        self.max_bytes == 0
    }

    /// Which backing actually materialized.
    pub fn backing(&self) -> Backing {
        match self.backing {
            #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
            BackingImpl::Mmap(_) => Backing::Mmap,
            BackingImpl::Heap(_) => Backing::Heap,
        }
    }

    /// Base pointer of the reservation.
    ///
    /// Dereferencing is only sound for committed ranges, and only under the
    /// caller's own synchronization.
    pub fn as_ptr(&self) -> *mut u8 {
        match &self.backing {
            #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
            BackingImpl::Mmap(m) => m.as_ptr(),
            BackingImpl::Heap(h) => h.as_ptr(),
        }
    }

    fn validate(&self, offset: usize, len: usize) -> Result<(), RegionError> {
        let aligned = offset.is_multiple_of(PAGE_SIZE) && len.is_multiple_of(PAGE_SIZE);
        let in_bounds =
            len != 0 && offset.checked_add(len).is_some_and(|end| end <= self.max_bytes);
        if aligned && in_bounds {
            Ok(())
        } else {
            Err(RegionError::InvalidRange { offset, len, region: self.max_bytes })
        }
    }

    /// Commits the page-aligned range `[offset, offset + len)`, making it
    /// readable and writable and guaranteeing it reads as zero until written.
    ///
    /// Committing an already-committed page is permitted and **re-zeroes**
    /// it; BTrace only commits fresh ranges during growth, so this case does
    /// not arise there.
    ///
    /// # Errors
    ///
    /// [`RegionError::InvalidRange`] on misaligned or out-of-bounds ranges;
    /// [`RegionError::CommitFailed`] when the OS call fails.
    pub fn commit(&self, offset: usize, len: usize) -> Result<(), RegionError> {
        self.validate(offset, len)?;
        if let Some(inj) = &self.faults {
            let (decision, due) = inj.on_commit(offset, len);
            self.flush_deferred(due);
            match decision {
                CommitDecision::Proceed => {}
                CommitDecision::Fail { errno } => {
                    return Err(RegionError::CommitFailed { errno });
                }
                CommitDecision::Partial { prefix } => {
                    // Materialize the prefix for real so the rollback path
                    // below has actual backing state to undo.
                    let committed = match self.backing_commit(offset, prefix) {
                        Ok(()) => prefix,
                        Err(f) => f.committed,
                    };
                    return Err(
                        self.rollback_partial(offset, CommitFault { errno: ENOMEM, committed })
                    );
                }
            }
        }
        match self.backing_commit(offset, len) {
            Ok(()) => {
                self.bitmap.set_range(offset / PAGE_SIZE, len / PAGE_SIZE, true);
                Ok(())
            }
            Err(fault) => Err(self.rollback_partial(offset, fault)),
        }
    }

    /// A mid-range commit failure leaves a committed prefix the bitmap knows
    /// nothing about; decommit it so the two views cannot diverge and commit
    /// stays observably all-or-nothing.
    fn rollback_partial(&self, offset: usize, fault: CommitFault) -> RegionError {
        if fault.committed > 0 {
            let _ = self.backing_decommit(offset, fault.committed);
        }
        RegionError::CommitFailed { errno: fault.errno }
    }

    fn backing_commit(&self, offset: usize, len: usize) -> Result<(), CommitFault> {
        match &self.backing {
            #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
            BackingImpl::Mmap(m) => m.commit(offset, len),
            BackingImpl::Heap(h) => h.commit(offset, len),
        }
    }

    fn backing_decommit(&self, offset: usize, len: usize) -> Result<(), RegionError> {
        match &self.backing {
            #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
            BackingImpl::Mmap(m) => m.decommit(offset, len),
            BackingImpl::Heap(h) => h.decommit(offset, len),
        }
    }

    /// Applies deferred decommits that have come due on the injector's
    /// operation clock. Best-effort: deferral already reported success.
    fn flush_deferred(&self, due: Vec<(usize, usize)>) {
        for (offset, len) in due {
            let _ = self.backing_decommit(offset, len);
        }
    }

    /// Decommits the page-aligned range `[offset, offset + len)`, returning
    /// physical memory to the OS (mmap backing) or poisoning it (heap
    /// backing, debug builds).
    ///
    /// The caller must guarantee no thread will touch the range until it is
    /// committed again — this is exactly what BTrace's implicit reclamation
    /// protocol (§3.3) establishes before calling this.
    ///
    /// # Errors
    ///
    /// [`RegionError::InvalidRange`] on misaligned or out-of-bounds ranges;
    /// [`RegionError::CommitFailed`] when the OS call fails.
    pub fn decommit(&self, offset: usize, len: usize) -> Result<(), RegionError> {
        self.validate(offset, len)?;
        if let Some(inj) = &self.faults {
            let (decision, due) = inj.on_decommit(offset, len);
            self.flush_deferred(due);
            match decision {
                DecommitDecision::Proceed => {}
                DecommitDecision::Fail { errno } => {
                    return Err(RegionError::CommitFailed { errno });
                }
                DecommitDecision::Defer => {
                    // Success is reported now; the backing releases the
                    // pages a few operations later (kernel lazy reclaim).
                    self.bitmap.set_range(offset / PAGE_SIZE, len / PAGE_SIZE, false);
                    return Ok(());
                }
            }
        }
        self.backing_decommit(offset, len)?;
        self.bitmap.set_range(offset / PAGE_SIZE, len / PAGE_SIZE, false);
        Ok(())
    }

    /// Whether the page containing byte `offset` is committed.
    pub fn is_committed(&self, offset: usize) -> bool {
        offset < self.max_bytes && self.bitmap.get(offset / PAGE_SIZE)
    }

    /// Whether every page overlapping `[offset, offset + len)` is committed.
    pub fn range_committed(&self, offset: usize, len: usize) -> bool {
        if len == 0 {
            return true;
        }
        let Some(end) = offset.checked_add(len) else { return false };
        if end > self.max_bytes {
            return false;
        }
        let first = offset / PAGE_SIZE;
        let last = (end - 1) / PAGE_SIZE;
        self.bitmap.all_set(first, last - first + 1)
    }

    /// Total committed bytes, for accounting and tests.
    pub fn committed_bytes(&self) -> usize {
        self.bitmap.count_set() * PAGE_SIZE
    }

    /// Number of pages in the reservation.
    pub fn pages(&self) -> usize {
        self.bitmap.pages()
    }
}

impl std::fmt::Debug for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Region")
            .field("max_bytes", &self.max_bytes)
            .field("committed_bytes", &self.committed_bytes())
            .field("backing", &self.backing())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn backings() -> Vec<Backing> {
        let mut v = vec![Backing::Heap];
        if Backing::default() == Backing::Mmap {
            v.push(Backing::Mmap);
        }
        v
    }

    #[test]
    fn reserve_validates_size() {
        assert!(matches!(Region::reserve(0), Err(RegionError::InvalidSize { .. })));
        assert!(matches!(Region::reserve(123), Err(RegionError::InvalidSize { .. })));
        assert!(Region::reserve(PAGE_SIZE).is_ok());
    }

    #[test]
    fn commit_state_machine_both_backings() {
        for b in backings() {
            let r = Region::reserve_with(4 * PAGE_SIZE, b).unwrap();
            assert_eq!(r.committed_bytes(), 0);
            r.commit(PAGE_SIZE, 2 * PAGE_SIZE).unwrap();
            assert!(r.is_committed(PAGE_SIZE));
            assert!(r.is_committed(2 * PAGE_SIZE));
            assert!(!r.is_committed(0));
            assert!(!r.is_committed(3 * PAGE_SIZE));
            assert!(r.range_committed(PAGE_SIZE, 2 * PAGE_SIZE));
            assert!(!r.range_committed(0, 2 * PAGE_SIZE));
            r.decommit(PAGE_SIZE, PAGE_SIZE).unwrap();
            assert!(!r.is_committed(PAGE_SIZE));
            assert!(r.is_committed(2 * PAGE_SIZE));
            assert_eq!(r.committed_bytes(), PAGE_SIZE);
        }
    }

    #[test]
    fn invalid_ranges_rejected() {
        let r = Region::reserve(2 * PAGE_SIZE).unwrap();
        assert!(matches!(r.commit(1, PAGE_SIZE), Err(RegionError::InvalidRange { .. })));
        assert!(matches!(r.commit(0, PAGE_SIZE + 1), Err(RegionError::InvalidRange { .. })));
        assert!(matches!(
            r.commit(2 * PAGE_SIZE, PAGE_SIZE),
            Err(RegionError::InvalidRange { .. })
        ));
        assert!(matches!(r.commit(0, 0), Err(RegionError::InvalidRange { .. })));
        // Overflowing range must not wrap around.
        assert!(matches!(
            r.decommit(usize::MAX - PAGE_SIZE + 1, PAGE_SIZE),
            Err(RegionError::InvalidRange { .. })
        ));
    }

    #[test]
    fn committed_memory_reads_zero_then_roundtrips() {
        for b in backings() {
            let r = Region::reserve_with(2 * PAGE_SIZE, b).unwrap();
            r.commit(0, 2 * PAGE_SIZE).unwrap();
            // SAFETY: committed range, single thread.
            unsafe {
                assert_eq!(*r.as_ptr(), 0);
                r.as_ptr().add(100).write(42);
                assert_eq!(*r.as_ptr().add(100), 42);
            }
        }
    }

    #[test]
    fn region_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Region>();
    }

    #[test]
    fn range_committed_handles_edges() {
        let r = Region::reserve(4 * PAGE_SIZE).unwrap();
        r.commit(0, 4 * PAGE_SIZE).unwrap();
        assert!(r.range_committed(0, 4 * PAGE_SIZE));
        assert!(r.range_committed(4 * PAGE_SIZE - 1, 1));
        assert!(!r.range_committed(4 * PAGE_SIZE - 1, 2)); // crosses the end
        assert!(r.range_committed(123, 0)); // empty range trivially committed
    }

    #[test]
    fn fault_plan_commit_failure_then_recovery() {
        let plan = FaultPlan::new(11).commit_failure_rate(1.0).max_faults(2);
        let r = Region::reserve_with_faults(4 * PAGE_SIZE, Backing::Heap, plan).unwrap();
        assert!(matches!(r.commit(0, PAGE_SIZE), Err(RegionError::CommitFailed { .. })));
        assert!(matches!(r.commit(0, PAGE_SIZE), Err(RegionError::CommitFailed { .. })));
        r.commit(0, PAGE_SIZE).unwrap();
        assert_eq!(r.fault_stats().unwrap().commit_faults, 2);
        assert_eq!(r.committed_bytes(), PAGE_SIZE);
    }

    #[test]
    fn partial_commit_rolls_back_prefix_on_every_backing() {
        for b in backings() {
            let plan = FaultPlan::new(5).partial_commit_rate(1.0).max_faults(1);
            let r = Region::reserve_with_faults(16 * PAGE_SIZE, b, plan).unwrap();
            assert!(matches!(r.commit(0, 8 * PAGE_SIZE), Err(RegionError::CommitFailed { .. })));
            // All-or-nothing: the committed prefix was decommitted again, so
            // the bitmap (never updated) and backing agree.
            assert_eq!(r.committed_bytes(), 0, "prefix must be rolled back ({b:?})");
            assert_eq!(r.fault_stats().unwrap().partial_commits, 1);
            r.commit(0, 8 * PAGE_SIZE).unwrap();
            assert_eq!(r.committed_bytes(), 8 * PAGE_SIZE);
        }
    }

    #[test]
    fn deferred_decommit_reports_success_and_lands_later() {
        let plan = FaultPlan::new(21).delayed_decommit_rate(1.0).decommit_delay_ops(1);
        let r = Region::reserve_with_faults(8 * PAGE_SIZE, Backing::Heap, plan).unwrap();
        r.commit(0, 2 * PAGE_SIZE).unwrap();
        r.decommit(0, PAGE_SIZE).unwrap();
        assert!(!r.is_committed(0), "bookkeeping reflects the decommit immediately");
        let s = r.fault_stats().unwrap();
        assert_eq!(s.deferred_decommits, 1);
        assert_eq!(s.flushed_decommits, 0);
        // The next operation flushes the pending range to the backing.
        r.commit(4 * PAGE_SIZE, PAGE_SIZE).unwrap();
        assert_eq!(r.fault_stats().unwrap().flushed_decommits, 1);
    }

    #[test]
    fn debug_output_mentions_commit_state() {
        let r = Region::reserve(PAGE_SIZE).unwrap();
        let text = format!("{r:?}");
        assert!(text.contains("committed_bytes"));
    }
}
