//! Lock-free bitmap tracking which pages of a region are committed.

use std::sync::atomic::{AtomicU64, Ordering};

/// A fixed-size concurrent bitmap with one bit per page.
///
/// Bit set ⇒ the page is committed. All operations use relaxed atomics plus
/// the release/acquire edges the callers already establish around
/// commit/decommit, so the bitmap is advisory bookkeeping, not a
/// synchronization primitive.
pub(crate) struct PageBitmap {
    words: Box<[AtomicU64]>,
    pages: usize,
}

impl PageBitmap {
    pub(crate) fn new(pages: usize) -> Self {
        let words = (0..pages.div_ceil(64)).map(|_| AtomicU64::new(0)).collect();
        Self { words, pages }
    }

    pub(crate) fn pages(&self) -> usize {
        self.pages
    }

    /// Sets bits `[start, start + count)` to `value`.
    pub(crate) fn set_range(&self, start: usize, count: usize, value: bool) {
        assert!(start + count <= self.pages, "bitmap range out of bounds");
        for page in start..start + count {
            let (word, bit) = (page / 64, page % 64);
            if value {
                self.words[word].fetch_or(1 << bit, Ordering::AcqRel);
            } else {
                self.words[word].fetch_and(!(1 << bit), Ordering::AcqRel);
            }
        }
    }

    pub(crate) fn get(&self, page: usize) -> bool {
        assert!(page < self.pages, "bitmap index out of bounds");
        let (word, bit) = (page / 64, page % 64);
        self.words[word].load(Ordering::Acquire) & (1 << bit) != 0
    }

    /// Returns `true` when every page in `[start, start + count)` is set.
    pub(crate) fn all_set(&self, start: usize, count: usize) -> bool {
        (start..start + count).all(|p| self.get(p))
    }

    /// Number of committed pages.
    pub(crate) fn count_set(&self) -> usize {
        let full = self
            .words
            .iter()
            .map(|w| w.load(Ordering::Acquire).count_ones() as usize)
            .sum::<usize>();
        full
    }
}

impl std::fmt::Debug for PageBitmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageBitmap")
            .field("pages", &self.pages)
            .field("committed", &self.count_set())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_bitmap_is_clear() {
        let bm = PageBitmap::new(100);
        assert_eq!(bm.count_set(), 0);
        assert!(!bm.get(0));
        assert!(!bm.get(99));
    }

    #[test]
    fn set_and_clear_ranges() {
        let bm = PageBitmap::new(130);
        bm.set_range(60, 10, true); // crosses a word boundary
        assert!(bm.all_set(60, 10));
        assert!(!bm.get(59));
        assert!(!bm.get(70));
        assert_eq!(bm.count_set(), 10);
        bm.set_range(62, 3, false);
        assert!(!bm.get(62));
        assert!(!bm.get(64));
        assert!(bm.get(61));
        assert!(bm.get(65));
        assert_eq!(bm.count_set(), 7);
    }

    #[test]
    fn all_set_on_empty_range_is_true() {
        let bm = PageBitmap::new(8);
        assert!(bm.all_set(3, 0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_set_panics() {
        let bm = PageBitmap::new(8);
        bm.set_range(7, 2, true);
    }

    #[test]
    fn concurrent_setting_is_consistent() {
        use std::sync::Arc;
        let bm = Arc::new(PageBitmap::new(64 * 8));
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let bm = Arc::clone(&bm);
                std::thread::spawn(move || bm.set_range(i * 64, 64, true))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(bm.count_set(), 64 * 8);
    }
}
