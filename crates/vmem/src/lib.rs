//! # btrace-vmem — reserved memory regions with commit/decommit
//!
//! BTrace resizes its trace buffer at runtime (§4.4 of the paper): the
//! *virtual* address range is reserved once at the maximum buffer size, while
//! *physical* memory is committed and decommitted as the buffer grows and
//! shrinks. This crate provides that substrate as a [`Region`]:
//!
//! * [`Region::reserve`] reserves `max_bytes` of address space;
//! * [`Region::commit`] / [`Region::decommit`] move page-aligned ranges
//!   between the committed and decommitted states;
//! * decommitted ranges must never be touched — in debug builds the
//!   [`HeapRegion`](Backing::Heap) backend poisons them and access checks
//!   catch use-after-decommit, standing in for the SIGSEGV a real `munmap`
//!   would deliver.
//!
//! Two backends are available (see [`Backing`]): an `mmap`-based one on
//! Linux `x86_64`/`aarch64` (raw syscalls, no libc dependency) that uses
//! `madvise(MADV_DONTNEED)` to return physical pages, and a portable
//! heap-backed one used everywhere else and in tests.
//!
//! ```rust
//! use btrace_vmem::{Region, PAGE_SIZE};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let region = Region::reserve(16 * PAGE_SIZE)?;
//! region.commit(0, 4 * PAGE_SIZE)?;          // first four pages usable
//! unsafe { region.as_ptr().write(42) };      // safe: committed + exclusive
//! region.decommit(0, 4 * PAGE_SIZE)?;        // give the pages back
//! assert!(!region.is_committed(0));
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod bitmap;
mod error;
pub mod fault;
mod filemap;
mod heap;
#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
mod mmap;
mod region;

pub use error::RegionError;
pub use fault::{FaultPlan, FaultStats};
pub use filemap::FileMap;
pub use region::{Backing, Region};

/// Granularity of commit/decommit operations, in bytes.
///
/// All offsets and lengths passed to [`Region::commit`] and
/// [`Region::decommit`] must be multiples of this value. 4 KiB matches the
/// page size of the smartphone SoCs the paper evaluates on and the data-block
/// size used throughout the evaluation (§5).
pub const PAGE_SIZE: usize = 4096;
