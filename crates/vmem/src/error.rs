use std::error::Error;
use std::fmt;

/// Error returned by [`Region`](crate::Region) operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RegionError {
    /// The requested reservation size was zero or not page-aligned.
    InvalidSize {
        /// The size, in bytes, that was requested.
        requested: usize,
    },
    /// An offset/length pair was not page-aligned or fell outside the region.
    InvalidRange {
        /// Start offset of the offending range.
        offset: usize,
        /// Length of the offending range.
        len: usize,
        /// Total reserved size of the region.
        region: usize,
    },
    /// The operating system refused the reservation (out of address space).
    ReserveFailed {
        /// Raw negated errno value, when available.
        errno: i32,
    },
    /// A commit or decommit syscall failed.
    CommitFailed {
        /// Raw negated errno value, when available.
        errno: i32,
    },
}

impl fmt::Display for RegionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            RegionError::InvalidSize { requested } => {
                write!(
                    f,
                    "invalid region size {requested}: must be a non-zero multiple of the page size"
                )
            }
            RegionError::InvalidRange { offset, len, region } => {
                write!(f, "invalid range [{offset}, {offset}+{len}) for region of {region} bytes: must be page-aligned and in bounds")
            }
            RegionError::ReserveFailed { errno } => {
                write!(f, "reserving address space failed (errno {errno})")
            }
            RegionError::CommitFailed { errno } => {
                write!(f, "changing commit state failed (errno {errno})")
            }
        }
    }
}

impl Error for RegionError {}

/// Internal commit failure that carries how much of the range landed before
/// the fault, so [`Region::commit`](crate::Region::commit) can decommit the
/// prefix and keep bitmap and backing state in agreement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct CommitFault {
    /// Raw errno of the failing call.
    pub(crate) errno: i32,
    /// Bytes successfully committed before the failure (a page multiple).
    pub(crate) committed: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = RegionError::InvalidSize { requested: 17 };
        let text = err.to_string();
        assert!(text.contains("17"));
        assert!(text.starts_with(char::is_lowercase));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RegionError>();
    }

    #[test]
    fn debug_is_never_empty() {
        let err = RegionError::CommitFailed { errno: 12 };
        assert!(!format!("{err:?}").is_empty());
    }
}
