//! Deterministic fault injection for [`Region`](crate::Region) backings.
//!
//! Real mobile deployments lose the happy path first: `madvise` returns
//! `ENOMEM` under memory pressure, a commit succeeds for a prefix of the
//! range and then fails, and decommits land late because the kernel
//! reclaims lazily. A [`FaultPlan`] injects exactly those behaviours on a
//! seed-replayable schedule so every layer above (`btrace-core` resize,
//! `btrace-persist` exporters) can be tested against them.
//!
//! The schedule mirrors the `btrace-model` seed/replay convention: the
//! whole fault sequence is a pure function of one `u64` seed expanded
//! through SplitMix64, so a failing run is replayed by exporting
//! `BTRACE_FAULT_SEED=<printed seed>` and re-running the suite.
//!
//! ```rust
//! use btrace_vmem::{Backing, FaultPlan, Region, PAGE_SIZE};
//!
//! let plan = FaultPlan::new(42).commit_failure_rate(1.0).max_faults(1);
//! let region = Region::reserve_with_faults(4 * PAGE_SIZE, Backing::Heap, plan).unwrap();
//! assert!(region.commit(0, PAGE_SIZE).is_err()); // injected ENOMEM
//! assert!(region.commit(0, PAGE_SIZE).is_ok()); // fault budget exhausted
//! assert_eq!(region.fault_stats().unwrap().commit_faults, 1);
//! ```

use crate::PAGE_SIZE;
use std::sync::{Mutex, PoisonError};

/// `ENOMEM`: the errno injected commit/decommit failures report.
pub(crate) const ENOMEM: i32 = 12;

/// Probabilities are stored in parts-per-million so [`FaultPlan`] stays
/// `Copy + Eq` and decisions are exact integer comparisons (bit-for-bit
/// replayable, no float rounding in the schedule).
const PPM: u64 = 1_000_000;

/// SplitMix64, mirroring `btrace-model`'s seed-expansion PRNG: small
/// state, full period, and the entire schedule derives from one `u64`.
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..bound` (`bound > 0`), via 128-bit multiply-shift.
    fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }
}

/// A seed-replayable fault schedule for one [`Region`](crate::Region).
///
/// Build one with [`FaultPlan::new`] and the rate setters, then reserve
/// the region with [`Region::reserve_with_faults`](crate::Region::reserve_with_faults).
/// Every commit/decommit consults the plan in call order; with a fixed
/// seed and the same call sequence the injected faults are identical, so
/// any failure observed under a plan is replayable from its seed alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultPlan {
    seed: u64,
    commit_fail_ppm: u64,
    partial_commit_ppm: u64,
    decommit_fail_ppm: u64,
    delayed_decommit_ppm: u64,
    /// How many later operations a deferred decommit waits before landing.
    delay_ops: u64,
    /// Operations before this index never fault (lets construction-time
    /// commits through so the storm starts only once the tracer is up).
    arm_after: u64,
    /// Total faults to inject before the plan goes quiet.
    max_faults: u64,
}

impl FaultPlan {
    /// A plan that injects nothing until rates are set.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            commit_fail_ppm: 0,
            partial_commit_ppm: 0,
            decommit_fail_ppm: 0,
            delayed_decommit_ppm: 0,
            delay_ops: 2,
            arm_after: 0,
            max_faults: u64::MAX,
        }
    }

    /// The seed the schedule derives from (print this on failure).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn ppm(rate: f64) -> u64 {
        (rate.clamp(0.0, 1.0) * PPM as f64) as u64
    }

    /// Probability that a commit fails outright with `ENOMEM`.
    pub fn commit_failure_rate(mut self, rate: f64) -> Self {
        self.commit_fail_ppm = Self::ppm(rate);
        self
    }

    /// Probability that a multi-page commit succeeds for a random page
    /// prefix and then fails (the mid-range failure mode the cleanup path
    /// must roll back).
    pub fn partial_commit_rate(mut self, rate: f64) -> Self {
        self.partial_commit_ppm = Self::ppm(rate);
        self
    }

    /// Probability that a decommit fails with `ENOMEM`.
    pub fn decommit_failure_rate(mut self, rate: f64) -> Self {
        self.decommit_fail_ppm = Self::ppm(rate);
        self
    }

    /// Probability that a decommit is deferred: it reports success but the
    /// backing releases the pages only [`decommit_delay_ops`]
    /// operations later — the kernel's lazy-reclaim behaviour. A deferred
    /// decommit overlapped by a later commit is cancelled (the real kernel
    /// never discards pages a caller has recommitted and may be writing).
    ///
    /// [`decommit_delay_ops`]: FaultPlan::decommit_delay_ops
    pub fn delayed_decommit_rate(mut self, rate: f64) -> Self {
        self.delayed_decommit_ppm = Self::ppm(rate);
        self
    }

    /// Sets how many operations a deferred decommit lags (default 2).
    pub fn decommit_delay_ops(mut self, ops: u64) -> Self {
        self.delay_ops = ops.max(1);
        self
    }

    /// Disarms the plan for the first `ops` operations (default 0).
    pub fn arm_after_ops(mut self, ops: u64) -> Self {
        self.arm_after = ops;
        self
    }

    /// Caps the total number of injected faults (default unlimited).
    pub fn max_faults(mut self, n: u64) -> Self {
        self.max_faults = n;
        self
    }
}

/// Cumulative injection counts, readable via
/// [`Region::fault_stats`](crate::Region::fault_stats). Exact: one count
/// per injected event, in schedule order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub struct FaultStats {
    /// Commits failed outright (`ENOMEM`, nothing committed).
    pub commit_faults: u64,
    /// Commits that succeeded for a prefix and then failed mid-range.
    pub partial_commits: u64,
    /// Decommits failed with `ENOMEM`.
    pub decommit_faults: u64,
    /// Decommits deferred past their call (kernel lazy reclaim).
    pub deferred_decommits: u64,
    /// Deferred decommits that later landed on the backing.
    pub flushed_decommits: u64,
    /// Deferred decommits cancelled by an overlapping commit.
    pub cancelled_decommits: u64,
    /// Total commit/decommit operations the plan observed.
    pub ops: u64,
}

/// What the injector decided for one commit call.
pub(crate) enum CommitDecision {
    Proceed,
    Fail {
        errno: i32,
    },
    /// Commit only the first `prefix` bytes, then fail mid-range.
    Partial {
        prefix: usize,
    },
}

/// What the injector decided for one decommit call.
pub(crate) enum DecommitDecision {
    Proceed,
    Fail {
        errno: i32,
    },
    /// Report success now; release the pages `delay_ops` operations later.
    Defer,
}

/// A decommit the injector is holding back.
#[derive(Debug, Clone, Copy)]
struct PendingDecommit {
    offset: usize,
    len: usize,
    due_at_op: u64,
}

struct InjectorState {
    rng: SplitMix64,
    ops: u64,
    faults: u64,
    pending: Vec<PendingDecommit>,
    stats: FaultStats,
}

/// The per-region injector: plan plus mutable schedule state. Interior
/// mutability behind a mutex because `Region::commit`/`decommit` take
/// `&self`; the callers above (resize) already serialize, so this lock is
/// uncontended, and a poisoned guard is recovered rather than propagated
/// (a fault injector must not add failure modes of its own).
pub(crate) struct FaultInjector {
    plan: FaultPlan,
    state: Mutex<InjectorState>,
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector").field("plan", &self.plan).finish_non_exhaustive()
    }
}

impl FaultInjector {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            state: Mutex::new(InjectorState {
                rng: SplitMix64::new(plan.seed),
                ops: 0,
                faults: 0,
                pending: Vec::new(),
                stats: FaultStats::default(),
            }),
        }
    }

    pub(crate) fn stats(&self) -> FaultStats {
        self.lock().stats
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, InjectorState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Decides the fate of a commit and returns any deferred decommits
    /// that are now due, in `(decision, due)` order. The caller applies
    /// the due decommits to the backing *before* acting on the decision so
    /// schedule time moves strictly forward.
    pub(crate) fn on_commit(
        &self,
        offset: usize,
        len: usize,
    ) -> (CommitDecision, Vec<(usize, usize)>) {
        let mut s = self.lock();
        let armed = self.advance(&mut s);
        // An overlapping deferred decommit is cancelled: the recommit wins,
        // exactly as the kernel never reclaims pages under a live mapping
        // the caller has committed again.
        let end = offset + len;
        let mut cancelled = 0;
        s.pending.retain(|p| {
            let overlaps = p.offset < end && offset < p.offset + p.len;
            cancelled += u64::from(overlaps);
            !overlaps
        });
        s.stats.cancelled_decommits += cancelled;
        let due = Self::take_due(&mut s);
        if !armed {
            return (CommitDecision::Proceed, due);
        }
        let draw = s.rng.next_below(PPM);
        let decision = if draw < self.plan.commit_fail_ppm {
            s.faults += 1;
            s.stats.commit_faults += 1;
            CommitDecision::Fail { errno: ENOMEM }
        } else if draw < self.plan.commit_fail_ppm + self.plan.partial_commit_ppm {
            let pages = len / PAGE_SIZE;
            if pages < 2 {
                // A one-page range has no mid-point; degrade to a plain fail.
                s.faults += 1;
                s.stats.commit_faults += 1;
                CommitDecision::Fail { errno: ENOMEM }
            } else {
                let prefix_pages = 1 + s.rng.next_below(pages as u64 - 1) as usize;
                s.faults += 1;
                s.stats.partial_commits += 1;
                CommitDecision::Partial { prefix: prefix_pages * PAGE_SIZE }
            }
        } else {
            CommitDecision::Proceed
        };
        (decision, due)
    }

    /// Decides the fate of a decommit; same due-flush contract as
    /// [`on_commit`](FaultInjector::on_commit).
    pub(crate) fn on_decommit(
        &self,
        offset: usize,
        len: usize,
    ) -> (DecommitDecision, Vec<(usize, usize)>) {
        let mut s = self.lock();
        let armed = self.advance(&mut s);
        let due = Self::take_due(&mut s);
        if !armed {
            return (DecommitDecision::Proceed, due);
        }
        let draw = s.rng.next_below(PPM);
        let decision = if draw < self.plan.decommit_fail_ppm {
            s.faults += 1;
            s.stats.decommit_faults += 1;
            DecommitDecision::Fail { errno: ENOMEM }
        } else if draw < self.plan.decommit_fail_ppm + self.plan.delayed_decommit_ppm {
            let due_at_op = s.ops + self.plan.delay_ops;
            s.pending.push(PendingDecommit { offset, len, due_at_op });
            s.faults += 1;
            s.stats.deferred_decommits += 1;
            DecommitDecision::Defer
        } else {
            DecommitDecision::Proceed
        };
        (decision, due)
    }

    /// Bumps the operation clock; returns whether faults may fire.
    fn advance(&self, s: &mut InjectorState) -> bool {
        s.ops += 1;
        s.stats.ops += 1;
        s.ops > self.plan.arm_after && s.faults < self.plan.max_faults
    }

    fn take_due(s: &mut InjectorState) -> Vec<(usize, usize)> {
        let now = s.ops;
        let mut due = Vec::new();
        s.pending.retain(|p| {
            if p.due_at_op <= now {
                due.push((p.offset, p.len));
                false
            } else {
                true
            }
        });
        s.stats.flushed_decommits += due.len() as u64;
        due
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_faults(seed: u64, ops: u64) -> FaultStats {
        let inj = FaultInjector::new(
            FaultPlan::new(seed).commit_failure_rate(0.4).partial_commit_rate(0.2),
        );
        for _ in 0..ops {
            let _ = inj.on_commit(0, 4 * PAGE_SIZE);
        }
        inj.stats()
    }

    #[test]
    fn schedule_is_a_pure_function_of_the_seed() {
        assert_eq!(count_faults(7, 500), count_faults(7, 500));
        assert_ne!(count_faults(7, 500), count_faults(8, 500));
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let s = count_faults(1234, 10_000);
        // 40% fail + 20% partial over 10k draws: generous 3-sigma bands.
        assert!((3_500..4_500).contains(&s.commit_faults), "{s:?}");
        assert!((1_600..2_400).contains(&s.partial_commits), "{s:?}");
    }

    #[test]
    fn arm_after_and_max_faults_bound_the_storm() {
        let inj = FaultInjector::new(
            FaultPlan::new(3).commit_failure_rate(1.0).arm_after_ops(2).max_faults(3),
        );
        let mut failures = 0;
        for _ in 0..10 {
            if matches!(inj.on_commit(0, PAGE_SIZE).0, CommitDecision::Fail { .. }) {
                failures += 1;
            }
        }
        assert_eq!(failures, 3, "2 disarmed + 3 budget + 5 quiet");
        assert_eq!(inj.stats().ops, 10);
    }

    #[test]
    fn deferred_decommit_lands_later_and_commit_cancels() {
        let inj =
            FaultInjector::new(FaultPlan::new(9).delayed_decommit_rate(1.0).decommit_delay_ops(1));
        let (d, due) = inj.on_decommit(0, PAGE_SIZE);
        assert!(matches!(d, DecommitDecision::Defer));
        assert!(due.is_empty());
        // Next op: the pending range is due and handed back for flushing.
        let (_, due) = inj.on_decommit(4 * PAGE_SIZE, PAGE_SIZE);
        assert_eq!(due, vec![(0, PAGE_SIZE)]);
        // A commit overlapping a fresh pending cancels it instead.
        let (_, _) = inj.on_decommit(8 * PAGE_SIZE, PAGE_SIZE); // defer again
        let (_, due) = inj.on_commit(8 * PAGE_SIZE, PAGE_SIZE);
        assert!(due.is_empty(), "overlapped pending must be cancelled, not flushed");
        assert_eq!(inj.stats().cancelled_decommits, 1);
    }
}
