//! mmap-backed region for Linux on `x86_64`/`aarch64`.
//!
//! The reservation is one anonymous, `MAP_NORESERVE` private mapping sized at
//! the maximum buffer size — the address never changes across resizes, which
//! is what lets BTrace keep producer-visible offsets stable (§4.4). Commit
//! advises the kernel with `madvise(MADV_WILLNEED)` in bounded chunks (so a
//! mid-range failure reports its committed prefix); decommit uses
//! `madvise(MADV_DONTNEED)` to return physical pages while keeping the
//! virtual range mapped, mirroring what the paper's in-kernel deployment does
//! with its buffer pool.
//!
//! Syscalls are issued directly via inline assembly so the crate needs no
//! libc dependency (the allowed offline crate set does not include one).

use crate::error::{CommitFault, RegionError};

const PROT_READ: usize = 1;
const PROT_WRITE: usize = 2;
const MAP_PRIVATE: usize = 0x02;
const MAP_ANONYMOUS: usize = 0x20;
const MAP_NORESERVE: usize = 0x4000;
const MADV_WILLNEED: usize = 3;
const MADV_DONTNEED: usize = 4;

/// Commits are issued to the kernel in chunks of this many bytes so a
/// mid-range failure can report exactly how much of the range landed.
const COMMIT_CHUNK: usize = 16 << 20;

#[cfg(target_arch = "x86_64")]
pub(crate) mod nr {
    pub const MMAP: usize = 9;
    pub const MUNMAP: usize = 11;
    pub const MADVISE: usize = 28;
}

#[cfg(target_arch = "aarch64")]
pub(crate) mod nr {
    pub const MMAP: usize = 222;
    pub const MUNMAP: usize = 215;
    pub const MADVISE: usize = 233;
}

/// Issues a raw syscall with up to six arguments, returning the kernel's
/// raw result (negative values encode `-errno`).
///
/// # Safety
///
/// The caller must uphold the contract of the specific syscall being made.
#[cfg(target_arch = "x86_64")]
pub(crate) unsafe fn syscall6(
    nr: usize,
    a0: usize,
    a1: usize,
    a2: usize,
    a3: usize,
    a4: usize,
    a5: usize,
) -> isize {
    let ret: isize;
    std::arch::asm!(
        "syscall",
        inlateout("rax") nr => ret,
        in("rdi") a0,
        in("rsi") a1,
        in("rdx") a2,
        in("r10") a3,
        in("r8") a4,
        in("r9") a5,
        lateout("rcx") _,
        lateout("r11") _,
        options(nostack),
    );
    ret
}

/// See the `x86_64` variant for the contract.
///
/// # Safety
///
/// The caller must uphold the contract of the specific syscall being made.
#[cfg(target_arch = "aarch64")]
pub(crate) unsafe fn syscall6(
    nr: usize,
    a0: usize,
    a1: usize,
    a2: usize,
    a3: usize,
    a4: usize,
    a5: usize,
) -> isize {
    let ret: isize;
    std::arch::asm!(
        "svc 0",
        in("x8") nr,
        inlateout("x0") a0 => ret,
        in("x1") a1,
        in("x2") a2,
        in("x3") a3,
        in("x4") a4,
        in("x5") a5,
        options(nostack),
    );
    ret
}

pub(crate) struct MmapBacking {
    ptr: *mut u8,
    len: usize,
}

// SAFETY: the mapping is process-wide memory; byte-level synchronization is
// the callers' responsibility, identical to `HeapBacking`.
unsafe impl Send for MmapBacking {}
unsafe impl Sync for MmapBacking {}

impl MmapBacking {
    pub(crate) fn reserve(max_bytes: usize) -> Result<Self, RegionError> {
        // SAFETY: anonymous private mapping with no address hint; arguments
        // follow the mmap(2) contract.
        let ret = unsafe {
            syscall6(
                nr::MMAP,
                0,
                max_bytes,
                PROT_READ | PROT_WRITE,
                MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE,
                usize::MAX, // fd = -1
                0,
            )
        };
        if ret < 0 {
            return Err(RegionError::ReserveFailed { errno: (-ret) as i32 });
        }
        Ok(Self { ptr: ret as *mut u8, len: max_bytes })
    }

    pub(crate) fn as_ptr(&self) -> *mut u8 {
        self.ptr
    }

    /// Commits `[offset, offset + len)` chunk by chunk. Pages of an
    /// anonymous mapping fault in zeroed on first touch either way;
    /// `MADV_WILLNEED` tells the kernel the range is about to be used and —
    /// unlike the old no-op — makes commit an operation that can *fail*,
    /// e.g. under memory pressure. On a mid-range failure the returned
    /// [`CommitFault`] carries the committed prefix so `Region::commit` can
    /// decommit it and keep the bitmap and kernel state from diverging.
    pub(crate) fn commit(&self, offset: usize, len: usize) -> Result<(), CommitFault> {
        let mut done = 0;
        while done < len {
            let chunk = COMMIT_CHUNK.min(len - done);
            // SAFETY: range validated by the caller; WILLNEED only hints
            // population and preserves the fresh-zero guarantee.
            let ret = unsafe {
                syscall6(
                    nr::MADVISE,
                    self.ptr as usize + offset + done,
                    chunk,
                    MADV_WILLNEED,
                    0,
                    0,
                    0,
                )
            };
            if ret < 0 {
                return Err(CommitFault { errno: (-ret) as i32, committed: done });
            }
            done += chunk;
        }
        Ok(())
    }

    pub(crate) fn decommit(&self, offset: usize, len: usize) -> Result<(), RegionError> {
        // SAFETY: range validated by the caller; DONTNEED on an anonymous
        // private mapping discards the pages (subsequent reads see zeroes).
        let ret = unsafe {
            syscall6(nr::MADVISE, self.ptr as usize + offset, len, MADV_DONTNEED, 0, 0, 0)
        };
        if ret < 0 {
            return Err(RegionError::CommitFailed { errno: (-ret) as i32 });
        }
        Ok(())
    }
}

impl Drop for MmapBacking {
    fn drop(&mut self) {
        // SAFETY: ptr/len come from the successful mmap in `reserve`.
        unsafe { syscall6(nr::MUNMAP, self.ptr as usize, self.len, 0, 0, 0, 0) };
    }
}

impl std::fmt::Debug for MmapBacking {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MmapBacking").field("bytes", &self.len).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PAGE_SIZE;

    #[test]
    fn reserve_touch_decommit() {
        let b = MmapBacking::reserve(8 * PAGE_SIZE).unwrap();
        // Touch a page, decommit it, and observe the fresh-zero guarantee.
        unsafe { b.as_ptr().add(PAGE_SIZE).write(99) };
        b.decommit(PAGE_SIZE, PAGE_SIZE).unwrap();
        let v = unsafe { *b.as_ptr().add(PAGE_SIZE) };
        assert_eq!(v, 0, "MADV_DONTNEED must discard anonymous pages");
    }

    #[test]
    fn reserve_rejects_on_failure_paths() {
        // A ludicrous reservation should fail cleanly rather than abort.
        // (On 64-bit Linux with overcommit this may still succeed; accept both.)
        match MmapBacking::reserve(usize::MAX & !(PAGE_SIZE - 1)) {
            Ok(_) | Err(RegionError::ReserveFailed { .. }) => {}
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }
}
