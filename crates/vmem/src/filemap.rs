//! Read-only file mappings for the trace store.
//!
//! The offline query path (`btrace query`) wants random access into BTSF
//! files without paying an upfront read of the whole artifact: the frame
//! directory is built from headers and footers alone, and only the frames a
//! predicate touches are ever faulted in. [`FileMap`] provides that as a
//! read-only, `MAP_PRIVATE` mapping on Linux `x86_64`/`aarch64` (raw
//! syscalls, same no-libc discipline as the anonymous backing in this
//! crate), with a transparent buffered-read fallback everywhere else — and
//! whenever `mmap` itself fails, e.g. on pseudo-files — so callers always
//! get a `&[u8]` of the file's contents.

use std::fs::File;
use std::io::{self, Read};
use std::path::Path;

#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
mod sys {
    pub(super) use crate::mmap::{nr, syscall6};
    pub(super) const PROT_READ: usize = 1;
    pub(super) const MAP_PRIVATE: usize = 0x02;
}

enum Inner {
    #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
    Mapped {
        ptr: *const u8,
        len: usize,
    },
    Heap(Vec<u8>),
}

/// A read-only view of a file's bytes: memory-mapped where the platform
/// allows it, buffered into the heap otherwise.
pub struct FileMap {
    inner: Inner,
}

// SAFETY: the mapping is read-only for its whole lifetime (PROT_READ,
// private), so shared access from multiple threads is sound.
unsafe impl Send for FileMap {}
unsafe impl Sync for FileMap {}

impl FileMap {
    /// Opens `path` and maps (or reads) its current contents.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error when the file cannot be opened or — on the
    /// fallback path — read.
    pub fn open(path: &Path) -> io::Result<Self> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        let Ok(len) = usize::try_from(len) else {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "file exceeds address space"));
        };
        // Zero-length mmap is EINVAL; an empty heap buffer is the same view.
        #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
        if len > 0 {
            use std::os::fd::AsRawFd;
            // SAFETY: read-only private file mapping over the whole file;
            // arguments follow the mmap(2) contract. The fd may be closed
            // after the call — the mapping keeps the inode alive.
            let ret = unsafe {
                sys::syscall6(
                    sys::nr::MMAP,
                    0,
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd() as usize,
                    0,
                )
            };
            if ret >= 0 {
                return Ok(Self { inner: Inner::Mapped { ptr: ret as *const u8, len } });
            }
        }
        let mut buf = Vec::with_capacity(len);
        file.read_to_end(&mut buf)?;
        Ok(Self { inner: Inner::Heap(buf) })
    }

    /// Wraps an in-memory buffer in the same interface (used for tests and
    /// for artifacts that are re-framed on the fly, e.g. `.btd` dumps).
    pub fn from_vec(bytes: Vec<u8>) -> Self {
        Self { inner: Inner::Heap(bytes) }
    }

    /// The file's bytes.
    pub fn bytes(&self) -> &[u8] {
        match &self.inner {
            #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
            Inner::Mapped { ptr, len } => {
                // SAFETY: ptr/len come from the successful mmap in `open`;
                // the mapping lives until Drop.
                unsafe { std::slice::from_raw_parts(*ptr, *len) }
            }
            Inner::Heap(buf) => buf,
        }
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.bytes().len()
    }

    /// Whether the file was empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether this view is an actual memory mapping (false on the buffered
    /// fallback). Diagnostics only.
    pub fn is_mapped(&self) -> bool {
        match &self.inner {
            #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
            Inner::Mapped { .. } => true,
            Inner::Heap(_) => false,
        }
    }
}

impl Drop for FileMap {
    fn drop(&mut self) {
        match &self.inner {
            #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
            Inner::Mapped { ptr, len } => {
                // SAFETY: ptr/len come from the successful mmap in `open`.
                unsafe { sys::syscall6(sys::nr::MUNMAP, *ptr as usize, *len, 0, 0, 0, 0) };
            }
            Inner::Heap(_) => {}
        }
    }
}

impl std::fmt::Debug for FileMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileMap")
            .field("bytes", &self.len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("btrace-filemap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    #[test]
    fn maps_file_contents() {
        let path = temp_path("contents.bin");
        std::fs::write(&path, b"queryable trace store").unwrap();
        let map = FileMap::open(&path).unwrap();
        assert_eq!(map.bytes(), b"queryable trace store");
        assert_eq!(map.len(), 21);
        assert!(!map.is_empty());
    }

    #[test]
    fn empty_file_is_an_empty_view() {
        let path = temp_path("empty.bin");
        std::fs::write(&path, b"").unwrap();
        let map = FileMap::open(&path).unwrap();
        assert!(map.is_empty());
        assert!(!map.is_mapped());
    }

    #[test]
    fn missing_file_is_an_error_not_a_panic() {
        assert!(FileMap::open(Path::new("/nonexistent/btrace/file.btsf")).is_err());
    }

    #[test]
    fn from_vec_round_trips() {
        let map = FileMap::from_vec(vec![1, 2, 3]);
        assert_eq!(map.bytes(), &[1, 2, 3]);
        assert!(!map.is_mapped());
    }
}
