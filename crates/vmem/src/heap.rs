//! Portable heap-backed region: the whole reservation stays resident, but the
//! commit-state machine is enforced exactly like the mmap backend, and
//! decommitted pages are poisoned in debug builds so a use-after-decommit is
//! observable (the portable stand-in for the SIGSEGV a real `munmap` gives).

use crate::error::{CommitFault, RegionError};
use crate::PAGE_SIZE;
use std::alloc::{alloc_zeroed, dealloc, Layout};

/// Byte written over decommitted pages in debug builds.
pub(crate) const POISON: u8 = 0xDE;

pub(crate) struct HeapBacking {
    ptr: *mut u8,
    layout: Layout,
}

// SAFETY: the backing is a plain allocation; synchronization of the bytes is
// the responsibility of the callers (producers write only to exclusively
// allocated ranges).
unsafe impl Send for HeapBacking {}
unsafe impl Sync for HeapBacking {}

impl HeapBacking {
    pub(crate) fn reserve(max_bytes: usize) -> Result<Self, RegionError> {
        let layout = Layout::from_size_align(max_bytes, PAGE_SIZE)
            .map_err(|_| RegionError::InvalidSize { requested: max_bytes })?;
        // SAFETY: layout has non-zero size (validated by the caller).
        let ptr = unsafe { alloc_zeroed(layout) };
        if ptr.is_null() {
            return Err(RegionError::ReserveFailed { errno: 0 });
        }
        Ok(Self { ptr, layout })
    }

    pub(crate) fn as_ptr(&self) -> *mut u8 {
        self.ptr
    }

    /// Zero the range, mirroring the fresh-page guarantee of anonymous mmap.
    /// Infallible for a resident heap allocation, but typed like the mmap
    /// backend so [`Region`](crate::Region) treats both uniformly.
    pub(crate) fn commit(&self, offset: usize, len: usize) -> Result<(), CommitFault> {
        // SAFETY: caller validated the range against the reservation.
        unsafe { self.ptr.add(offset).write_bytes(0, len) };
        Ok(())
    }

    pub(crate) fn decommit(&self, offset: usize, len: usize) -> Result<(), RegionError> {
        if cfg!(debug_assertions) {
            // SAFETY: caller validated the range against the reservation.
            unsafe { self.ptr.add(offset).write_bytes(POISON, len) };
        }
        let _ = (offset, len);
        Ok(())
    }
}

impl Drop for HeapBacking {
    fn drop(&mut self) {
        // SAFETY: ptr/layout come from alloc_zeroed above.
        unsafe { dealloc(self.ptr, self.layout) };
    }
}

impl std::fmt::Debug for HeapBacking {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeapBacking").field("bytes", &self.layout.size()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_zeroes_previous_contents() {
        let b = HeapBacking::reserve(2 * PAGE_SIZE).unwrap();
        unsafe { b.as_ptr().write_bytes(7, PAGE_SIZE) };
        b.commit(0, PAGE_SIZE).unwrap();
        let first = unsafe { *b.as_ptr() };
        assert_eq!(first, 0);
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "poisoning only in debug builds")]
    fn decommit_poisons_in_debug() {
        let b = HeapBacking::reserve(PAGE_SIZE).unwrap();
        b.commit(0, PAGE_SIZE).unwrap();
        b.decommit(0, PAGE_SIZE).unwrap();
        let first = unsafe { *b.as_ptr() };
        assert_eq!(first, POISON);
    }
}
