//! # btrace-core — block-based mobile tracing
//!
//! Reproduction of the tracer from *Enabling Efficient Mobile Tracing with
//! BTrace* (ASPLOS 2025). BTrace partitions one global trace buffer into
//! `N` equally sized **data blocks**, dynamically assigned to the cores that
//! need them — combining the memory efficiency of a global buffer with the
//! recording latency of per-core buffers.
//!
//! ## Mechanisms (paper §3)
//!
//! * **Block partitioning** (§3.1) — each core exclusively owns one data
//!   block at a time; producers allocate with one fetch-and-add on the
//!   block's `Allocated` counter and confirm with one fetch-and-add on
//!   `Confirmed`. When a block fills, the core advances via a global
//!   position counter. Worst-case memory utilization is `1 − (C−1)/N`
//!   instead of `1/C` (per-core buffers) or `1/T` (per-thread buffers).
//! * **Block closing** (§3.2) — only `A` blocks are active at once; an
//!   advancing producer closes the lagging block `A` positions behind it,
//!   bounding the effectivity ratio at `≈ 1 − A/N`.
//! * **Implicit reclaiming** (§3.3) — `N` data blocks share `A` metadata
//!   blocks (`Ratio = N/A`, round counter `Rnd` naming the live data
//!   block), and the allocate/confirm counters double as reference counts,
//!   so resizing needs no producer-side synchronization.
//! * **Block skipping** (§3.4) — confirmation is out of order inside a
//!   block, and advancement skips blocks pinned by preempted writers, so
//!   recording never blocks and never drops.
//!
//! ## Quickstart
//!
//! ```rust
//! use btrace_core::{BTrace, Config};
//!
//! # fn main() -> Result<(), btrace_core::TraceError> {
//! let tracer = BTrace::new(Config::new(4).buffer_bytes(1 << 20).active_blocks(64))?;
//!
//! // Producers are per core; any number of threads may share one.
//! let producer = tracer.producer(0)?;
//! producer.record_with(/*stamp*/ 1, /*tid*/ 42, b"sched: switch prev=7 next=9")?;
//!
//! // Consumers read speculatively and never block producers.
//! let readout = tracer.consumer().collect();
//! assert_eq!(readout.events[0].payload(), b"sched: switch prev=7 next=9");
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod buffer;
mod config;
mod consumer;
mod error;
pub mod event;
#[cfg(feature = "model")]
pub mod introspect;
mod layout;
mod meta;
mod packed;
mod producer;
mod raw;
mod resize;
pub mod sink;
mod stats;
pub mod stream;
mod sync;
mod tail;
#[cfg(feature = "telemetry")]
mod telem;

pub use buffer::BTrace;
pub use config::Config;
pub use consumer::{BlockCounts, Consumer, ReaderPin, Readout};
pub use error::TraceError;
pub use event::Event;
pub use producer::{Grant, Producer};
pub use stats::{Degraded, Stats, TracerState};
pub use stream::{DrainedBatch, ShardedStreamConsumer, StreamConsumer, StreamShard, StreamStats};
#[cfg(feature = "model")]
pub use sync::model_rt;
pub use tail::{Polled, TailReader};

// Re-exported so downstream crates can configure memory backing and
// fault injection without depending on the substrate crate directly.
pub use btrace_smr::DomainStats;
pub use btrace_vmem::{Backing, FaultPlan, FaultStats};
