//! Streaming consumption at **block granularity**: the cursor-based
//! consumer behind the `drain → batch → encode → sink` pipeline in
//! `btrace-persist`.
//!
//! A [`StreamConsumer`] tracks the last-drained global block sequence and,
//! on each [`poll`](StreamConsumer::poll), hands off only blocks that have
//! **closed** since the previous poll. Unlike [`TailReader`](crate::TailReader)
//! (which also returns partial prefixes of still-open blocks), the streaming
//! consumer treats the closed block as its unit of delivery — the natural
//! streaming granule of the block machinery (BBQ's consumption model), and
//! the granularity at which a batch can be encoded and shipped without ever
//! being amended by a later poll.
//!
//! ## Why closed-block handoff needs no new producer synchronization
//!
//! The §3.3 implicit-reclaim counters already fence visibility: a round is
//! closed exactly when its metadata block's `Confirmed` counter reaches the
//! block capacity for that round (`conf.rnd > map.rnd`, or `conf.rnd ==
//! map.rnd && conf.pos == cap`). `Confirmed` is advanced with a Release
//! fetch-and-add after the payload bytes are stored, so observing the
//! closed state (Acquire) makes every entry in the block visible. Nothing
//! is written back by the consumer: a drained block is "released" simply by
//! the cursor moving past it — recycling remains governed by the same
//! allocate/confirm protocol that recycles collected blocks, and producers
//! never learn the consumer exists.
//!
//! ## Cursor invariants
//!
//! * `cursor` is the smallest global block sequence not yet *resolved*
//!   (delivered, skipped, or permanently lost); it only moves forward.
//! * Every sequence in `delivered` is `>= cursor` and has been resolved
//!   out of order (a newer block closed while an older one was still
//!   open); it is never re-read.
//! * Each event is delivered **at most once** across polls: a block is
//!   parsed only in the poll that resolves it, and resolution is recorded
//!   before the next poll can observe the block again.

use crate::buffer::Shared;
use crate::consumer::BlockCounts;
use crate::event::{EntryHeader, EntryKind, Event, HEADER_BYTES};
use crate::sync::{Arc, Ordering};
use std::collections::BTreeSet;

/// One streaming poll's worth of closed blocks.
#[derive(Debug, Default)]
#[non_exhaustive]
pub struct DrainedBatch {
    /// Events from blocks that closed since the previous poll, in buffer
    /// order (ascending block sequence, then offset).
    pub events: Vec<Event>,
    /// Per-block accounting of this poll's scan.
    pub blocks: BlockCounts,
    /// Blocks that were overwritten before the stream reached them. A
    /// streaming daemon that cannot keep up loses oldest-first, exactly
    /// like the underlying buffer.
    pub missed_blocks: usize,
}

impl DrainedBatch {
    /// Sum of on-buffer bytes of the returned events.
    pub fn stored_bytes(&self) -> usize {
        self.events.iter().map(Event::stored_bytes).sum()
    }
}

/// Cumulative accounting across every poll of one [`StreamConsumer`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct StreamStats {
    /// Polls performed.
    pub polls: u64,
    /// Blocks whose events were delivered.
    pub blocks_delivered: u64,
    /// Events delivered.
    pub events_delivered: u64,
    /// On-buffer bytes of delivered events.
    pub bytes_delivered: u64,
    /// Blocks lost to wrap-around before the stream reached them.
    pub missed_blocks: u64,
}

/// An incremental block-granularity consumer. Create via
/// [`BTrace::stream`](crate::BTrace::stream).
///
/// Like every consumer, each poll pins the tracer's reclamation domain so
/// a concurrent shrink cannot decommit memory mid-read (§4.4), and reads
/// speculatively: snapshot, re-validate the block header, discard on
/// mismatch.
pub struct StreamConsumer {
    shared: Arc<Shared>,
    participant: btrace_smr::Participant,
    scratch: Vec<u8>,
    /// Smallest global block sequence not yet resolved.
    cursor: u64,
    /// Sequences beyond the cursor already resolved out of order.
    delivered: BTreeSet<u64>,
    stats: StreamStats,
}

impl StreamConsumer {
    pub(crate) fn new(shared: Arc<Shared>) -> Self {
        let participant = shared.domain.register();
        Self {
            shared,
            participant,
            scratch: Vec::new(),
            cursor: 0,
            delivered: BTreeSet::new(),
            stats: StreamStats::default(),
        }
    }

    /// Returns the events of every block that closed since the previous
    /// poll, oldest block first.
    ///
    /// Non-destructive and non-blocking for producers. Events of a block
    /// that is still open (or has unconfirmed writes in flight) are *not*
    /// returned yet — they arrive in the poll that first observes the
    /// block closed, so each event is delivered at most once.
    pub fn poll(&mut self) -> DrainedBatch {
        let shared = Arc::clone(&self.shared);
        let Self { participant, scratch, cursor, delivered, stats, .. } = self;
        let _pin = participant.pin();
        let head = shared.global_pos().pos;
        let active = shared.active() as u64;
        let span = (shared.data.region().len() / shared.cfg.block_bytes) as u64;
        let lo = head.saturating_sub(span);

        let mut out = DrainedBatch::default();
        if *cursor < lo {
            // Lapped: blocks in [cursor, lo) that we never resolved are
            // gone. Resolved ones were already delivered — not missed.
            let resolved_below = delivered.range(..lo).count() as u64;
            out.missed_blocks = ((lo - *cursor) - resolved_below) as usize;
            *cursor = lo;
            *delivered = delivered.split_off(&lo);
        }

        for gpos in *cursor..head {
            if delivered.contains(&gpos) {
                continue;
            }
            match read_closed(&shared, scratch, gpos, &mut out) {
                Handoff::Resolved => {
                    delivered.insert(gpos);
                }
                Handoff::NotYetClosed => {
                    // Producer still owns the block (or unconfirmed writes
                    // are in flight): deliver it in a later poll.
                }
                Handoff::NotStarted => {
                    // Never materialized for this sequence number. Within
                    // the active window a concurrent advancement might
                    // still install it; resolve only once it has fallen
                    // behind the closing horizon.
                    if gpos + active <= head {
                        out.blocks.recycled += 1;
                        delivered.insert(gpos);
                    }
                }
            }
        }
        // Advance the cursor over the resolved prefix.
        while delivered.remove(cursor) {
            *cursor += 1;
        }

        stats.polls += 1;
        stats.blocks_delivered += out.blocks.readable as u64;
        stats.events_delivered += out.events.len() as u64;
        stats.bytes_delivered += out.stored_bytes() as u64;
        stats.missed_blocks += out.missed_blocks as u64;
        out
    }

    /// Closes every open block in the readable window — each core's
    /// current block (the destructive cut of
    /// [`Consumer::collect_and_close`](crate::Consumer::collect_and_close))
    /// *and* any straggler block still inside the §3.2 closing horizon —
    /// then polls, delivering everything recorded so far, including events
    /// that were sitting in open blocks.
    ///
    /// The horizon sweep matters: a block a core has advanced away from
    /// stays open until the head passes it by `A` positions, and a final
    /// drain must not withhold its confirmed contents.
    ///
    /// This is the shutdown flush of a streaming pipeline: after it
    /// returns, every confirmed record has been handed off exactly once
    /// (absent wrap-around misses, which are reported).
    pub fn flush_close(&mut self) -> DrainedBatch {
        crate::consumer::close_current_blocks(&self.shared);
        self.close_open_window();
        self.poll()
    }

    /// Dummy-fills every still-open block in the readable window, exactly
    /// as a §3.2 advancing producer would. `Meta::close` is round-checked,
    /// so a block whose metadata has already moved to a newer round is
    /// left alone, and a straggler's unconfirmed entry below the claimed
    /// fill range keeps the block incomplete until that writer confirms.
    fn close_open_window(&mut self) {
        let _pin = self.participant.pin();
        let shared = &self.shared;
        let cap = shared.cap();
        let head = shared.global_pos().pos;
        let span = (shared.data.region().len() / shared.cfg.block_bytes) as u64;
        for gpos in head.saturating_sub(span)..head {
            let map = shared.history.map(gpos);
            // A shrink may have decommitted this slot; never dummy-write it.
            if map.data_idx >= shared.capacity_blocks.load(Ordering::Acquire) {
                continue;
            }
            if let crate::meta::Close::Fill { rnd: _, pos } =
                shared.metas[map.meta_idx].close(map.rnd, cap)
            {
                shared.write_dummy_run(map.data_idx, pos, cap - pos);
                shared.metas[map.meta_idx].confirm(cap - pos);
            }
        }
    }

    /// First global block sequence not yet resolved by this stream.
    pub fn position(&self) -> u64 {
        self.cursor
    }

    /// Cumulative accounting across every poll so far.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }
}

/// Outcome of attempting to hand off one block.
enum Handoff {
    /// Delivered, torn, or permanently recycled — never look again.
    Resolved,
    /// Open or with unconfirmed writes; revisit next poll.
    NotYetClosed,
    /// Round not started for this sequence number (skip candidate).
    NotStarted,
}

fn read_closed(
    shared: &Shared,
    scratch: &mut Vec<u8>,
    gpos: u64,
    out: &mut DrainedBatch,
) -> Handoff {
    let cap = shared.cap() as usize;
    let map = shared.history.map(gpos);
    // Acquire pairs with the shrinker's release store: blocks beyond the
    // live bound may already be decommitted, so they must not be touched —
    // but they are *withheld*, not resolved. A later grow can resurrect
    // the slot with its data intact (shrink decommits are deferrable), and
    // a one-shot collect would then read it; resolving here would make the
    // stream silently lose what other consumers still see. If no grow
    // comes, the cursor lap accounting converts the withheld block into an
    // explicit miss instead.
    if map.data_idx >= shared.capacity_blocks.load(Ordering::Acquire) {
        out.blocks.in_flight += 1;
        return Handoff::NotYetClosed;
    }
    let meta = &shared.metas[map.meta_idx];
    let conf = meta.confirmed();
    if conf.rnd < map.rnd {
        return Handoff::NotStarted;
    }
    if conf.rnd == map.rnd {
        let alloc = meta.allocated();
        let visible = alloc.pos.min(shared.cap());
        if alloc.rnd != map.rnd || conf.pos != visible || (visible as usize) < cap {
            // Current round and not yet full-and-confirmed: the §3.3
            // counters say the block is still referenced by producers.
            out.blocks.in_flight += 1;
            return Handoff::NotYetClosed;
        }
    }
    // Closed: either fully confirmed this round, or the metadata already
    // moved on (a past round is completely filled when it ends). Snapshot
    // the whole block, then re-validate the header (§4.3).
    let base = shared.data.block_offset(map.data_idx);
    shared.data.load_bytes(base, scratch, cap);
    let header_ok = scratch.len() >= HEADER_BYTES
        && EntryHeader::decode([
            u64::from_le_bytes(scratch[0..8].try_into().expect("8 bytes")),
            u64::from_le_bytes(scratch[8..16].try_into().expect("8 bytes")),
        ])
        .is_some_and(|h| h.kind == EntryKind::BlockHeader && h.stamp == gpos);
    if !header_ok {
        // Skip marker, or data already overwritten by a newer round.
        out.blocks.recycled += 1;
        return Handoff::Resolved;
    }
    let mut live = [0u64; 2];
    shared.data.load_words(base, &mut live);
    let still_ours = EntryHeader::decode(live)
        .is_some_and(|h| h.kind == EntryKind::BlockHeader && h.stamp == gpos);
    if !still_ours {
        out.blocks.torn += 1;
        return Handoff::Resolved;
    }
    parse_block(scratch, gpos, &mut out.events);
    out.blocks.readable += 1;
    Handoff::Resolved
}

/// Walks a validated closed-block snapshot, appending `Data` events.
fn parse_block(snapshot: &[u8], gpos: u64, out: &mut Vec<Event>) {
    let mut off = HEADER_BYTES; // skip the block header
    while off + 8 <= snapshot.len() {
        let word0 = u64::from_le_bytes(snapshot[off..off + 8].try_into().expect("8 bytes"));
        let word1 = if off + 16 <= snapshot.len() {
            u64::from_le_bytes(snapshot[off + 8..off + 16].try_into().expect("8 bytes"))
        } else {
            0
        };
        let Some(header) = EntryHeader::decode([word0, word1]) else { return };
        let len = header.len as usize;
        if len == 0 || off + len > snapshot.len() {
            return;
        }
        if header.kind == EntryKind::Data {
            if let Some(payload_len) = header.payload_len() {
                if off + HEADER_BYTES + payload_len <= snapshot.len() {
                    let payload =
                        snapshot[off + HEADER_BYTES..off + HEADER_BYTES + payload_len].to_vec();
                    out.push(Event::new(header.stamp, header.core, header.tid, gpos, payload));
                }
            }
        }
        off += len;
    }
}

impl std::fmt::Debug for StreamConsumer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamConsumer")
            .field("cursor", &self.cursor)
            .field("out_of_order", &self.delivered.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::{BTrace, Config};
    use btrace_vmem::Backing;

    fn tracer(cores: usize) -> BTrace {
        BTrace::new(
            Config::new(cores)
                .active_blocks(4)
                .block_bytes(256)
                .buffer_bytes(256 * 16)
                .backing(Backing::Heap),
        )
        .expect("valid configuration")
    }

    #[test]
    fn open_block_is_withheld_until_closed() {
        let t = tracer(1);
        let p = t.producer(0).unwrap();
        let mut s = t.stream();
        p.record_with(0, 0, b"sits in an open block").unwrap();
        assert!(s.poll().events.is_empty(), "open blocks are not streamed");
        // Fill past the first block so it closes.
        for i in 1..40u64 {
            p.record_with(i, 0, b"a-sixteen-byte-p").unwrap();
        }
        let batch = s.poll();
        assert!(!batch.events.is_empty());
        assert_eq!(batch.events[0].stamp(), 0, "closed block arrives whole, oldest first");
    }

    #[test]
    fn each_closed_block_arrives_exactly_once() {
        let t = tracer(1);
        let p = t.producer(0).unwrap();
        let mut s = t.stream();
        let mut seen = Vec::new();
        for i in 0..300u64 {
            p.record_with(i, 0, b"a-sixteen-byte-p").unwrap();
            if i % 13 == 0 {
                seen.extend(s.poll().events.into_iter().map(|e| e.stamp()));
            }
        }
        seen.extend(s.flush_close().events.into_iter().map(|e| e.stamp()));
        let mut dedup = seen.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seen.len(), "no duplicates across polls");
        assert_eq!(*seen.last().unwrap(), 299, "flush_close delivers the open tail");
    }

    #[test]
    fn flush_close_delivers_everything_written() {
        let t = tracer(2);
        let p0 = t.producer(0).unwrap();
        let p1 = t.producer(1).unwrap();
        let mut s = t.stream();
        for i in 0..10u64 {
            p0.record_with(i, 0, b"core0").unwrap();
            p1.record_with(100 + i, 0, b"core1").unwrap();
        }
        let batch = s.flush_close();
        let mut stamps: Vec<u64> = batch.events.iter().map(|e| e.stamp()).collect();
        stamps.sort_unstable();
        let expected: Vec<u64> = (0..10).chain(100..110).collect();
        assert_eq!(stamps, expected);
        assert!(s.poll().events.is_empty(), "nothing is delivered twice");
    }

    #[test]
    fn lapped_stream_reports_misses_and_recovers() {
        let t = tracer(1); // 16 blocks x 256 B
        let p = t.producer(0).unwrap();
        let mut s = t.stream();
        for i in 0..2_000u64 {
            p.record_with(i, 0, b"wrap-the-buffer!").unwrap();
        }
        let batch = s.poll();
        assert!(batch.missed_blocks > 0, "a lapped stream must report misses");
        let stamps: Vec<u64> = batch.events.iter().map(|e| e.stamp()).collect();
        for w in stamps.windows(2) {
            assert!(w[1] > w[0], "stream must stay ordered");
        }
        // The stream keeps going after the lap.
        for i in 2_000..2_040u64 {
            p.record_with(i, 0, b"wrap-the-buffer!").unwrap();
        }
        let next = s.flush_close();
        assert_eq!(next.events.last().unwrap().stamp(), 2_039);
    }

    #[test]
    fn out_of_order_closes_do_not_wedge_the_cursor() {
        // Core 0 keeps one block open while core 1 closes many: the
        // stream must deliver core 1's closed blocks without waiting.
        let t = tracer(2);
        let p0 = t.producer(0).unwrap();
        let p1 = t.producer(1).unwrap();
        let mut s = t.stream();
        p0.record_with(0, 0, b"held open").unwrap();
        // Enough to close core 1's first block, but too little for core
        // 1's advances to reach the §3.2 closing horizon (A blocks back)
        // and close core 0's block for us.
        for i in 0..13u64 {
            p1.record_with(1 + i, 0, b"a-sixteen-byte-p").unwrap();
        }
        let batch = s.poll();
        assert!(
            batch.events.iter().any(|e| e.core() == 1),
            "closed blocks stream past an older open one"
        );
        assert!(batch.events.iter().all(|e| e.core() == 1), "the open block is withheld");
        // Flush closes core 0's straggler block too.
        let rest = s.flush_close();
        assert!(rest.events.iter().any(|e| e.stamp() == 0));
    }

    #[test]
    fn stream_coexists_with_resize() {
        let t = BTrace::new(
            Config::new(1)
                .active_blocks(4)
                .block_bytes(256)
                .buffer_bytes(256 * 8)
                .max_bytes(256 * 32)
                .backing(Backing::Heap),
        )
        .unwrap();
        let p = t.producer(0).unwrap();
        let mut s = t.stream();
        let mut seen = Vec::new();
        for i in 0..400u64 {
            p.record_with(i, 0, b"a-sixteen-byte-p").unwrap();
            match i {
                100 => t.resize_bytes(256 * 32).unwrap(),
                250 => t.resize_bytes(256 * 8).unwrap(),
                _ => {}
            }
            if i % 17 == 0 {
                seen.extend(s.poll().events.into_iter().map(|e| e.stamp()));
            }
        }
        seen.extend(s.flush_close().events.into_iter().map(|e| e.stamp()));
        let mut dedup = seen.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seen.len(), "resizes must not cause duplicates");
        assert_eq!(*seen.iter().max().unwrap(), 399, "newest survives the resizes");
    }

    #[test]
    fn stats_accumulate() {
        let t = tracer(1);
        let p = t.producer(0).unwrap();
        let mut s = t.stream();
        for i in 0..100u64 {
            p.record_with(i, 0, b"a-sixteen-byte-p").unwrap();
        }
        let batch = s.flush_close();
        let stats = s.stats();
        assert_eq!(stats.polls, 1);
        assert_eq!(stats.events_delivered, batch.events.len() as u64);
        assert_eq!(stats.blocks_delivered, batch.blocks.readable as u64);
        assert_eq!(stats.bytes_delivered, batch.stored_bytes() as u64);
    }
}
