//! Streaming consumption at **block granularity**: the cursor-based
//! consumer behind the `drain → batch → encode → sink` pipeline in
//! `btrace-persist`.
//!
//! A [`StreamConsumer`] tracks the last-drained global block sequence and,
//! on each [`poll`](StreamConsumer::poll), hands off only blocks that have
//! **closed** since the previous poll. Unlike [`TailReader`](crate::TailReader)
//! (which also returns partial prefixes of still-open blocks), the streaming
//! consumer treats the closed block as its unit of delivery — the natural
//! streaming granule of the block machinery (BBQ's consumption model), and
//! the granularity at which a batch can be encoded and shipped without ever
//! being amended by a later poll.
//!
//! ## Why closed-block handoff needs no new producer synchronization
//!
//! The §3.3 implicit-reclaim counters already fence visibility: a round is
//! closed exactly when its metadata block's `Confirmed` counter reaches the
//! block capacity for that round (`conf.rnd > map.rnd`, or `conf.rnd ==
//! map.rnd && conf.pos == cap`). `Confirmed` is advanced with a Release
//! fetch-and-add after the payload bytes are stored, so observing the
//! closed state (Acquire) makes every entry in the block visible. Nothing
//! is written back by the consumer: a drained block is "released" simply by
//! the cursor moving past it — recycling remains governed by the same
//! allocate/confirm protocol that recycles collected blocks, and producers
//! never learn the consumer exists.
//!
//! ## Cursor invariants
//!
//! * `cursor` is the smallest global block sequence not yet *resolved*
//!   (delivered, skipped, or permanently lost); it only moves forward.
//! * Every sequence in `delivered` is `>= cursor` and has been resolved
//!   out of order (a newer block closed while an older one was still
//!   open); it is never re-read.
//! * Each event is delivered **at most once** across polls: a block is
//!   parsed only in the poll that resolves it, and resolution is recorded
//!   before the next poll can observe the block again.

use crate::buffer::Shared;
use crate::consumer::BlockCounts;
use crate::event::{EntryHeader, EntryKind, Event, HEADER_BYTES};
use crate::sync::{Arc, Ordering};
use std::collections::BTreeSet;

/// One streaming poll's worth of closed blocks.
#[derive(Debug, Default)]
#[non_exhaustive]
pub struct DrainedBatch {
    /// Events from blocks that closed since the previous poll, in buffer
    /// order (ascending block sequence, then offset).
    pub events: Vec<Event>,
    /// Per-block accounting of this poll's scan.
    pub blocks: BlockCounts,
    /// Blocks that were overwritten before the stream reached them. A
    /// streaming daemon that cannot keep up loses oldest-first, exactly
    /// like the underlying buffer.
    pub missed_blocks: usize,
}

impl DrainedBatch {
    /// Sum of on-buffer bytes of the returned events.
    pub fn stored_bytes(&self) -> usize {
        self.events.iter().map(Event::stored_bytes).sum()
    }
}

/// Cumulative accounting across every poll of one [`StreamConsumer`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct StreamStats {
    /// Polls performed.
    pub polls: u64,
    /// Blocks whose events were delivered.
    pub blocks_delivered: u64,
    /// Events delivered.
    pub events_delivered: u64,
    /// On-buffer bytes of delivered events.
    pub bytes_delivered: u64,
    /// Blocks lost to wrap-around before the stream reached them.
    pub missed_blocks: u64,
}

/// One stripe of the global block-sequence space: the consumer owns every
/// `gpos` with `gpos % stride == shard` and nothing else.
///
/// This is the unit a multi-threaded drain parallelizes over. The stripe
/// hand-off needs no new producer synchronization: block resolution is
/// keyed purely on the global sequence number, and the §3.3 `Confirmed`
/// fence already gives *each block* an exclusive, final hand-off — so a
/// partition of the sequence space is a partition of the deliveries.
/// Stripes are disjoint by construction (`gpos % K` is a function), every
/// block belongs to exactly one stripe, and each stripe delivers its
/// blocks at most once by the same cursor discipline as the single
/// consumer; the union across stripes is therefore exactly the
/// single-consumer stream set.
///
/// A [`StreamConsumer`] is the `stride == 1` special case.
pub struct StreamShard {
    shared: Arc<Shared>,
    participant: btrace_smr::Participant,
    scratch: Vec<u8>,
    /// This stripe's residue class: owns `gpos % stride == shard`.
    shard: u64,
    /// Total number of stripes the sequence space is split into.
    stride: u64,
    /// Smallest owned global block sequence not yet resolved. Always
    /// congruent to `shard` modulo `stride`.
    cursor: u64,
    /// Owned sequences beyond the cursor already resolved out of order.
    delivered: BTreeSet<u64>,
    stats: StreamStats,
}

impl StreamShard {
    pub(crate) fn new(shared: Arc<Shared>, shard: u64, stride: u64) -> Self {
        debug_assert!(stride >= 1 && shard < stride);
        let participant = shared.domain.register();
        Self {
            shared,
            participant,
            scratch: Vec::new(),
            shard,
            stride,
            cursor: shard,
            delivered: BTreeSet::new(),
            stats: StreamStats::default(),
        }
    }

    /// The stripe this consumer owns: `(shard, of_stripes)`.
    pub fn stripe(&self) -> (usize, usize) {
        (self.shard as usize, self.stride as usize)
    }

    /// Returns the events of every **owned** block that closed since the
    /// previous poll, oldest block first.
    ///
    /// Non-destructive and non-blocking for producers. Events of a block
    /// that is still open (or has unconfirmed writes in flight) are *not*
    /// returned yet — they arrive in the poll that first observes the
    /// block closed, so each event is delivered at most once.
    pub fn poll(&mut self) -> DrainedBatch {
        let shared = Arc::clone(&self.shared);
        let Self { participant, scratch, cursor, delivered, stats, stride, .. } = self;
        let stride = *stride;
        let _pin = participant.pin();
        let head = shared.global_pos().pos;
        let active = shared.active() as u64;
        let span = (shared.data.region().len() / shared.cfg.block_bytes) as u64;
        let lo = head.saturating_sub(span);

        let mut out = DrainedBatch::default();
        if *cursor < lo {
            // Lapped: owned blocks in [cursor, lo) that we never resolved
            // are gone. Resolved ones were already delivered — not missed.
            // `cursor ≡ shard (mod stride)`, so the stripe members below
            // `lo` are `cursor, cursor+stride, …` — `⌈(lo-cursor)/stride⌉`
            // of them.
            let members = (lo - *cursor).div_ceil(stride);
            let resolved_below = delivered.range(..lo).count() as u64;
            out.missed_blocks = (members - resolved_below) as usize;
            *cursor += members * stride;
            *delivered = delivered.split_off(&lo);
        }

        let mut gpos = *cursor;
        while gpos < head {
            if delivered.contains(&gpos) {
                gpos += stride;
                continue;
            }
            match read_closed(&shared, scratch, gpos, &mut out) {
                Handoff::Resolved => {
                    delivered.insert(gpos);
                }
                Handoff::NotYetClosed => {
                    // Producer still owns the block (or unconfirmed writes
                    // are in flight): deliver it in a later poll.
                }
                Handoff::NotStarted => {
                    // Never materialized for this sequence number. Within
                    // the active window a concurrent advancement might
                    // still install it; resolve only once it has fallen
                    // behind the closing horizon.
                    if gpos + active <= head {
                        out.blocks.recycled += 1;
                        delivered.insert(gpos);
                    }
                }
            }
            gpos += stride;
        }
        // Advance the cursor over the resolved prefix of the stripe.
        while delivered.remove(cursor) {
            *cursor += stride;
        }

        stats.polls += 1;
        stats.blocks_delivered += out.blocks.readable as u64;
        stats.events_delivered += out.events.len() as u64;
        stats.bytes_delivered += out.stored_bytes() as u64;
        stats.missed_blocks += out.missed_blocks as u64;
        out
    }

    /// Closes every open block in the readable window — each core's
    /// current block (the destructive cut of
    /// [`Consumer::collect_and_close`](crate::Consumer::collect_and_close))
    /// *and* any straggler block still inside the §3.2 closing horizon —
    /// then polls, delivering everything recorded so far **on this
    /// stripe**, including events that were sitting in open blocks.
    ///
    /// The horizon sweep matters: a block a core has advanced away from
    /// stays open until the head passes it by `A` positions, and a final
    /// drain must not withhold its confirmed contents.
    ///
    /// `Meta::close` is a round-checked CAS, so any number of shards may
    /// flush concurrently: exactly one closer dummy-fills each block, the
    /// others observe `AlreadyFull`, and each closed block is still
    /// delivered only by the stripe that owns its sequence number.
    ///
    /// This is the shutdown flush of a streaming pipeline: after every
    /// shard has flushed, every confirmed record has been handed off
    /// exactly once across the union of stripes (absent wrap-around
    /// misses, which are reported).
    pub fn flush_close(&mut self) -> DrainedBatch {
        crate::consumer::close_current_blocks(&self.shared);
        close_open_window(&self.shared, &self.participant);
        self.poll()
    }

    /// First owned global block sequence not yet resolved by this stripe.
    pub fn position(&self) -> u64 {
        self.cursor
    }

    /// Cumulative accounting across every poll so far.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }
}

/// Dummy-fills every still-open block in the readable window, exactly
/// as a §3.2 advancing producer would. `Meta::close` is round-checked,
/// so a block whose metadata has already moved to a newer round is
/// left alone, and a straggler's unconfirmed entry below the claimed
/// fill range keeps the block incomplete until that writer confirms.
fn close_open_window(shared: &Shared, participant: &btrace_smr::Participant) {
    let _pin = participant.pin();
    let cap = shared.cap();
    let head = shared.global_pos().pos;
    let span = (shared.data.region().len() / shared.cfg.block_bytes) as u64;
    for gpos in head.saturating_sub(span)..head {
        // The dummy fill below writes through a history mapping; wait out
        // any resize whose global CAS has landed ahead of its history entry
        // so the fill cannot be misdirected into another live block. Fresh
        // sequence numbers claimed while we wait are beyond `head` and out
        // of this sweep's range.
        shared.wait_history_published();
        let map = shared.history.map(gpos);
        // A shrink may have decommitted this slot; never dummy-write it.
        if map.data_idx >= shared.capacity_blocks.load(Ordering::Acquire) {
            continue;
        }
        if let crate::meta::Close::Fill { rnd: _, pos } =
            shared.metas[map.meta_idx].close(map.rnd, cap)
        {
            shared.write_dummy_run(map.data_idx, pos, cap - pos);
            shared.metas[map.meta_idx].confirm(cap - pos);
        }
    }
}

/// An incremental block-granularity consumer. Create via
/// [`BTrace::stream`](crate::BTrace::stream).
///
/// Like every consumer, each poll pins the tracer's reclamation domain so
/// a concurrent shrink cannot decommit memory mid-read (§4.4), and reads
/// speculatively: snapshot, re-validate the block header, discard on
/// mismatch.
///
/// Internally this is a [`StreamShard`] that owns the whole sequence
/// space (stripe `0 mod 1`).
pub struct StreamConsumer {
    inner: StreamShard,
}

impl StreamConsumer {
    pub(crate) fn new(shared: Arc<Shared>) -> Self {
        Self { inner: StreamShard::new(shared, 0, 1) }
    }

    /// Returns the events of every block that closed since the previous
    /// poll, oldest block first. See [`StreamShard::poll`].
    pub fn poll(&mut self) -> DrainedBatch {
        self.inner.poll()
    }

    /// Closes every open block in the readable window, then polls,
    /// delivering everything recorded so far. See
    /// [`StreamShard::flush_close`].
    pub fn flush_close(&mut self) -> DrainedBatch {
        self.inner.flush_close()
    }

    /// First global block sequence not yet resolved by this stream.
    pub fn position(&self) -> u64 {
        self.inner.position()
    }

    /// Cumulative accounting across every poll so far.
    pub fn stats(&self) -> StreamStats {
        self.inner.stats()
    }
}

/// A streaming consumer split into `K` disjoint stripes of the global
/// block-sequence space, for multi-threaded draining. Create via
/// [`BTrace::stream_sharded`](crate::BTrace::stream_sharded).
///
/// Stripe `i` owns every block whose global sequence number is
/// `≡ i (mod K)`. Because block resolution is keyed on the sequence
/// number alone and the `Confirmed` fence hands each closed block off
/// exactly once, the stripes deliver **disjoint** sets whose union is
/// exactly what a single [`StreamConsumer`] would deliver.
///
/// Poll the stripes from one thread via [`poll_all`](Self::poll_all), or
/// split them across threads with [`into_shards`](Self::into_shards) —
/// each [`StreamShard`] is an independent, self-contained consumer.
pub struct ShardedStreamConsumer {
    shards: Vec<StreamShard>,
}

impl ShardedStreamConsumer {
    pub(crate) fn new(shared: Arc<Shared>, shards: usize) -> Self {
        let stride = shards.max(1) as u64;
        let shards =
            (0..stride).map(|shard| StreamShard::new(Arc::clone(&shared), shard, stride)).collect();
        Self { shards }
    }

    /// Number of stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The stripe consumers, for mutable per-stripe access.
    pub fn shards_mut(&mut self) -> &mut [StreamShard] {
        &mut self.shards
    }

    /// Consumes the handle, yielding one independently owned consumer per
    /// stripe (e.g. to move each onto its own drain thread).
    pub fn into_shards(self) -> Vec<StreamShard> {
        self.shards
    }

    /// Polls every stripe once, merging the batches (stripe order, oldest
    /// block first within each stripe).
    pub fn poll_all(&mut self) -> DrainedBatch {
        let mut out = DrainedBatch::default();
        for shard in &mut self.shards {
            merge_batch(&mut out, shard.poll());
        }
        out
    }

    /// Flush-closes every stripe (see [`StreamShard::flush_close`]),
    /// merging the final batches.
    pub fn flush_close_all(&mut self) -> DrainedBatch {
        let mut out = DrainedBatch::default();
        for shard in &mut self.shards {
            merge_batch(&mut out, shard.flush_close());
        }
        out
    }

    /// Cumulative accounting summed across every stripe.
    pub fn stats(&self) -> StreamStats {
        let mut total = StreamStats::default();
        for s in self.shards.iter().map(StreamShard::stats) {
            total.polls += s.polls;
            total.blocks_delivered += s.blocks_delivered;
            total.events_delivered += s.events_delivered;
            total.bytes_delivered += s.bytes_delivered;
            total.missed_blocks += s.missed_blocks;
        }
        total
    }
}

fn merge_batch(into: &mut DrainedBatch, from: DrainedBatch) {
    into.events.extend(from.events);
    into.blocks.readable += from.blocks.readable;
    into.blocks.recycled += from.blocks.recycled;
    into.blocks.torn += from.blocks.torn;
    into.blocks.in_flight += from.blocks.in_flight;
    into.missed_blocks += from.missed_blocks;
}

/// Outcome of attempting to hand off one block.
enum Handoff {
    /// Delivered, torn, or permanently recycled — never look again.
    Resolved,
    /// Open or with unconfirmed writes; revisit next poll.
    NotYetClosed,
    /// Round not started for this sequence number (skip candidate).
    NotStarted,
}

fn read_closed(
    shared: &Shared,
    scratch: &mut Vec<u8>,
    gpos: u64,
    out: &mut DrainedBatch,
) -> Handoff {
    let cap = shared.cap() as usize;
    // `meta_idx` and `rnd` are ratio-independent (`gpos mod A`, `gpos div A`);
    // only `data_idx` depends on the history. The loop below re-derives the
    // mapping when a header mismatch may stem from a resize whose global CAS
    // has landed but whose history entry has not (see `history_published`).
    let mut map = shared.history.map(gpos);
    loop {
        // Acquire pairs with the shrinker's release store: blocks beyond the
        // live bound may already be decommitted, so they must not be touched —
        // but they are *withheld*, not resolved. A later grow can resurrect
        // the slot with its data intact (shrink decommits are deferrable), and
        // a one-shot collect would then read it; resolving here would make the
        // stream silently lose what other consumers still see. If no grow
        // comes, the cursor lap accounting converts the withheld block into an
        // explicit miss instead.
        if map.data_idx >= shared.capacity_blocks.load(Ordering::Acquire) {
            out.blocks.in_flight += 1;
            return Handoff::NotYetClosed;
        }
        let meta = &shared.metas[map.meta_idx];
        let conf = meta.confirmed();
        if conf.rnd < map.rnd {
            return Handoff::NotStarted;
        }
        if conf.rnd == map.rnd {
            let alloc = meta.allocated();
            let visible = alloc.pos.min(shared.cap());
            if alloc.rnd != map.rnd || conf.pos != visible || (visible as usize) < cap {
                // Current round and not yet full-and-confirmed: the §3.3
                // counters say the block is still referenced by producers.
                out.blocks.in_flight += 1;
                return Handoff::NotYetClosed;
            }
        }
        // Closed: either fully confirmed this round, or the metadata already
        // moved on (a past round is completely filled when it ends). Snapshot
        // the whole block, then re-validate the header (§4.3).
        let base = shared.data.block_offset(map.data_idx);
        shared.data.load_bytes(base, scratch, cap);
        let header_ok = scratch.len() >= HEADER_BYTES
            && EntryHeader::decode([
                u64::from_le_bytes(scratch[0..8].try_into().expect("8 bytes")),
                u64::from_le_bytes(scratch[8..16].try_into().expect("8 bytes")),
            ])
            .is_some_and(|h| h.kind == EntryKind::BlockHeader && h.stamp == gpos);
        if !header_ok {
            // The snapshot does not belong to `gpos`. Before resolving this
            // permanently as recycled, rule out a stale mapping: a resize
            // publishes its global CAS before its history entry, and a mapping
            // computed in that window points at the wrong data block. Deferring
            // costs one revisit; resolving on a stale mapping loses the block's
            // confirmed records forever.
            if !shared.history_published() {
                out.blocks.in_flight += 1;
                return Handoff::NotYetClosed;
            }
            let fresh = shared.history.map(gpos);
            if fresh != map {
                map = fresh;
                continue;
            }
            // Skip marker, or data already overwritten by a newer round.
            out.blocks.recycled += 1;
            return Handoff::Resolved;
        }
        let mut live = [0u64; 2];
        shared.data.load_words(base, &mut live);
        let still_ours = EntryHeader::decode(live)
            .is_some_and(|h| h.kind == EntryKind::BlockHeader && h.stamp == gpos);
        if !still_ours {
            out.blocks.torn += 1;
            return Handoff::Resolved;
        }
        parse_block(scratch, gpos, &mut out.events);
        out.blocks.readable += 1;
        return Handoff::Resolved;
    }
}

/// Walks a validated closed-block snapshot, appending `Data` events.
fn parse_block(snapshot: &[u8], gpos: u64, out: &mut Vec<Event>) {
    let mut off = HEADER_BYTES; // skip the block header
    while off + 8 <= snapshot.len() {
        let word0 = u64::from_le_bytes(snapshot[off..off + 8].try_into().expect("8 bytes"));
        let word1 = if off + 16 <= snapshot.len() {
            u64::from_le_bytes(snapshot[off + 8..off + 16].try_into().expect("8 bytes"))
        } else {
            0
        };
        let Some(header) = EntryHeader::decode([word0, word1]) else { return };
        let len = header.len as usize;
        if len == 0 || off + len > snapshot.len() {
            return;
        }
        if header.kind == EntryKind::Data {
            if let Some(payload_len) = header.payload_len() {
                if off + HEADER_BYTES + payload_len <= snapshot.len() {
                    let payload =
                        snapshot[off + HEADER_BYTES..off + HEADER_BYTES + payload_len].to_vec();
                    out.push(Event::new(header.stamp, header.core, header.tid, gpos, payload));
                }
            }
        }
        off += len;
    }
}

impl std::fmt::Debug for StreamShard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamShard")
            .field("shard", &self.shard)
            .field("stride", &self.stride)
            .field("cursor", &self.cursor)
            .field("out_of_order", &self.delivered.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl std::fmt::Debug for StreamConsumer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamConsumer")
            .field("cursor", &self.inner.cursor)
            .field("out_of_order", &self.inner.delivered.len())
            .field("stats", &self.inner.stats)
            .finish()
    }
}

impl std::fmt::Debug for ShardedStreamConsumer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedStreamConsumer").field("shards", &self.shards).finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::{BTrace, Config};
    use btrace_vmem::Backing;

    fn tracer(cores: usize) -> BTrace {
        BTrace::new(
            Config::new(cores)
                .active_blocks(4)
                .block_bytes(256)
                .buffer_bytes(256 * 16)
                .backing(Backing::Heap),
        )
        .expect("valid configuration")
    }

    #[test]
    fn open_block_is_withheld_until_closed() {
        let t = tracer(1);
        let p = t.producer(0).unwrap();
        let mut s = t.stream();
        p.record_with(0, 0, b"sits in an open block").unwrap();
        assert!(s.poll().events.is_empty(), "open blocks are not streamed");
        // Fill past the first block so it closes.
        for i in 1..40u64 {
            p.record_with(i, 0, b"a-sixteen-byte-p").unwrap();
        }
        let batch = s.poll();
        assert!(!batch.events.is_empty());
        assert_eq!(batch.events[0].stamp(), 0, "closed block arrives whole, oldest first");
    }

    #[test]
    fn each_closed_block_arrives_exactly_once() {
        let t = tracer(1);
        let p = t.producer(0).unwrap();
        let mut s = t.stream();
        let mut seen = Vec::new();
        for i in 0..300u64 {
            p.record_with(i, 0, b"a-sixteen-byte-p").unwrap();
            if i % 13 == 0 {
                seen.extend(s.poll().events.into_iter().map(|e| e.stamp()));
            }
        }
        seen.extend(s.flush_close().events.into_iter().map(|e| e.stamp()));
        let mut dedup = seen.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seen.len(), "no duplicates across polls");
        assert_eq!(*seen.last().unwrap(), 299, "flush_close delivers the open tail");
    }

    #[test]
    fn flush_close_delivers_everything_written() {
        let t = tracer(2);
        let p0 = t.producer(0).unwrap();
        let p1 = t.producer(1).unwrap();
        let mut s = t.stream();
        for i in 0..10u64 {
            p0.record_with(i, 0, b"core0").unwrap();
            p1.record_with(100 + i, 0, b"core1").unwrap();
        }
        let batch = s.flush_close();
        let mut stamps: Vec<u64> = batch.events.iter().map(|e| e.stamp()).collect();
        stamps.sort_unstable();
        let expected: Vec<u64> = (0..10).chain(100..110).collect();
        assert_eq!(stamps, expected);
        assert!(s.poll().events.is_empty(), "nothing is delivered twice");
    }

    #[test]
    fn lapped_stream_reports_misses_and_recovers() {
        let t = tracer(1); // 16 blocks x 256 B
        let p = t.producer(0).unwrap();
        let mut s = t.stream();
        for i in 0..2_000u64 {
            p.record_with(i, 0, b"wrap-the-buffer!").unwrap();
        }
        let batch = s.poll();
        assert!(batch.missed_blocks > 0, "a lapped stream must report misses");
        let stamps: Vec<u64> = batch.events.iter().map(|e| e.stamp()).collect();
        for w in stamps.windows(2) {
            assert!(w[1] > w[0], "stream must stay ordered");
        }
        // The stream keeps going after the lap.
        for i in 2_000..2_040u64 {
            p.record_with(i, 0, b"wrap-the-buffer!").unwrap();
        }
        let next = s.flush_close();
        assert_eq!(next.events.last().unwrap().stamp(), 2_039);
    }

    #[test]
    fn out_of_order_closes_do_not_wedge_the_cursor() {
        // Core 0 keeps one block open while core 1 closes many: the
        // stream must deliver core 1's closed blocks without waiting.
        let t = tracer(2);
        let p0 = t.producer(0).unwrap();
        let p1 = t.producer(1).unwrap();
        let mut s = t.stream();
        p0.record_with(0, 0, b"held open").unwrap();
        // Enough to close core 1's first block, but too little for core
        // 1's advances to reach the §3.2 closing horizon (A blocks back)
        // and close core 0's block for us.
        for i in 0..13u64 {
            p1.record_with(1 + i, 0, b"a-sixteen-byte-p").unwrap();
        }
        let batch = s.poll();
        assert!(
            batch.events.iter().any(|e| e.core() == 1),
            "closed blocks stream past an older open one"
        );
        assert!(batch.events.iter().all(|e| e.core() == 1), "the open block is withheld");
        // Flush closes core 0's straggler block too.
        let rest = s.flush_close();
        assert!(rest.events.iter().any(|e| e.stamp() == 0));
    }

    #[test]
    fn stream_coexists_with_resize() {
        let t = BTrace::new(
            Config::new(1)
                .active_blocks(4)
                .block_bytes(256)
                .buffer_bytes(256 * 8)
                .max_bytes(256 * 32)
                .backing(Backing::Heap),
        )
        .unwrap();
        let p = t.producer(0).unwrap();
        let mut s = t.stream();
        let mut seen = Vec::new();
        for i in 0..400u64 {
            p.record_with(i, 0, b"a-sixteen-byte-p").unwrap();
            match i {
                100 => t.resize_bytes(256 * 32).unwrap(),
                250 => t.resize_bytes(256 * 8).unwrap(),
                _ => {}
            }
            if i % 17 == 0 {
                seen.extend(s.poll().events.into_iter().map(|e| e.stamp()));
            }
        }
        seen.extend(s.flush_close().events.into_iter().map(|e| e.stamp()));
        let mut dedup = seen.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seen.len(), "resizes must not cause duplicates");
        assert_eq!(*seen.iter().max().unwrap(), 399, "newest survives the resizes");
    }

    #[test]
    fn sharded_union_matches_single_consumer_exactly_once() {
        for k in [2usize, 3, 4] {
            let t = tracer(1);
            let p = t.producer(0).unwrap();
            let mut single = t.stream();
            let mut sharded = t.stream_sharded(k);
            let mut single_seen = Vec::new();
            let mut shard_seen: Vec<Vec<u64>> = vec![Vec::new(); k];
            for i in 0..300u64 {
                p.record_with(i, 0, b"a-sixteen-byte-p").unwrap();
                if i % 13 == 0 {
                    single_seen.extend(single.poll().events.into_iter().map(|e| e.stamp()));
                    for (s, seen) in sharded.shards_mut().iter_mut().zip(&mut shard_seen) {
                        seen.extend(s.poll().events.into_iter().map(|e| e.stamp()));
                    }
                }
            }
            single_seen.extend(single.flush_close().events.into_iter().map(|e| e.stamp()));
            for (s, seen) in sharded.shards_mut().iter_mut().zip(&mut shard_seen) {
                seen.extend(s.flush_close().events.into_iter().map(|e| e.stamp()));
            }
            // Stripes are pairwise disjoint...
            let mut union: Vec<u64> = shard_seen.iter().flatten().copied().collect();
            let total = union.len();
            union.sort_unstable();
            union.dedup();
            assert_eq!(union.len(), total, "k={k}: a stamp crossed stripes or repeated");
            // ...and their union is the single-consumer set, exactly once.
            single_seen.sort_unstable();
            assert_eq!(union, single_seen, "k={k}: union of stripes != single-consumer set");
        }
    }

    #[test]
    fn sharded_shards_drain_concurrently_from_threads() {
        let t = std::sync::Arc::new(tracer(2));
        let k = 4;
        let shards = t.stream_sharded(k).into_shards();
        let writers: Vec<_> = (0..2u16)
            .map(|core| {
                let p = t.producer(core as usize).unwrap();
                std::thread::spawn(move || {
                    for i in 0..150u64 {
                        p.record_with(core as u64 * 1000 + i, 0, b"a-sixteen-byte-p").unwrap();
                    }
                })
            })
            .collect();
        let drains: Vec<_> = shards
            .into_iter()
            .map(|mut shard| {
                std::thread::spawn(move || {
                    let mut seen = Vec::new();
                    for _ in 0..20 {
                        seen.extend(shard.poll().events.into_iter().map(|e| e.stamp()));
                        std::thread::yield_now();
                    }
                    (shard, seen)
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        let mut all = Vec::new();
        for d in drains {
            let (mut shard, mut seen) = d.join().unwrap();
            seen.extend(shard.flush_close().events.into_iter().map(|e| e.stamp()));
            all.extend(seen);
        }
        let total = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), total, "no stamp may be delivered by two stripes");
        // The 16-block buffer wrapped under 300 records; what survives must
        // be intact, and with all shards flushed nothing recorded at the
        // end is withheld.
        assert_eq!(*all.last().unwrap(), 1149, "the newest record must be delivered");
    }

    #[test]
    fn sharded_lap_accounting_partitions_misses() {
        let t = tracer(1); // 16 blocks x 256 B
        let p = t.producer(0).unwrap();
        let mut single = t.stream();
        let mut sharded = t.stream_sharded(4);
        for i in 0..2_000u64 {
            p.record_with(i, 0, b"wrap-the-buffer!").unwrap();
        }
        let single_missed = single.poll().missed_blocks;
        let sharded_missed = sharded.poll_all().missed_blocks;
        assert!(single_missed > 0);
        assert_eq!(
            sharded_missed, single_missed,
            "stripe misses must partition the single-consumer misses"
        );
    }

    #[test]
    fn stats_accumulate() {
        let t = tracer(1);
        let p = t.producer(0).unwrap();
        let mut s = t.stream();
        for i in 0..100u64 {
            p.record_with(i, 0, b"a-sixteen-byte-p").unwrap();
        }
        let batch = s.flush_close();
        let stats = s.stats();
        assert_eq!(stats.polls, 1);
        assert_eq!(stats.events_delivered, batch.events.len() as u64);
        assert_eq!(stats.blocks_delivered, batch.blocks.readable as u64);
        assert_eq!(stats.bytes_delivered, batch.stored_bytes() as u64);
    }
}
