//! The shared tracer state: global/core-local positions, metadata blocks,
//! the producer fast path (§4.1) and the block-advancement slow path (§4.2).

use crate::config::{Config, Resolved};
use crate::error::TraceError;
use crate::event::{EntryHeader, EntryKind, HEADER_BYTES};
use crate::layout::{map_gpos, RatioHistory};
use crate::meta::{Alloc, Close, MetaBlock};
use crate::packed::{RatioPos, RndPos};
use crate::raw::DataRegion;
use crate::stats::{Counters, Stats};
use crate::sync::{Arc, AtomicU64, AtomicUsize, Mutex, Ordering};
use crossbeam_utils::CachePadded;

/// Largest single dummy entry (bounded by the 16-bit length field).
const MAX_DUMMY: u32 = u16::MAX as u32 & !7;

pub(crate) struct Shared {
    pub(crate) cfg: Resolved,
    pub(crate) data: DataRegion,
    pub(crate) metas: Box<[MetaBlock]>,
    core_local: Box<[CachePadded<AtomicU64>]>,
    global: CachePadded<AtomicU64>,
    /// Current number of data blocks (consumer-visible capacity bound);
    /// updated under the resize lock before the EBR grace period.
    pub(crate) capacity_blocks: AtomicU64,
    /// Candidates below this gpos were invalidated by a resize and must be
    /// abandoned by the advancement slow path.
    pub(crate) resize_floor: AtomicU64,
    /// High watermark of committed bytes (page aligned), for grow/shrink.
    pub(crate) committed_extent: AtomicUsize,
    pub(crate) history: RatioHistory,
    stamp_clock: CachePadded<AtomicU64>,
    pub(crate) counters: Counters,
    #[cfg(feature = "telemetry")]
    pub(crate) telem: crate::telem::Telemetry,
    pub(crate) domain: btrace_smr::Domain,
    pub(crate) resize_lock: Mutex<()>,
}

impl Shared {
    pub(crate) fn cap(&self) -> u32 {
        self.cfg.block_bytes as u32
    }

    pub(crate) fn active(&self) -> usize {
        self.cfg.active_blocks
    }

    /// Current global `(ratio, pos)`.
    ///
    /// Ordering: `Acquire`, not `SeqCst`. The only writers are the advance
    /// fetch-and-add (position only) and the resize CAS, and resizes are
    /// serialized by `resize_lock` — no reader needs a total order over
    /// independent writes, only the happens-before edge from the resize
    /// that published the ratio it reads (committed pages, history entry),
    /// which acquire/release provides.
    pub(crate) fn global_pos(&self) -> RatioPos {
        RatioPos::from_raw(self.global.load(Ordering::Acquire))
    }

    pub(crate) fn global_raw(&self) -> &AtomicU64 {
        &self.global
    }

    pub(crate) fn core_local(&self, core: usize) -> RatioPos {
        RatioPos::from_raw(self.core_local[core].load(Ordering::Acquire))
    }

    /// Writes a run of dummy entries covering `[pos, pos + len)` of data
    /// block `data_idx`. `len` may exceed the 16-bit entry limit; the run is
    /// split. Does **not** confirm — callers confirm the whole run at once.
    pub(crate) fn write_dummy_run(&self, data_idx: u64, pos: u32, len: u32) {
        debug_assert_eq!(pos % 8, 0);
        debug_assert_eq!(len % 8, 0);
        let base = self.data.block_offset(data_idx);
        let mut off = pos;
        let mut remaining = len;
        while remaining > 0 {
            let chunk = remaining.min(MAX_DUMMY);
            // A chunk that would leave a sub-minimum remainder shrinks so the
            // tail stays encodable (every entry is >= 8 bytes).
            let chunk =
                if remaining - chunk != 0 && remaining - chunk < 8 { chunk - 8 } else { chunk };
            let header = EntryHeader {
                len: chunk as u16,
                kind: EntryKind::Dummy,
                pad: 0,
                core: 0,
                tid: 0,
                stamp: 0,
            };
            let words = header.encode();
            if chunk >= HEADER_BYTES as u32 {
                self.data.store_words(base + off as usize, &words);
            } else {
                self.data.store_words(base + off as usize, &words[..1]);
            }
            off += chunk;
            remaining -= chunk;
        }
        self.counters.add(&self.counters.dummy_bytes, len as u64);
    }

    /// Writes the block header naming `gpos` at the start of its data block.
    pub(crate) fn write_block_header(&self, data_idx: u64, gpos: u64) {
        let header = EntryHeader {
            len: HEADER_BYTES as u16,
            kind: EntryKind::BlockHeader,
            pad: 0,
            core: 0,
            tid: 0,
            stamp: gpos,
        };
        self.data.store_words(self.data.block_offset(data_idx), &header.encode());
    }

    /// True once every ratio published in the global word has its history
    /// entry installed. A resize lands its global CAS *before* its
    /// `history.push`; in that window, sequence numbers at or beyond the
    /// new boundary are already claimable while `history.map` still
    /// resolves them through the previous ratio — the wrong data block.
    /// Consecutive transitions always change the ratio (a same-ratio
    /// resize returns early), so the window is exactly when the two
    /// ratios disagree. Anything that turns a history mapping into a
    /// write, or into a permanent resolution, must hold off until this
    /// returns true.
    pub(crate) fn history_published(&self) -> bool {
        self.history.latest_ratio() == self.global_pos().ratio
    }

    /// Spins (slow paths only) until the in-flight resize publication, if
    /// any, lands its history entry. The wait is two stores on the
    /// resizing thread.
    pub(crate) fn wait_history_published(&self) {
        while !self.history_published() {
            crate::sync::spin_hint();
        }
    }

    /// Repairs a straggler allocation that landed in round `actual` of
    /// `meta_idx` instead of the expected round (§3.4): the space is validly
    /// owned, so fill it with dummy data and confirm it. The unconfirmed
    /// in-capacity bytes pinned the round, which is what makes this safe.
    pub(crate) fn repair_straggler(&self, meta_idx: usize, actual: RndPos, need: u32) {
        self.counters.bump(&self.counters.straggler_repairs);
        let cap = self.cap();
        if actual.pos >= cap {
            return; // pure overshoot; wiped by the next reset
        }
        let fill = need.min(cap - actual.pos);
        let gpos = actual.rnd as u64 * self.active() as u64 + meta_idx as u64;
        // A mapping read in the CAS→push window of a concurrent resize
        // would misdirect the dummy fill into a *different live block*,
        // destroying confirmed records there.
        self.wait_history_published();
        let map = self.history.map(gpos);
        self.write_dummy_run(map.data_idx, actual.pos, fill);
        self.metas[meta_idx].confirm(fill);
    }

    /// Uncached allocation path: allocate `need` bytes on `core`, advancing
    /// blocks as required. Returns the granted range. `Producer` handles
    /// carry a cached descriptor and only land here to refresh it; the
    /// `TraceSink` impl and the slow paths use this directly.
    pub(crate) fn allocate(&self, core: usize, need: u32) -> Granted {
        loop {
            // Relaxed: the value is *validated*, not trusted — `alloc` is an
            // acquire RMW whose round check catches any stale view (a torn
            // or outdated read degrades to Stale/Exhausted and retries), so
            // no ordering is needed on the read itself.
            let local = RatioPos::from_raw(self.core_local[core].load(Ordering::Relaxed));
            let map = self.cfg.map_live(local.pos, local.ratio);
            let meta = &self.metas[map.meta_idx];
            match meta.alloc(map.rnd, need, self.cap()) {
                Alloc::Fits { pos } => {
                    return Granted {
                        gpos: local.pos,
                        rnd: map.rnd,
                        meta_idx: map.meta_idx,
                        data_idx: map.data_idx,
                        data_off: self.data.block_offset(map.data_idx),
                        offset: pos,
                        len: need,
                    };
                }
                Alloc::Tail { pos } => {
                    // Fig. 8(c): fill the insufficient tail with a dummy and
                    // advance to the next block.
                    let fill = self.cap() - pos;
                    self.write_dummy_run(map.data_idx, pos, fill);
                    meta.confirm(fill);
                    self.advance(core, local);
                }
                Alloc::Exhausted => {
                    self.advance(core, local);
                }
                Alloc::Stale(actual) => {
                    // Our core's block was recycled by a wrap-around producer
                    // on another core. Repair the misplaced allocation, then
                    // advance — retrying the same core-local block would spin.
                    self.repair_straggler(map.meta_idx, actual, need);
                    self.advance(core, local);
                }
            }
        }
    }

    /// Block advancement (§4.2, Fig. 9). Moves `core` off `expected` to a
    /// fresh block, closing the lagging round of each candidate's metadata
    /// block and skipping candidates still pinned by unconfirmed writes.
    ///
    /// Returns when the core-local pointer no longer equals `expected`
    /// (whether this thread or a concurrent one advanced it).
    pub(crate) fn advance(&self, core: usize, expected: RatioPos) {
        #[cfg(feature = "telemetry")]
        let t0 = std::time::Instant::now();
        self.advance_inner(core, expected);
        #[cfg(feature = "telemetry")]
        self.telem.advance_hist.record(t0.elapsed().as_nanos() as u64);
    }

    fn advance_inner(&self, core: usize, expected: RatioPos) {
        self.counters.bump(&self.counters.advances);
        let cap = self.cap();
        loop {
            if self.core_local(core) != expected {
                return; // another thread of this core already advanced (§4.2 step ⑧ failure)
            }
            // ① find a candidate block.
            //
            // Ordering: `Acquire`, not `AcqRel`. The acquire side is needed —
            // if the claimed gpos carries a ratio published by a resize, we
            // must also see that resize's committed pages and history entry.
            // The release side is not: claiming a candidate publishes
            // nothing; the block becomes visible to others only through the
            // `lock` CAS and `confirm` below, which carry their own release.
            let g = RatioPos::from_raw(self.global.fetch_add(1, Ordering::Acquire));
            if g.pos < self.resize_floor.load(Ordering::Acquire) {
                continue; // invalidated by a concurrent resize
            }
            let map = self.cfg.map_live(g.pos, g.ratio);
            let meta = &self.metas[map.meta_idx];

            // ②③ the candidate reuses this metadata block: its previous round
            // (the lagging active block, §3.2) must be fully confirmed first.
            let mut conf = meta.confirmed();
            if conf.rnd >= map.rnd {
                continue; // candidate already overtaken by a later round
            }
            if conf.pos < cap {
                // Close the lagging block: no further allocations, dummy-fill
                // the remainder.
                if let Close::Fill { rnd, pos } = meta.close(conf.rnd, cap) {
                    let lag_gpos = rnd as u64 * self.active() as u64 + map.meta_idx as u64;
                    let lag_map = self.history.map(lag_gpos);
                    self.write_dummy_run(lag_map.data_idx, pos, cap - pos);
                    meta.confirm(cap - pos);
                    self.counters.bump(&self.counters.closes);
                }
                conf = meta.confirmed();
                if conf.rnd >= map.rnd {
                    continue;
                }
                if conf.pos < cap {
                    // Unconfirmed in-flight writes remain: skip the candidate
                    // to stay non-blocking (§3.4). The physical block keeps
                    // its previous contents; consumers reject it for this
                    // gpos via the block-header check. When every metadata
                    // block is pinned this way the loop degenerates into a
                    // wait on the pinning writers' confirms — hint so they
                    // can run.
                    self.counters.bump(&self.counters.skips);
                    #[cfg(feature = "telemetry")]
                    self.telem.note_skip(core);
                    crate::sync::contention_hint();
                    continue;
                }
            }

            // ④ lock the data block for our round.
            if !meta.lock(conf, map.rnd) {
                continue; // a wrap-around producer beat us; find another block
            }

            // A resize may have invalidated the candidate between ① and ④;
            // re-check after the lock so the resizer's metadata scan cannot
            // miss us. Undo by refilling the round so the block stays
            // recyclable.
            //
            // Ordering: `Acquire` suffices for both floor loads. A racing
            // resizer that published the floor *after* we loaded it cannot
            // lose us: its drain loop waits on every metadata block's
            // confirm, and our round stays unconfirmed until we either
            // refill it here or hand it to the core, so the drain observes
            // the outcome either way (the backstop the SeqCst fence was
            // redundantly duplicating).
            if g.pos < self.resize_floor.load(Ordering::Acquire) {
                meta.reset_allocated(map.rnd, cap);
                self.write_dummy_run(map.data_idx, 0, cap);
                meta.confirm(cap);
                continue;
            }

            // ⑤ write the block header, ⑥ reset Allocated, ⑦ confirm header.
            self.write_block_header(map.data_idx, g.pos);
            meta.reset_allocated(map.rnd, HEADER_BYTES as u32);
            meta.confirm(HEADER_BYTES as u32);

            // ⑧ publish the new block to the core.
            let fresh = RatioPos::new(g.ratio, g.pos);
            match self.core_local[core].compare_exchange(
                expected.to_raw(),
                fresh.to_raw(),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return,
                Err(_) => {
                    // Another thread of this core installed a different
                    // block; abandon ours by filling it with dummy data so it
                    // recycles (§4.2, final paragraph).
                    if let Close::Fill { pos, .. } = meta.close(map.rnd, cap) {
                        self.write_dummy_run(map.data_idx, pos, cap - pos);
                        meta.confirm(cap - pos);
                    }
                    return;
                }
            }
        }
    }

    pub(crate) fn confirm_entry(&self, meta_idx: usize, len: u32) {
        self.metas[meta_idx].confirm(len);
    }

    pub(crate) fn next_stamp(&self) -> u64 {
        self.stamp_clock.fetch_add(1, Ordering::Relaxed)
    }
}

/// A granted byte range inside a data block, carrying the full mapping of
/// the block it lives in so `Producer` can seed its cached descriptor
/// without re-mapping.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Granted {
    pub gpos: u64,
    pub rnd: u32,
    pub meta_idx: usize,
    pub data_idx: u64,
    pub data_off: usize,
    pub offset: u32,
    pub len: u32,
}

/// Page-aligned committed extent for `ratio` (see `DataRegion`).
pub(crate) fn extent_bytes(cfg: &Resolved, ratio: u16) -> usize {
    let raw = ratio as usize * cfg.active_blocks * cfg.block_bytes;
    raw.div_ceil(btrace_vmem::PAGE_SIZE) * btrace_vmem::PAGE_SIZE
}

/// BTrace: a block-based tracer combining the memory efficiency of a global
/// buffer with per-core recording performance (paper §3).
///
/// The buffer is split into `N` data blocks managed by `A` metadata blocks.
/// Each core owns one block at a time; producers allocate with a single
/// fetch-and-add and confirm out of order, so recording never blocks even
/// when threads are preempted mid-write. See the crate docs for the full
/// protocol.
///
/// Handles ([`Producer`](crate::Producer), [`Consumer`](crate::Consumer))
/// share the tracer via `Arc`; `BTrace` itself is cheap to clone.
///
/// # Examples
///
/// ```rust
/// use btrace_core::{BTrace, Config};
///
/// # fn main() -> Result<(), btrace_core::TraceError> {
/// let tracer = BTrace::new(Config::new(2).buffer_bytes(1 << 20).active_blocks(32))?;
/// let p = tracer.producer(0)?;
/// p.record(b"irq: 17 enter")?;
/// let readout = tracer.consumer().collect();
/// assert_eq!(readout.events.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct BTrace {
    pub(crate) shared: Arc<Shared>,
}

impl BTrace {
    /// Creates a tracer from `config`.
    ///
    /// # Errors
    ///
    /// [`TraceError::InvalidConfig`] when the configuration is inconsistent
    /// and [`TraceError::Region`] when reserving memory fails.
    pub fn new(config: Config) -> Result<Self, TraceError> {
        let cfg = config.resolve()?;
        let data = DataRegion::new(&cfg)?;
        let extent = extent_bytes(&cfg, cfg.ratio);
        data.region().commit(0, extent)?;

        let cap = cfg.block_bytes as u32;
        let metas: Box<[MetaBlock]> =
            (0..cfg.active_blocks).map(|_| MetaBlock::genesis(cap)).collect();
        let a = cfg.active_blocks as u64;

        let shared = Shared {
            core_local: (0..cfg.cores).map(|_| CachePadded::new(AtomicU64::new(0))).collect(),
            global: CachePadded::new(AtomicU64::new(
                RatioPos::new(cfg.ratio, a + cfg.cores as u64).to_raw(),
            )),
            capacity_blocks: AtomicU64::new(cfg.data_blocks() as u64),
            resize_floor: AtomicU64::new(0),
            committed_extent: AtomicUsize::new(extent),
            history: RatioHistory::new(cfg.ratio, cfg.active_blocks, cfg.a_div),
            stamp_clock: CachePadded::new(AtomicU64::new(0)),
            counters: Counters::new(cfg.cores),
            #[cfg(feature = "telemetry")]
            telem: crate::telem::Telemetry::new(cfg.cores),
            domain: btrace_smr::Domain::new(),
            resize_lock: Mutex::new(()),
            cfg,
            data,
            metas,
        };

        // Pre-assign one block per core, starting at round 1 (round 0 is the
        // genesis state all metadata blocks begin in).
        for core in 0..shared.cfg.cores {
            let gpos = a + core as u64;
            let map = map_gpos(gpos, shared.active(), shared.cfg.ratio);
            let meta = &shared.metas[map.meta_idx];
            let locked = meta.lock(RndPos::new(0, cap), map.rnd);
            debug_assert!(locked, "genesis metadata must be lockable");
            shared.write_block_header(map.data_idx, gpos);
            meta.reset_allocated(map.rnd, HEADER_BYTES as u32);
            meta.confirm(HEADER_BYTES as u32);
            shared.core_local[core]
                .store(RatioPos::new(shared.cfg.ratio, gpos).to_raw(), Ordering::Release);
        }

        Ok(Self { shared: Arc::new(shared) })
    }

    /// Returns a recording handle pinned to `core`.
    ///
    /// # Errors
    ///
    /// [`TraceError::InvalidCore`] when `core` is out of range.
    pub fn producer(&self, core: usize) -> Result<crate::Producer, TraceError> {
        if core >= self.shared.cfg.cores {
            return Err(TraceError::InvalidCore { core, cores: self.shared.cfg.cores });
        }
        Ok(crate::Producer::new(Arc::clone(&self.shared), core as u16))
    }

    /// Returns a consumer registered with the tracer's reclamation domain.
    pub fn consumer(&self) -> crate::Consumer {
        crate::Consumer::new(Arc::clone(&self.shared))
    }

    /// Snapshot of the tracer's epoch-reclamation counters
    /// ([`DomainStats`](btrace_smr::DomainStats)).
    ///
    /// `grace_timeouts` counts shrinks whose consumer grace period expired
    /// with a reader still pinned; each one deferred physical reclaim (the
    /// [`Degraded::RECLAIM_DEFERRED`](crate::Degraded) path) instead of
    /// stalling the resize unboundedly.
    pub fn smr_stats(&self) -> btrace_smr::DomainStats {
        self.shared.domain.stats()
    }

    /// Returns an incremental reader that yields each event exactly once
    /// across polls — the access pattern of an asynchronous collector
    /// daemon (§2.1).
    pub fn tail(&self) -> crate::TailReader {
        crate::TailReader::new(Arc::clone(&self.shared))
    }

    /// Returns a block-granularity streaming consumer: each
    /// [`poll`](crate::StreamConsumer::poll) hands off only blocks closed
    /// since the previous poll, so every delivered batch is final and can
    /// be encoded and shipped immediately.
    pub fn stream(&self) -> crate::StreamConsumer {
        crate::StreamConsumer::new(Arc::clone(&self.shared))
    }

    /// Returns a streaming consumer split into `shards` disjoint stripes
    /// of the global block-sequence space (stripe `i` owns every block
    /// whose sequence is `≡ i (mod shards)`), so closed blocks can be
    /// drained by several threads in parallel. The stripes deliver
    /// disjoint sets whose union is exactly the single-consumer stream
    /// set; see [`crate::ShardedStreamConsumer`].
    pub fn stream_sharded(&self, shards: usize) -> crate::ShardedStreamConsumer {
        crate::ShardedStreamConsumer::new(Arc::clone(&self.shared), shards)
    }

    /// Snapshot of the diagnostic counters.
    pub fn stats(&self) -> Stats {
        self.shared.counters.snapshot()
    }

    /// Current health of the tracer: [`TracerState::Healthy`], or
    /// [`TracerState::Degraded`] with the live conditions and exact failure
    /// counters when a resource-acquisition edge has failed (commit retries
    /// exhausted, reclaim deferred, poisoned lock recovered). Recording
    /// never stops while degraded — producers keep writing into the
    /// surviving blocks.
    ///
    /// [`TracerState::Healthy`]: crate::TracerState::Healthy
    /// [`TracerState::Degraded`]: crate::TracerState::Degraded
    pub fn state(&self) -> crate::TracerState {
        self.shared.counters.state()
    }

    /// Injection counts when the tracer was configured with a
    /// [`FaultPlan`](crate::Config::fault_plan); `None` otherwise. The
    /// degradation counters in [`stats`](BTrace::stats) can be checked
    /// exactly against these.
    pub fn fault_stats(&self) -> Option<btrace_vmem::FaultStats> {
        self.shared.data.region().fault_stats()
    }

    /// Full health report: counters, buffer gauges, per-core breakdowns,
    /// latency summaries, and the observed effectivity ratio next to the
    /// paper's `1 − A/N` bound.
    ///
    /// Raw snapshots carry no sequence number, timestamp, or rates; those
    /// are filled in by a [`btrace_telemetry::Sampler`] (`BTrace`
    /// implements [`btrace_telemetry::SnapshotSource`]).
    #[cfg(feature = "telemetry")]
    pub fn health_snapshot(&self) -> btrace_telemetry::HealthSnapshot {
        crate::telem::health_snapshot(&self.shared)
    }

    /// Tunes fast-path record timing: `Some(n)` times roughly 1 in `n`
    /// records (`n` rounded up to a power of two; default 64), `None`
    /// disables timing so the fast path pays only one relaxed load.
    /// Advance and drain timing are unaffected (those paths are rare and
    /// always timed).
    #[cfg(feature = "telemetry")]
    pub fn set_record_timing(&self, every: Option<u32>) {
        self.shared.telem.set_sample_every(every);
    }

    /// The tracer's control-plane flight recorder: a bounded, lock-free
    /// timeline of state transitions (resizes, faults, degradation flips,
    /// skip storms, EBR stalls) plus whatever a stream pipeline or
    /// exporter attached to the same handle emits. Feed its snapshot to
    /// `btrace-analysis`'s doctor to turn counters into a causal story.
    #[cfg(feature = "telemetry")]
    pub fn flight_recorder(&self) -> std::sync::Arc<btrace_telemetry::FlightRecorder> {
        std::sync::Arc::clone(&self.shared.telem.recorder)
    }

    /// Current buffer capacity in bytes (`N × block_bytes`).
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_blocks() * self.shared.cfg.block_bytes
    }

    /// Current number of data blocks `N`.
    ///
    /// Ordering: `Acquire` — pairs with the resizer's release store under
    /// `resize_lock`; no total order over resizes is needed because they
    /// are mutually exclusive.
    pub fn capacity_blocks(&self) -> usize {
        self.shared.capacity_blocks.load(Ordering::Acquire) as usize
    }

    /// Number of active blocks `A` (fixed at construction).
    pub fn active_blocks(&self) -> usize {
        self.shared.cfg.active_blocks
    }

    /// Data block size in bytes.
    pub fn block_bytes(&self) -> usize {
        self.shared.cfg.block_bytes
    }

    /// Number of cores this tracer serves.
    pub fn cores(&self) -> usize {
        self.shared.cfg.cores
    }

    /// Largest payload a single entry can carry.
    pub fn max_payload(&self) -> usize {
        crate::producer::max_payload(self.shared.cfg.block_bytes)
    }

    /// Draws a fresh logic stamp from the tracer's convenience clock.
    ///
    /// [`Producer::record`](crate::Producer::record) uses this internally;
    /// high-frequency callers should manage their own stamps and use
    /// [`Producer::record_with`](crate::Producer::record_with) to keep the
    /// clock off the hot path.
    pub fn next_stamp(&self) -> u64 {
        self.shared.next_stamp()
    }
}

#[cfg(feature = "telemetry")]
impl btrace_telemetry::SnapshotSource for BTrace {
    fn health_snapshot(&self) -> btrace_telemetry::HealthSnapshot {
        BTrace::health_snapshot(self)
    }
}

#[cfg(feature = "telemetry")]
impl btrace_telemetry::ResizeTarget for BTrace {
    fn current_bytes(&self) -> u64 {
        self.capacity_bytes() as u64
    }
    fn stride_bytes(&self) -> u64 {
        (self.shared.cfg.block_bytes * self.shared.cfg.active_blocks) as u64
    }
    fn max_bytes(&self) -> u64 {
        self.shared.cfg.max_bytes() as u64
    }
    fn resize_bytes(&self, bytes: u64) -> Result<(), String> {
        BTrace::resize_bytes(self, bytes as usize).map_err(|e| e.to_string())
    }
}

impl std::fmt::Debug for BTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BTrace")
            .field("cores", &self.cores())
            .field("capacity_bytes", &self.capacity_bytes())
            .field("block_bytes", &self.block_bytes())
            .field("active_blocks", &self.active_blocks())
            .field("global", &self.shared.global_pos())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btrace_vmem::Backing;

    fn small() -> BTrace {
        BTrace::new(
            Config::new(2)
                .active_blocks(4)
                .block_bytes(256)
                .buffer_bytes(4 * 256 * 2)
                .backing(Backing::Heap),
        )
        .unwrap()
    }

    #[test]
    fn construction_preassigns_blocks() {
        let t = small();
        let l0 = t.shared.core_local(0);
        let l1 = t.shared.core_local(1);
        assert_eq!(l0.pos, 4);
        assert_eq!(l1.pos, 5);
        assert_eq!(t.shared.global_pos().pos, 6);
        assert_eq!(t.capacity_blocks(), 8);
    }

    #[test]
    fn allocate_within_block_is_contiguous() {
        let t = small();
        let g1 = t.shared.allocate(0, 24);
        let g2 = t.shared.allocate(0, 24);
        assert_eq!(g1.gpos, g2.gpos);
        assert_eq!(g2.offset, g1.offset + 24);
        assert_eq!(g1.offset, HEADER_BYTES as u32);
        t.shared.confirm_entry(g1.meta_idx, 24);
        t.shared.confirm_entry(g2.meta_idx, 24);
    }

    #[test]
    fn allocate_advances_across_blocks() {
        let t = small();
        let mut seen = std::collections::BTreeSet::new();
        // 256-byte blocks hold (256 - 16) / 24 = 10 entries of 24 bytes.
        for _ in 0..25 {
            let g = t.shared.allocate(0, 24);
            t.shared.confirm_entry(g.meta_idx, 24);
            seen.insert(g.gpos);
        }
        assert!(seen.len() >= 3, "expected several blocks, got {seen:?}");
        assert!(t.stats().advances >= 2);
    }

    #[test]
    fn dummy_run_splits_large_fills() {
        let cfg = Config::new(1)
            .active_blocks(1)
            .block_bytes(128 * 1024)
            .buffer_bytes(128 * 1024)
            .backing(Backing::Heap);
        let t = BTrace::new(cfg).unwrap();
        // Fill the whole usable block with dummies via close.
        let local = t.shared.core_local(0);
        let map = map_gpos(local.pos, t.shared.active(), local.ratio);
        if let Close::Fill { pos, .. } = t.shared.metas[map.meta_idx].close(map.rnd, t.shared.cap())
        {
            t.shared.write_dummy_run(map.data_idx, pos, t.shared.cap() - pos);
            t.shared.metas[map.meta_idx].confirm(t.shared.cap() - pos);
        } else {
            panic!("expected fill");
        }
        assert_eq!(t.shared.metas[map.meta_idx].confirmed().pos, t.shared.cap());
    }

    #[test]
    fn invalid_core_rejected() {
        let t = small();
        assert!(matches!(t.producer(2), Err(TraceError::InvalidCore { core: 2, cores: 2 })));
    }

    #[test]
    fn wraparound_reuses_blocks() {
        let t = small(); // 8 data blocks of 256B
        for i in 0..200u32 {
            let g = t.shared.allocate(0, 24);
            t.shared.confirm_entry(g.meta_idx, 24);
            let _ = i;
        }
        // 200 * 24B >> 2 KiB buffer: we must have wrapped several times.
        assert!(t.shared.global_pos().pos > 16);
    }

    #[test]
    fn btrace_is_send_sync_clone() {
        fn assert_traits<T: Send + Sync + Clone>() {}
        assert_traits::<BTrace>();
    }
}
