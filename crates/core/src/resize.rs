//! Runtime buffer resizing with implicit reclaiming (paper §3.3, §4.4).
//!
//! Growing commits fresh pages and bumps the global ratio; producers start
//! spreading over the new blocks on their next advancement. Shrinking is the
//! interesting direction:
//!
//! 1. publish the new `(ratio, position)` pair with a single CAS on the
//!    global `ratio_and_pos`, jumping the position to the next round
//!    boundary so old and new rounds never share a metadata round;
//! 2. force every core off its current block by running the ordinary
//!    advancement procedure on its behalf;
//! 3. close every metadata block still on a pre-resize round and wait for
//!    its confirmed count to reach capacity — the allocate/confirm counters
//!    are the *implicit reference count*: a producer still writing holds the
//!    count below capacity, and its final confirm is the epoch end (§3.3).
//!    No producer-side synchronization is added anywhere;
//! 4. wait out the consumer EBR grace period (consumers pinned before the
//!    capacity change drain; new pins observe the shrunken capacity);
//! 5. decommit the physical pages beyond the new extent.

use crate::buffer::{extent_bytes, BTrace, Shared};
use crate::error::TraceError;
use crate::meta::Close;
use crate::packed::RatioPos;
use crate::stats::degraded;
use crate::sync::Ordering;
use std::time::{Duration, Instant};

/// How long a shrink waits for producers holding unconfirmed grants before
/// giving up with [`TraceError::ResizeTimeout`].
const DRAIN_DEADLINE: Duration = Duration::from_secs(5);

/// Commit/decommit attempts before a resize gives up on the backing and
/// degrades (fall back to pre-resize geometry on grow, defer reclaim on
/// shrink). Transient `ENOMEM` under mobile memory pressure usually clears
/// within a few reclaim cycles; anything longer is treated as persistent.
const BACKING_ATTEMPTS: u32 = 4;

/// First retry delay; doubles per attempt (50 µs, 100 µs, 200 µs — a failed
/// resize costs well under a millisecond before falling back).
const BACKING_BACKOFF: Duration = Duration::from_micros(50);

/// A consumer grace period outliving this wait is reported to the flight
/// recorder as an EBR stall (it means a pinned consumer is holding up
/// physical reclaim).
#[cfg(feature = "telemetry")]
const EBR_STALL_NS: u64 = 10_000_000;

/// Upper bound on the consumer grace period a shrink will wait before
/// deferring physical reclaim. A reader stalled while pinned (long query,
/// preempted thread, debugger stop) therefore costs a shrink at most this
/// long; the decommit is deferred exactly like a failed backing op —
/// `committed_extent` stays at the high-water mark, `RECLAIM_DEFERRED` is
/// raised, and a later shrink retries once the reader unpins.
const EBR_GRACE_DEADLINE: Duration = Duration::from_millis(100);

/// Runs a backing commit/decommit with bounded exponential backoff. Every
/// failed attempt bumps `commit_failures` (so the counter equals the number
/// of injected faults observed, attempt by attempt).
fn retry_backing_op(
    shared: &Shared,
    mut op: impl FnMut() -> Result<(), btrace_vmem::RegionError>,
) -> Result<(), TraceError> {
    let mut backoff = BACKING_BACKOFF;
    let mut last = None;
    for attempt in 0..BACKING_ATTEMPTS {
        match op() {
            Ok(()) => return Ok(()),
            Err(e) => {
                shared.counters.bump(&shared.counters.commit_failures);
                #[cfg(feature = "telemetry")]
                shared.telem.control(
                    btrace_telemetry::EventKind::FaultInjected,
                    shared.counters.commit_failures.load(Ordering::Relaxed),
                    u64::from(attempt) + 1,
                );
                last = Some(e);
                if attempt + 1 < BACKING_ATTEMPTS {
                    #[cfg(feature = "telemetry")]
                    shared.telem.control(
                        btrace_telemetry::EventKind::ResizeRetry,
                        u64::from(attempt) + 1,
                        backoff.as_micros() as u64,
                    );
                    std::thread::sleep(backoff);
                    backoff *= 2;
                }
            }
        }
    }
    Err(TraceError::Region(last.expect("BACKING_ATTEMPTS >= 1")))
}

impl BTrace {
    /// Resizes the buffer to `bytes`.
    ///
    /// `bytes` must be a multiple of `block_bytes × active_blocks` (the
    /// resize granularity — the metadata mapping works in whole rounds), at
    /// least one such stride, and at most the reserved maximum
    /// ([`Config::max_bytes`](crate::Config::max_bytes)).
    ///
    /// Concurrent producers keep recording throughout; no locks are added to
    /// their path. Concurrent resizes serialize on an internal mutex.
    ///
    /// # Errors
    ///
    /// [`TraceError::InvalidResize`] for an out-of-range or misaligned
    /// target, [`TraceError::ResizeTimeout`] when a producer holding an
    /// unconfirmed grant fails to drain, and [`TraceError::Region`] when the
    /// OS rejects commit/decommit.
    pub fn resize_bytes(&self, bytes: usize) -> Result<(), TraceError> {
        let stride = self.block_bytes() * self.active_blocks();
        if bytes == 0 || !bytes.is_multiple_of(stride) {
            return Err(TraceError::InvalidResize(format!(
                "target {bytes} is not a positive multiple of block_bytes * active_blocks ({stride})"
            )));
        }
        let ratio = bytes / stride;
        if ratio > self.shared.cfg.max_ratio as usize {
            return Err(TraceError::InvalidResize(format!(
                "target {bytes} exceeds the reserved maximum of {} bytes",
                self.shared.cfg.max_bytes()
            )));
        }
        // The calling thread may hold pending coalesced confirm runs (PR-7
        // discipline). They pin their blocks' rounds exactly like open
        // grants — and this thread, about to sit in the drain loop below,
        // is the only one that could ever flush them. Flush here rather
        // than stalling into `ResizeTimeout`.
        crate::producer::flush_thread_coalesced(&self.shared);
        self.resize_ratio(ratio as u16)
    }

    fn resize_ratio(&self, new_ratio: u16) -> Result<(), TraceError> {
        let shared = &self.shared;
        // A caller that panicked mid-resize poisons the lock but leaves the
        // protocol in a recoverable state (every publication step below is
        // individually consistent). Recover the guard instead of propagating
        // the panic — one dead resizer must not brick all future resizes —
        // and re-validate the derived geometry before proceeding.
        let _serialize = match shared.resize_lock.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                let guard = poisoned.into_inner();
                // Un-poison so the *next* resize takes the happy path: the
                // recovery below leaves the protocol state fully consistent,
                // and we only want to count (and degrade for) one recovery
                // per dead resizer, not one per subsequent caller.
                shared.resize_lock.clear_poison();
                shared.counters.bump(&shared.counters.lock_recoveries);
                shared.counters.set_degraded(degraded::LOCK_RECOVERED);
                #[cfg(feature = "telemetry")]
                shared.telem.control(
                    btrace_telemetry::EventKind::StateSet,
                    degraded::LOCK_RECOVERED,
                    shared.counters.degraded_bits(),
                );
                revalidate_geometry(shared)?;
                guard
            }
        };

        let old = shared.global_pos();
        if old.ratio == new_ratio {
            return Ok(());
        }

        #[cfg(feature = "telemetry")]
        let resize_t0 = Instant::now();
        #[cfg(feature = "telemetry")]
        shared.telem.control(
            btrace_telemetry::EventKind::ResizeBegin,
            u64::from(old.ratio) * shared.active() as u64,
            u64::from(new_ratio) * shared.active() as u64,
        );

        // Growing: commit the new pages *before* any producer can reach them.
        //
        // Ordering note (applies to every store in this function): resizes
        // are serialized by `resize_lock`, so this thread is the only writer
        // of `committed_extent`, `capacity_blocks`, `resize_floor`, and the
        // global word. No total order across independent writers exists to
        // preserve; release stores (paired with acquire loads at the
        // readers) carry exactly the happens-before edges the protocol
        // needs, and the fast path never fences.
        let new_extent = extent_bytes(&shared.cfg, new_ratio);
        let old_extent = shared.committed_extent.load(Ordering::Acquire);
        if new_extent > old_extent {
            let region = shared.data.region();
            if let Err(e) =
                retry_backing_op(shared, || region.commit(old_extent, new_extent - old_extent))
            {
                // Fall back to the pre-resize geometry: the new ratio was
                // never published, so producers keep recording into the
                // surviving blocks, unaware a grow was ever attempted.
                shared.counters.bump(&shared.counters.resize_fallbacks);
                shared.counters.set_degraded(degraded::COMMIT_FAILED);
                #[cfg(feature = "telemetry")]
                {
                    shared.telem.control(
                        btrace_telemetry::EventKind::ResizeFallback,
                        u64::from(new_ratio) * shared.active() as u64,
                        u64::from(old.ratio) * shared.active() as u64,
                    );
                    shared.telem.control(
                        btrace_telemetry::EventKind::StateSet,
                        degraded::COMMIT_FAILED,
                        shared.counters.degraded_bits(),
                    );
                }
                return Err(e);
            }
            shared.committed_extent.store(new_extent, Ordering::Release);
        }

        // Publish the new ratio at the next round boundary (§4.4: "after
        // updating the global ratio_and_pos").
        let a = shared.active() as u64;
        let boundary = loop {
            let cur = shared.global_pos();
            let boundary = (cur.pos / a + 1) * a;
            let next = RatioPos::new(new_ratio, boundary);
            // AcqRel: the release side makes the pages committed above
            // visible to any producer whose claimed gpos carries the new
            // ratio (it read the global with acquire); the acquire side
            // orders this CAS after the advances whose positions it read.
            if shared
                .global_raw()
                .compare_exchange(cur.to_raw(), next.to_raw(), Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                break boundary;
            }
        };
        // Release: pairs with the advance path's acquire floor loads. A
        // racing advance that misses this store holds a pre-boundary
        // candidate; the drain loop below waits on its confirm either way
        // (see the second floor check in `advance_inner`).
        shared.resize_floor.store(boundary, Ordering::Release);
        shared.history.push(boundary, new_ratio);

        let shrinking = new_ratio < old.ratio;
        let new_blocks = new_ratio as u64 * a;
        if shrinking {
            // Consumers must stop ranging into the doomed blocks before the
            // grace period starts. Release pairs with their acquire load;
            // the EBR grace period below provides the actual barrier
            // against consumers that pinned before this store.
            shared.capacity_blocks.store(new_blocks, Ordering::Release);
        }

        // Force every core off its pre-resize block by executing the
        // ordinary advancement procedure on its behalf (§4.4).
        for core in 0..shared.cfg.cores {
            loop {
                let local = shared.core_local(core);
                if local.pos >= boundary {
                    break;
                }
                shared.advance(core, local);
            }
        }

        // Close every metadata block still on a pre-resize round and wait
        // for the implicit reference counts to drain.
        let boundary_rnd = (boundary / a) as u32;
        let cap = shared.cap();
        let deadline = Instant::now() + DRAIN_DEADLINE;
        for (idx, meta) in shared.metas.iter().enumerate() {
            loop {
                let conf = meta.confirmed();
                if conf.rnd >= boundary_rnd || conf.pos >= cap {
                    break; // producers have left this metadata block
                }
                if let Close::Fill { rnd, pos } = meta.close(conf.rnd, cap) {
                    let gpos = rnd as u64 * a + idx as u64;
                    let map = shared.history.map(gpos);
                    shared.write_dummy_run(map.data_idx, pos, cap - pos);
                    meta.confirm(cap - pos);
                    shared.counters.bump(&shared.counters.closes);
                }
                if Instant::now() > deadline {
                    return Err(TraceError::ResizeTimeout { meta: idx });
                }
                crate::sync::spin_hint();
            }
        }

        if !shrinking {
            shared.capacity_blocks.store(new_blocks, Ordering::Release);
        }

        if shrinking {
            // Consumer grace period, then physically reclaim (§4.4). Spelled
            // as an advance-then-poll loop (rather than the blocking
            // `Domain::synchronize`) so each wait iteration crosses the sync
            // facade — under the model scheduler the spinning resizer keeps
            // yielding to the pinned consumer it is waiting on.
            let target = shared.domain.advance();
            #[cfg(feature = "telemetry")]
            let (grace_t0, mut stall_reported) = (Instant::now(), false);
            let quiesced = shared.domain.wait_quiescent_bounded(
                target,
                Instant::now() + EBR_GRACE_DEADLINE,
                || {
                    #[cfg(feature = "telemetry")]
                    {
                        let waited = grace_t0.elapsed().as_nanos() as u64;
                        if !stall_reported && waited >= EBR_STALL_NS {
                            stall_reported = true;
                            shared.telem.control(
                                btrace_telemetry::EventKind::EbrStall,
                                waited,
                                target,
                            );
                        }
                    }
                    crate::sync::spin_hint();
                },
            );
            if new_extent < old_extent {
                let region = shared.data.region();
                // Decommit only behind a completed grace period: a timed-out
                // wait means some reader may still range into the doomed
                // blocks, so the pages must stay committed.
                let reclaimed = quiesced
                    && retry_backing_op(shared, || {
                        region.decommit(new_extent, old_extent - new_extent)
                    })
                    .is_ok();
                if reclaimed {
                    shared.committed_extent.store(new_extent, Ordering::Release);
                    #[cfg(feature = "telemetry")]
                    let was_deferred =
                        shared.counters.degraded_bits() & degraded::RECLAIM_DEFERRED != 0;
                    shared.counters.clear_degraded(degraded::RECLAIM_DEFERRED);
                    #[cfg(feature = "telemetry")]
                    if was_deferred {
                        shared.telem.control(
                            btrace_telemetry::EventKind::StateClear,
                            degraded::RECLAIM_DEFERRED,
                            shared.counters.degraded_bits(),
                        );
                    }
                } else {
                    // The shrink already took effect logically (ratio,
                    // capacity, floor, drain) — only physical reclaim is
                    // pending, either because the backing op failed or
                    // because a pinned reader outlived the bounded grace
                    // period. Keep `committed_extent` at the old high-water
                    // mark so the next resize whose extent drops below it
                    // retries this decommit, and report the deferral instead
                    // of failing a shrink that producers already observe.
                    shared.counters.set_degraded(degraded::RECLAIM_DEFERRED);
                    #[cfg(feature = "telemetry")]
                    shared.telem.control(
                        btrace_telemetry::EventKind::StateSet,
                        degraded::RECLAIM_DEFERRED,
                        shared.counters.degraded_bits(),
                    );
                }
            }
        }

        shared.counters.bump(&shared.counters.resizes);
        #[cfg(feature = "telemetry")]
        shared.telem.control(
            btrace_telemetry::EventKind::ResizeCommit,
            new_blocks,
            resize_t0.elapsed().as_nanos() as u64,
        );
        Ok(())
    }
}

/// After recovering a poisoned resize lock: a resizer that died mid-protocol
/// may have published a ratio without finishing the stores that normally
/// follow it (grow publishes `capacity_blocks` only after the drain). Repair
/// the derived values from the published ratio, which is the single source
/// of truth producers map through.
fn revalidate_geometry(shared: &Shared) -> Result<(), TraceError> {
    let cur = shared.global_pos();
    let needed = extent_bytes(&shared.cfg, cur.ratio);
    let committed = shared.committed_extent.load(Ordering::Acquire);
    if committed < needed {
        // Cannot happen via the normal grow order (commit precedes publish),
        // but a recovered protocol re-establishes its invariants rather than
        // assuming them.
        let region = shared.data.region();
        retry_backing_op(shared, || region.commit(committed, needed - committed))?;
        shared.committed_extent.store(needed, Ordering::Release);
    }
    let blocks = cur.ratio as u64 * shared.active() as u64;
    if shared.capacity_blocks.load(Ordering::Acquire) != blocks {
        shared.capacity_blocks.store(blocks, Ordering::Release);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::BACKING_ATTEMPTS;
    use crate::{BTrace, Config, TraceError, TracerState};
    use btrace_vmem::{Backing, FaultPlan};

    fn resizable() -> BTrace {
        BTrace::new(
            Config::new(2)
                .active_blocks(4)
                .block_bytes(1024)
                .buffer_bytes(1024 * 4 * 2) // ratio 2
                .max_bytes(1024 * 4 * 8) // up to ratio 8
                .backing(Backing::Heap),
        )
        .unwrap()
    }

    #[test]
    fn grow_and_shrink_change_capacity() {
        let t = resizable();
        assert_eq!(t.capacity_blocks(), 8);
        t.resize_bytes(1024 * 4 * 8).unwrap();
        assert_eq!(t.capacity_blocks(), 32);
        t.resize_bytes(1024 * 4).unwrap();
        assert_eq!(t.capacity_blocks(), 4);
        assert_eq!(t.stats().resizes, 2);
    }

    #[test]
    fn invalid_targets_rejected() {
        let t = resizable();
        assert!(matches!(t.resize_bytes(0), Err(TraceError::InvalidResize(_))));
        assert!(matches!(t.resize_bytes(1000), Err(TraceError::InvalidResize(_))));
        assert!(matches!(t.resize_bytes(1024 * 4 * 64), Err(TraceError::InvalidResize(_))));
    }

    #[test]
    fn resize_to_current_size_is_noop() {
        let t = resizable();
        t.resize_bytes(1024 * 4 * 2).unwrap();
        assert_eq!(t.stats().resizes, 0);
    }

    #[test]
    fn events_survive_across_grow() {
        let t = resizable();
        let p = t.producer(0).unwrap();
        for i in 0..10u64 {
            p.record_with(i, 0, b"before-grow").unwrap();
        }
        t.resize_bytes(1024 * 4 * 8).unwrap();
        for i in 10..20u64 {
            p.record_with(i, 0, b"after-grow!").unwrap();
        }
        let out = t.consumer().collect();
        let stamps: Vec<_> = out.events.iter().map(|e| e.stamp()).collect();
        for i in 0..20 {
            assert!(stamps.contains(&i), "stamp {i} lost across grow: {stamps:?}");
        }
    }

    #[test]
    fn same_thread_resize_flushes_pending_coalesced_run() {
        // PR-7's discipline ("flush before a same-thread resize") used to be
        // convention only: the pending run pins its block's round, the drain
        // loop waits on that round, and the only thread able to flush is the
        // one inside the resize — a guaranteed stall into ResizeTimeout.
        // `resize_bytes` now flushes the calling thread's runs itself.
        let t = resizable();
        let p = t.producer(0).unwrap();
        p.set_confirm_coalescing(true);
        // A partial run: the block is not full, so nothing has flushed it.
        for i in 0..5u64 {
            p.record_with(i, 0, b"mid-run entry").unwrap();
        }
        let started = std::time::Instant::now();
        t.resize_bytes(1024 * 4 * 8).expect("same-thread resize must not time out");
        assert!(
            started.elapsed() < std::time::Duration::from_secs(4),
            "resize stalled against the caller's own pending run"
        );
        // The flushed run is published and survives the grow; recording
        // continues coalesced afterwards.
        for i in 5..10u64 {
            p.record_with(i, 0, b"post-resize").unwrap();
        }
        p.flush_confirms();
        let out = t.consumer().collect();
        let stamps: Vec<_> = out.events.iter().map(|e| e.stamp()).collect();
        for i in 0..10 {
            assert!(stamps.contains(&i), "stamp {i} lost across coalesced resize: {stamps:?}");
        }
    }

    #[test]
    fn recording_continues_after_shrink() {
        let t = resizable();
        let p = t.producer(0).unwrap();
        for i in 0..200u64 {
            p.record_with(i, 0, b"some trace entry payload").unwrap();
        }
        t.resize_bytes(1024 * 4).unwrap();
        for i in 200..400u64 {
            p.record_with(i, 0, b"some trace entry payload").unwrap();
        }
        let out = t.consumer().collect();
        assert_eq!(out.events.last().unwrap().stamp(), 399);
        // Everything readable lives within the shrunken capacity.
        assert!(out.stored_bytes() <= t.capacity_bytes());
    }

    #[test]
    fn shrink_waits_for_open_grants() {
        use std::sync::mpsc;
        use std::time::Duration;
        let t = resizable();
        let p = t.producer(0).unwrap();
        let grant = p.begin(8).unwrap();

        let t2 = t.clone();
        let (tx, rx) = mpsc::channel();
        let shrinker = std::thread::spawn(move || {
            let result = t2.resize_bytes(1024 * 4);
            tx.send(()).unwrap();
            result
        });
        // The shrink must not complete while the grant is open.
        assert!(
            rx.recv_timeout(Duration::from_millis(200)).is_err(),
            "shrink finished despite an unconfirmed grant"
        );
        grant.commit(1, 0, b"finally!").unwrap();
        shrinker.join().unwrap().unwrap();
    }

    #[test]
    fn poisoned_resize_lock_is_recovered_and_resize_succeeds() {
        let t = resizable();
        let p = t.producer(0).unwrap();
        for i in 0..20u64 {
            p.record_with(i, 0, b"pre-poison").unwrap();
        }
        // Panic while holding the resize lock, as a resize caller dying
        // mid-protocol would: unwinding past the guard poisons the mutex.
        let poison = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = t.shared.resize_lock.lock().unwrap();
            panic!("resize caller dies mid-resize");
        }));
        assert!(poison.is_err());
        assert!(t.shared.resize_lock.lock().is_err(), "lock must actually be poisoned");

        // The next resize recovers the lock instead of panicking.
        t.resize_bytes(1024 * 4 * 8).unwrap();
        assert_eq!(t.capacity_blocks(), 32);
        assert_eq!(t.stats().lock_recoveries, 1);
        match t.state() {
            TracerState::Degraded(d) => assert!(d.lock_recovered),
            TracerState::Healthy => panic!("lock recovery must be reported as degradation"),
        }
        // Producers and further resizes are unaffected.
        for i in 20..40u64 {
            p.record_with(i, 0, b"post-recov").unwrap();
        }
        t.resize_bytes(1024 * 4 * 2).unwrap();
        assert_eq!(t.stats().lock_recoveries, 1, "recovery happens once, not per resize");
    }

    #[test]
    fn failed_grow_falls_back_to_pre_resize_geometry() {
        // Every commit after construction fails: the grow must retry, give
        // up, and leave the pre-resize geometry fully intact.
        let plan = FaultPlan::new(0xBAD_C0DE).commit_failure_rate(1.0).arm_after_ops(1);
        let t = BTrace::new(
            Config::new(2)
                .active_blocks(4)
                .block_bytes(1024)
                .buffer_bytes(1024 * 4 * 2)
                .max_bytes(1024 * 4 * 8)
                .backing(Backing::Heap)
                .fault_plan(plan),
        )
        .unwrap();
        let p = t.producer(0).unwrap();
        for i in 0..50u64 {
            p.record_with(i, 0, b"pre-grow").unwrap();
        }
        let err = t.resize_bytes(1024 * 4 * 8).unwrap_err();
        assert!(matches!(err, TraceError::Region(_)), "got {err:?}");
        assert_eq!(t.capacity_blocks(), 8, "fallback must keep the old geometry");
        let s = t.stats();
        assert_eq!(s.resize_fallbacks, 1);
        assert_eq!(s.commit_failures, u64::from(BACKING_ATTEMPTS), "one bump per attempt");
        assert_eq!(s.resizes, 0, "a fallen-back resize never counts as completed");
        match t.state() {
            TracerState::Degraded(d) => {
                assert!(d.commit_failed);
                assert_eq!(d.resize_fallbacks, 1);
            }
            TracerState::Healthy => panic!("fallback must surface as Degraded"),
        }
        // Producers never noticed: recording continues into surviving blocks.
        for i in 50..100u64 {
            p.record_with(i, 0, b"post-fail").unwrap();
        }
        assert_eq!(t.stats().records, 100);
        let faults = t.fault_stats().unwrap();
        assert_eq!(faults.commit_faults, u64::from(BACKING_ATTEMPTS));
    }

    #[test]
    fn failed_shrink_decommit_defers_reclaim_until_it_heals() {
        // Decommits fail exactly BACKING_ATTEMPTS times once armed, then the
        // plan goes quiet — the first shrink defers reclaim, the second
        // completes it.
        let plan = FaultPlan::new(7)
            .decommit_failure_rate(1.0)
            .arm_after_ops(2) // construction commit + grow commit
            .max_faults(u64::from(BACKING_ATTEMPTS));
        let t = BTrace::new(
            Config::new(2)
                .active_blocks(4)
                .block_bytes(1024)
                .buffer_bytes(1024 * 4 * 2)
                .max_bytes(1024 * 4 * 8)
                .backing(Backing::Heap)
                .fault_plan(plan),
        )
        .unwrap();
        t.resize_bytes(1024 * 4 * 8).unwrap();

        // Shrink: logically succeeds, physical reclaim is deferred.
        t.resize_bytes(1024 * 4).unwrap();
        assert_eq!(t.capacity_blocks(), 4, "logical shrink must take effect");
        match t.state() {
            TracerState::Degraded(d) => assert!(d.reclaim_deferred),
            TracerState::Healthy => panic!("deferred reclaim must surface as Degraded"),
        }
        assert_eq!(t.fault_stats().unwrap().decommit_faults, u64::from(BACKING_ATTEMPTS));

        // Growing back within the still-committed extent needs no commit at
        // all — the deferred pages are simply reused.
        t.resize_bytes(1024 * 4 * 8).unwrap();
        assert_eq!(t.fault_stats().unwrap().commit_faults, 0);

        // The next shrink retries the decommit (plan exhausted → succeeds)
        // and the degradation heals.
        t.resize_bytes(1024 * 4).unwrap();
        assert_eq!(t.state(), TracerState::Healthy);
        let s = t.stats();
        assert_eq!(s.commit_failures, u64::from(BACKING_ATTEMPTS));
        assert_eq!(s.resize_fallbacks, 0, "shrinks never fall back, they defer");
        assert_eq!(s.resizes, 4, "all four resizes completed, deferral included");
    }

    #[test]
    fn concurrent_producers_survive_resize_storm() {
        let t = resizable();
        let writers: Vec<_> = (0..2)
            .map(|c| {
                let p = t.producer(c).unwrap();
                std::thread::spawn(move || {
                    for i in 0..5000u64 {
                        p.record_with(i, c as u32, b"payload-under-resize").unwrap();
                    }
                })
            })
            .collect();
        for _ in 0..10 {
            t.resize_bytes(1024 * 4 * 8).unwrap();
            t.resize_bytes(1024 * 4).unwrap();
        }
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(t.stats().records, 10_000);
        // When the final shrink lands after the last write it legitimately
        // recycles every pre-shrink block (the resize floor moves past
        // them), so an empty readout is valid. Record once more so the
        // readability assertion races with nothing.
        t.producer(0).unwrap().record_with(10_000, 0, b"payload-under-resize").unwrap();
        let out = t.consumer().collect();
        assert!(!out.events.is_empty());
        for e in &out.events {
            assert_eq!(e.payload(), b"payload-under-resize");
        }
    }
}
