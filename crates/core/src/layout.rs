//! Mapping from global block sequence numbers to metadata and data blocks
//! (paper §3.3), including the ratio history needed after resizes.
//!
//! With `A` metadata blocks and a live ratio `R` (so `N = R · A` data
//! blocks), a global sequence number `gpos` maps to:
//!
//! ```text
//! meta_idx = gpos mod A
//! rnd      = gpos div A
//! data_idx = (rnd mod R) · A + meta_idx
//! ```
//!
//! This reproduces Fig. 7: with `A = 4, R = 2`, data blocks D3 (rnd 0) and
//! D7 (rnd 1) share metadata block M3.
//!
//! Resizing changes `R`; blocks written under an older ratio remain in the
//! buffer, so consumers (and straggler repair) resolve `gpos → data_idx`
//! through a [`RatioHistory`] of `(first_gpos, ratio)` records. Producers on
//! the fast path never consult the history — they carry the live ratio in
//! their core-local `ratio_and_pos`.

use crate::packed::POS_BITS;
use std::sync::RwLock;

/// Where a global sequence number lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Mapping {
    /// Index of the managing metadata block.
    pub meta_idx: usize,
    /// Round of that metadata block.
    pub rnd: u32,
    /// Index of the data block.
    pub data_idx: u64,
}

/// Sentinel in [`Divider::shift`]: the divisor is not a power of two.
const NOT_POW2: u32 = u32::MAX;

/// Bits of the fixed-point reciprocal in [`Divider`]. With dividends below
/// `2^48` (the `RatioPos` position width) and divisors below `2^32`, 80
/// fraction bits make the reciprocal multiplication exact (proof at
/// [`Divider::new`]).
const RECIP_BITS: u32 = 80;

/// Division by a fixed divisor without a hardware divide: a shift for
/// power-of-two divisors, otherwise a Granlund–Montgomery-style reciprocal
/// multiplication. On the in-order ARM cores the paper targets, `udiv` is
/// 10+ cycles and not pipelined; the multiply path is 2 dependent `mul`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Divider {
    d: u64,
    /// `d.trailing_zeros()` when `d` is a power of two, else [`NOT_POW2`].
    shift: u32,
    /// `⌊2^80 / d⌋ + 1`; unused (zero) on the power-of-two path.
    magic: u128,
}

impl Divider {
    /// Precomputes the reciprocal of `d` (`1 <= d < 2^32`).
    ///
    /// Exactness: let `m = ⌊2^80/d⌋ + 1` and `e = m·d − 2^80`, so
    /// `0 < e <= d`. Then `m·n / 2^80 = n/d + e·n/(d·2^80)`, and the error
    /// term is at most `n/2^80 < 2^-32` for `n < 2^48`. The floor can only
    /// differ if `frac(n/d) >= 1 − 2^-32`, which needs
    /// `n mod d >= d − d·2^-32`; with `n mod d <= d − 1` that requires
    /// `d >= 2^32`. Hence `⌊m·n / 2^80⌋ = ⌊n/d⌋` exactly. The `u128`
    /// product cannot overflow: the smallest non-power-of-two divisor is 3,
    /// so `m < 2^79` and `n·m < 2^127`.
    pub(crate) fn new(d: u64) -> Self {
        assert!((1..1u64 << 32).contains(&d), "divisor out of range: {d}");
        if d.is_power_of_two() {
            // Power-of-two fast case: no magic needed, construction is free.
            Self { d, shift: d.trailing_zeros(), magic: 0 }
        } else {
            Self { d, shift: NOT_POW2, magic: ((1u128 << RECIP_BITS) / d as u128) + 1 }
        }
    }

    /// `n / d` for `n < 2^48`.
    #[inline]
    pub(crate) fn div(&self, n: u64) -> u64 {
        debug_assert!(n < 1 << POS_BITS, "dividend exceeds the 48-bit position width");
        if self.shift != NOT_POW2 {
            n >> self.shift
        } else {
            ((n as u128 * self.magic) >> RECIP_BITS) as u64
        }
    }

    /// `n % d` for `n < 2^48`.
    #[inline]
    pub(crate) fn rem(&self, n: u64) -> u64 {
        if self.shift != NOT_POW2 {
            n & (self.d - 1)
        } else {
            n - self.div(n) * self.d
        }
    }
}

/// Computes the mapping for `gpos` under `ratio` with hardware division —
/// the readable reference used at construction and in tests. Hot callers go
/// through [`map_gpos_div`].
pub(crate) fn map_gpos(gpos: u64, active_blocks: usize, ratio: u16) -> Mapping {
    debug_assert!(ratio >= 1);
    let a = active_blocks as u64;
    let rnd64 = gpos / a;
    debug_assert!(rnd64 <= u32::MAX as u64, "round counter exceeded 32 bits");
    let meta_idx = (gpos % a) as usize;
    let data_idx = (rnd64 % ratio as u64) * a + meta_idx as u64;
    Mapping { meta_idx, rnd: rnd64 as u32, data_idx }
}

/// Division-free twin of [`map_gpos`]: `a_div` divides by `active_blocks`
/// and `r_div` by `ratio`, both precomputed away from the fast path.
#[inline]
pub(crate) fn map_gpos_div(
    gpos: u64,
    active_blocks: usize,
    a_div: &Divider,
    ratio: u16,
    r_div: &Divider,
) -> Mapping {
    debug_assert!(ratio >= 1);
    debug_assert_eq!(a_div.d, active_blocks as u64);
    debug_assert_eq!(r_div.d, ratio as u64);
    let a = active_blocks as u64;
    let rnd64 = a_div.div(gpos);
    debug_assert!(rnd64 <= u32::MAX as u64, "round counter exceeded 32 bits");
    let meta_idx = (gpos - rnd64 * a) as usize;
    let data_idx = r_div.rem(rnd64) * a + meta_idx as u64;
    Mapping { meta_idx, rnd: rnd64 as u32, data_idx }
}

/// Append-only log of `(first_gpos, ratio)` transitions.
///
/// Reads take a shared lock; resizes are rare and short, and the fast path
/// never reads it, so contention is negligible.
///
/// Deliberately a plain `std` lock rather than a `crate::sync` facade type:
/// its critical sections contain no facade operations, so under the model
/// scheduler a thread can never be parked while holding it — blocking
/// acquisition cannot deadlock a modeled execution.
#[derive(Debug)]
pub(crate) struct RatioHistory {
    active_blocks: usize,
    a_div: Divider,
    entries: RwLock<Vec<HistEntry>>,
}

/// One ratio transition, with its divider precomputed at push time (resizes
/// are rare) so every later [`RatioHistory::map`] is division-free.
#[derive(Debug, Clone, Copy)]
struct HistEntry {
    from_gpos: u64,
    ratio: u16,
    r_div: Divider,
}

impl HistEntry {
    fn new(from_gpos: u64, ratio: u16) -> Self {
        Self { from_gpos, ratio, r_div: Divider::new(ratio as u64) }
    }
}

impl RatioHistory {
    pub(crate) fn new(initial_ratio: u16, active_blocks: usize, a_div: Divider) -> Self {
        Self { active_blocks, a_div, entries: RwLock::new(vec![HistEntry::new(0, initial_ratio)]) }
    }

    /// Records that blocks from `from_gpos` onward use `ratio`.
    pub(crate) fn push(&self, from_gpos: u64, ratio: u16) {
        // Poison recovery, not propagation: a panicked resize caller can
        // only have completed or not completed its push (one Vec::push),
        // both of which leave the history internally consistent.
        let mut entries = self.entries.write().unwrap_or_else(std::sync::PoisonError::into_inner);
        debug_assert!(entries.last().is_none_or(|e| e.from_gpos <= from_gpos));
        entries.push(HistEntry::new(from_gpos, ratio));
    }

    /// Ratio in effect for `gpos`.
    #[cfg(test)]
    pub(crate) fn ratio_at(&self, gpos: u64) -> u16 {
        self.entry_at(gpos).ratio
    }

    /// Ratio of the newest published transition. Compared against the
    /// ratio in the global `ratio_and_pos` word to detect a resize whose
    /// global CAS has landed but whose history entry has not: consecutive
    /// transitions always change the ratio, so during that window the two
    /// disagree, and equality certifies the history covers every claimable
    /// sequence number.
    pub(crate) fn latest_ratio(&self) -> u16 {
        let entries = self.entries.read().unwrap_or_else(std::sync::PoisonError::into_inner);
        entries.last().expect("history never empty").ratio
    }

    fn entry_at(&self, gpos: u64) -> HistEntry {
        // Same recovery rationale as `push`: readers can always use the
        // history a dead writer left behind.
        let entries = self.entries.read().unwrap_or_else(std::sync::PoisonError::into_inner);
        entries
            .iter()
            .rev()
            .find(|e| e.from_gpos <= gpos)
            .copied()
            .unwrap_or_else(|| *entries.first().expect("history never empty"))
    }

    /// Mapping for `gpos` under the ratio that was live when it was issued.
    pub(crate) fn map(&self, gpos: u64) -> Mapping {
        let e = self.entry_at(gpos);
        map_gpos_div(gpos, self.active_blocks, &self.a_div, e.ratio, &e.r_div)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_mapping() {
        // Eight data blocks, four metadata blocks, ratio two: D3 and D7
        // share M3.
        let m3 = map_gpos(3, 4, 2);
        assert_eq!(m3, Mapping { meta_idx: 3, rnd: 0, data_idx: 3 });
        let m7 = map_gpos(7, 4, 2);
        assert_eq!(m7, Mapping { meta_idx: 3, rnd: 1, data_idx: 7 });
        // Next round wraps back onto D3.
        let m11 = map_gpos(11, 4, 2);
        assert_eq!(m11, Mapping { meta_idx: 3, rnd: 2, data_idx: 3 });
    }

    #[test]
    fn ratio_one_reuses_same_block_every_round() {
        for gpos in 0..32u64 {
            let m = map_gpos(gpos, 4, 1);
            assert_eq!(m.data_idx, gpos % 4);
        }
    }

    #[test]
    fn data_blocks_cycle_with_period_n() {
        let (a, r) = (6usize, 4u16);
        let n = a as u64 * r as u64;
        for gpos in 0..n {
            let now = map_gpos(gpos, a, r);
            let next_cycle = map_gpos(gpos + n, a, r);
            assert_eq!(now.data_idx, next_cycle.data_idx);
            assert_eq!(now.meta_idx, next_cycle.meta_idx);
            assert_eq!(now.rnd + r as u32, next_cycle.rnd);
        }
    }

    #[test]
    fn all_data_blocks_hit_exactly_once_per_cycle() {
        let (a, r) = (4usize, 3u16);
        let n = a as u64 * r as u64;
        let mut seen = vec![false; n as usize];
        for gpos in 0..n {
            let m = map_gpos(gpos, a, r);
            assert!(!seen[m.data_idx as usize], "data block visited twice in one cycle");
            seen[m.data_idx as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn history_lookup_respects_boundaries() {
        let h = RatioHistory::new(2, 4, Divider::new(4));
        h.push(16, 4);
        h.push(32, 1);
        assert_eq!(h.ratio_at(0), 2);
        assert_eq!(h.ratio_at(15), 2);
        assert_eq!(h.ratio_at(16), 4);
        assert_eq!(h.ratio_at(31), 4);
        assert_eq!(h.ratio_at(32), 1);
        assert_eq!(h.ratio_at(1_000_000), 1);
    }

    #[test]
    fn history_map_uses_ratio_of_the_round() {
        let h = RatioHistory::new(1, 4, Divider::new(4));
        h.push(8, 2); // from gpos 8 on, ratio 2 (A = 4)
                      // gpos 5 (rnd 1, ratio 1) maps within the first 4 blocks.
        assert_eq!(h.map(5).data_idx, 1);
        // gpos 13 (rnd 3, ratio 2) alternates between the two banks.
        assert_eq!(h.map(13).data_idx, 4 + 1);
    }

    #[test]
    fn divider_matches_hardware_division() {
        // Every divisor shape: powers of two, odd, even non-pow2, tiny, and
        // near the 2^32 ceiling.
        let divisors =
            [1u64, 2, 3, 4, 5, 6, 7, 12, 16, 63, 64, 192, 1000, 4096, (1 << 32) - 1, (1 << 31) + 3];
        // Deterministic LCG over the full 48-bit dividend range plus edges.
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        let mut dividends = vec![0u64, 1, (1 << 48) - 1, (1 << 48) - 2, 1 << 47];
        for _ in 0..4000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            dividends.push(x >> 16); // 48 bits
        }
        for &d in &divisors {
            let div = Divider::new(d);
            for &n in &dividends {
                assert_eq!(div.div(n), n / d, "div mismatch: {n} / {d}");
                assert_eq!(div.rem(n), n % d, "rem mismatch: {n} % {d}");
            }
        }
    }

    #[test]
    fn division_free_mapping_matches_reference() {
        for (a, r) in [(4usize, 2u16), (4, 3), (6, 4), (192, 16), (5, 1), (7, 7)] {
            let a_div = Divider::new(a as u64);
            let r_div = Divider::new(r as u64);
            // Edge dividends stay below A * 2^32 so the 32-bit round
            // counter assertion holds, matching production bounds.
            let hi = a as u64 * u32::MAX as u64;
            for gpos in (0..4 * a as u64 * r as u64).chain([hi - 1, hi / 2 + 1]) {
                assert_eq!(
                    map_gpos_div(gpos, a, &a_div, r, &r_div),
                    map_gpos(gpos, a, r),
                    "mapping diverged at gpos {gpos} (A={a}, R={r})"
                );
            }
        }
    }
}
