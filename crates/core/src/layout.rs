//! Mapping from global block sequence numbers to metadata and data blocks
//! (paper §3.3), including the ratio history needed after resizes.
//!
//! With `A` metadata blocks and a live ratio `R` (so `N = R · A` data
//! blocks), a global sequence number `gpos` maps to:
//!
//! ```text
//! meta_idx = gpos mod A
//! rnd      = gpos div A
//! data_idx = (rnd mod R) · A + meta_idx
//! ```
//!
//! This reproduces Fig. 7: with `A = 4, R = 2`, data blocks D3 (rnd 0) and
//! D7 (rnd 1) share metadata block M3.
//!
//! Resizing changes `R`; blocks written under an older ratio remain in the
//! buffer, so consumers (and straggler repair) resolve `gpos → data_idx`
//! through a [`RatioHistory`] of `(first_gpos, ratio)` records. Producers on
//! the fast path never consult the history — they carry the live ratio in
//! their core-local `ratio_and_pos`.

use std::sync::RwLock;

/// Where a global sequence number lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Mapping {
    /// Index of the managing metadata block.
    pub meta_idx: usize,
    /// Round of that metadata block.
    pub rnd: u32,
    /// Index of the data block.
    pub data_idx: u64,
}

/// Computes the mapping for `gpos` under `ratio`.
pub(crate) fn map_gpos(gpos: u64, active_blocks: usize, ratio: u16) -> Mapping {
    debug_assert!(ratio >= 1);
    let a = active_blocks as u64;
    let rnd64 = gpos / a;
    debug_assert!(rnd64 <= u32::MAX as u64, "round counter exceeded 32 bits");
    let meta_idx = (gpos % a) as usize;
    let data_idx = (rnd64 % ratio as u64) * a + meta_idx as u64;
    Mapping { meta_idx, rnd: rnd64 as u32, data_idx }
}

/// Append-only log of `(first_gpos, ratio)` transitions.
///
/// Reads take a shared lock; resizes are rare and short, and the fast path
/// never reads it, so contention is negligible.
///
/// Deliberately a plain `std` lock rather than a `crate::sync` facade type:
/// its critical sections contain no facade operations, so under the model
/// scheduler a thread can never be parked while holding it — blocking
/// acquisition cannot deadlock a modeled execution.
#[derive(Debug)]
pub(crate) struct RatioHistory {
    entries: RwLock<Vec<(u64, u16)>>,
}

impl RatioHistory {
    pub(crate) fn new(initial_ratio: u16) -> Self {
        Self { entries: RwLock::new(vec![(0, initial_ratio)]) }
    }

    /// Records that blocks from `from_gpos` onward use `ratio`.
    pub(crate) fn push(&self, from_gpos: u64, ratio: u16) {
        let mut entries = self.entries.write().expect("ratio history poisoned");
        debug_assert!(entries.last().is_none_or(|&(g, _)| g <= from_gpos));
        entries.push((from_gpos, ratio));
    }

    /// Ratio in effect for `gpos`.
    pub(crate) fn ratio_at(&self, gpos: u64) -> u16 {
        let entries = self.entries.read().expect("ratio history poisoned");
        entries
            .iter()
            .rev()
            .find(|&&(from, _)| from <= gpos)
            .map(|&(_, r)| r)
            .unwrap_or_else(|| entries.first().expect("history never empty").1)
    }

    /// Mapping for `gpos` under the ratio that was live when it was issued.
    pub(crate) fn map(&self, gpos: u64, active_blocks: usize) -> Mapping {
        map_gpos(gpos, active_blocks, self.ratio_at(gpos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_mapping() {
        // Eight data blocks, four metadata blocks, ratio two: D3 and D7
        // share M3.
        let m3 = map_gpos(3, 4, 2);
        assert_eq!(m3, Mapping { meta_idx: 3, rnd: 0, data_idx: 3 });
        let m7 = map_gpos(7, 4, 2);
        assert_eq!(m7, Mapping { meta_idx: 3, rnd: 1, data_idx: 7 });
        // Next round wraps back onto D3.
        let m11 = map_gpos(11, 4, 2);
        assert_eq!(m11, Mapping { meta_idx: 3, rnd: 2, data_idx: 3 });
    }

    #[test]
    fn ratio_one_reuses_same_block_every_round() {
        for gpos in 0..32u64 {
            let m = map_gpos(gpos, 4, 1);
            assert_eq!(m.data_idx, gpos % 4);
        }
    }

    #[test]
    fn data_blocks_cycle_with_period_n() {
        let (a, r) = (6usize, 4u16);
        let n = a as u64 * r as u64;
        for gpos in 0..n {
            let now = map_gpos(gpos, a, r);
            let next_cycle = map_gpos(gpos + n, a, r);
            assert_eq!(now.data_idx, next_cycle.data_idx);
            assert_eq!(now.meta_idx, next_cycle.meta_idx);
            assert_eq!(now.rnd + r as u32, next_cycle.rnd);
        }
    }

    #[test]
    fn all_data_blocks_hit_exactly_once_per_cycle() {
        let (a, r) = (4usize, 3u16);
        let n = a as u64 * r as u64;
        let mut seen = vec![false; n as usize];
        for gpos in 0..n {
            let m = map_gpos(gpos, a, r);
            assert!(!seen[m.data_idx as usize], "data block visited twice in one cycle");
            seen[m.data_idx as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn history_lookup_respects_boundaries() {
        let h = RatioHistory::new(2);
        h.push(16, 4);
        h.push(32, 1);
        assert_eq!(h.ratio_at(0), 2);
        assert_eq!(h.ratio_at(15), 2);
        assert_eq!(h.ratio_at(16), 4);
        assert_eq!(h.ratio_at(31), 4);
        assert_eq!(h.ratio_at(32), 1);
        assert_eq!(h.ratio_at(1_000_000), 1);
    }

    #[test]
    fn history_map_uses_ratio_of_the_round() {
        let h = RatioHistory::new(1);
        h.push(8, 2); // from gpos 8 on, ratio 2 (A = 4)
                      // gpos 5 (rnd 1, ratio 1) maps within the first 4 blocks.
        assert_eq!(h.map(5, 4).data_idx, 1);
        // gpos 13 (rnd 3, ratio 2) alternates between the two banks.
        assert_eq!(h.map(13, 4).data_idx, 4 + 1);
    }
}
