//! Incremental (tailing) consumption: read only what is new since the last
//! poll — the access pattern of an asynchronous collector daemon that
//! drains the buffer continuously instead of snapshotting it (§2.1).
//!
//! A [`TailReader`] remembers the global block sequence it has consumed up
//! to, plus a byte watermark inside each still-open block, so repeated
//! polls return every event exactly once (unless the buffer wrapped over
//! unread blocks, which is reported as `missed`).

use crate::buffer::Shared;
use crate::event::{EntryHeader, EntryKind, Event, HEADER_BYTES};
use crate::sync::{Arc, Ordering};
use std::collections::HashMap;

/// One incremental poll's result.
#[derive(Debug, Default)]
#[non_exhaustive]
pub struct Polled {
    /// Events not returned by any previous poll, in buffer order.
    pub events: Vec<Event>,
    /// Blocks that were overwritten before this reader reached them. A
    /// tailing daemon that cannot keep up loses oldest-first, exactly like
    /// the underlying buffer.
    pub missed_blocks: usize,
}

/// Marker in the progress map: the block is fully resolved (consumed or
/// permanently unavailable) and must never be re-read.
const RESOLVED: usize = usize::MAX;

/// A stateful incremental reader. Create via
/// [`BTrace::tail`](crate::BTrace::tail).
pub struct TailReader {
    shared: Arc<Shared>,
    participant: btrace_smr::Participant,
    scratch: Vec<u8>,
    /// First block sequence not yet resolved.
    next_gpos: u64,
    /// Per-block progress beyond the frontier: parsed byte offset, or
    /// [`RESOLVED`].
    open: HashMap<u64, usize>,
}

impl TailReader {
    pub(crate) fn new(shared: Arc<Shared>) -> Self {
        let participant = shared.domain.register();
        Self { shared, participant, scratch: Vec::new(), next_gpos: 0, open: HashMap::new() }
    }

    /// Returns every event recorded since the previous poll.
    ///
    /// Non-destructive and non-blocking for producers, like
    /// [`Consumer::collect`](crate::Consumer::collect); unlike it, each
    /// event is returned exactly once across polls.
    pub fn poll(&mut self) -> Polled {
        let shared = Arc::clone(&self.shared);
        let Self { participant, scratch, next_gpos, open, .. } = self;
        let _pin = participant.pin();
        let head = shared.global_pos().pos;
        let active = shared.active() as u64;
        let span = shared.data.region().len() / shared.cfg.block_bytes;
        let lo = head.saturating_sub(span as u64);

        let mut out = Polled::default();
        if *next_gpos < lo {
            out.missed_blocks = (lo - *next_gpos) as usize;
            *next_gpos = lo;
            // Blocks at or beyond the new frontier keep their progress (and
            // especially their RESOLVED markers — re-reading them would
            // duplicate events); only lapped bookkeeping is dropped.
            open.retain(|&gpos, _| gpos >= lo);
        }

        for gpos in *next_gpos..head {
            if open.get(&gpos) == Some(&RESOLVED) {
                continue;
            }
            match read_incremental(&shared, scratch, open, gpos, &mut out) {
                BlockState::Consumed => {
                    open.insert(gpos, RESOLVED);
                }
                BlockState::Open | BlockState::Pending => {
                    // Producer still owns it (appending, or an unconfirmed
                    // write is in flight): revisit next poll.
                }
                BlockState::Unavailable => {
                    // Never started for this sequence number. Within the
                    // active window a concurrent advancement might still be
                    // installing it, so only resolve once it has fallen
                    // behind the closing horizon.
                    if gpos + active <= head {
                        open.insert(gpos, RESOLVED);
                    }
                }
            }
        }
        // Advance the frontier over the resolved prefix.
        while open.get(next_gpos) == Some(&RESOLVED) {
            open.remove(next_gpos);
            *next_gpos += 1;
        }
        out
    }

    /// Total blocks this reader has fully consumed or skipped.
    pub fn position(&self) -> u64 {
        self.next_gpos
    }
}

fn read_incremental(
    shared: &Shared,
    scratch: &mut Vec<u8>,
    open_map: &mut HashMap<u64, usize>,
    gpos: u64,
    out: &mut Polled,
) -> BlockState {
    let cap = shared.cap() as usize;
    let map = shared.history.map(gpos);
    // Acquire: pairs with the shrinker's release store (see `read_block`).
    if map.data_idx >= shared.capacity_blocks.load(Ordering::Acquire) {
        return BlockState::Unavailable;
    }
    let meta = &shared.metas[map.meta_idx];
    let conf = meta.confirmed();
    let (watermark, open) = if conf.rnd < map.rnd {
        return BlockState::Unavailable;
    } else if conf.rnd == map.rnd {
        let alloc = meta.allocated();
        let visible = alloc.pos.min(shared.cap());
        if alloc.rnd != map.rnd || conf.pos != visible {
            // Unconfirmed writes in flight: whatever prefix we already
            // parsed stays valid; wait for the confirmations.
            return BlockState::Pending;
        }
        (visible as usize, (visible as usize) < cap)
    } else {
        (cap, false)
    };
    if watermark < HEADER_BYTES {
        return if open { BlockState::Open } else { BlockState::Unavailable };
    }

    let from = *open_map.get(&gpos).unwrap_or(&HEADER_BYTES);
    if from >= watermark {
        return if open { BlockState::Open } else { BlockState::Consumed };
    }

    // Speculative snapshot of [0, watermark), then validate via header.
    let base = shared.data.block_offset(map.data_idx);
    shared.data.load_bytes(base, scratch, watermark);
    let header_ok = scratch.len() >= HEADER_BYTES
        && EntryHeader::decode([
            u64::from_le_bytes(scratch[0..8].try_into().expect("8 bytes")),
            u64::from_le_bytes(scratch[8..16].try_into().expect("8 bytes")),
        ])
        .is_some_and(|h| h.kind == EntryKind::BlockHeader && h.stamp == gpos);
    if !header_ok {
        // `Unavailable` is a permanent skip. Before taking it, rule out a
        // mapping computed between a resize's global CAS and its history
        // push (wrong data block): defer to the next poll, which re-maps.
        if !shared.history_published() || shared.history.map(gpos) != map {
            return BlockState::Pending;
        }
        return BlockState::Unavailable;
    }
    let mut live = [0u64; 2];
    shared.data.load_words(base, &mut live);
    let still_ours = EntryHeader::decode(live)
        .is_some_and(|h| h.kind == EntryKind::BlockHeader && h.stamp == gpos);
    if !still_ours {
        return BlockState::Unavailable;
    }

    let parsed_to = parse_from(scratch, from, gpos, &mut out.events);
    if open {
        open_map.insert(gpos, parsed_to);
        BlockState::Open
    } else {
        BlockState::Consumed
    }
}

enum BlockState {
    /// Fully read; never revisit.
    Consumed,
    /// The producer may still append; revisit next poll.
    Open,
    /// An unconfirmed write is in flight; revisit next poll.
    Pending,
    /// Skipped, recycled, or never started for this sequence number.
    Unavailable,
}

/// Parses entries starting at `from`, returning the offset parsing stopped
/// at (entry-aligned, for resumption).
fn parse_from(snapshot: &[u8], from: usize, gpos: u64, out: &mut Vec<Event>) -> usize {
    let mut off = from;
    while off + 8 <= snapshot.len() {
        let word0 = u64::from_le_bytes(snapshot[off..off + 8].try_into().expect("8 bytes"));
        let word1 = if off + 16 <= snapshot.len() {
            u64::from_le_bytes(snapshot[off + 8..off + 16].try_into().expect("8 bytes"))
        } else {
            0
        };
        let Some(header) = EntryHeader::decode([word0, word1]) else { return off };
        let len = header.len as usize;
        if len == 0 || off + len > snapshot.len() {
            return off;
        }
        if header.kind == EntryKind::Data {
            if let Some(payload_len) = header.payload_len() {
                if off + HEADER_BYTES + payload_len <= snapshot.len() {
                    let payload =
                        snapshot[off + HEADER_BYTES..off + HEADER_BYTES + payload_len].to_vec();
                    out.push(Event::new(header.stamp, header.core, header.tid, gpos, payload));
                }
            }
        }
        off += len;
    }
    off
}

impl std::fmt::Debug for TailReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TailReader")
            .field("next_gpos", &self.next_gpos)
            .field("open_blocks", &self.open.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::{BTrace, Config};
    use btrace_vmem::Backing;

    fn tracer() -> BTrace {
        BTrace::new(
            Config::new(1)
                .active_blocks(4)
                .block_bytes(256)
                .buffer_bytes(256 * 16)
                .backing(Backing::Heap),
        )
        .expect("valid configuration")
    }

    #[test]
    fn polls_return_each_event_once() {
        let t = tracer();
        let p = t.producer(0).unwrap();
        let mut tail = t.tail();
        p.record_with(0, 0, b"one").unwrap();
        p.record_with(1, 0, b"two").unwrap();
        let first = tail.poll();
        assert_eq!(first.events.len(), 2);
        assert_eq!(tail.poll().events.len(), 0, "no new events");
        p.record_with(2, 0, b"three").unwrap();
        let third = tail.poll();
        assert_eq!(third.events.len(), 1);
        assert_eq!(third.events[0].stamp(), 2);
    }

    #[test]
    fn streams_across_block_boundaries() {
        let t = tracer();
        let p = t.producer(0).unwrap();
        let mut tail = t.tail();
        let mut seen = Vec::new();
        for i in 0..120u64 {
            p.record_with(i, 0, b"a-sixteen-byte-p").unwrap();
            if i % 7 == 0 {
                seen.extend(tail.poll().events.into_iter().map(|e| e.stamp()));
            }
        }
        seen.extend(tail.poll().events.into_iter().map(|e| e.stamp()));
        // Every event exactly once, in order.
        assert_eq!(seen, (0..120).collect::<Vec<_>>());
    }

    #[test]
    fn slow_reader_misses_oldest_only() {
        let t = tracer(); // 16 blocks x 256B
        let p = t.producer(0).unwrap();
        let mut tail = t.tail();
        for i in 0..2_000u64 {
            p.record_with(i, 0, b"wrap-the-buffer!").unwrap();
        }
        let polled = tail.poll();
        assert!(polled.missed_blocks > 0, "a lapped reader must report misses");
        let stamps: Vec<u64> = polled.events.iter().map(|e| e.stamp()).collect();
        assert_eq!(*stamps.last().unwrap(), 1999, "newest must be delivered");
        for w in stamps.windows(2) {
            assert!(w[1] > w[0], "stream must stay ordered");
        }
    }

    #[test]
    fn open_grant_defers_only_that_block() {
        let t = tracer();
        let p = t.producer(0).unwrap();
        let mut tail = t.tail();
        p.record_with(0, 0, b"before").unwrap();
        let grant = p.begin(4).unwrap();
        let polled = tail.poll();
        assert!(polled.events.is_empty(), "block with open grant is not yet readable");
        grant.commit(1, 0, b"held").unwrap();
        let polled = tail.poll();
        let stamps: Vec<u64> = polled.events.iter().map(|e| e.stamp()).collect();
        assert_eq!(stamps, vec![0, 1]);
    }

    #[test]
    fn concurrent_producer_and_tail() {
        let t = tracer();
        let p = t.producer(0).unwrap();
        let writer = std::thread::spawn(move || {
            for i in 0..5_000u64 {
                p.record_with(i, 0, b"streamed-entry!!").unwrap();
            }
        });
        let mut tail = t.tail();
        let mut collected: Vec<u64> = Vec::new();
        let mut missed = 0usize;
        while !writer.is_finished() {
            let polled = tail.poll();
            collected.extend(polled.events.iter().map(|e| e.stamp()));
            missed += polled.missed_blocks;
        }
        writer.join().unwrap();
        let polled = tail.poll();
        collected.extend(polled.events.iter().map(|e| e.stamp()));
        missed += polled.missed_blocks;
        // Exactly once, in order; misses only explain what's absent.
        for w in collected.windows(2) {
            assert!(w[1] > w[0], "duplicate or reordered: {} then {}", w[0], w[1]);
        }
        assert_eq!(*collected.last().unwrap(), 4_999);
        let _ = missed;
    }
}
