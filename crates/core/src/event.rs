//! On-buffer entry encoding and the owned [`Event`] type consumers return.
//!
//! Every entry in a data block is a multiple of 8 bytes and starts with a
//! 16-byte header (two `u64` words):
//!
//! ```text
//! word 0:  [ len: u16 | kind: u8 | core: u8 | tid: u32 ]
//! word 1:  [ stamp: u64 ]          (gpos for block headers / skip markers)
//! payload: len - 16 bytes, zero-padded to the 8-byte boundary
//! ```
//!
//! `len` covers header + payload + padding, so a parser can walk a block by
//! hopping `len` bytes at a time. Four entry kinds exist:
//!
//! * [`EntryKind::Data`] — a trace event carrying a payload.
//! * [`EntryKind::Dummy`] — filler written when closing a block, when the
//!   tail of a block is too small for the next entry (§4.1 Fig. 8c), or by a
//!   straggler repairing a misplaced allocation. Never returned to users.
//! * [`EntryKind::BlockHeader`] — first entry of every (re)initialized data
//!   block; its stamp word holds the owning global block sequence number so
//!   consumers can validate that a data block still belongs to the round
//!   they expect.
//! * [`EntryKind::Skip`] — a block header variant marking a sacrificed block
//!   (§3.4); consumers discard the whole block.

use std::fmt;

/// Size in bytes of an entry header (two `u64` words).
pub const HEADER_BYTES: usize = 16;

/// Every entry size is a multiple of this alignment.
pub const ENTRY_ALIGN: usize = 8;

/// Largest encodable entry (`len` is a `u16`).
pub const MAX_ENTRY_BYTES: usize = u16::MAX as usize & !(ENTRY_ALIGN - 1);

/// Discriminates the entries stored in a data block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EntryKind {
    /// A user trace event.
    Data = 1,
    /// Filler; carries no information.
    Dummy = 2,
    /// First entry of a live block; stamp = owning gpos.
    BlockHeader = 3,
    /// Block sacrificed by skipping (§3.4); stamp = skipped gpos.
    Skip = 4,
}

impl EntryKind {
    /// Decodes a kind byte, returning `None` for anything unknown (torn or
    /// garbage bytes encountered during speculative reads).
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(EntryKind::Data),
            2 => Some(EntryKind::Dummy),
            3 => Some(EntryKind::BlockHeader),
            4 => Some(EntryKind::Skip),
            _ => None,
        }
    }
}

/// A decoded entry header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntryHeader {
    /// Total entry length in bytes (header + payload + padding).
    pub len: u16,
    /// Entry kind.
    pub kind: EntryKind,
    /// Alignment padding bytes at the entry tail (0..=7); the payload is
    /// `len - 16 - pad` bytes.
    pub pad: u8,
    /// Core the producer was pinned to when recording.
    pub core: u8,
    /// Producer thread id.
    pub tid: u32,
    /// Logic stamp (or gpos for block headers / skip markers).
    pub stamp: u64,
}

impl EntryHeader {
    /// Encodes into the two header words. Word 0 layout, low to high:
    /// `len:16, kind:4, pad:4, core:8, tid:32`.
    pub fn encode(&self) -> [u64; 2] {
        debug_assert!(self.pad < 8);
        debug_assert!((self.kind as u8) < 16);
        let word0 = (self.len as u64)
            | ((self.kind as u8 as u64) << 16)
            | ((self.pad as u64) << 20)
            | ((self.core as u64) << 24)
            | ((self.tid as u64) << 32);
        [word0, self.stamp]
    }

    /// Decodes from the two header words; `None` when the kind nibble is not
    /// a valid [`EntryKind`] or the length is not a plausible entry length.
    pub fn decode(words: [u64; 2]) -> Option<Self> {
        let len = words[0] as u16;
        let kind = EntryKind::from_u8(((words[0] >> 16) & 0xF) as u8)?;
        let pad = ((words[0] >> 20) & 0xF) as u8;
        if pad >= 8 {
            return None;
        }
        if (len as usize) < HEADER_BYTES && !matches!(kind, EntryKind::Dummy) {
            return None;
        }
        if !(len as usize).is_multiple_of(ENTRY_ALIGN) || len == 0 {
            return None;
        }
        Some(Self {
            len,
            kind,
            pad,
            core: (words[0] >> 24) as u8,
            tid: (words[0] >> 32) as u32,
            stamp: words[1],
        })
    }

    /// Payload length implied by `len` and `pad`; `None` when inconsistent.
    pub fn payload_len(&self) -> Option<usize> {
        (self.len as usize).checked_sub(HEADER_BYTES + self.pad as usize)
    }
}

/// Returns the encoded size of an entry carrying `payload_len` bytes.
pub fn encoded_len(payload_len: usize) -> usize {
    (HEADER_BYTES + payload_len + ENTRY_ALIGN - 1) & !(ENTRY_ALIGN - 1)
}

/// An owned trace event as returned by consumers.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Event {
    stamp: u64,
    core: u8,
    tid: u32,
    gpos: u64,
    payload: Vec<u8>,
}

impl Event {
    pub(crate) fn new(stamp: u64, core: u8, tid: u32, gpos: u64, payload: Vec<u8>) -> Self {
        Self { stamp, core, tid, gpos, payload }
    }

    /// Logic stamp assigned at record time.
    pub fn stamp(&self) -> u64 {
        self.stamp
    }

    /// Core the event was recorded on.
    pub fn core(&self) -> usize {
        self.core as usize
    }

    /// Producer thread id.
    pub fn tid(&self) -> u32 {
        self.tid
    }

    /// Global sequence number of the block the event was read from. Events
    /// from larger `gpos` are newer in buffer order.
    pub fn gpos(&self) -> u64 {
        self.gpos
    }

    /// The recorded payload bytes.
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Consumes the event, returning the payload buffer without copying —
    /// the hand-off used by the streaming drain path, where re-copying
    /// every payload per batch would double the export cost.
    pub fn into_payload(self) -> Vec<u8> {
        self.payload
    }

    /// On-buffer footprint of this event in bytes (header + payload,
    /// rounded to the entry alignment).
    pub fn stored_bytes(&self) -> usize {
        encoded_len(self.payload.len())
    }
}

impl fmt::Debug for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Event")
            .field("stamp", &self.stamp)
            .field("core", &self.core)
            .field("tid", &self.tid)
            .field("gpos", &self.gpos)
            .field("payload_len", &self.payload.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = EntryHeader {
            len: 40,
            kind: EntryKind::Data,
            pad: 5,
            core: 11,
            tid: 0xDEAD_BEEF,
            stamp: 42,
        };
        assert_eq!(EntryHeader::decode(h.encode()), Some(h));
        assert_eq!(h.payload_len(), Some(40 - 16 - 5));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(EntryHeader::decode([0, 0]), None); // len 0, kind 0
        assert_eq!(EntryHeader::decode([(9u64) | (1 << 16), 0]), None); // unaligned len
        assert_eq!(EntryHeader::decode([(16u64) | (250 << 16), 0]), None); // bad kind
    }

    #[test]
    fn dummy_may_be_header_sized_or_smaller() {
        let h = EntryHeader { len: 8, kind: EntryKind::Dummy, pad: 0, core: 0, tid: 0, stamp: 0 };
        assert_eq!(EntryHeader::decode(h.encode()), Some(h));
    }

    #[test]
    fn encoded_len_pads_to_alignment() {
        assert_eq!(encoded_len(0), 16);
        assert_eq!(encoded_len(1), 24);
        assert_eq!(encoded_len(8), 24);
        assert_eq!(encoded_len(9), 32);
        assert_eq!(encoded_len(16), 32);
    }

    #[test]
    fn event_accessors() {
        let e = Event::new(7, 3, 99, 12, vec![1, 2, 3]);
        assert_eq!(e.stamp(), 7);
        assert_eq!(e.core(), 3);
        assert_eq!(e.tid(), 99);
        assert_eq!(e.gpos(), 12);
        assert_eq!(e.payload(), &[1, 2, 3]);
        assert_eq!(e.stored_bytes(), 24);
        assert!(!format!("{e:?}").is_empty());
    }
}
