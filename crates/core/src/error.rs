use std::error::Error;
use std::fmt;

/// Error type for all fallible BTrace operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceError {
    /// The [`Config`](crate::Config) is inconsistent; the message names the
    /// violated constraint.
    InvalidConfig(String),
    /// The core index passed to [`BTrace::producer`](crate::BTrace::producer)
    /// is out of range.
    InvalidCore {
        /// The requested core index.
        core: usize,
        /// Number of cores the tracer was configured with.
        cores: usize,
    },
    /// The payload cannot fit in a data block.
    EntryTooLarge {
        /// Requested payload size in bytes.
        payload: usize,
        /// Largest payload a block can hold.
        max: usize,
    },
    /// The requested resize target is invalid (not a multiple of the block
    /// and active-block granularity, zero, or beyond the reserved maximum).
    InvalidResize(String),
    /// A resize could not finish because producers holding unconfirmed
    /// grants did not drain within the deadline.
    ResizeTimeout {
        /// Index of the metadata block still referenced by a producer.
        meta: usize,
    },
    /// The memory substrate failed after the bounded retry budget was
    /// exhausted. For a grow this means the tracer fell back to its
    /// pre-resize geometry and keeps recording (the fallback is counted in
    /// `Stats::resize_fallbacks` and reflected in
    /// [`TracerState`](crate::TracerState)); producers are never affected.
    Region(btrace_vmem::RegionError),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            TraceError::InvalidCore { core, cores } => {
                write!(f, "core {core} out of range: tracer configured with {cores} cores")
            }
            TraceError::EntryTooLarge { payload, max } => {
                write!(f, "payload of {payload} bytes exceeds the per-block maximum of {max} bytes")
            }
            TraceError::InvalidResize(msg) => write!(f, "invalid resize: {msg}"),
            TraceError::ResizeTimeout { meta } => {
                write!(f, "resize timed out waiting for producers to leave metadata block {meta}")
            }
            TraceError::Region(e) => write!(f, "memory region error: {e}"),
        }
    }
}

impl Error for TraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceError::Region(e) => Some(e),
            _ => None,
        }
    }
}

impl From<btrace_vmem::RegionError> for TraceError {
    fn from(e: btrace_vmem::RegionError) -> Self {
        TraceError::Region(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = TraceError::Region(btrace_vmem::RegionError::InvalidSize { requested: 3 });
        assert!(e.to_string().contains("memory region error"));
        assert!(e.source().is_some());
        let e = TraceError::EntryTooLarge { payload: 9000, max: 4064 };
        assert!(e.to_string().contains("9000"));
        assert!(e.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TraceError>();
    }
}
