//! A uniform interface over tracer buffer disciplines, used by the replay
//! harness to drive BTrace and every baseline through identical code paths.
//!
//! The two-phase `try_begin` / [`SinkGrant::commit`] split exists so the
//! replayer can emulate a thread being **preempted mid-write** — the
//! scenario that distinguishes the tracers (§2.2 Observation 2): BTrace
//! skips the pinned block, LTTng-style buffers drop the newest entries,
//! ftrace-style buffers disable preemption, and a global queue blocks.

use crate::consumer::Consumer;
use crate::error::TraceError;
use crate::producer::Grant;
use crate::BTrace;

/// Result of an attempted record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecordOutcome {
    /// The event was stored.
    Recorded,
    /// The tracer chose to drop the event (e.g. LTTng-style drop-newest).
    Dropped,
}

/// Result of an attempted two-phase begin.
#[derive(Debug)]
pub enum Begin<G> {
    /// Space was reserved; commit the grant to publish the event.
    Granted(G),
    /// The tracer refused the reservation and the event is lost.
    Dropped,
}

/// An event as drained for analysis: just the identifying metadata, not the
/// payload (the evaluation only needs stamps and sizes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CollectedEvent {
    /// The unique, monotonically increasing logic stamp assigned at record
    /// time (§5 replaying setup).
    pub stamp: u64,
    /// Core the event was recorded on.
    pub core: u16,
    /// Producer thread id.
    pub tid: u32,
    /// On-buffer footprint in bytes.
    pub stored_bytes: u32,
}

/// A drained event including its payload bytes, for consumers that decode
/// tracepoint contents (e.g. the `btrace-atrace` front-end).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FullEvent {
    /// Logic stamp assigned at record time.
    pub stamp: u64,
    /// Core the event was recorded on.
    pub core: u16,
    /// Producer thread id.
    pub tid: u32,
    /// The recorded payload bytes.
    pub payload: Vec<u8>,
}

/// An in-flight reservation produced by [`TraceSink::try_begin`].
pub trait SinkGrant: Send {
    /// Writes the entry and publishes it.
    fn commit(self, stamp: u64, tid: u32, payload: &[u8]);
}

/// A tracer buffer discipline under evaluation.
pub trait TraceSink: Send + Sync {
    /// The reservation type handed out by [`TraceSink::try_begin`].
    type Grant: SinkGrant;

    /// Short identifier used in benchmark tables (e.g. `"BTrace"`).
    fn name(&self) -> &'static str;

    /// Reserves space for a `payload_len`-byte event on `core`.
    fn try_begin(&self, core: usize, tid: u32, payload_len: usize) -> Begin<Self::Grant>;

    /// Whether the replayer is allowed to simulate preemption between
    /// `try_begin` and `commit`. `false` models ftrace's
    /// preemption-disabled writes (§2.2).
    fn preemptible_writes(&self) -> bool {
        true
    }

    /// One-shot record: reserve, write, publish.
    fn record(&self, core: usize, tid: u32, stamp: u64, payload: &[u8]) -> RecordOutcome {
        match self.try_begin(core, tid, payload.len()) {
            Begin::Granted(grant) => {
                grant.commit(stamp, tid, payload);
                RecordOutcome::Recorded
            }
            Begin::Dropped => RecordOutcome::Dropped,
        }
    }

    /// Drains every readable event for analysis. Called after the replay has
    /// quiesced, so implementations need not be concurrent with producers.
    fn drain(&self) -> Vec<CollectedEvent>;

    /// Like [`TraceSink::drain`], but with the payload bytes — the dump
    /// path of a real deployment (§2.1's daemon collector).
    fn drain_full(&self) -> Vec<FullEvent>;

    /// Total buffer capacity in bytes, for effectivity-ratio computations.
    fn capacity_bytes(&self) -> usize;
}

/// Sinks shared behind an `Arc` are sinks too (delegation), so sessions,
/// collectors, and replayers can share one tracer.
impl<S: TraceSink> TraceSink for std::sync::Arc<S> {
    type Grant = S::Grant;

    fn name(&self) -> &'static str {
        S::name(self)
    }

    fn try_begin(&self, core: usize, tid: u32, payload_len: usize) -> Begin<S::Grant> {
        S::try_begin(self, core, tid, payload_len)
    }

    fn preemptible_writes(&self) -> bool {
        S::preemptible_writes(self)
    }

    fn record(&self, core: usize, tid: u32, stamp: u64, payload: &[u8]) -> RecordOutcome {
        S::record(self, core, tid, stamp, payload)
    }

    fn drain(&self) -> Vec<CollectedEvent> {
        S::drain(self)
    }

    fn drain_full(&self) -> Vec<FullEvent> {
        S::drain_full(self)
    }

    fn capacity_bytes(&self) -> usize {
        S::capacity_bytes(self)
    }
}

impl SinkGrant for Grant {
    fn commit(self, stamp: u64, tid: u32, payload: &[u8]) {
        // A payload-length mismatch is a harness bug; the grant's own Drop
        // converts the space to dummy filler, so this cannot wedge a replay.
        let _ = Grant::commit(self, stamp, tid, payload);
    }
}

/// BTrace as a [`TraceSink`]: never drops, never blocks; preempted writers
/// are handled by block skipping.
impl TraceSink for BTrace {
    type Grant = Grant;

    fn name(&self) -> &'static str {
        "BTrace"
    }

    fn try_begin(&self, core: usize, _tid: u32, payload_len: usize) -> Begin<Grant> {
        match self.producer(core).and_then(|p| p.begin(payload_len)) {
            Ok(grant) => Begin::Granted(grant),
            Err(TraceError::EntryTooLarge { .. }) | Err(_) => Begin::Dropped,
        }
    }

    fn record(&self, core: usize, tid: u32, stamp: u64, payload: &[u8]) -> RecordOutcome {
        // Fast path without the Grant's reference-count traffic: one
        // fetch-and-add to allocate, a word-wise copy, one to confirm.
        if core >= self.cores() {
            return RecordOutcome::Dropped;
        }
        match crate::producer::record_on(&self.shared, core, stamp, tid, payload) {
            Ok(()) => RecordOutcome::Recorded,
            Err(_) => RecordOutcome::Dropped,
        }
    }

    fn drain(&self) -> Vec<CollectedEvent> {
        let mut consumer = Consumer::new(std::sync::Arc::clone(&self.shared));
        consumer
            .collect()
            .events
            .iter()
            .map(|e| CollectedEvent {
                stamp: e.stamp(),
                core: e.core() as u16,
                tid: e.tid(),
                stored_bytes: e.stored_bytes() as u32,
            })
            .collect()
    }

    fn drain_full(&self) -> Vec<FullEvent> {
        let mut consumer = Consumer::new(std::sync::Arc::clone(&self.shared));
        consumer
            .collect()
            .events
            .into_iter()
            .map(|e| FullEvent {
                stamp: e.stamp(),
                core: e.core() as u16,
                tid: e.tid(),
                // Move the payload out instead of re-copying it: the drain
                // already owns the buffer.
                payload: e.into_payload(),
            })
            .collect()
    }

    fn capacity_bytes(&self) -> usize {
        BTrace::capacity_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Config;
    use btrace_vmem::Backing;

    fn sink() -> BTrace {
        BTrace::new(
            Config::new(2)
                .active_blocks(4)
                .block_bytes(256)
                .buffer_bytes(256 * 8)
                .backing(Backing::Heap),
        )
        .unwrap()
    }

    #[test]
    fn record_and_drain_via_trait() {
        let t = sink();
        assert_eq!(t.record(0, 5, 100, b"abc"), RecordOutcome::Recorded);
        assert_eq!(t.record(1, 6, 101, b"defg"), RecordOutcome::Recorded);
        let drained = t.drain();
        assert_eq!(drained.len(), 2);
        assert!(drained.iter().any(|e| e.stamp == 100 && e.core == 0 && e.tid == 5));
        assert!(drained.iter().any(|e| e.stamp == 101 && e.core == 1 && e.tid == 6));
    }

    #[test]
    fn two_phase_via_trait_objects() {
        fn drive<S: TraceSink>(sink: &S) {
            match sink.try_begin(0, 1, 4) {
                Begin::Granted(g) => g.commit(7, 1, b"wxyz"),
                Begin::Dropped => panic!("BTrace never drops"),
            }
        }
        let t = sink();
        drive(&t);
        assert_eq!(t.drain().len(), 1);
    }

    #[test]
    fn btrace_is_preemptible() {
        let t = sink();
        assert!(t.preemptible_writes());
        assert_eq!(t.name(), "BTrace");
        assert_eq!(TraceSink::capacity_bytes(&t), 256 * 8);
    }
}
