//! Tracer configuration (builder-style, per C-BUILDER).

use crate::error::TraceError;
use crate::event::{ENTRY_ALIGN, HEADER_BYTES};
use crate::layout::{map_gpos_div, Divider, Mapping};
use btrace_vmem::{Backing, FaultPlan};

/// Smallest permitted data block (must hold a block header plus one entry).
pub const MIN_BLOCK_BYTES: usize = 64;

/// Configuration for a [`BTrace`](crate::BTrace) instance.
///
/// The defaults mirror the paper's evaluation setup scaled to a library
/// context: 4 KiB data blocks (§5 "we set the size of each data block to be
/// one memory page") and `A = 16 × cores` active blocks (§5.1 sweet spot).
///
/// # Examples
///
/// ```rust
/// use btrace_core::Config;
///
/// // 12-core phone, 12 MiB buffer as in the paper's replay experiments.
/// let config = Config::new(12).buffer_bytes(12 << 20);
/// assert_eq!(config.cores(), 12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    cores: usize,
    buffer_bytes: usize,
    max_bytes: Option<usize>,
    block_bytes: usize,
    active_blocks: Option<usize>,
    backing: Backing,
    fault_plan: Option<FaultPlan>,
}

impl Config {
    /// Starts a configuration for a device with `cores` cores.
    pub fn new(cores: usize) -> Self {
        Self {
            cores,
            buffer_bytes: 4 << 20,
            max_bytes: None,
            block_bytes: 4096,
            active_blocks: None,
            backing: Backing::default(),
            fault_plan: None,
        }
    }

    /// Sets the initial buffer capacity in bytes. Must be a multiple of the
    /// block size times the number of active blocks.
    pub fn buffer_bytes(mut self, bytes: usize) -> Self {
        self.buffer_bytes = bytes;
        self
    }

    /// Sets the maximum capacity the buffer can ever be resized to; address
    /// space for this much is reserved up front (§4.4). Defaults to the
    /// initial capacity.
    pub fn max_bytes(mut self, bytes: usize) -> Self {
        self.max_bytes = Some(bytes);
        self
    }

    /// Sets the data block size in bytes (default 4096, one page).
    pub fn block_bytes(mut self, bytes: usize) -> Self {
        self.block_bytes = bytes;
        self
    }

    /// Sets the number of active blocks `A` (default `16 × cores`, the
    /// paper's empirically best setting, §5.1). Must be at least the number
    /// of cores "to ensure sufficient concurrency" (§3.2).
    pub fn active_blocks(mut self, blocks: usize) -> Self {
        self.active_blocks = Some(blocks);
        self
    }

    /// Selects the memory backing (default: platform best).
    pub fn backing(mut self, backing: Backing) -> Self {
        self.backing = backing;
        self
    }

    /// Wraps the backing in a deterministic [`FaultPlan`]: commits and
    /// decommits may fail, partially commit, or land late on the plan's
    /// seed-replayable schedule. For testing the tracer's degradation
    /// behaviour under memory pressure; see
    /// [`BTrace::fault_stats`](crate::BTrace::fault_stats).
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Validates the configuration, producing the derived geometry.
    pub(crate) fn resolve(&self) -> Result<Resolved, TraceError> {
        let err = |msg: String| Err(TraceError::InvalidConfig(msg));
        if self.cores == 0 || self.cores > 256 {
            return err(format!("cores must be in 1..=256, got {}", self.cores));
        }
        if self.block_bytes < MIN_BLOCK_BYTES
            || !self.block_bytes.is_multiple_of(ENTRY_ALIGN)
            || self.block_bytes > u32::MAX as usize / 4
        {
            return err(format!(
                "block_bytes must be a multiple of {ENTRY_ALIGN} in {MIN_BLOCK_BYTES}..=2^30, got {}",
                self.block_bytes
            ));
        }
        let active = self.active_blocks.unwrap_or(16 * self.cores);
        if active < self.cores {
            return err(format!(
                "active_blocks ({active}) must be >= cores ({}) to ensure sufficient concurrency",
                self.cores
            ));
        }
        let stride = self.block_bytes * active;
        if self.buffer_bytes == 0 || !self.buffer_bytes.is_multiple_of(stride) {
            return err(format!(
                "buffer_bytes ({}) must be a non-zero multiple of block_bytes * active_blocks ({stride})",
                self.buffer_bytes
            ));
        }
        let max_bytes = self.max_bytes.unwrap_or(self.buffer_bytes);
        if max_bytes < self.buffer_bytes || !max_bytes.is_multiple_of(stride) {
            return err(format!(
                "max_bytes ({max_bytes}) must be >= buffer_bytes and a multiple of block_bytes * active_blocks ({stride})"
            ));
        }
        let ratio = self.buffer_bytes / stride;
        if max_bytes / stride > u16::MAX as usize {
            return err(format!(
                "max_bytes implies a ratio of {} which exceeds the 16-bit ratio field",
                max_bytes / stride
            ));
        }
        // A data block must fit its block header plus at least one minimal entry.
        if self.block_bytes < 2 * HEADER_BYTES + ENTRY_ALIGN {
            return err(format!(
                "block_bytes {} cannot hold a block header plus an entry",
                self.block_bytes
            ));
        }
        if active as u64 >= 1 << 32 {
            return err(format!("active_blocks ({active}) exceeds the 32-bit mapping range"));
        }
        Ok(Resolved {
            cores: self.cores,
            block_bytes: self.block_bytes,
            active_blocks: active,
            ratio: ratio as u16,
            max_ratio: (max_bytes / stride) as u16,
            backing: self.backing,
            fault_plan: self.fault_plan,
            // Reciprocals precomputed once so the gpos mapping never pays a
            // hardware divide (layout::Divider).
            a_div: Divider::new(active as u64),
            ratio_div: Divider::new(ratio as u64),
        })
    }
}

/// Validated geometry derived from a [`Config`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Resolved {
    pub cores: usize,
    pub block_bytes: usize,
    pub active_blocks: usize,
    /// Initial `N / A`.
    pub ratio: u16,
    /// `N_max / A`; the reservation is `max_ratio * active_blocks * block_bytes`.
    pub max_ratio: u16,
    pub backing: Backing,
    /// Deterministic fault schedule to wrap the backing in, if any.
    pub fault_plan: Option<FaultPlan>,
    /// Divider by `active_blocks`, precomputed at resolve time.
    pub a_div: Divider,
    /// Divider by the *initial* `ratio`, precomputed at resolve time.
    ratio_div: Divider,
}

impl Resolved {
    pub fn data_blocks(&self) -> usize {
        self.ratio as usize * self.active_blocks
    }

    pub fn max_bytes(&self) -> usize {
        self.max_ratio as usize * self.active_blocks * self.block_bytes
    }

    /// Division-free `gpos` mapping under a live `ratio` read from a
    /// `ratio_and_pos` word. The precomputed divider covers the initial
    /// ratio; after a resize the live ratio differs and a divider is built
    /// on the fly — free for power-of-two ratios (the common geometry) and
    /// one `u128` division otherwise, paid only on the uncached slow path
    /// (the cached producer descriptor never maps).
    #[inline]
    pub(crate) fn map_live(&self, gpos: u64, ratio: u16) -> Mapping {
        if ratio == self.ratio {
            map_gpos_div(gpos, self.active_blocks, &self.a_div, ratio, &self.ratio_div)
        } else {
            let r_div = Divider::new(ratio as u64);
            map_gpos_div(gpos, self.active_blocks, &self.a_div, ratio, &r_div)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_geometry_resolves() {
        let r = Config::new(12).buffer_bytes(12 << 20).resolve().unwrap();
        assert_eq!(r.active_blocks, 192);
        assert_eq!(r.block_bytes, 4096);
        assert_eq!(r.data_blocks(), (12 << 20) / 4096);
        assert_eq!(r.ratio, 16);
    }

    #[test]
    fn zero_cores_rejected() {
        assert!(matches!(Config::new(0).resolve(), Err(TraceError::InvalidConfig(_))));
    }

    #[test]
    fn active_blocks_below_cores_rejected() {
        let c = Config::new(8).active_blocks(4);
        assert!(matches!(c.resolve(), Err(TraceError::InvalidConfig(_))));
    }

    #[test]
    fn buffer_must_be_multiple_of_stride() {
        let c = Config::new(2).active_blocks(4).block_bytes(256).buffer_bytes(256 * 4 + 256);
        assert!(c.resolve().is_err());
        let c = Config::new(2).active_blocks(4).block_bytes(256).buffer_bytes(256 * 8);
        assert_eq!(c.resolve().unwrap().ratio, 2);
    }

    #[test]
    fn max_bytes_reserves_headroom() {
        let c = Config::new(2)
            .active_blocks(4)
            .block_bytes(256)
            .buffer_bytes(256 * 4)
            .max_bytes(256 * 16);
        let r = c.resolve().unwrap();
        assert_eq!(r.ratio, 1);
        assert_eq!(r.max_ratio, 4);
        assert_eq!(r.max_bytes(), 256 * 16);
    }

    #[test]
    fn max_bytes_smaller_than_buffer_rejected() {
        let c = Config::new(2)
            .active_blocks(4)
            .block_bytes(256)
            .buffer_bytes(256 * 8)
            .max_bytes(256 * 4);
        assert!(c.resolve().is_err());
    }

    #[test]
    fn tiny_blocks_rejected() {
        assert!(Config::new(1).block_bytes(8).resolve().is_err());
        assert!(Config::new(1).block_bytes(100).resolve().is_err()); // unaligned
    }
}
