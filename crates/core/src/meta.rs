//! Per-metadata-block state and its lock-free transitions (paper §4.1–§4.2).
//!
//! A [`MetaBlock`] holds the two variables of Fig. 8: `Allocated` and
//! `Confirmed`, each packing `(rnd, pos)` ([`RndPos`]). The transitions are:
//!
//! * **allocate** — fetch-and-add on `Allocated.pos` (fast path);
//! * **confirm** — fetch-and-add on `Confirmed.pos` (out-of-order, §3.4);
//! * **close** — CAS `Allocated.pos` up to capacity so no further space can
//!   be handed out (§3.2), returning the dummy range to fill;
//! * **lock** — CAS `Confirmed` from `(r_prev, cap)` to `(r_new, 0)` to take
//!   exclusive ownership of the data block for a new round (§4.2 step ④);
//! * **reset** — CAS `Allocated` to `(r_new, header)` to begin the round
//!   (§4.2 step ⑥).
//!
//! Invariants maintained across these transitions:
//!
//! 1. `Confirmed.pos` counts bytes confirmed in the current round and never
//!    exceeds the block capacity.
//! 2. The round of `Confirmed` only advances through **lock**, which
//!    requires `Confirmed.pos == cap`; therefore any producer holding an
//!    unconfirmed in-capacity allocation *pins* the round — this is the
//!    implicit reference counting of §3.3.
//! 3. `Allocated.pos` may overshoot capacity; positions at or beyond
//!    capacity never correspond to writable space.

use crate::packed::RndPos;
use crate::sync::{AtomicU64, Ordering};
use crossbeam_utils::CachePadded;

/// Result of a fast-path allocation attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Alloc {
    /// Space `[pos, pos + need)` granted within the expected round.
    Fits {
        /// Start offset of the granted range.
        pos: u32,
    },
    /// The allocation crossed the capacity boundary: the caller owns the
    /// tail `[pos, cap)` and must dummy-fill and confirm it, then advance.
    Tail {
        /// Start of the tail the caller must dummy-fill.
        pos: u32,
    },
    /// The block was already exhausted (`pos >= cap`); advance.
    Exhausted,
    /// The allocation landed in a different round than expected (the caller
    /// is a straggler, §3.4); the actual round and position are returned so
    /// the caller can repair.
    Stale(RndPos),
}

/// Outcome of [`MetaBlock::close`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Close {
    /// The closer owns `[pos, cap)` of round `rnd` and must dummy-fill and
    /// confirm it.
    Fill {
        /// Round that was closed.
        rnd: u32,
        /// Start of the range to dummy-fill.
        pos: u32,
    },
    /// Nothing to do: allocation had already reached capacity.
    AlreadyFull,
}

/// One metadata block (128 bytes: two cache-padded atomics), managing
/// `Ratio` data blocks over its lifetime.
#[derive(Debug)]
pub(crate) struct MetaBlock {
    allocated: CachePadded<AtomicU64>,
    confirmed: CachePadded<AtomicU64>,
}

impl MetaBlock {
    /// Creates a metadata block that looks like it finished round 0 of an
    /// empty history: `Confirmed == (0, cap)`, so the first real round (>= 1)
    /// can lock it immediately.
    pub(crate) fn genesis(cap: u32) -> Self {
        Self {
            allocated: CachePadded::new(AtomicU64::new(RndPos::new(0, cap).to_raw())),
            confirmed: CachePadded::new(AtomicU64::new(RndPos::new(0, cap).to_raw())),
        }
    }

    pub(crate) fn allocated(&self) -> RndPos {
        RndPos::from_raw(self.allocated.load(Ordering::Acquire))
    }

    pub(crate) fn confirmed(&self) -> RndPos {
        RndPos::from_raw(self.confirmed.load(Ordering::Acquire))
    }

    /// Fast-path allocation: fetch-and-add `need` bytes expecting round
    /// `rnd` in a block of `cap` bytes.
    ///
    /// Ordering: `Acquire`, not `AcqRel`. The acquire side is load-bearing —
    /// it synchronizes with the `reset_allocated` release that began this
    /// round, so the granted range is known to lie past the prior round's
    /// contents (the block header and reset happen-before every allocation
    /// that observes the new round; a mismatch is caught as `Stale`). The
    /// release side is *not* needed: an allocation publishes nothing — the
    /// entry bytes written into the granted range are published by the
    /// subsequent [`MetaBlock::confirm`] release, never by the allocate.
    #[inline]
    pub(crate) fn alloc(&self, rnd: u32, need: u32, cap: u32) -> Alloc {
        let old = RndPos::from_raw(self.allocated.fetch_add(need as u64, Ordering::Acquire));
        if old.rnd != rnd {
            return Alloc::Stale(old);
        }
        if old.pos >= cap {
            Alloc::Exhausted
        } else if old.pos as u64 + need as u64 <= cap as u64 {
            Alloc::Fits { pos: old.pos }
        } else {
            Alloc::Tail { pos: old.pos }
        }
    }

    /// Confirms `len` bytes of the current round.
    ///
    /// Safe as a plain fetch-and-add because the caller holds an unconfirmed
    /// in-capacity allocation of the same round, which pins the round
    /// (invariant 2 above).
    ///
    /// Ordering: `Release`, not `AcqRel`. This is the *publication point* of
    /// the entry bytes: the consumer's acquire load of `Confirmed` (and the
    /// next round owner's `lock` CAS, which reads `Confirmed == (rnd, cap)`)
    /// synchronize with it, ordering the payload writes before any reuse or
    /// read. The acquire side is not needed: the confirmer takes no action
    /// based on the returned value and reads nothing another confirm
    /// published.
    #[inline]
    pub(crate) fn confirm(&self, len: u32) {
        self.confirmed.fetch_add(len as u64, Ordering::Release);
    }

    /// Closes the current allocation round `rnd`: raises `Allocated.pos` to
    /// `cap` so no new space is granted (§3.2).
    ///
    /// Returns the dummy range the **caller** must fill and confirm. If a
    /// concurrent allocation interleaves, the CAS retries; if the round has
    /// already moved past `rnd`, there is nothing to close.
    pub(crate) fn close(&self, rnd: u32, cap: u32) -> Close {
        let mut cur = RndPos::from_raw(self.allocated.load(Ordering::Acquire));
        loop {
            if cur.rnd != rnd || cur.pos >= cap {
                return Close::AlreadyFull;
            }
            match self.allocated.compare_exchange_weak(
                cur.to_raw(),
                RndPos::new(rnd, cap).to_raw(),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Close::Fill { rnd, pos: cur.pos },
                Err(actual) => cur = RndPos::from_raw(actual),
            }
        }
    }

    /// Attempts to lock the data block for round `rnd_new` (§4.2 step ④):
    /// CAS `Confirmed` from `(expected_prev_rnd, cap)` to `(rnd_new, 0)`.
    pub(crate) fn lock(&self, expected: RndPos, rnd_new: u32) -> bool {
        self.confirmed
            .compare_exchange(
                expected.to_raw(),
                RndPos::new(rnd_new, 0).to_raw(),
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
    }

    /// Resets `Allocated` for the freshly locked round (§4.2 step ⑥). The
    /// CAS loop absorbs straggler inflation of the stale value; it cannot
    /// race another reset because the lock serializes round owners.
    pub(crate) fn reset_allocated(&self, rnd_new: u32, header_len: u32) {
        let mut cur = self.allocated.load(Ordering::Acquire);
        loop {
            match self.allocated.compare_exchange_weak(
                cur,
                RndPos::new(rnd_new, header_len).to_raw(),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CAP: u32 = 256;

    #[test]
    fn genesis_is_lockable() {
        let m = MetaBlock::genesis(CAP);
        assert!(m.lock(RndPos::new(0, CAP), 1));
        assert_eq!(m.confirmed(), RndPos::new(1, 0));
        m.reset_allocated(1, 16);
        assert_eq!(m.allocated(), RndPos::new(1, 16));
    }

    #[test]
    fn alloc_fits_then_tail_then_exhausted() {
        let m = MetaBlock::genesis(CAP);
        assert!(m.lock(RndPos::new(0, CAP), 1));
        m.reset_allocated(1, 0);
        assert_eq!(m.alloc(1, 200, CAP), Alloc::Fits { pos: 0 });
        assert_eq!(m.alloc(1, 100, CAP), Alloc::Tail { pos: 200 });
        assert_eq!(m.alloc(1, 8, CAP), Alloc::Exhausted);
    }

    #[test]
    fn alloc_detects_stale_round() {
        let m = MetaBlock::genesis(CAP);
        assert!(m.lock(RndPos::new(0, CAP), 1));
        m.reset_allocated(1, 0);
        match m.alloc(7, 16, CAP) {
            Alloc::Stale(actual) => {
                assert_eq!(actual.rnd, 1);
                assert_eq!(actual.pos, 0);
            }
            other => panic!("expected Stale, got {other:?}"),
        }
    }

    #[test]
    fn close_returns_fill_range_once() {
        let m = MetaBlock::genesis(CAP);
        assert!(m.lock(RndPos::new(0, CAP), 1));
        m.reset_allocated(1, 16);
        assert_eq!(m.close(1, CAP), Close::Fill { rnd: 1, pos: 16 });
        assert_eq!(m.close(1, CAP), Close::AlreadyFull);
        assert_eq!(m.close(2, CAP), Close::AlreadyFull); // wrong round
        assert_eq!(m.alloc(1, 8, CAP), Alloc::Exhausted);
    }

    #[test]
    fn lock_requires_full_confirmation() {
        let m = MetaBlock::genesis(CAP);
        assert!(m.lock(RndPos::new(0, CAP), 1));
        m.reset_allocated(1, 0);
        assert_eq!(m.alloc(1, 64, CAP), Alloc::Fits { pos: 0 });
        m.confirm(32); // only half confirmed
        assert!(!m.lock(RndPos::new(1, CAP), 2), "must not lock with unconfirmed bytes");
        m.confirm(32);
        // Block is not full (only 64 of 256 confirmed): still not lockable.
        assert!(!m.lock(RndPos::new(1, CAP), 2));
        // Close and fill the rest, confirming it.
        if let Close::Fill { pos, .. } = m.close(1, CAP) {
            m.confirm(CAP - pos);
        } else {
            panic!("expected fill");
        }
        assert!(m.lock(RndPos::new(1, CAP), 2));
    }

    #[test]
    fn unconfirmed_allocation_pins_the_round() {
        let m = MetaBlock::genesis(CAP);
        assert!(m.lock(RndPos::new(0, CAP), 1));
        m.reset_allocated(1, 0);
        assert_eq!(m.alloc(1, 64, CAP), Alloc::Fits { pos: 0 });
        // Close the block around the unconfirmed allocation.
        if let Close::Fill { pos, .. } = m.close(1, CAP) {
            m.confirm(CAP - pos);
        }
        // confirmed = CAP - 64: lock must fail until the straggler confirms.
        assert!(!m.lock(RndPos::new(1, CAP), 2));
        m.confirm(64);
        assert!(m.lock(RndPos::new(1, CAP), 2));
    }

    #[test]
    fn concurrent_alloc_confirm_converges() {
        use std::sync::Arc;
        let m = Arc::new(MetaBlock::genesis(1 << 20));
        assert!(m.lock(RndPos::new(0, 1 << 20), 1));
        m.reset_allocated(1, 0);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        if let Alloc::Fits { .. } = m.alloc(1, 16, 1 << 20) {
                            m.confirm(16);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.allocated().pos, 4 * 1000 * 16);
        assert_eq!(m.confirmed().pos, 4 * 1000 * 16);
    }
}
