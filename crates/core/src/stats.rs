//! Diagnostic counters for the mechanisms the paper ablates: closing,
//! skipping, dummy filling, and straggler repair.
//!
//! The per-record counters (`records`, `recorded_bytes`) are kept per core
//! on padded cache lines — a single global counter would add cross-core
//! cache-line traffic to the otherwise contention-free fast path.

use crossbeam_utils::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};

/// Fast-path counters, one instance per core.
#[derive(Debug, Default)]
pub(crate) struct HotCounters {
    pub records: AtomicU64,
    pub recorded_bytes: AtomicU64,
}

/// Internal atomic counters.
#[derive(Debug)]
pub(crate) struct Counters {
    per_core: Box<[CachePadded<HotCounters>]>,
    pub dummy_bytes: AtomicU64,
    pub advances: AtomicU64,
    pub closes: AtomicU64,
    pub skips: AtomicU64,
    pub straggler_repairs: AtomicU64,
    pub resizes: AtomicU64,
}

impl Counters {
    pub(crate) fn new(cores: usize) -> Self {
        Self {
            per_core: (0..cores).map(|_| CachePadded::new(HotCounters::default())).collect(),
            dummy_bytes: AtomicU64::new(0),
            advances: AtomicU64::new(0),
            closes: AtomicU64::new(0),
            skips: AtomicU64::new(0),
            straggler_repairs: AtomicU64::new(0),
            resizes: AtomicU64::new(0),
        }
    }

    #[inline]
    pub(crate) fn record_on_core(&self, core: usize, bytes: u64) {
        let hot = &self.per_core[core];
        hot.records.fetch_add(1, Ordering::Relaxed);
        hot.recorded_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records committed so far on `core` (relaxed; used by the telemetry
    /// sampling decision).
    #[cfg(feature = "telemetry")]
    #[inline]
    pub(crate) fn records_on_core(&self, core: usize) -> u64 {
        self.per_core[core].records.load(Ordering::Relaxed)
    }

    /// Per-core `(records, recorded_bytes)` pairs, indexed by core.
    #[cfg(feature = "telemetry")]
    pub(crate) fn per_core_snapshot(&self) -> Vec<(u64, u64)> {
        self.per_core
            .iter()
            .map(|c| (c.records.load(Ordering::Relaxed), c.recorded_bytes.load(Ordering::Relaxed)))
            .collect()
    }

    pub(crate) fn bump(&self, counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add(&self, counter: &AtomicU64, v: u64) {
        counter.fetch_add(v, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> Stats {
        Stats {
            records: self.per_core.iter().map(|c| c.records.load(Ordering::Relaxed)).sum(),
            recorded_bytes: self
                .per_core
                .iter()
                .map(|c| c.recorded_bytes.load(Ordering::Relaxed))
                .sum(),
            dummy_bytes: self.dummy_bytes.load(Ordering::Relaxed),
            advances: self.advances.load(Ordering::Relaxed),
            closes: self.closes.load(Ordering::Relaxed),
            skips: self.skips.load(Ordering::Relaxed),
            straggler_repairs: self.straggler_repairs.load(Ordering::Relaxed),
            resizes: self.resizes.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time snapshot of the tracer's diagnostic counters.
///
/// Obtained from [`BTrace::stats`](crate::BTrace::stats). All counts are
/// cumulative since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct Stats {
    /// Successfully recorded events.
    pub records: u64,
    /// Payload bytes recorded (on-buffer encoded size).
    pub recorded_bytes: u64,
    /// Bytes spent on dummy filler (tail fills, closes, repairs).
    pub dummy_bytes: u64,
    /// Block advancements (slow-path executions).
    pub advances: u64,
    /// Blocks closed while only partially filled (§3.2).
    pub closes: u64,
    /// Blocks skipped to preserve availability (§3.4).
    pub skips: u64,
    /// Straggler allocations repaired after landing in a newer round.
    pub straggler_repairs: u64,
    /// Completed resize operations.
    pub resizes: u64,
}

impl Stats {
    /// Fraction of written bytes wasted on dummy filler; 0.0 when nothing
    /// has been written.
    pub fn dummy_fraction(&self) -> f64 {
        let total = self.recorded_bytes + self.dummy_bytes;
        if total == 0 {
            0.0
        } else {
            self.dummy_bytes as f64 / total as f64
        }
    }

    /// Observed effectivity ratio: the fraction of written bytes that
    /// carried real payload, the quantity the paper bounds by `1 − A/N`
    /// (§3.2). Complement of [`dummy_fraction`](Stats::dummy_fraction);
    /// 1.0 when nothing has been written (no waste yet).
    pub fn effectivity_ratio(&self) -> f64 {
        1.0 - self.dummy_fraction()
    }

    /// Skips per advance: how often the slow path found its candidate
    /// block still pinned by unconfirmed writes and skipped it (§3.4).
    /// 0.0 when no advance has run.
    pub fn skip_rate(&self) -> f64 {
        if self.advances == 0 {
            0.0
        } else {
            self.skips as f64 / self.advances as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps() {
        let c = Counters::new(2);
        c.record_on_core(0, 32);
        c.record_on_core(1, 16);
        c.add(&c.dummy_bytes, 128);
        let s = c.snapshot();
        assert_eq!(s.records, 2);
        assert_eq!(s.recorded_bytes, 48);
        assert_eq!(s.dummy_bytes, 128);
        assert_eq!(s.skips, 0);
    }

    #[test]
    fn dummy_fraction_handles_zero() {
        assert_eq!(Stats::default().dummy_fraction(), 0.0);
        let s = Stats { recorded_bytes: 300, dummy_bytes: 100, ..Stats::default() };
        assert!((s.dummy_fraction() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn effectivity_ratio_complements_dummy_fraction() {
        assert_eq!(Stats::default().effectivity_ratio(), 1.0);
        let s = Stats { recorded_bytes: 300, dummy_bytes: 100, ..Stats::default() };
        assert!((s.effectivity_ratio() - 0.75).abs() < 1e-9);
        assert!((s.effectivity_ratio() + s.dummy_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn skip_rate_handles_zero_advances() {
        assert_eq!(Stats::default().skip_rate(), 0.0);
        let s = Stats { advances: 40, skips: 10, ..Stats::default() };
        assert!((s.skip_rate() - 0.25).abs() < 1e-9);
    }
}
