//! Diagnostic counters for the mechanisms the paper ablates: closing,
//! skipping, dummy filling, and straggler repair.
//!
//! The per-record counters (`records`, `recorded_bytes`) are kept per core
//! on padded cache lines — a single global counter would add cross-core
//! cache-line traffic to the otherwise contention-free fast path — and are
//! *packed into one word* so the fast path pays exactly one relaxed
//! fetch-and-add per record instead of two.

use crossbeam_utils::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};

/// Bit where the record count lives in the packed word (low half).
const RECORDS_MASK: u64 = u32::MAX as u64;
/// Shift of the byte count (in 8-byte units) in the packed word (high half).
const BYTES8_SHIFT: u32 = 32;
/// Spill threshold: once either field's high guard bit is set, the adder
/// that observes it migrates the packed word into the 64-bit spill
/// accumulators. Records spill at 2^31, byte units at 2^30 — either field
/// would need another ~10^9 fast-path operations *after* the guard bit is
/// first observed to overflow into its neighbor, and every one of those
/// operations sees the guard and spills first.
const SPILL_GUARD: u64 = (1 << 31) | (1 << (BYTES8_SHIFT + 30));

/// Fast-path counters, one instance per core: a packed hot word
/// (`records` in the low 32 bits, recorded bytes / 8 in the high 32) plus
/// cold spill accumulators keeping the totals exact and unbounded.
#[derive(Debug, Default)]
pub(crate) struct HotCounters {
    packed: AtomicU64,
    records_spill: AtomicU64,
    bytes_spill: AtomicU64,
}

impl HotCounters {
    /// One record of `bytes` encoded bytes: a single relaxed add. All entry
    /// sizes are multiples of 8 (`ENTRY_ALIGN`), so bytes travel as 8-byte
    /// units and both fields fit one word.
    #[inline]
    fn record(&self, bytes: u64) {
        debug_assert_eq!(bytes % 8, 0, "entry sizes are 8-byte aligned");
        let old = self.packed.fetch_add(1 | (bytes >> 3 << BYTES8_SHIFT), Ordering::Relaxed);
        if old & SPILL_GUARD != 0 {
            self.spill();
        }
    }

    /// Migrates the packed word into the spill accumulators. Exact under
    /// races: `swap` removes precisely what it returns, concurrent adds land
    /// either before the swap (migrated here) or after (into the fresh
    /// zero), and a concurrent spiller just migrates a smaller remainder.
    #[cold]
    fn spill(&self) {
        let cur = self.packed.swap(0, Ordering::Relaxed);
        self.records_spill.fetch_add(cur & RECORDS_MASK, Ordering::Relaxed);
        self.bytes_spill.fetch_add((cur >> BYTES8_SHIFT) << 3, Ordering::Relaxed);
    }

    /// Exact `(records, recorded_bytes)` totals.
    fn totals(&self) -> (u64, u64) {
        let cur = self.packed.load(Ordering::Relaxed);
        (
            (cur & RECORDS_MASK) + self.records_spill.load(Ordering::Relaxed),
            ((cur >> BYTES8_SHIFT) << 3) + self.bytes_spill.load(Ordering::Relaxed),
        )
    }
}

/// Internal atomic counters.
#[derive(Debug)]
pub(crate) struct Counters {
    per_core: Box<[CachePadded<HotCounters>]>,
    pub dummy_bytes: AtomicU64,
    pub advances: AtomicU64,
    pub closes: AtomicU64,
    pub skips: AtomicU64,
    pub straggler_repairs: AtomicU64,
    pub resizes: AtomicU64,
    pub commit_failures: AtomicU64,
    pub resize_fallbacks: AtomicU64,
    pub lock_recoveries: AtomicU64,
    /// Live degradation condition, a bitset of [`degraded`] flags. Not a
    /// counter: set when a failure edge fires, and `RECLAIM_DEFERRED`
    /// clears again once the deferred reclaim finally lands.
    pub degraded: AtomicU64,
}

/// Bit assignments for [`Counters::degraded`].
pub(crate) mod degraded {
    /// A backing commit kept failing after retries; the last grow fell back
    /// to its pre-resize geometry.
    pub const COMMIT_FAILED: u64 = 1 << 0;
    /// A shrink completed logically but its decommit kept failing; physical
    /// reclaim is deferred to a later resize.
    pub const RECLAIM_DEFERRED: u64 = 1 << 1;
    /// The resize lock was found poisoned by a panicked caller and was
    /// recovered (geometry re-validated).
    pub const LOCK_RECOVERED: u64 = 1 << 2;
}

impl Counters {
    pub(crate) fn new(cores: usize) -> Self {
        Self {
            per_core: (0..cores).map(|_| CachePadded::new(HotCounters::default())).collect(),
            dummy_bytes: AtomicU64::new(0),
            advances: AtomicU64::new(0),
            closes: AtomicU64::new(0),
            skips: AtomicU64::new(0),
            straggler_repairs: AtomicU64::new(0),
            resizes: AtomicU64::new(0),
            commit_failures: AtomicU64::new(0),
            resize_fallbacks: AtomicU64::new(0),
            lock_recoveries: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
        }
    }

    /// Raises a [`degraded`] condition flag.
    pub(crate) fn set_degraded(&self, bit: u64) {
        self.degraded.fetch_or(bit, Ordering::Relaxed);
    }

    /// Clears a [`degraded`] condition flag (the condition healed).
    pub(crate) fn clear_degraded(&self, bit: u64) {
        self.degraded.fetch_and(!bit, Ordering::Relaxed);
    }

    pub(crate) fn degraded_bits(&self) -> u64 {
        self.degraded.load(Ordering::Relaxed)
    }

    #[inline]
    pub(crate) fn record_on_core(&self, core: usize, bytes: u64) {
        self.per_core[core].record(bytes);
    }

    /// Records committed so far on `core` (relaxed; used by the telemetry
    /// sampling decision). Reads only the hot packed word: the count resets
    /// when a spill migrates it, which merely restarts the sampling cadence
    /// — exactness is not needed for a 1-in-2^k decision.
    #[cfg(feature = "telemetry")]
    #[inline]
    pub(crate) fn records_on_core(&self, core: usize) -> u64 {
        self.per_core[core].packed.load(Ordering::Relaxed) & RECORDS_MASK
    }

    /// Per-core `(records, recorded_bytes)` pairs, indexed by core.
    #[cfg(feature = "telemetry")]
    pub(crate) fn per_core_snapshot(&self) -> Vec<(u64, u64)> {
        self.per_core.iter().map(|c| c.totals()).collect()
    }

    pub(crate) fn bump(&self, counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add(&self, counter: &AtomicU64, v: u64) {
        counter.fetch_add(v, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> Stats {
        let (records, recorded_bytes) = self
            .per_core
            .iter()
            .map(|c| c.totals())
            .fold((0, 0), |(r, b), (cr, cb)| (r + cr, b + cb));
        Stats {
            records,
            recorded_bytes,
            dummy_bytes: self.dummy_bytes.load(Ordering::Relaxed),
            advances: self.advances.load(Ordering::Relaxed),
            closes: self.closes.load(Ordering::Relaxed),
            skips: self.skips.load(Ordering::Relaxed),
            straggler_repairs: self.straggler_repairs.load(Ordering::Relaxed),
            resizes: self.resizes.load(Ordering::Relaxed),
            commit_failures: self.commit_failures.load(Ordering::Relaxed),
            resize_fallbacks: self.resize_fallbacks.load(Ordering::Relaxed),
            lock_recoveries: self.lock_recoveries.load(Ordering::Relaxed),
        }
    }

    /// Builds the typed degradation state from the flag bits and counters.
    pub(crate) fn state(&self) -> TracerState {
        let bits = self.degraded_bits();
        if bits == 0 {
            return TracerState::Healthy;
        }
        let s = self.snapshot();
        TracerState::Degraded(Degraded {
            commit_failed: bits & degraded::COMMIT_FAILED != 0,
            reclaim_deferred: bits & degraded::RECLAIM_DEFERRED != 0,
            lock_recovered: bits & degraded::LOCK_RECOVERED != 0,
            commit_failures: s.commit_failures,
            resize_fallbacks: s.resize_fallbacks,
            lock_recoveries: s.lock_recoveries,
        })
    }
}

/// A point-in-time snapshot of the tracer's diagnostic counters.
///
/// Obtained from [`BTrace::stats`](crate::BTrace::stats). All counts are
/// cumulative since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct Stats {
    /// Successfully recorded events.
    pub records: u64,
    /// Payload bytes recorded (on-buffer encoded size).
    pub recorded_bytes: u64,
    /// Bytes spent on dummy filler (tail fills, closes, repairs).
    pub dummy_bytes: u64,
    /// Block advancements (slow-path executions).
    pub advances: u64,
    /// Blocks closed while only partially filled (§3.2).
    pub closes: u64,
    /// Blocks skipped to preserve availability (§3.4).
    pub skips: u64,
    /// Straggler allocations repaired after landing in a newer round.
    pub straggler_repairs: u64,
    /// Completed resize operations.
    pub resizes: u64,
    /// Backing commit/decommit attempts that failed (each retry counts).
    pub commit_failures: u64,
    /// Resizes abandoned after exhausting commit retries, falling back to
    /// the pre-resize geometry.
    pub resize_fallbacks: u64,
    /// Poisoned resize locks recovered instead of propagating the panic.
    pub lock_recoveries: u64,
}

impl Stats {
    /// Fraction of written bytes wasted on dummy filler; 0.0 when nothing
    /// has been written.
    pub fn dummy_fraction(&self) -> f64 {
        let total = self.recorded_bytes + self.dummy_bytes;
        if total == 0 {
            0.0
        } else {
            self.dummy_bytes as f64 / total as f64
        }
    }

    /// Observed effectivity ratio: the fraction of written bytes that
    /// carried real payload, the quantity the paper bounds by `1 − A/N`
    /// (§3.2). Complement of [`dummy_fraction`](Stats::dummy_fraction);
    /// 1.0 when nothing has been written (no waste yet).
    pub fn effectivity_ratio(&self) -> f64 {
        1.0 - self.dummy_fraction()
    }

    /// Skips per advance: how often the slow path found its candidate
    /// block still pinned by unconfirmed writes and skipped it (§3.4).
    /// 0.0 when no advance has run.
    pub fn skip_rate(&self) -> f64 {
        if self.advances == 0 {
            0.0
        } else {
            self.skips as f64 / self.advances as f64
        }
    }
}

/// Detail of a [`TracerState::Degraded`] report: which conditions are live
/// and the exact failure counters behind them.
///
/// The tracer *never* stops recording while degraded — producers keep
/// writing into the surviving blocks (§3.3's never-block guarantee extends
/// to resource-acquisition failure). Degradation means a resize could not
/// fully take effect or a reclaim is pending.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct Degraded {
    /// A backing commit kept failing after retries; the last grow fell back
    /// to its pre-resize geometry.
    pub commit_failed: bool,
    /// A shrink completed logically but physical reclaim is deferred; a
    /// later resize retries the decommit. Clears once reclaim lands.
    pub reclaim_deferred: bool,
    /// A resize caller panicked and poisoned the resize lock; the lock was
    /// recovered and the geometry re-validated.
    pub lock_recovered: bool,
    /// Total failed commit/decommit attempts (retries included).
    pub commit_failures: u64,
    /// Resizes that fell back to their pre-resize geometry.
    pub resize_fallbacks: u64,
    /// Poisoned-lock recoveries performed.
    pub lock_recoveries: u64,
}

/// Current health of the tracer, from [`BTrace::state`](crate::BTrace::state).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TracerState {
    /// Every resource-acquisition edge has behaved so far.
    Healthy,
    /// A failure edge fired; recording continues on surviving blocks.
    Degraded(Degraded),
}

impl TracerState {
    /// Whether any degradation condition is live.
    pub fn is_degraded(&self) -> bool {
        matches!(self, TracerState::Degraded(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degraded_state_reflects_flags_and_counters() {
        let c = Counters::new(1);
        assert_eq!(c.state(), TracerState::Healthy);
        c.bump(&c.commit_failures);
        c.bump(&c.resize_fallbacks);
        c.set_degraded(degraded::COMMIT_FAILED);
        match c.state() {
            TracerState::Degraded(d) => {
                assert!(d.commit_failed);
                assert!(!d.reclaim_deferred);
                assert_eq!(d.commit_failures, 1);
                assert_eq!(d.resize_fallbacks, 1);
            }
            TracerState::Healthy => panic!("flag set, must be degraded"),
        }
        // A healed condition clears its flag.
        c.set_degraded(degraded::RECLAIM_DEFERRED);
        c.clear_degraded(degraded::RECLAIM_DEFERRED);
        c.clear_degraded(degraded::COMMIT_FAILED);
        assert_eq!(c.state(), TracerState::Healthy);
    }

    /// The telemetry crate republishes the degradation bit assignments so
    /// exporters and the doctor can label `HealthSnapshot::degraded_bits`
    /// without depending on core. The two copies must never drift.
    #[cfg(feature = "telemetry")]
    #[test]
    fn degraded_bits_match_telemetry_taxonomy() {
        assert_eq!(degraded::COMMIT_FAILED, btrace_telemetry::degraded::COMMIT_FAILED);
        assert_eq!(degraded::RECLAIM_DEFERRED, btrace_telemetry::degraded::RECLAIM_DEFERRED);
        assert_eq!(degraded::LOCK_RECOVERED, btrace_telemetry::degraded::LOCK_RECOVERED);
        let known: u64 = btrace_telemetry::degraded::ALL.iter().map(|i| i.bit).sum();
        assert_eq!(
            known,
            degraded::COMMIT_FAILED | degraded::RECLAIM_DEFERRED | degraded::LOCK_RECOVERED,
            "every core bit must be labeled in telemetry"
        );
    }

    #[test]
    fn snapshot_reflects_bumps() {
        let c = Counters::new(2);
        c.record_on_core(0, 32);
        c.record_on_core(1, 16);
        c.add(&c.dummy_bytes, 128);
        let s = c.snapshot();
        assert_eq!(s.records, 2);
        assert_eq!(s.recorded_bytes, 48);
        assert_eq!(s.dummy_bytes, 128);
        assert_eq!(s.skips, 0);
    }

    #[test]
    fn spill_keeps_totals_exact() {
        let c = Counters::new(1);
        // Preload the packed word right at both guard bits: the next record
        // observes them and migrates the word into the spill accumulators.
        c.per_core[0].packed.store(SPILL_GUARD, Ordering::Relaxed);
        c.record_on_core(0, 16);
        let (records, bytes) = c.per_core[0].totals();
        assert_eq!(records, (1 << 31) + 1);
        assert_eq!(bytes, (1u64 << 30 << 3) + 16);
        // The hot word is drained; further records keep exact totals.
        assert_eq!(c.per_core[0].packed.load(Ordering::Relaxed) & SPILL_GUARD, 0);
        c.record_on_core(0, 8);
        let s = c.snapshot();
        assert_eq!(s.records, (1 << 31) + 2);
        assert_eq!(s.recorded_bytes, (1u64 << 33) + 24);
    }

    #[test]
    fn dummy_fraction_handles_zero() {
        assert_eq!(Stats::default().dummy_fraction(), 0.0);
        let s = Stats { recorded_bytes: 300, dummy_bytes: 100, ..Stats::default() };
        assert!((s.dummy_fraction() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn effectivity_ratio_complements_dummy_fraction() {
        assert_eq!(Stats::default().effectivity_ratio(), 1.0);
        let s = Stats { recorded_bytes: 300, dummy_bytes: 100, ..Stats::default() };
        assert!((s.effectivity_ratio() - 0.75).abs() < 1e-9);
        assert!((s.effectivity_ratio() + s.dummy_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn skip_rate_handles_zero_advances() {
        assert_eq!(Stats::default().skip_rate(), 0.0);
        let s = Stats { advances: 40, skips: 10, ..Stats::default() };
        assert!((s.skip_rate() - 0.25).abs() < 1e-9);
    }
}
