//! Synchronization facade for the lock-free core.
//!
//! Every synchronization primitive the core algorithm relies on — the
//! `Allocated`/`Confirmed` metadata atomics, the global and core-local
//! `ratio_and_pos` words, the resize lock — is imported from this module
//! instead of `std::sync` directly. The facade has two personalities:
//!
//! * **Default builds** re-export the `std` types verbatim. There is no
//!   wrapper struct, no extra branch, no thread-local lookup: the facade
//!   compiles to exactly the code the core used before it existed, so the
//!   fast path pays zero overhead.
//! * **Under the `model` feature** the atomic types are replaced by
//!   instrumented wrappers whose every load/store/RMW first crosses a
//!   *yield point* ([`model_rt::yield_point`]). A deterministic scheduler
//!   (the `btrace-model` crate) installs a per-thread [`model_rt::Gate`]
//!   that blocks the thread at each yield point until the scheduler hands
//!   it the run token, which makes every interleaving of the lock-free
//!   protocol reproducible from a single `u64` seed.
//!
//! Threads with no gate installed (construction on the harness thread,
//! ordinary tests that happen to link a `model`-enabled core) fall through
//! to the plain operation, so enabling the feature never changes behavior —
//! it only adds scheduling hooks.
//!
//! What is deliberately **not** routed through the facade:
//!
//! * the data region's word atomics (`raw.rs`) — payload copies are already
//!   plain relaxed operations whose ordering is established externally by
//!   `Confirmed`; modeling every payload word would explode the schedule
//!   space without adding decision points to the protocol;
//! * the diagnostic counters (`stats.rs`) and telemetry — observability,
//!   not synchronization;
//! * the ratio-history `RwLock` (`layout.rs`) — its critical sections
//!   contain no facade operations, so a modeled thread can never be parked
//!   while holding it and blocking lock acquisition is safe.
//!
//! # Memory-ordering audit
//!
//! The hot-path orderings were audited and weakened to the minimum each
//! invariant needs; the justification lives as a comment at each site:
//!
//! * `MetaBlock::alloc` — `Acquire` RMW (synchronizes with the
//!   `reset_allocated` release that began the round; allocation publishes
//!   nothing, so no release side). Intermediate `fetch_add`s preserve the
//!   release sequence, so an alloc that reads from another alloc still
//!   synchronizes with the reset.
//! * `MetaBlock::confirm` — `Release` fetch-and-add (the publication point
//!   of entry bytes; readers pair with an acquire load, the next round
//!   owner with the `lock` CAS).
//! * `Shared::global_pos` / advance's claim fetch-and-add — `Acquire`
//!   (resizes are serialized by `resize_lock`; claiming publishes nothing).
//! * `capacity_blocks`, `resize_floor`, `committed_extent` —
//!   release stores under the resize lock, acquire loads at readers; the
//!   resize drain loop is the backstop for any racing advance.
//!
//! Note the model checker (`model_rt`) explores *interleavings* at these
//! yield points but executes on the host's (x86-TSO or ARM) memory model —
//! it validates the protocol's state machine under every schedule, not the
//! relaxations themselves; those rest on the written invariant arguments.

pub(crate) use std::sync::atomic::Ordering;
pub(crate) use std::sync::Arc;

#[cfg(not(feature = "model"))]
pub(crate) use std::sync::atomic::{AtomicU64, AtomicUsize};
#[cfg(not(feature = "model"))]
pub(crate) use std::sync::Mutex;

/// Polite busy-wait pause: lets another thread run before the caller
/// re-checks a condition it cannot make progress on (the resize drain and
/// EBR grace-period loops).
#[cfg(not(feature = "model"))]
#[inline]
pub(crate) fn spin_hint() {
    std::thread::yield_now();
}

/// Pause on a lock-free retry path whose progress depends on *other*
/// threads (all advancement candidates pinned by unconfirmed writes). In
/// production this is a plain CPU pause — the retry loop is already
/// obtaining fresh candidates, so an OS yield would only add latency. Under
/// the model it must deprioritize the caller, or a priority schedule would
/// starve the very thread whose confirm the retry is waiting on.
#[cfg(not(feature = "model"))]
#[inline]
pub(crate) fn contention_hint() {
    std::hint::spin_loop();
}

#[cfg(feature = "model")]
pub(crate) use self::model_rt::{contention_hint, spin_hint, AtomicU64, AtomicUsize, Mutex};

/// Model-checking runtime: the scheduler hook the instrumented facade types
/// call into, public so a deterministic-scheduler harness (the
/// `btrace-model` crate) can drive the core's interleavings.
#[cfg(feature = "model")]
pub mod model_rt {
    use std::cell::RefCell;
    use std::sync::atomic::Ordering;
    use std::sync::{Arc, LockResult, MutexGuard, TryLockError};

    /// A per-thread scheduling gate. The deterministic scheduler implements
    /// this and installs one instance per modeled thread; the facade calls
    /// it at every synchronization operation.
    pub trait Gate: Send + Sync {
        /// Called before every atomic operation: block until the scheduler
        /// grants this thread the run token.
        fn yield_point(&self);

        /// Like [`Gate::yield_point`], but hints that the thread is spinning
        /// on a condition only *another* thread can change (lock acquisition,
        /// drain loops). Priority-based schedules must deprioritize the
        /// caller here or the spin would starve the thread it waits on.
        fn yield_spin(&self);
    }

    thread_local! {
        static GATE: RefCell<Option<Arc<dyn Gate>>> = const { RefCell::new(None) };
    }

    /// Installs `gate` as the current thread's scheduler hook.
    pub fn install(gate: Arc<dyn Gate>) {
        GATE.with(|g| *g.borrow_mut() = Some(gate));
    }

    /// Removes the current thread's scheduler hook (no-op when none is
    /// installed).
    pub fn uninstall() {
        GATE.with(|g| *g.borrow_mut() = None);
    }

    /// Crosses a yield point: blocks until the installed gate schedules this
    /// thread. Threads without a gate pass straight through.
    #[inline]
    pub fn yield_point() {
        let gate = GATE.with(|g| g.borrow().as_ref().cloned());
        if let Some(gate) = gate {
            gate.yield_point();
        }
    }

    /// Crosses a spinning yield point (see [`Gate::yield_spin`]).
    #[inline]
    pub fn yield_spin() {
        let gate = GATE.with(|g| g.borrow().as_ref().cloned());
        match gate {
            Some(gate) => gate.yield_spin(),
            None => std::thread::yield_now(),
        }
    }

    /// Facade spin pause under the model: a deprioritizing yield.
    #[inline]
    pub(crate) fn spin_hint() {
        yield_spin();
    }

    /// Lock-free contention pause under the model: also a deprioritizing
    /// yield (see the non-model twin for why the production version is a
    /// plain CPU pause instead).
    #[inline]
    pub(crate) fn contention_hint() {
        yield_spin();
    }

    /// Instrumented drop-in for [`std::sync::atomic::AtomicU64`]: every
    /// operation is a scheduler yield point.
    ///
    /// `compare_exchange_weak` is strengthened to the strong variant so a
    /// spurious hardware failure can never desynchronize a seed replay.
    #[derive(Debug, Default)]
    pub struct AtomicU64 {
        inner: std::sync::atomic::AtomicU64,
    }

    impl AtomicU64 {
        /// Creates a new instrumented atomic.
        pub const fn new(v: u64) -> Self {
            Self { inner: std::sync::atomic::AtomicU64::new(v) }
        }

        /// Atomic load, preceded by a yield point.
        #[inline]
        pub fn load(&self, order: Ordering) -> u64 {
            yield_point();
            self.inner.load(order)
        }

        /// Atomic store, preceded by a yield point.
        #[inline]
        pub fn store(&self, val: u64, order: Ordering) {
            yield_point();
            self.inner.store(val, order);
        }

        /// Atomic fetch-and-add, preceded by a yield point.
        #[inline]
        pub fn fetch_add(&self, val: u64, order: Ordering) -> u64 {
            yield_point();
            self.inner.fetch_add(val, order)
        }

        /// Atomic compare-exchange, preceded by a yield point.
        #[inline]
        pub fn compare_exchange(
            &self,
            current: u64,
            new: u64,
            success: Ordering,
            failure: Ordering,
        ) -> Result<u64, u64> {
            yield_point();
            self.inner.compare_exchange(current, new, success, failure)
        }

        /// Atomic compare-exchange, preceded by a yield point. Deliberately
        /// the strong variant (no spurious failures) for replay determinism.
        #[inline]
        pub fn compare_exchange_weak(
            &self,
            current: u64,
            new: u64,
            success: Ordering,
            failure: Ordering,
        ) -> Result<u64, u64> {
            yield_point();
            self.inner.compare_exchange(current, new, success, failure)
        }
    }

    /// Instrumented drop-in for [`std::sync::atomic::AtomicUsize`].
    #[derive(Debug, Default)]
    pub struct AtomicUsize {
        inner: std::sync::atomic::AtomicUsize,
    }

    impl AtomicUsize {
        /// Creates a new instrumented atomic.
        pub const fn new(v: usize) -> Self {
            Self { inner: std::sync::atomic::AtomicUsize::new(v) }
        }

        /// Atomic load, preceded by a yield point.
        #[inline]
        pub fn load(&self, order: Ordering) -> usize {
            yield_point();
            self.inner.load(order)
        }

        /// Atomic store, preceded by a yield point.
        #[inline]
        pub fn store(&self, val: usize, order: Ordering) {
            yield_point();
            self.inner.store(val, order);
        }
    }

    /// Instrumented drop-in for [`std::sync::Mutex`]: acquisition spins on
    /// `try_lock` with deprioritizing yields instead of blocking in the OS,
    /// so a modeled thread parked at a yield point while holding the lock
    /// can always be scheduled to release it.
    #[derive(Debug, Default)]
    pub struct Mutex<T> {
        inner: std::sync::Mutex<T>,
    }

    impl<T> Mutex<T> {
        /// Creates a new instrumented mutex.
        pub const fn new(t: T) -> Self {
            Self { inner: std::sync::Mutex::new(t) }
        }

        /// Acquires the lock, yielding to the scheduler between attempts.
        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            loop {
                yield_point();
                match self.inner.try_lock() {
                    Ok(guard) => return Ok(guard),
                    Err(TryLockError::Poisoned(poisoned)) => return Err(poisoned),
                    Err(TryLockError::WouldBlock) => yield_spin(),
                }
            }
        }

        /// Clears the poison flag, mirroring
        /// [`std::sync::Mutex::clear_poison`].
        pub fn clear_poison(&self) {
            self.inner.clear_poison();
        }
    }
}
