//! Word-atomic views over the data region.
//!
//! Producers and the speculative consumer may touch the same bytes
//! concurrently (the consumer validates and discards torn reads, §4.3). To
//! keep those races defined behaviour in Rust's memory model, *every* access
//! to the data region goes through relaxed `AtomicU64` operations: entries
//! are 8-byte aligned and padded, so whole-word transfers lose nothing.
//! Ordering between a producer's payload writes and a consumer's reads is
//! established externally by the release fetch-and-add on `Confirmed` and
//! the acquire load of it.

use crate::config::Resolved;
use btrace_vmem::{Backing, Region};
use std::sync::atomic::{AtomicU64, Ordering};

/// The reserved data region plus its geometry.
pub(crate) struct DataRegion {
    region: Region,
    block_bytes: usize,
}

impl DataRegion {
    pub(crate) fn new(cfg: &Resolved) -> Result<Self, btrace_vmem::RegionError> {
        let region = reserve_padded(cfg.max_bytes(), cfg.backing, cfg.fault_plan)?;
        Ok(Self { region, block_bytes: cfg.block_bytes })
    }

    pub(crate) fn region(&self) -> &Region {
        &self.region
    }

    /// Byte offset of data block `data_idx`.
    pub(crate) fn block_offset(&self, data_idx: u64) -> usize {
        data_idx as usize * self.block_bytes
    }

    /// Base pointer for a `words`-long word run at `byte_off`, with the
    /// bounds and alignment checks hoisted out of the copy loops: the per-
    /// word address arithmetic below is then a single pointer increment.
    #[inline]
    fn word_run(&self, byte_off: usize, words: usize) -> *const AtomicU64 {
        debug_assert_eq!(byte_off % 8, 0, "data region access must be word aligned");
        debug_assert!(byte_off + words * 8 <= self.region.len());
        // SAFETY: the whole run is in-bounds (asserted) and 8-aligned
        // (region base is page aligned); AtomicU64 tolerates the concurrent
        // mixed access this module exists to make defined.
        unsafe { self.region.as_ptr().add(byte_off) as *const AtomicU64 }
    }

    /// Stores `words` starting at `byte_off` (relaxed; callers publish via
    /// `Confirmed`).
    #[inline]
    pub(crate) fn store_words(&self, byte_off: usize, words: &[u64]) {
        let base = self.word_run(byte_off, words.len());
        for (i, &w) in words.iter().enumerate() {
            // SAFETY: `base + i` is inside the run checked by `word_run`.
            unsafe { (*base.add(i)).store(w, Ordering::Relaxed) };
        }
    }

    /// Loads `out.len()` words starting at `byte_off`.
    #[inline]
    pub(crate) fn load_words(&self, byte_off: usize, out: &mut [u64]) {
        let base = self.word_run(byte_off, out.len());
        for (i, slot) in out.iter_mut().enumerate() {
            // SAFETY: `base + i` is inside the run checked by `word_run`.
            *slot = unsafe { (*base.add(i)).load(Ordering::Relaxed) };
        }
    }

    /// Stores `bytes` at `byte_off` (8-aligned) as whole-word transfers,
    /// zero-padding the final partial word. The source slice need not be
    /// aligned — each word is assembled with an unaligned 8-byte read
    /// (`from_le_bytes` on an exact chunk compiles to one). The padding
    /// stays within the entry's allocated, alignment-rounded space.
    #[inline]
    pub(crate) fn store_bytes(&self, byte_off: usize, bytes: &[u8]) {
        let full = bytes.len() / 8;
        let rest = bytes.len() % 8;
        let base = self.word_run(byte_off, full + (rest != 0) as usize);
        for (i, chunk) in bytes.chunks_exact(8).enumerate() {
            let w = u64::from_le_bytes(chunk.try_into().expect("chunk is 8 bytes"));
            // SAFETY: `base + i` is inside the run checked by `word_run`.
            unsafe { (*base.add(i)).store(w, Ordering::Relaxed) };
        }
        if rest != 0 {
            let mut tail = [0u8; 8];
            tail[..rest].copy_from_slice(&bytes[full * 8..]);
            // SAFETY: the tail word was included in the `word_run` length.
            unsafe { (*base.add(full)).store(u64::from_le_bytes(tail), Ordering::Relaxed) };
        }
    }

    /// Loads `len` bytes from `byte_off` (8-aligned) into `out` as whole-
    /// word transfers; the final word's excess bytes are trimmed by the
    /// length, never read past the reserved capacity.
    pub(crate) fn load_bytes(&self, byte_off: usize, out: &mut Vec<u8>, len: usize) {
        out.clear();
        if len == 0 {
            return;
        }
        let words = len.div_ceil(8);
        out.reserve(words * 8);
        let base = self.word_run(byte_off, words);
        let dst = out.as_mut_ptr();
        for i in 0..words {
            // SAFETY: `base + i` is inside the run checked by `word_run`;
            // the destination writes land within the `words * 8` bytes
            // reserved above (unaligned stores into spare capacity).
            unsafe {
                let w = (*base.add(i)).load(Ordering::Relaxed);
                (dst.add(i * 8) as *mut [u8; 8]).write_unaligned(w.to_le_bytes());
            }
        }
        // SAFETY: the first `words * 8 >= len` bytes were just initialized.
        unsafe { out.set_len(len) };
    }
}

impl std::fmt::Debug for DataRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DataRegion")
            .field("region", &self.region)
            .field("block_bytes", &self.block_bytes)
            .finish()
    }
}

/// Reserves a region of at least `bytes`, rounded up to the page size,
/// wrapping the backing in a fault schedule when the config asks for one.
fn reserve_padded(
    bytes: usize,
    backing: Backing,
    fault_plan: Option<btrace_vmem::FaultPlan>,
) -> Result<Region, btrace_vmem::RegionError> {
    let page = btrace_vmem::PAGE_SIZE;
    let padded = bytes.div_ceil(page) * page;
    match fault_plan {
        Some(plan) => Region::reserve_with_faults(padded, backing, plan),
        None => Region::reserve_with(padded, backing),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;

    fn region() -> DataRegion {
        let cfg = Config::new(1)
            .active_blocks(2)
            .block_bytes(512)
            .buffer_bytes(2 * 512)
            .backing(Backing::Heap)
            .resolve()
            .unwrap();
        let r = DataRegion::new(&cfg).unwrap();
        r.region().commit(0, r.region().len()).unwrap();
        r
    }

    #[test]
    fn words_roundtrip() {
        let r = region();
        r.store_words(16, &[0xDEAD_BEEF, 42]);
        let mut out = [0u64; 2];
        r.load_words(16, &mut out);
        assert_eq!(out, [0xDEAD_BEEF, 42]);
    }

    #[test]
    fn bytes_roundtrip_with_padding() {
        let r = region();
        let payload = b"hello world, tracing!"; // 21 bytes
        r.store_bytes(64, payload);
        let mut out = Vec::new();
        r.load_bytes(64, &mut out, payload.len());
        assert_eq!(&out, payload);
        // The padding word zero-fills beyond the payload.
        let mut w = [0u64; 1];
        r.load_words(64 + 16, &mut w);
        assert_eq!(w[0] & 0xFF_FF_FF_00_00_00_00_00, 0);
    }

    #[test]
    fn all_lengths_roundtrip_at_odd_offsets() {
        let r = region();
        // Every payload length through the head/tail split, at several
        // word-aligned bases, from an unaligned source slice — byte-exact.
        let src: Vec<u8> = (0..=255u8).cycle().take(80).collect();
        for base in [0usize, 8, 16, 72, 200] {
            for len in 0..=64usize {
                let payload = &src[1..1 + len]; // misaligned source
                r.store_bytes(base, payload);
                let mut out = Vec::new();
                r.load_bytes(base, &mut out, len);
                assert_eq!(out, payload, "base {base} len {len}");
            }
        }
    }

    #[test]
    fn load_bytes_reuses_scratch_capacity() {
        let r = region();
        r.store_bytes(0, b"scratch-reuse-check");
        let mut out = Vec::with_capacity(3); // deliberately too small
        r.load_bytes(0, &mut out, 19);
        assert_eq!(&out, b"scratch-reuse-check");
        r.load_bytes(0, &mut out, 0);
        assert!(out.is_empty());
    }

    #[test]
    fn block_offsets() {
        let r = region();
        assert_eq!(r.block_offset(0), 0);
        assert_eq!(r.block_offset(3), 3 * 512);
    }
}
