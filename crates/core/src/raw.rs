//! Word-atomic views over the data region.
//!
//! Producers and the speculative consumer may touch the same bytes
//! concurrently (the consumer validates and discards torn reads, §4.3). To
//! keep those races defined behaviour in Rust's memory model, *every* access
//! to the data region goes through relaxed `AtomicU64` operations: entries
//! are 8-byte aligned and padded, so whole-word transfers lose nothing.
//! Ordering between a producer's payload writes and a consumer's reads is
//! established externally by the release fetch-and-add on `Confirmed` and
//! the acquire load of it.

use crate::config::Resolved;
use btrace_vmem::{Backing, Region};
use std::sync::atomic::{AtomicU64, Ordering};

/// The reserved data region plus its geometry.
pub(crate) struct DataRegion {
    region: Region,
    block_bytes: usize,
}

impl DataRegion {
    pub(crate) fn new(cfg: &Resolved) -> Result<Self, btrace_vmem::RegionError> {
        let region = reserve_padded(cfg.max_bytes(), cfg.backing)?;
        Ok(Self { region, block_bytes: cfg.block_bytes })
    }

    pub(crate) fn region(&self) -> &Region {
        &self.region
    }

    /// Byte offset of data block `data_idx`.
    pub(crate) fn block_offset(&self, data_idx: u64) -> usize {
        data_idx as usize * self.block_bytes
    }

    #[inline]
    fn word(&self, byte_off: usize) -> &AtomicU64 {
        debug_assert_eq!(byte_off % 8, 0, "data region access must be word aligned");
        debug_assert!(byte_off + 8 <= self.region.len());
        // SAFETY: in-bounds (asserted), 8-aligned (region base is page
        // aligned), and AtomicU64 tolerates the concurrent mixed access this
        // module exists to make defined.
        unsafe { &*(self.region.as_ptr().add(byte_off) as *const AtomicU64) }
    }

    /// Stores `words` starting at `byte_off` (relaxed; callers publish via
    /// `Confirmed`).
    pub(crate) fn store_words(&self, byte_off: usize, words: &[u64]) {
        for (i, &w) in words.iter().enumerate() {
            self.word(byte_off + i * 8).store(w, Ordering::Relaxed);
        }
    }

    /// Loads `out.len()` words starting at `byte_off`.
    pub(crate) fn load_words(&self, byte_off: usize, out: &mut [u64]) {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.word(byte_off + i * 8).load(Ordering::Relaxed);
        }
    }

    /// Stores `bytes` at `byte_off` (8-aligned), zero-padding the final
    /// partial word. The padding stays within the entry's allocated,
    /// alignment-rounded space.
    pub(crate) fn store_bytes(&self, byte_off: usize, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        let mut off = byte_off;
        for chunk in chunks.by_ref() {
            let w = u64::from_le_bytes(chunk.try_into().expect("chunk is 8 bytes"));
            self.word(off).store(w, Ordering::Relaxed);
            off += 8;
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.word(off).store(u64::from_le_bytes(tail), Ordering::Relaxed);
        }
    }

    /// Loads `len` bytes from `byte_off` (8-aligned) into `out`.
    pub(crate) fn load_bytes(&self, byte_off: usize, out: &mut Vec<u8>, len: usize) {
        out.clear();
        out.reserve(len);
        let words = len / 8;
        for i in 0..words {
            let w = self.word(byte_off + i * 8).load(Ordering::Relaxed);
            out.extend_from_slice(&w.to_le_bytes());
        }
        let rest = len % 8;
        if rest != 0 {
            let w = self.word(byte_off + words * 8).load(Ordering::Relaxed);
            out.extend_from_slice(&w.to_le_bytes()[..rest]);
        }
    }
}

impl std::fmt::Debug for DataRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DataRegion")
            .field("region", &self.region)
            .field("block_bytes", &self.block_bytes)
            .finish()
    }
}

/// Reserves a region of at least `bytes`, rounded up to the page size.
fn reserve_padded(bytes: usize, backing: Backing) -> Result<Region, btrace_vmem::RegionError> {
    let page = btrace_vmem::PAGE_SIZE;
    let padded = bytes.div_ceil(page) * page;
    Region::reserve_with(padded, backing)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;

    fn region() -> DataRegion {
        let cfg = Config::new(1)
            .active_blocks(2)
            .block_bytes(512)
            .buffer_bytes(2 * 512)
            .backing(Backing::Heap)
            .resolve()
            .unwrap();
        let r = DataRegion::new(&cfg).unwrap();
        r.region().commit(0, r.region().len()).unwrap();
        r
    }

    #[test]
    fn words_roundtrip() {
        let r = region();
        r.store_words(16, &[0xDEAD_BEEF, 42]);
        let mut out = [0u64; 2];
        r.load_words(16, &mut out);
        assert_eq!(out, [0xDEAD_BEEF, 42]);
    }

    #[test]
    fn bytes_roundtrip_with_padding() {
        let r = region();
        let payload = b"hello world, tracing!"; // 21 bytes
        r.store_bytes(64, payload);
        let mut out = Vec::new();
        r.load_bytes(64, &mut out, payload.len());
        assert_eq!(&out, payload);
        // The padding word zero-fills beyond the payload.
        let mut w = [0u64; 1];
        r.load_words(64 + 16, &mut w);
        assert_eq!(w[0] & 0xFF_FF_FF_00_00_00_00_00, 0);
    }

    #[test]
    fn block_offsets() {
        let r = region();
        assert_eq!(r.block_offset(0), 0);
        assert_eq!(r.block_offset(3), 3 * 512);
    }
}
