//! White-box views of tracer internals for the deterministic model checker
//! (`model` feature only).
//!
//! The invariant checkers in `btrace-model` need to observe protocol state
//! the public API intentionally hides: the per-metadata-block
//! `Allocated`/`Confirmed` pairs, the global and core-local positions, and
//! the `gpos → (meta, rnd, data)` mapping. This module exposes read-only
//! snapshots of exactly that.
//!
//! Reads go through the instrumented sync facade, so a modeled checker
//! thread that inspects state mid-execution participates in the schedule
//! like any other observer; harness-thread reads (no gate installed) pass
//! straight through.

use crate::BTrace;

/// Snapshot of one metadata block's two packed counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetaView {
    /// Round of the `Allocated` word.
    pub alloc_rnd: u32,
    /// Byte watermark of the `Allocated` word (may overshoot capacity).
    pub alloc_pos: u32,
    /// Round of the `Confirmed` word.
    pub conf_rnd: u32,
    /// Confirmed byte count of the `Confirmed` word.
    pub conf_pos: u32,
}

/// Snapshots every metadata block, in index order.
pub fn meta_states(tracer: &BTrace) -> Vec<MetaView> {
    (0..tracer.shared.metas.len()).map(|idx| meta_state(tracer, idx)).collect()
}

/// Snapshots metadata block `meta_idx`.
///
/// # Panics
///
/// Panics when `meta_idx` is out of range.
pub fn meta_state(tracer: &BTrace, meta_idx: usize) -> MetaView {
    let meta = &tracer.shared.metas[meta_idx];
    let alloc = meta.allocated();
    let conf = meta.confirmed();
    MetaView { alloc_rnd: alloc.rnd, alloc_pos: alloc.pos, conf_rnd: conf.rnd, conf_pos: conf.pos }
}

/// Where a global block sequence number lives:
/// `(meta_idx, rnd, data_idx)` under the ratio that was live when it was
/// issued.
pub fn mapping(tracer: &BTrace, gpos: u64) -> (usize, u32, u64) {
    let map = tracer.shared.history.map(gpos);
    (map.meta_idx, map.rnd, map.data_idx)
}

/// Current global block sequence position.
pub fn global_pos(tracer: &BTrace) -> u64 {
    tracer.shared.global_pos().pos
}

/// Current block sequence position of `core`.
///
/// # Panics
///
/// Panics when `core` is out of range.
pub fn core_local_pos(tracer: &BTrace, core: usize) -> u64 {
    tracer.shared.core_local(core).pos
}

/// Data block capacity in bytes.
pub fn block_cap(tracer: &BTrace) -> u32 {
    tracer.shared.cap()
}
