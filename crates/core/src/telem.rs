//! Self-observation hooks (the `telemetry` feature).
//!
//! The tracer measures itself with the machinery from `btrace-telemetry`:
//! per-core sharded histograms on the record fast path, plain histograms
//! on the advance slow path and the consumer drain path, and a
//! [`HealthSnapshot`] builder that joins the diagnostic counters with live
//! buffer gauges.
//!
//! The fast path is *sampled*: timing every record would put two
//! `Instant::now()` calls (tens of nanoseconds each) around an operation
//! the paper budgets at ~10 ns. Instead, 1 in `2^k` records is timed,
//! chosen by masking the core's own record counter — no extra atomic
//! state, no RNG, and the untimed 63/64 pay only one relaxed load.
//! Slow paths (advance, drain) are orders of magnitude rarer and are
//! always timed.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Instant;

use btrace_telemetry::{
    CoreHealth, EventKind, FlightRecorder, HealthSnapshot, Histogram, ShardedHistogram,
};

use crate::buffer::Shared;

/// Sentinel mask value meaning "record timing disabled".
const TIMING_OFF: u64 = u64::MAX;

/// Default sampling interval: time 1 in 64 records.
pub(crate) const DEFAULT_SAMPLE_EVERY: u32 = 64;

/// Skip-storm rate window: skips are counted per window and emitted as a
/// single [`EventKind::SkipStorm`] recorder event when a window closes
/// over threshold — one event per storm, not one per skip, so a pinned
/// buffer cannot flood the recorder with its own symptom.
const SKIP_WINDOW_NS: u64 = 10_000_000;
/// Minimum skips within one window that count as a storm.
const SKIP_STORM_MIN: u64 = 16;

/// Per-tracer telemetry state, embedded in `Shared`.
pub(crate) struct Telemetry {
    /// Fast-path record latency, sharded per core.
    pub(crate) record_hist: ShardedHistogram,
    /// Slow-path (advance/close/skip) latency.
    pub(crate) advance_hist: Histogram,
    /// Consumer drain latency.
    pub(crate) drain_hist: Histogram,
    /// Control-plane flight recorder; shared with stream pipelines and
    /// exporters via [`crate::BTrace::flight_recorder`].
    pub(crate) recorder: Arc<FlightRecorder>,
    /// Start of the current skip-storm rate window (recorder ns).
    skip_window_start: AtomicU64,
    /// Skips observed in the current window.
    skip_window_skips: AtomicU64,
    /// A record is timed when `records & mask == 0`; [`TIMING_OFF`]
    /// disables timing.
    sample_mask: AtomicU64,
}

impl Telemetry {
    pub(crate) fn new(cores: usize) -> Self {
        Self {
            record_hist: ShardedHistogram::new(cores),
            advance_hist: Histogram::new(),
            drain_hist: Histogram::new(),
            recorder: Arc::new(FlightRecorder::with_default_capacity(cores)),
            skip_window_start: AtomicU64::new(0),
            skip_window_skips: AtomicU64::new(0),
            sample_mask: AtomicU64::new(DEFAULT_SAMPLE_EVERY as u64 - 1),
        }
    }

    /// Emits a control-plane event (resize, fault, state flip, EBR) onto
    /// the recorder's control shard.
    pub(crate) fn control(&self, kind: EventKind, a: u64, b: u64) {
        self.recorder.emit(self.recorder.control_shard(), kind, 0, a, b);
    }

    /// Accounts one block skip toward the current rate window; emits a
    /// [`EventKind::SkipStorm`] event when a closing window saw at least
    /// [`SKIP_STORM_MIN`] skips. Lock-free: the closer is elected by CAS
    /// on the window start, and skips landing during the handover stay in
    /// the counter for the next window.
    pub(crate) fn note_skip(&self, core: usize) {
        let now = self.recorder.now_ns();
        self.skip_window_skips.fetch_add(1, Relaxed);
        let start = self.skip_window_start.load(Relaxed);
        if now.saturating_sub(start) >= SKIP_WINDOW_NS
            && self.skip_window_start.compare_exchange(start, now, Relaxed, Relaxed).is_ok()
        {
            let skips = self.skip_window_skips.swap(0, Relaxed);
            if skips >= SKIP_STORM_MIN {
                self.recorder.emit(
                    self.recorder.core_shard(core),
                    EventKind::SkipStorm,
                    core as u32,
                    skips,
                    now - start,
                );
            }
        }
    }

    /// Sets the record-timing interval: `Some(n)` times roughly 1 in `n`
    /// records (`n` rounded up to a power of two), `None` disables timing.
    pub(crate) fn set_sample_every(&self, every: Option<u32>) {
        let mask = match every {
            None => TIMING_OFF,
            Some(n) => n.max(1).next_power_of_two() as u64 - 1,
        };
        self.sample_mask.store(mask, Relaxed);
    }

    /// Decides whether this record is timed, given the core's record count
    /// so far. One relaxed load when timing is off or the sample is not
    /// chosen; `Instant::now()` only for chosen samples.
    #[inline]
    pub(crate) fn record_timer(&self, records_so_far: u64) -> Option<Instant> {
        let mask = self.sample_mask.load(Relaxed);
        if mask != TIMING_OFF && records_so_far & mask == 0 {
            Some(Instant::now())
        } else {
            None
        }
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("sample_mask", &self.sample_mask.load(Relaxed))
            .finish_non_exhaustive()
    }
}

/// Builds a full health snapshot from the tracer's live state.
pub(crate) fn health_snapshot(shared: &Shared) -> HealthSnapshot {
    let stats = shared.counters.snapshot();
    let cap = shared.cap();
    let active = shared.active();

    // Occupancy of the active metadata rounds: how full each currently
    // live block is, by confirmed bytes. `pos` can transiently exceed the
    // block size (over-allocation before the tail check), so clamp. A
    // resize landing mid-scan republishes the geometry while meta rounds
    // are being forced closed and reopened, which skews the sum against a
    // mix of pre- and post-resize rounds — retry the scan against the
    // geometry it actually observed, and clamp the mean so no interleaving
    // can report an occupancy outside `[0, 1]`.
    let mut capacity_blocks;
    let mut open_blocks;
    let mut occupancy_sum;
    let mut attempts = 0;
    loop {
        capacity_blocks =
            shared.capacity_blocks.load(std::sync::atomic::Ordering::Acquire) as usize;
        open_blocks = 0;
        occupancy_sum = 0.0;
        for meta in shared.metas.iter() {
            let conf = meta.confirmed();
            let pos = conf.pos.min(cap);
            if pos < cap {
                open_blocks += 1;
            }
            occupancy_sum += pos as f64 / cap as f64;
        }
        attempts += 1;
        let live = shared.capacity_blocks.load(std::sync::atomic::Ordering::Acquire) as usize;
        if live == capacity_blocks || attempts >= 3 {
            // Either the scan saw one consistent geometry, or resizes are
            // storming; after a bounded number of retries report the last
            // scan (the clamp below keeps it in range) rather than block
            // the sampler behind the resize lock.
            capacity_blocks = live;
            break;
        }
    }
    let mean_occupancy = (occupancy_sum / active as f64).clamp(0.0, 1.0);

    let per_core = shared
        .counters
        .per_core_snapshot()
        .into_iter()
        .enumerate()
        .map(|(core, (records, recorded_bytes))| CoreHealth { core, records, recorded_bytes })
        .collect();

    HealthSnapshot {
        seq: 0,
        unix_ms: 0,
        age_ms: 0,
        cores: shared.cfg.cores,
        capacity_blocks,
        active_blocks: active,
        block_bytes: shared.cfg.block_bytes,
        capacity_bytes: capacity_blocks * shared.cfg.block_bytes,
        committed_bytes: shared.committed_extent.load(std::sync::atomic::Ordering::Acquire) as u64,
        open_blocks,
        mean_occupancy,
        records: stats.records,
        recorded_bytes: stats.recorded_bytes,
        dummy_bytes: stats.dummy_bytes,
        advances: stats.advances,
        closes: stats.closes,
        skips: stats.skips,
        straggler_repairs: stats.straggler_repairs,
        resizes: stats.resizes,
        commit_failures: stats.commit_failures,
        resize_fallbacks: stats.resize_fallbacks,
        lock_recoveries: stats.lock_recoveries,
        degraded_bits: shared.counters.degraded_bits(),
        // Export I/O counters live with the exporters; the Sampler fills
        // them in when it owns the export loop.
        export_retries: 0,
        export_drops: 0,
        effectivity_observed: stats.effectivity_ratio(),
        effectivity_bound: 1.0 - active as f64 / capacity_blocks.max(1) as f64,
        skip_rate: stats.skip_rate(),
        per_core,
        record_latency: shared.telem.record_hist.snapshot().summary(),
        advance_latency: shared.telem.advance_hist.snapshot().summary(),
        drain_latency: shared.telem.drain_hist.snapshot().summary(),
        rates: Default::default(),
        // Pipeline stage gauges are attached by whoever owns a running
        // stream (e.g. the CLI's `stream` command), not by the core.
        stream_stages: Vec::new(),
    }
}
