//! Packed atomic word layouts used by BTrace's metadata.
//!
//! Two packings exist (paper §4.1–§4.2):
//!
//! * [`RndPos`] — `(rnd: u32, pos: u32)`, used by the per-metadata-block
//!   `Allocated` and `Confirmed` variables. `rnd` counts how many rounds the
//!   metadata block has been used (and thereby names its current data
//!   block); `pos` is a byte watermark (`Allocated`) or a byte *count*
//!   (`Confirmed`, out-of-order confirmation).
//! * [`RatioPos`] — `(ratio: u16, pos: u48)`, used by the global and
//!   core-local `ratio_and_pos` variables. `pos` is a monotone global block
//!   sequence number; `ratio` is the live `N : A` data-to-metadata mapping
//!   ratio, packed alongside so both are read and updated atomically (§4.2).

/// `(rnd, pos)` packed into a `u64`: `rnd` in the high 32 bits, `pos` in the
/// low 32 bits.
///
/// A fetch-and-add of a byte size only touches `pos`; overflowing into `rnd`
/// would require 4 GiB of stale allocations against a single block between
/// two resets, which the protocol bounds to a few entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RndPos {
    /// Round counter of the metadata block.
    pub rnd: u32,
    /// Byte watermark or byte count within the data block.
    pub pos: u32,
}

impl RndPos {
    /// Creates a packed value.
    #[inline]
    pub const fn new(rnd: u32, pos: u32) -> Self {
        Self { rnd, pos }
    }

    /// Unpacks a raw `u64`.
    #[inline]
    pub const fn from_raw(raw: u64) -> Self {
        Self { rnd: (raw >> 32) as u32, pos: raw as u32 }
    }

    /// Packs into a raw `u64`.
    #[inline]
    pub const fn to_raw(self) -> u64 {
        ((self.rnd as u64) << 32) | self.pos as u64
    }
}

impl From<u64> for RndPos {
    fn from(raw: u64) -> Self {
        Self::from_raw(raw)
    }
}

impl From<RndPos> for u64 {
    fn from(v: RndPos) -> Self {
        v.to_raw()
    }
}

/// Number of bits used for the block-sequence position in [`RatioPos`].
pub const POS_BITS: u32 = 48;

/// `(ratio, pos)` packed into a `u64`: `ratio` in the high 16 bits, the
/// global block sequence number `pos` in the low 48 bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RatioPos {
    /// Live data-blocks-per-metadata-block ratio (`N / A`).
    pub ratio: u16,
    /// Monotone global block sequence number (gpos).
    pub pos: u64,
}

impl RatioPos {
    /// Creates a packed value.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `pos` does not fit in 48 bits.
    #[inline]
    pub const fn new(ratio: u16, pos: u64) -> Self {
        debug_assert!(pos < (1 << POS_BITS));
        Self { ratio, pos }
    }

    /// Unpacks a raw `u64`.
    #[inline]
    pub const fn from_raw(raw: u64) -> Self {
        Self { ratio: (raw >> POS_BITS) as u16, pos: raw & ((1 << POS_BITS) - 1) }
    }

    /// Packs into a raw `u64`.
    #[inline]
    pub const fn to_raw(self) -> u64 {
        ((self.ratio as u64) << POS_BITS) | self.pos
    }
}

impl From<u64> for RatioPos {
    fn from(raw: u64) -> Self {
        Self::from_raw(raw)
    }
}

impl From<RatioPos> for u64 {
    fn from(v: RatioPos) -> Self {
        v.to_raw()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rndpos_roundtrip() {
        for (rnd, pos) in [(0, 0), (1, 4096), (u32::MAX, u32::MAX), (7, 123)] {
            let v = RndPos::new(rnd, pos);
            assert_eq!(RndPos::from_raw(v.to_raw()), v);
        }
    }

    #[test]
    fn rndpos_faa_only_touches_pos() {
        let v = RndPos::new(5, 100).to_raw();
        let after = RndPos::from_raw(v + 28);
        assert_eq!(after, RndPos::new(5, 128));
    }

    #[test]
    fn ratiopos_roundtrip() {
        for (ratio, pos) in [(1u16, 0u64), (16, 123456), (u16::MAX, (1 << POS_BITS) - 1)] {
            let v = RatioPos::new(ratio, pos);
            assert_eq!(RatioPos::from_raw(v.to_raw()), v);
        }
    }

    #[test]
    fn ratiopos_increment_preserves_ratio() {
        let v = RatioPos::new(16, 41).to_raw();
        let after = RatioPos::from_raw(v + 1);
        assert_eq!(after, RatioPos::new(16, 42));
    }

    #[test]
    fn conversions_via_from() {
        let raw: u64 = RndPos::new(2, 3).into();
        assert_eq!(RndPos::from(raw), RndPos::new(2, 3));
        let raw: u64 = RatioPos::new(4, 5).into();
        assert_eq!(RatioPos::from(raw), RatioPos::new(4, 5));
    }
}
