//! Recording handles: [`Producer`] (per core) and [`Grant`] (two-phase
//! allocate/commit, the unit the paper's out-of-order confirmation operates
//! on).
//!
//! Producers are insulated from every resource-acquisition failure the
//! tracer can hit: commit/decommit happens only on the serialized resize
//! path (never here), a failed grow falls back to the pre-resize geometry,
//! and a failed reclaim is deferred — in all cases the blocks a producer
//! can reach are committed, so `record`/`begin`/`commit` keep succeeding
//! while the tracer reports [`TracerState::Degraded`]
//! (§3.3's never-block, never-fail guarantee extends to memory pressure).
//!
//! [`TracerState::Degraded`]: crate::TracerState::Degraded

use crate::buffer::{Granted, Shared};
use crate::error::TraceError;
use crate::event::{encoded_len, EntryHeader, EntryKind, HEADER_BYTES};
use crate::meta::Alloc;
use crate::sync::Arc;
use std::cell::Cell;

/// Largest payload that fits one entry in a block of `block_bytes`: the
/// block header consumes the first 16 bytes, the entry header another 16.
pub(crate) fn max_payload(block_bytes: usize) -> usize {
    (block_bytes - 2 * HEADER_BYTES).min(crate::event::MAX_ENTRY_BYTES - HEADER_BYTES)
}

/// A recording handle pinned to one core.
///
/// Handles are cheap to clone and share the tracer. Any number of threads
/// "running on" the same core may record through clones of the same handle —
/// the paper's oversubscription scenario — and none of them ever blocks:
/// space allocation is one fetch-and-add, confirmation is out of order.
///
/// # Examples
///
/// ```rust
/// use btrace_core::{BTrace, Config};
///
/// # fn main() -> Result<(), btrace_core::TraceError> {
/// let tracer = BTrace::new(Config::new(1).buffer_bytes(256 << 10).active_blocks(16))?;
/// let producer = tracer.producer(0)?;
///
/// // Convenience path: internal stamp clock.
/// producer.record(b"freq: cpu0 1.8GHz -> 2.4GHz")?;
///
/// // Two-phase path: allocate first, commit later (possibly after the
/// // thread was preempted in between).
/// let grant = producer.begin(12)?;
/// grant.commit(42, 7, b"sched-wakeup")?;
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Producer {
    shared: Arc<Shared>,
    core: u16,
    /// Cached descriptor of the block this handle last allocated from.
    ///
    /// The uncached path pays an acquire load of the core-local word plus a
    /// `gpos → (meta, round, data)` mapping on *every* record; this cache
    /// pays neither. It needs no invalidation protocol because it is
    /// self-validating: the allocation fetch-and-add carries the expected
    /// round, so any staleness — the block filled, another thread advanced
    /// the core, a wrap-around producer recycled the block, a resize moved
    /// the world — surfaces as `Exhausted`/`Tail`/`Stale` from `alloc`, and
    /// the `#[cold]` refresh path falls back to `Shared::allocate` and
    /// re-seeds the cache from its result. A `Cell` (not an atomic) keeps
    /// the fast path free of even relaxed RMWs; it makes `Producer` `!Sync`,
    /// which matches how handles are used — cloned per thread, never shared
    /// by reference.
    desc: Cell<Desc>,
}

/// See [`Producer::desc`].
#[derive(Clone, Copy, Debug)]
struct Desc {
    gpos: u64,
    rnd: u32,
    meta_idx: usize,
    data_idx: u64,
    data_off: usize,
}

impl Producer {
    pub(crate) fn new(shared: Arc<Shared>, core: u16) -> Self {
        // Seed from the core's current block; if it is already stale by the
        // first record, the round check degrades it to a refresh.
        let local = shared.core_local(core as usize);
        let map = shared.cfg.map_live(local.pos, local.ratio);
        let desc = Desc {
            gpos: local.pos,
            rnd: map.rnd,
            meta_idx: map.meta_idx,
            data_idx: map.data_idx,
            data_off: shared.data.block_offset(map.data_idx),
        };
        Self { shared, core, desc: Cell::new(desc) }
    }

    /// Cached-descriptor allocation: one fetch-and-add against the cached
    /// block, no core-local load, no mapping. Falls into [`Self::refresh`]
    /// when the cached block cannot take the entry.
    #[inline]
    fn allocate(&self, need: u32) -> Granted {
        let d = self.desc.get();
        match self.shared.metas[d.meta_idx].alloc(d.rnd, need, self.shared.cap()) {
            Alloc::Fits { pos } => Granted {
                gpos: d.gpos,
                rnd: d.rnd,
                meta_idx: d.meta_idx,
                data_idx: d.data_idx,
                data_off: d.data_off,
                offset: pos,
                len: need,
            },
            fail => self.refresh(need, fail, d),
        }
    }

    /// Slow path: settle the failed allocation against the cached block,
    /// then allocate through the shared path and re-seed the cache.
    #[cold]
    fn refresh(&self, need: u32, fail: Alloc, d: Desc) -> Granted {
        match fail {
            // We own the insufficient tail of the cached block: fill and
            // confirm it, exactly as the uncached path would (Fig. 8c). The
            // write is safe even against a concurrent shrink — the round
            // stays unconfirmed until our confirm, which the resize drain
            // waits on before any page is decommitted.
            Alloc::Tail { pos } => {
                let fill = self.shared.cap() - pos;
                self.shared.write_dummy_run(d.data_idx, pos, fill);
                self.shared.metas[d.meta_idx].confirm(fill);
            }
            // The cached block was recycled into a newer round by a
            // wrap-around producer; our fetch-and-add inflated *that* round
            // and must be repaired, or its pin wedges the block (§3.4).
            Alloc::Stale(actual) => {
                self.shared.repair_straggler(d.meta_idx, actual, need);
            }
            Alloc::Exhausted => {}
            Alloc::Fits { .. } => unreachable!("fast path handles Fits"),
        }
        let granted = self.shared.allocate(self.core as usize, need);
        self.desc.set(Desc {
            gpos: granted.gpos,
            rnd: granted.rnd,
            meta_idx: granted.meta_idx,
            data_idx: granted.data_idx,
            data_off: granted.data_off,
        });
        granted
    }

    /// The core this handle records on.
    pub fn core(&self) -> usize {
        self.core as usize
    }

    /// Records `payload` with a stamp from the tracer's convenience clock
    /// and a thread id of 0.
    ///
    /// # Errors
    ///
    /// [`TraceError::EntryTooLarge`] when the payload cannot fit in a block.
    pub fn record(&self, payload: &[u8]) -> Result<(), TraceError> {
        let stamp = self.shared.next_stamp();
        self.record_with(stamp, 0, payload)
    }

    /// Records `payload` with a caller-provided logic stamp and thread id.
    /// This is the hot path: one fetch-and-add against the cached block
    /// descriptor to allocate, a word-wise copy, one fetch-and-add to
    /// confirm, one packed relaxed add for the counters.
    ///
    /// # Errors
    ///
    /// [`TraceError::EntryTooLarge`] when the payload cannot fit in a block.
    #[inline]
    pub fn record_with(&self, stamp: u64, tid: u32, payload: &[u8]) -> Result<(), TraceError> {
        let shared = &*self.shared;
        let core = self.core as usize;
        let max = max_payload(shared.cfg.block_bytes);
        if payload.len() > max {
            return Err(TraceError::EntryTooLarge { payload: payload.len(), max });
        }
        let need = encoded_len(payload.len()) as u32;
        // Sampled fast-path timing: untimed records pay one relaxed load.
        #[cfg(feature = "telemetry")]
        let timer = shared.telem.record_timer(shared.counters.records_on_core(core));
        let granted = self.allocate(need);
        write_entry(
            shared,
            granted.data_off,
            granted.offset,
            granted.len,
            stamp,
            tid,
            self.core,
            payload,
        );
        shared.confirm_entry(granted.meta_idx, granted.len);
        shared.counters.record_on_core(core, granted.len as u64);
        #[cfg(feature = "telemetry")]
        if let Some(t0) = timer {
            shared.telem.record_hist.record(core, t0.elapsed().as_nanos() as u64);
        }
        Ok(())
    }

    /// Allocates space for a `payload_len`-byte entry without writing it,
    /// returning a [`Grant`] to commit later.
    ///
    /// Between `begin` and [`Grant::commit`] the owning thread may be
    /// preempted arbitrarily long; other producers on the same core keep
    /// recording (out-of-order confirmation) and, when the block fills,
    /// advancement skips rather than waits (§3.4). The unconfirmed grant
    /// pins its block's round, so the space can be neither reused nor
    /// reclaimed underneath it.
    ///
    /// # Errors
    ///
    /// [`TraceError::EntryTooLarge`] when the payload cannot fit in a block.
    pub fn begin(&self, payload_len: usize) -> Result<Grant, TraceError> {
        let need = self.encoded_need(payload_len)?;
        let granted = self.allocate(need);
        Ok(Grant {
            shared: Arc::clone(&self.shared),
            meta_idx: granted.meta_idx,
            data_off: granted.data_off,
            offset: granted.offset,
            len: granted.len,
            payload_len: payload_len as u32,
            core: self.core,
            gpos: granted.gpos,
            committed: false,
        })
    }

    fn encoded_need(&self, payload_len: usize) -> Result<u32, TraceError> {
        let max = max_payload(self.shared.cfg.block_bytes);
        if payload_len > max {
            return Err(TraceError::EntryTooLarge { payload: payload_len, max });
        }
        Ok(encoded_len(payload_len) as u32)
    }
}

impl std::fmt::Debug for Producer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Producer").field("core", &self.core).finish()
    }
}

/// The grant-free, uncached recording path used by the `TraceSink`
/// implementation (which has no per-handle state to cache a descriptor in).
/// [`Producer::record_with`] carries its own copy running over the cached
/// descriptor.
#[inline]
pub(crate) fn record_on(
    shared: &Shared,
    core: usize,
    stamp: u64,
    tid: u32,
    payload: &[u8],
) -> Result<(), TraceError> {
    let max = max_payload(shared.cfg.block_bytes);
    if payload.len() > max {
        return Err(TraceError::EntryTooLarge { payload: payload.len(), max });
    }
    let need = encoded_len(payload.len()) as u32;
    // Sampled fast-path timing: untimed records pay one relaxed load.
    #[cfg(feature = "telemetry")]
    let timer = shared.telem.record_timer(shared.counters.records_on_core(core));
    let granted = shared.allocate(core, need);
    write_entry(
        shared,
        granted.data_off,
        granted.offset,
        granted.len,
        stamp,
        tid,
        core as u16,
        payload,
    );
    shared.confirm_entry(granted.meta_idx, granted.len);
    shared.counters.record_on_core(core, granted.len as u64);
    #[cfg(feature = "telemetry")]
    if let Some(t0) = timer {
        shared.telem.record_hist.record(core, t0.elapsed().as_nanos() as u64);
    }
    Ok(())
}

#[inline]
#[allow(clippy::too_many_arguments)]
fn write_entry(
    shared: &Shared,
    data_off: usize,
    offset: u32,
    len: u32,
    stamp: u64,
    tid: u32,
    core: u16,
    payload: &[u8],
) {
    let pad = len as usize - HEADER_BYTES - payload.len();
    let header = EntryHeader {
        len: len as u16,
        kind: EntryKind::Data,
        pad: pad as u8,
        core: core as u8,
        tid,
        stamp,
    };
    let at = data_off + offset as usize;
    shared.data.store_words(at, &header.encode());
    shared.data.store_bytes(at + HEADER_BYTES, payload);
}

/// An allocated-but-unconfirmed entry (paper Fig. 8).
///
/// Obtained from [`Producer::begin`]; finish with [`Grant::commit`].
/// Dropping an uncommitted grant confirms the space as a dummy entry so the
/// block can still fill, close, and recycle — a crashed or cancelled writer
/// costs its bytes, never the buffer's liveness.
#[must_use = "an unfinished grant keeps its block from completing; commit it"]
pub struct Grant {
    shared: Arc<Shared>,
    meta_idx: usize,
    data_off: usize,
    offset: u32,
    len: u32,
    payload_len: u32,
    core: u16,
    gpos: u64,
    committed: bool,
}

impl Grant {
    /// Number of payload bytes this grant was sized for.
    pub fn payload_len(&self) -> usize {
        self.payload_len as usize
    }

    /// Global sequence number of the block holding the grant.
    pub fn gpos(&self) -> u64 {
        self.gpos
    }

    /// Writes the entry and confirms it (the out-of-order confirmation of
    /// §3.4 — grants commit in any order, each bumping the confirmed
    /// counter).
    ///
    /// # Errors
    ///
    /// [`TraceError::EntryTooLarge`] when `payload` is not exactly the
    /// length the grant was allocated for.
    pub fn commit(mut self, stamp: u64, tid: u32, payload: &[u8]) -> Result<(), TraceError> {
        if payload.len() != self.payload_len as usize {
            return Err(TraceError::EntryTooLarge {
                payload: payload.len(),
                max: self.payload_len as usize,
            });
        }
        write_entry(
            &self.shared,
            self.data_off,
            self.offset,
            self.len,
            stamp,
            tid,
            self.core,
            payload,
        );
        self.shared.confirm_entry(self.meta_idx, self.len);
        self.shared.counters.record_on_core(self.core as usize, self.len as u64);
        self.committed = true;
        Ok(())
    }
}

impl Drop for Grant {
    fn drop(&mut self) {
        if !self.committed {
            // Convert the reserved space into dummy filler and confirm it so
            // the block is not wedged (C-DTOR-FAIL: never fails, never blocks).
            let data_idx = (self.data_off / self.shared.cfg.block_bytes) as u64;
            self.shared.write_dummy_run(data_idx, self.offset, self.len);
            self.shared.confirm_entry(self.meta_idx, self.len);
        }
    }
}

impl std::fmt::Debug for Grant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Grant")
            .field("gpos", &self.gpos)
            .field("offset", &self.offset)
            .field("len", &self.len)
            .field("committed", &self.committed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::{BTrace, Config, TraceError};
    use btrace_vmem::Backing;

    fn tracer(cores: usize) -> BTrace {
        BTrace::new(
            Config::new(cores)
                .active_blocks(cores.max(4))
                .block_bytes(256)
                .buffer_bytes(256 * cores.max(4) * 4)
                .backing(Backing::Heap),
        )
        .unwrap()
    }

    #[test]
    fn record_then_collect_roundtrip() {
        let t = tracer(1);
        let p = t.producer(0).unwrap();
        p.record_with(1, 7, b"hello").unwrap();
        p.record_with(2, 7, b"world!").unwrap();
        let out = t.consumer().collect();
        let payloads: Vec<_> = out.events.iter().map(|e| e.payload().to_vec()).collect();
        assert_eq!(payloads, vec![b"hello".to_vec(), b"world!".to_vec()]);
        assert_eq!(out.events[0].stamp(), 1);
        assert_eq!(out.events[0].tid(), 7);
        assert_eq!(out.events[0].core(), 0);
    }

    #[test]
    fn oversized_payload_rejected() {
        let t = tracer(1);
        let p = t.producer(0).unwrap();
        let big = vec![0u8; 1024];
        assert!(matches!(p.record(&big), Err(TraceError::EntryTooLarge { .. })));
    }

    #[test]
    fn max_payload_is_accepted() {
        let t = tracer(1);
        let p = t.producer(0).unwrap();
        let payload = vec![0xAB; t.max_payload()];
        p.record(&payload).unwrap();
        let out = t.consumer().collect();
        assert_eq!(out.events.len(), 1);
        assert_eq!(out.events[0].payload(), &payload[..]);
    }

    #[test]
    fn grant_commit_publishes_entry() {
        let t = tracer(1);
        let p = t.producer(0).unwrap();
        let g = p.begin(4).unwrap();
        // Nothing visible while the grant is open.
        assert_eq!(t.consumer().collect().events.len(), 0, "open grant must hide the block");
        g.commit(9, 3, b"abcd").unwrap();
        let out = t.consumer().collect();
        assert_eq!(out.events.len(), 1);
        assert_eq!(out.events[0].stamp(), 9);
        assert_eq!(out.events[0].payload(), b"abcd");
    }

    #[test]
    fn grant_commit_wrong_len_rejected() {
        let t = tracer(1);
        let p = t.producer(0).unwrap();
        let g = p.begin(4).unwrap();
        assert!(g.commit(0, 0, b"too long").is_err());
        // The failed commit consumed the grant; its Drop confirmed a dummy,
        // so later records still flow.
        p.record(b"after").unwrap();
        let out = t.consumer().collect();
        assert_eq!(out.events.len(), 1);
    }

    #[test]
    fn dropped_grant_becomes_dummy() {
        let t = tracer(1);
        let p = t.producer(0).unwrap();
        drop(p.begin(32).unwrap());
        p.record_with(5, 0, b"next").unwrap();
        let out = t.consumer().collect();
        assert_eq!(out.events.len(), 1, "dummy must not surface as an event");
        assert_eq!(out.events[0].stamp(), 5);
        assert!(t.stats().dummy_bytes >= 48);
    }

    #[test]
    fn interleaved_grants_commit_out_of_order() {
        let t = tracer(1);
        let p = t.producer(0).unwrap();
        let g1 = p.begin(2).unwrap();
        let g2 = p.begin(2).unwrap();
        g2.commit(2, 1, b"g2").unwrap(); // T1 confirms before T0 (Fig. 8b)
        g1.commit(1, 0, b"g1").unwrap();
        let out = t.consumer().collect();
        let stamps: Vec<_> = out.events.iter().map(|e| e.stamp()).collect();
        assert_eq!(stamps, vec![1, 2], "buffer order follows allocation order");
    }

    #[test]
    fn preempted_grant_does_not_block_other_threads() {
        let t = tracer(1);
        let p = t.producer(0).unwrap();
        let held = p.begin(8).unwrap(); // simulated preemption mid-write
                                        // Other threads on the core keep writing straight through block
                                        // boundaries (the held grant's block is skipped at wrap-around).
        for i in 0..200 {
            p.record_with(100 + i, 1, b"filler-entry").unwrap();
        }
        held.commit(1, 0, b"held-one").unwrap();
        assert!(t.stats().records == 201);
    }

    #[test]
    fn cached_descriptor_refreshes_across_advances() {
        let t = tracer(1);
        let p = t.producer(0).unwrap();
        // 100 records of 32 encoded bytes cross many 256-byte blocks, so the
        // cached descriptor is invalidated (Tail/Exhausted) and re-seeded
        // repeatedly.
        for i in 0..100u64 {
            p.record_with(i, 0, b"cache-payload-16").unwrap();
        }
        assert!(t.stats().advances >= 2, "run must cross blocks");
        let out = t.consumer().collect();
        assert!(!out.events.is_empty());
        let stamps: Vec<_> = out.events.iter().map(|e| e.stamp()).collect();
        let mut sorted = stamps.clone();
        sorted.sort_unstable();
        assert_eq!(stamps, sorted, "single-producer buffer order must follow stamps");
        for e in &out.events {
            assert_eq!(e.payload(), b"cache-payload-16");
        }
    }

    #[test]
    fn cached_descriptor_survives_cross_core_recycle() {
        let t = tracer(2);
        let p0 = t.producer(0).unwrap();
        let p1 = t.producer(1).unwrap();
        p0.record_with(0, 0, b"prime-cache!").unwrap();
        // Flood from core 1 until the buffer wraps several times: core 0's
        // cached block is closed and recycled into a newer round behind the
        // cache's back.
        for i in 0..500u64 {
            p1.record_with(1000 + i, 1, b"flood-payload-entry").unwrap();
        }
        // The next allocation against the cached descriptor lands in the
        // newer round (Stale), must repair its own inflation, and the
        // record still goes through intact.
        p0.record_with(1, 0, b"after-recycle").unwrap();
        assert!(t.stats().straggler_repairs >= 1, "stale cached round must be repaired");
        let out = t.consumer().collect();
        assert!(out.events.iter().any(|e| e.payload() == b"after-recycle"));
        for e in &out.events {
            assert!(
                e.payload() == b"after-recycle"
                    || e.payload() == b"prime-cache!"
                    || e.payload() == b"flood-payload-entry",
                "torn event: {:?}",
                e.payload()
            );
        }
    }

    #[test]
    fn cached_descriptor_survives_shrink_resize() {
        let t = BTrace::new(
            Config::new(1)
                .active_blocks(4)
                .block_bytes(1024)
                .buffer_bytes(1024 * 4 * 4)
                .max_bytes(1024 * 4 * 8)
                .backing(Backing::Heap),
        )
        .unwrap();
        let p = t.producer(0).unwrap();
        p.record_with(0, 0, b"pre-resize").unwrap(); // primes the cache
        t.resize_bytes(1024 * 4 * 8).unwrap(); // grow: new mapping epoch
        for i in 1..25u64 {
            p.record_with(i, 0, b"post-grow-entry!").unwrap();
        }
        t.resize_bytes(1024 * 4).unwrap(); // shrink: blocks decommitted
        for i in 25..50u64 {
            p.record_with(i, 0, b"post-shrink-entry").unwrap();
        }
        let out = t.consumer().collect();
        // No write was misplaced through a stale cached mapping: every
        // surviving event is byte-intact and the newest is retained.
        for e in &out.events {
            assert!(
                e.payload() == b"pre-resize"
                    || e.payload() == b"post-grow-entry!"
                    || e.payload() == b"post-shrink-entry",
                "torn event after resize: {:?}",
                e.payload()
            );
        }
        assert_eq!(out.events.last().unwrap().stamp(), 49);
    }

    proptest::proptest! {
        #[test]
        fn wide_copy_roundtrips_any_payload(len in 1usize..=64, seed in proptest::prelude::any::<u8>()) {
            let t = tracer(1);
            let p = t.producer(0).unwrap();
            let payload: Vec<u8> = (0..len).map(|i| seed.wrapping_add(i as u8)).collect();
            p.record_with(7, 3, &payload).unwrap();
            let out = t.consumer().collect();
            proptest::prop_assert_eq!(out.events.len(), 1);
            proptest::prop_assert_eq!(out.events[0].payload(), &payload[..]);
        }
    }

    #[test]
    fn producers_on_all_cores_share_the_buffer() {
        let t = tracer(4);
        let handles: Vec<_> = (0..4)
            .map(|c| {
                let p = t.producer(c).unwrap();
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        p.record_with(c as u64 * 1000 + i, c as u32, b"0123456789abcdef").unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.stats().records, 2000);
        let out = t.consumer().collect();
        assert!(!out.events.is_empty());
        // Every surviving event must be intact (stamp within the ranges we wrote).
        for e in &out.events {
            assert!(e.stamp() % 1000 < 500, "corrupt stamp {}", e.stamp());
            assert_eq!(e.payload(), b"0123456789abcdef");
        }
    }
}
