//! Recording handles: [`Producer`] (per core) and [`Grant`] (two-phase
//! allocate/commit, the unit the paper's out-of-order confirmation operates
//! on).
//!
//! Producers are insulated from every resource-acquisition failure the
//! tracer can hit: commit/decommit happens only on the serialized resize
//! path (never here), a failed grow falls back to the pre-resize geometry,
//! and a failed reclaim is deferred — in all cases the blocks a producer
//! can reach are committed, so `record`/`begin`/`commit` keep succeeding
//! while the tracer reports [`TracerState::Degraded`]
//! (§3.3's never-block, never-fail guarantee extends to memory pressure).
//!
//! [`TracerState::Degraded`]: crate::TracerState::Degraded

use crate::buffer::{Granted, Shared};
use crate::error::TraceError;
use crate::event::{encoded_len, EntryHeader, EntryKind, HEADER_BYTES};
use crate::meta::Alloc;
use crate::sync::Arc;
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::Weak;

/// Heap-shared state of one handle's coalesced confirm run.
///
/// The run state used to be a plain `Cell` inside [`Producer`], which made
/// the PR-7 discipline — *flush before a same-thread resize* — enforceable
/// only by convention: `resize_bytes` had no way to reach the calling
/// thread's pending runs, so a caller that forgot the flush pinned its
/// cached block's round across the resize and stalled the drain loop into
/// `ResizeTimeout`. Hoisting the state into a shared slot lets a per-thread
/// registry hand exactly those runs to [`flush_thread_coalesced`], which
/// the resize entry point calls before it starts waiting on block closes.
///
/// The fields are atomics only so the (forbidden, but `Send`-expressible)
/// pattern of moving a `Producer` across threads mid-run is a logic error
/// rather than UB. The producer path uses pure relaxed loads and stores —
/// no RMW, compiling to the same plain moves the `Cell` did — and these
/// deliberately bypass the model-checking facade: like the diagnostic
/// counters, the accumulator is thread-private bookkeeping, not protocol
/// synchronization (the publication edge is still the `confirm_entry`
/// Release that flushes it).
pub(crate) struct CoalesceSlot {
    /// Identity (address) of the `Shared` the run's confirms belong to.
    shared_id: usize,
    /// Token of the thread whose registry currently owns this slot; 0
    /// until the first run opens.
    owner: AtomicU64,
    /// Meta block the pending run occupies. Only meaningful while
    /// `pending` is non-zero; written at run open, before the first
    /// deferred confirm is accumulated.
    meta_idx: AtomicUsize,
    /// Unconfirmed bytes of the pending run.
    pending: AtomicU64,
}

thread_local! {
    /// The coalesced runs opened (most recently) on this thread, one weak
    /// entry per live coalescing `Producer`. Dead entries are pruned on
    /// every flush walk.
    static THREAD_RUNS: RefCell<Vec<Weak<CoalesceSlot>>> = const { RefCell::new(Vec::new()) };
}

/// A token unique to the calling thread for the thread's lifetime (the
/// address of a thread-local; a recycled address can only belong to a
/// thread whose registry started empty, so stale owners never alias).
fn thread_token() -> u64 {
    thread_local! {
        static TOKEN: u8 = const { 0 };
    }
    TOKEN.with(|t| t as *const u8 as usize as u64)
}

/// Confirms every pending coalesced run that was opened *on the calling
/// thread* against `shared`, returning the number of runs flushed.
///
/// This is the resize guard: `BTrace::resize_bytes` runs it before the
/// meta drain so a caller holding its own unflushed run cannot deadlock
/// the drain loop it is about to enter (the run pins its block's round,
/// and the only thread that could have flushed it is the one now inside
/// the resize). Runs owned by other threads are left alone — their owners
/// are still recording and flush at their own block boundaries.
pub(crate) fn flush_thread_coalesced(shared: &Shared) -> usize {
    let me = thread_token();
    let id = shared as *const Shared as usize;
    THREAD_RUNS.with(|runs| {
        let mut flushed = 0;
        runs.borrow_mut().retain(|weak| {
            let Some(slot) = weak.upgrade() else { return false };
            if slot.shared_id == id && slot.owner.load(Relaxed) == me {
                let pending = slot.pending.swap(0, Relaxed) as u32;
                if pending > 0 {
                    shared.confirm_entry(slot.meta_idx.load(Relaxed), pending);
                    flushed += 1;
                }
            }
            true
        });
        flushed
    })
}

/// Largest payload that fits one entry in a block of `block_bytes`: the
/// block header consumes the first 16 bytes, the entry header another 16.
pub(crate) fn max_payload(block_bytes: usize) -> usize {
    (block_bytes - 2 * HEADER_BYTES).min(crate::event::MAX_ENTRY_BYTES - HEADER_BYTES)
}

/// A recording handle pinned to one core.
///
/// Handles are cheap to clone and share the tracer. Any number of threads
/// "running on" the same core may record through clones of the same handle —
/// the paper's oversubscription scenario — and none of them ever blocks:
/// space allocation is one fetch-and-add, confirmation is out of order.
///
/// # Examples
///
/// ```rust
/// use btrace_core::{BTrace, Config};
///
/// # fn main() -> Result<(), btrace_core::TraceError> {
/// let tracer = BTrace::new(Config::new(1).buffer_bytes(256 << 10).active_blocks(16))?;
/// let producer = tracer.producer(0)?;
///
/// // Convenience path: internal stamp clock.
/// producer.record(b"freq: cpu0 1.8GHz -> 2.4GHz")?;
///
/// // Two-phase path: allocate first, commit later (possibly after the
/// // thread was preempted in between).
/// let grant = producer.begin(12)?;
/// grant.commit(42, 7, b"sched-wakeup")?;
/// # Ok(())
/// # }
/// ```
pub struct Producer {
    shared: Arc<Shared>,
    core: u16,
    /// Cached descriptor of the block this handle last allocated from.
    ///
    /// The uncached path pays an acquire load of the core-local word plus a
    /// `gpos → (meta, round, data)` mapping on *every* record; this cache
    /// pays neither. It needs no invalidation protocol because it is
    /// self-validating: the allocation fetch-and-add carries the expected
    /// round, so any staleness — the block filled, another thread advanced
    /// the core, a wrap-around producer recycled the block, a resize moved
    /// the world — surfaces as `Exhausted`/`Tail`/`Stale` from `alloc`, and
    /// the `#[cold]` refresh path falls back to `Shared::allocate` and
    /// re-seeds the cache from its result. A `Cell` (not an atomic) keeps
    /// the fast path free of even relaxed RMWs; it makes `Producer` `!Sync`,
    /// which matches how handles are used — cloned per thread, never shared
    /// by reference.
    desc: Cell<Desc>,
    /// Whether [`Producer::record_with`] defers confirmation (see
    /// [`Producer::set_confirm_coalescing`]).
    coalesce: Cell<bool>,
    /// Unconfirmed bytes this handle has written into the cached block,
    /// hoisted into a heap slot (see [`CoalesceSlot`]) so the resize path
    /// can flush the calling thread's runs through the per-thread registry.
    ///
    /// `pending` is non-zero only under coalescing, and only ever for the
    /// block the cached descriptor names: the run is flushed — one Release
    /// RMW covering all of it — before the descriptor is re-seeded to
    /// another block (the `#[cold]` refresh, i.e. a block boundary), on
    /// [`Producer::flush_confirms`], on a same-thread `resize_bytes`, and
    /// on drop. Holding the run unconfirmed is exactly the open-grant
    /// state the protocol already supports: an unconfirmed in-capacity
    /// allocation pins the block's round (`meta.rs` invariant 2), so the
    /// bytes can be neither recycled nor reclaimed before the flush. The
    /// coalesced record path pays one extra L1 load for the indirection;
    /// the slot's line is written only by this handle and stays hot.
    slot: Arc<CoalesceSlot>,
}

impl Clone for Producer {
    fn clone(&self) -> Self {
        Self {
            shared: Arc::clone(&self.shared),
            core: self.core,
            desc: Cell::new(self.desc.get()),
            coalesce: Cell::new(self.coalesce.get()),
            // The pending run belongs to *this* handle's writes; a clone
            // sharing (or starting with) a non-zero slot would confirm
            // bytes it never wrote (double-confirm corrupts the round's
            // accounting) — every clone gets a fresh, empty slot.
            slot: Arc::new(CoalesceSlot {
                shared_id: self.slot.shared_id,
                owner: AtomicU64::new(0),
                meta_idx: AtomicUsize::new(0),
                pending: AtomicU64::new(0),
            }),
        }
    }
}

impl Drop for Producer {
    fn drop(&mut self) {
        // A dropped handle must not leave its block pinned forever: flush
        // the coalesced run so the block can close and recycle.
        self.flush_confirms();
    }
}

/// See [`Producer::desc`].
#[derive(Clone, Copy, Debug)]
struct Desc {
    gpos: u64,
    rnd: u32,
    meta_idx: usize,
    data_idx: u64,
    data_off: usize,
}

impl Producer {
    pub(crate) fn new(shared: Arc<Shared>, core: u16) -> Self {
        // Seed from the core's current block; if it is already stale by the
        // first record, the round check degrades it to a refresh.
        let local = shared.core_local(core as usize);
        let map = shared.cfg.map_live(local.pos, local.ratio);
        let desc = Desc {
            gpos: local.pos,
            rnd: map.rnd,
            meta_idx: map.meta_idx,
            data_idx: map.data_idx,
            data_off: shared.data.block_offset(map.data_idx),
        };
        let shared_id = &*shared as *const Shared as usize;
        Self {
            shared,
            core,
            desc: Cell::new(desc),
            coalesce: Cell::new(false),
            slot: Arc::new(CoalesceSlot {
                shared_id,
                owner: AtomicU64::new(0),
                meta_idx: AtomicUsize::new(0),
                pending: AtomicU64::new(0),
            }),
        }
    }

    /// Enables or disables **confirm coalescing** on this handle.
    ///
    /// Coalescing replaces the per-record Release fetch-and-add of the
    /// confirmed counter with one Release RMW per *run*: consecutive
    /// records into the same block accumulate in a pending counter that is
    /// flushed at the block boundary (the descriptor refresh), by
    /// [`flush_confirms`](Self::flush_confirms), or on drop. That single
    /// Release publishes every payload byte of the covered run — the same
    /// release/acquire edge as before, amortized.
    ///
    /// The trade is **visibility latency**: records of the current block
    /// stay invisible to consumers (and keep the block open) until the
    /// covering flush. Safety is unchanged — the unconfirmed run pins the
    /// block's round exactly like an open [`Grant`], so nothing is
    /// recycled or reclaimed underneath it.
    ///
    /// Disabling flushes any pending run first. Default: disabled.
    pub fn set_confirm_coalescing(&self, enabled: bool) {
        if !enabled {
            self.flush_confirms();
        }
        self.coalesce.set(enabled);
    }

    /// Whether confirm coalescing is enabled on this handle.
    pub fn confirm_coalescing(&self) -> bool {
        self.coalesce.get()
    }

    /// Confirms this handle's pending coalesced run, if any: one Release
    /// RMW that publishes every record since the last flush. Call before
    /// expecting a consumer to see the tail of a coalesced burst.
    pub fn flush_confirms(&self) {
        let pending = self.slot.pending.swap(0, Relaxed) as u32;
        if pending > 0 {
            self.shared.confirm_entry(self.slot.meta_idx.load(Relaxed), pending);
        }
    }

    /// Cached-descriptor allocation: one fetch-and-add against the cached
    /// block, no core-local load, no mapping. Falls into [`Self::refresh`]
    /// when the cached block cannot take the entry.
    #[inline]
    fn allocate(&self, need: u32) -> Granted {
        let d = self.desc.get();
        match self.shared.metas[d.meta_idx].alloc(d.rnd, need, self.shared.cap()) {
            Alloc::Fits { pos } => Granted {
                gpos: d.gpos,
                rnd: d.rnd,
                meta_idx: d.meta_idx,
                data_idx: d.data_idx,
                data_off: d.data_off,
                offset: pos,
                len: need,
            },
            fail => self.refresh(need, fail, d),
        }
    }

    /// Slow path: settle the failed allocation against the cached block —
    /// including the coalesced confirm run, whose covering Release lands
    /// here, at the block boundary — then allocate through the shared path
    /// and re-seed the cache.
    #[cold]
    fn refresh(&self, need: u32, fail: Alloc, d: Desc) -> Granted {
        let pending = self.slot.pending.swap(0, Relaxed) as u32;
        match fail {
            // We own the insufficient tail of the cached block: fill and
            // confirm it, exactly as the uncached path would (Fig. 8c). The
            // write is safe even against a concurrent shrink — the round
            // stays unconfirmed until our confirm, which the resize drain
            // waits on before any page is decommitted. One Release RMW
            // covers the coalesced run *and* the tail fill: the dummy bytes
            // are stored above, the run's payload bytes were stored before
            // their allocations returned, and the release orders all of
            // them before any observer of the bumped counter.
            Alloc::Tail { pos } => {
                let fill = self.shared.cap() - pos;
                self.shared.write_dummy_run(d.data_idx, pos, fill);
                self.shared.metas[d.meta_idx].confirm(pending + fill);
            }
            // The cached block was recycled into a newer round by a
            // wrap-around producer; our fetch-and-add inflated *that* round
            // and must be repaired, or its pin wedges the block (§3.4).
            Alloc::Stale(actual) => {
                // A pending run pins the cached round (its bytes are
                // unconfirmed), and a pinned round cannot be locked into a
                // newer one — so Stale implies no pending run. Were the
                // counter somehow non-zero, confirming into the *new*
                // round would corrupt it; dropping the count is the only
                // safe settlement (the old round no longer exists).
                debug_assert_eq!(pending, 0, "unconfirmed coalesced run pins the round");
                self.shared.repair_straggler(d.meta_idx, actual, need);
            }
            Alloc::Exhausted => {
                // The block filled under other writers; our run is its own
                // covering confirm.
                if pending > 0 {
                    self.shared.metas[d.meta_idx].confirm(pending);
                }
            }
            Alloc::Fits { .. } => unreachable!("fast path handles Fits"),
        }
        let granted = self.shared.allocate(self.core as usize, need);
        self.desc.set(Desc {
            gpos: granted.gpos,
            rnd: granted.rnd,
            meta_idx: granted.meta_idx,
            data_idx: granted.data_idx,
            data_off: granted.data_off,
        });
        granted
    }

    /// Opens a coalesced run in `meta_idx`: stamps the slot and, when this
    /// thread does not already own the slot, re-homes it into the calling
    /// thread's run registry so a same-thread `resize_bytes` can flush it.
    /// Runs once per block per handle — cold next to the per-record path.
    #[cold]
    fn open_run(&self, meta_idx: usize) {
        let slot = &self.slot;
        slot.meta_idx.store(meta_idx, Relaxed);
        let me = thread_token();
        if slot.owner.load(Relaxed) != me {
            slot.owner.store(me, Relaxed);
            THREAD_RUNS.with(|runs| {
                let mut runs = runs.borrow_mut();
                let ptr = Arc::as_ptr(slot);
                if !runs.iter().any(|w| w.as_ptr() == ptr) {
                    runs.push(Arc::downgrade(slot));
                }
            });
        }
    }

    /// The core this handle records on.
    pub fn core(&self) -> usize {
        self.core as usize
    }

    /// Records `payload` with a stamp from the tracer's convenience clock
    /// and a thread id of 0.
    ///
    /// # Errors
    ///
    /// [`TraceError::EntryTooLarge`] when the payload cannot fit in a block.
    pub fn record(&self, payload: &[u8]) -> Result<(), TraceError> {
        let stamp = self.shared.next_stamp();
        self.record_with(stamp, 0, payload)
    }

    /// Records `payload` with a caller-provided logic stamp and thread id.
    /// This is the hot path: one fetch-and-add against the cached block
    /// descriptor to allocate, a word-wise copy, one fetch-and-add to
    /// confirm, one packed relaxed add for the counters.
    ///
    /// # Errors
    ///
    /// [`TraceError::EntryTooLarge`] when the payload cannot fit in a block.
    #[inline]
    pub fn record_with(&self, stamp: u64, tid: u32, payload: &[u8]) -> Result<(), TraceError> {
        let shared = &*self.shared;
        let core = self.core as usize;
        let max = max_payload(shared.cfg.block_bytes);
        if payload.len() > max {
            return Err(TraceError::EntryTooLarge { payload: payload.len(), max });
        }
        let need = encoded_len(payload.len()) as u32;
        // Sampled fast-path timing: untimed records pay one relaxed load.
        #[cfg(feature = "telemetry")]
        let timer = shared.telem.record_timer(shared.counters.records_on_core(core));
        let granted = self.allocate(need);
        write_entry(
            shared,
            granted.data_off,
            granted.offset,
            granted.len,
            stamp,
            tid,
            self.core,
            payload,
        );
        if self.coalesce.get() {
            // Deferred: the covering Release happens at the block boundary
            // (refresh), on flush_confirms, on a same-thread resize, or on
            // drop. `granted` is always the cached descriptor's block here —
            // a boundary-crossing allocation went through refresh, which
            // flushed the old run before re-seeding the descriptor. Pure
            // relaxed load + store (no RMW): the slot is written by this
            // handle only, and the run-open below re-homes the slot into
            // the current thread's registry so `resize_bytes` can reach it.
            let slot = &*self.slot;
            let pending = slot.pending.load(Relaxed);
            if pending == 0 {
                self.open_run(granted.meta_idx);
            } else {
                debug_assert_eq!(slot.meta_idx.load(Relaxed), granted.meta_idx);
            }
            slot.pending.store(pending + granted.len as u64, Relaxed);
        } else {
            shared.confirm_entry(granted.meta_idx, granted.len);
        }
        shared.counters.record_on_core(core, granted.len as u64);
        #[cfg(feature = "telemetry")]
        if let Some(t0) = timer {
            shared.telem.record_hist.record(core, t0.elapsed().as_nanos() as u64);
        }
        Ok(())
    }

    /// Allocates space for a `payload_len`-byte entry without writing it,
    /// returning a [`Grant`] to commit later.
    ///
    /// Between `begin` and [`Grant::commit`] the owning thread may be
    /// preempted arbitrarily long; other producers on the same core keep
    /// recording (out-of-order confirmation) and, when the block fills,
    /// advancement skips rather than waits (§3.4). The unconfirmed grant
    /// pins its block's round, so the space can be neither reused nor
    /// reclaimed underneath it.
    ///
    /// # Errors
    ///
    /// [`TraceError::EntryTooLarge`] when the payload cannot fit in a block.
    pub fn begin(&self, payload_len: usize) -> Result<Grant, TraceError> {
        let need = self.encoded_need(payload_len)?;
        let granted = self.allocate(need);
        Ok(Grant {
            shared: Arc::clone(&self.shared),
            meta_idx: granted.meta_idx,
            data_off: granted.data_off,
            offset: granted.offset,
            len: granted.len,
            payload_len: payload_len as u32,
            core: self.core,
            gpos: granted.gpos,
            committed: false,
        })
    }

    fn encoded_need(&self, payload_len: usize) -> Result<u32, TraceError> {
        let max = max_payload(self.shared.cfg.block_bytes);
        if payload_len > max {
            return Err(TraceError::EntryTooLarge { payload: payload_len, max });
        }
        Ok(encoded_len(payload_len) as u32)
    }
}

impl std::fmt::Debug for Producer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Producer").field("core", &self.core).finish()
    }
}

/// The grant-free, uncached recording path used by the `TraceSink`
/// implementation (which has no per-handle state to cache a descriptor in).
/// [`Producer::record_with`] carries its own copy running over the cached
/// descriptor.
#[inline]
pub(crate) fn record_on(
    shared: &Shared,
    core: usize,
    stamp: u64,
    tid: u32,
    payload: &[u8],
) -> Result<(), TraceError> {
    let max = max_payload(shared.cfg.block_bytes);
    if payload.len() > max {
        return Err(TraceError::EntryTooLarge { payload: payload.len(), max });
    }
    let need = encoded_len(payload.len()) as u32;
    // Sampled fast-path timing: untimed records pay one relaxed load.
    #[cfg(feature = "telemetry")]
    let timer = shared.telem.record_timer(shared.counters.records_on_core(core));
    let granted = shared.allocate(core, need);
    write_entry(
        shared,
        granted.data_off,
        granted.offset,
        granted.len,
        stamp,
        tid,
        core as u16,
        payload,
    );
    shared.confirm_entry(granted.meta_idx, granted.len);
    shared.counters.record_on_core(core, granted.len as u64);
    #[cfg(feature = "telemetry")]
    if let Some(t0) = timer {
        shared.telem.record_hist.record(core, t0.elapsed().as_nanos() as u64);
    }
    Ok(())
}

#[inline]
#[allow(clippy::too_many_arguments)]
fn write_entry(
    shared: &Shared,
    data_off: usize,
    offset: u32,
    len: u32,
    stamp: u64,
    tid: u32,
    core: u16,
    payload: &[u8],
) {
    let pad = len as usize - HEADER_BYTES - payload.len();
    let header = EntryHeader {
        len: len as u16,
        kind: EntryKind::Data,
        pad: pad as u8,
        core: core as u8,
        tid,
        stamp,
    };
    let at = data_off + offset as usize;
    shared.data.store_words(at, &header.encode());
    shared.data.store_bytes(at + HEADER_BYTES, payload);
}

/// An allocated-but-unconfirmed entry (paper Fig. 8).
///
/// Obtained from [`Producer::begin`]; finish with [`Grant::commit`].
/// Dropping an uncommitted grant confirms the space as a dummy entry so the
/// block can still fill, close, and recycle — a crashed or cancelled writer
/// costs its bytes, never the buffer's liveness.
#[must_use = "an unfinished grant keeps its block from completing; commit it"]
pub struct Grant {
    shared: Arc<Shared>,
    meta_idx: usize,
    data_off: usize,
    offset: u32,
    len: u32,
    payload_len: u32,
    core: u16,
    gpos: u64,
    committed: bool,
}

impl Grant {
    /// Number of payload bytes this grant was sized for.
    pub fn payload_len(&self) -> usize {
        self.payload_len as usize
    }

    /// Global sequence number of the block holding the grant.
    pub fn gpos(&self) -> u64 {
        self.gpos
    }

    /// Writes the entry and confirms it (the out-of-order confirmation of
    /// §3.4 — grants commit in any order, each bumping the confirmed
    /// counter).
    ///
    /// # Errors
    ///
    /// [`TraceError::EntryTooLarge`] when `payload` is not exactly the
    /// length the grant was allocated for.
    pub fn commit(mut self, stamp: u64, tid: u32, payload: &[u8]) -> Result<(), TraceError> {
        if payload.len() != self.payload_len as usize {
            return Err(TraceError::EntryTooLarge {
                payload: payload.len(),
                max: self.payload_len as usize,
            });
        }
        write_entry(
            &self.shared,
            self.data_off,
            self.offset,
            self.len,
            stamp,
            tid,
            self.core,
            payload,
        );
        self.shared.confirm_entry(self.meta_idx, self.len);
        self.shared.counters.record_on_core(self.core as usize, self.len as u64);
        self.committed = true;
        Ok(())
    }
}

impl Drop for Grant {
    fn drop(&mut self) {
        if !self.committed {
            // Convert the reserved space into dummy filler and confirm it so
            // the block is not wedged (C-DTOR-FAIL: never fails, never blocks).
            let data_idx = (self.data_off / self.shared.cfg.block_bytes) as u64;
            self.shared.write_dummy_run(data_idx, self.offset, self.len);
            self.shared.confirm_entry(self.meta_idx, self.len);
        }
    }
}

impl std::fmt::Debug for Grant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Grant")
            .field("gpos", &self.gpos)
            .field("offset", &self.offset)
            .field("len", &self.len)
            .field("committed", &self.committed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::{BTrace, Config, TraceError};
    use btrace_vmem::Backing;

    fn tracer(cores: usize) -> BTrace {
        BTrace::new(
            Config::new(cores)
                .active_blocks(cores.max(4))
                .block_bytes(256)
                .buffer_bytes(256 * cores.max(4) * 4)
                .backing(Backing::Heap),
        )
        .unwrap()
    }

    #[test]
    fn record_then_collect_roundtrip() {
        let t = tracer(1);
        let p = t.producer(0).unwrap();
        p.record_with(1, 7, b"hello").unwrap();
        p.record_with(2, 7, b"world!").unwrap();
        let out = t.consumer().collect();
        let payloads: Vec<_> = out.events.iter().map(|e| e.payload().to_vec()).collect();
        assert_eq!(payloads, vec![b"hello".to_vec(), b"world!".to_vec()]);
        assert_eq!(out.events[0].stamp(), 1);
        assert_eq!(out.events[0].tid(), 7);
        assert_eq!(out.events[0].core(), 0);
    }

    #[test]
    fn oversized_payload_rejected() {
        let t = tracer(1);
        let p = t.producer(0).unwrap();
        let big = vec![0u8; 1024];
        assert!(matches!(p.record(&big), Err(TraceError::EntryTooLarge { .. })));
    }

    #[test]
    fn max_payload_is_accepted() {
        let t = tracer(1);
        let p = t.producer(0).unwrap();
        let payload = vec![0xAB; t.max_payload()];
        p.record(&payload).unwrap();
        let out = t.consumer().collect();
        assert_eq!(out.events.len(), 1);
        assert_eq!(out.events[0].payload(), &payload[..]);
    }

    #[test]
    fn grant_commit_publishes_entry() {
        let t = tracer(1);
        let p = t.producer(0).unwrap();
        let g = p.begin(4).unwrap();
        // Nothing visible while the grant is open.
        assert_eq!(t.consumer().collect().events.len(), 0, "open grant must hide the block");
        g.commit(9, 3, b"abcd").unwrap();
        let out = t.consumer().collect();
        assert_eq!(out.events.len(), 1);
        assert_eq!(out.events[0].stamp(), 9);
        assert_eq!(out.events[0].payload(), b"abcd");
    }

    #[test]
    fn grant_commit_wrong_len_rejected() {
        let t = tracer(1);
        let p = t.producer(0).unwrap();
        let g = p.begin(4).unwrap();
        assert!(g.commit(0, 0, b"too long").is_err());
        // The failed commit consumed the grant; its Drop confirmed a dummy,
        // so later records still flow.
        p.record(b"after").unwrap();
        let out = t.consumer().collect();
        assert_eq!(out.events.len(), 1);
    }

    #[test]
    fn dropped_grant_becomes_dummy() {
        let t = tracer(1);
        let p = t.producer(0).unwrap();
        drop(p.begin(32).unwrap());
        p.record_with(5, 0, b"next").unwrap();
        let out = t.consumer().collect();
        assert_eq!(out.events.len(), 1, "dummy must not surface as an event");
        assert_eq!(out.events[0].stamp(), 5);
        assert!(t.stats().dummy_bytes >= 48);
    }

    #[test]
    fn interleaved_grants_commit_out_of_order() {
        let t = tracer(1);
        let p = t.producer(0).unwrap();
        let g1 = p.begin(2).unwrap();
        let g2 = p.begin(2).unwrap();
        g2.commit(2, 1, b"g2").unwrap(); // T1 confirms before T0 (Fig. 8b)
        g1.commit(1, 0, b"g1").unwrap();
        let out = t.consumer().collect();
        let stamps: Vec<_> = out.events.iter().map(|e| e.stamp()).collect();
        assert_eq!(stamps, vec![1, 2], "buffer order follows allocation order");
    }

    #[test]
    fn preempted_grant_does_not_block_other_threads() {
        let t = tracer(1);
        let p = t.producer(0).unwrap();
        let held = p.begin(8).unwrap(); // simulated preemption mid-write
                                        // Other threads on the core keep writing straight through block
                                        // boundaries (the held grant's block is skipped at wrap-around).
        for i in 0..200 {
            p.record_with(100 + i, 1, b"filler-entry").unwrap();
        }
        held.commit(1, 0, b"held-one").unwrap();
        assert!(t.stats().records == 201);
    }

    #[test]
    fn cached_descriptor_refreshes_across_advances() {
        let t = tracer(1);
        let p = t.producer(0).unwrap();
        // 100 records of 32 encoded bytes cross many 256-byte blocks, so the
        // cached descriptor is invalidated (Tail/Exhausted) and re-seeded
        // repeatedly.
        for i in 0..100u64 {
            p.record_with(i, 0, b"cache-payload-16").unwrap();
        }
        assert!(t.stats().advances >= 2, "run must cross blocks");
        let out = t.consumer().collect();
        assert!(!out.events.is_empty());
        let stamps: Vec<_> = out.events.iter().map(|e| e.stamp()).collect();
        let mut sorted = stamps.clone();
        sorted.sort_unstable();
        assert_eq!(stamps, sorted, "single-producer buffer order must follow stamps");
        for e in &out.events {
            assert_eq!(e.payload(), b"cache-payload-16");
        }
    }

    #[test]
    fn cached_descriptor_survives_cross_core_recycle() {
        let t = tracer(2);
        let p0 = t.producer(0).unwrap();
        let p1 = t.producer(1).unwrap();
        p0.record_with(0, 0, b"prime-cache!").unwrap();
        // Flood from core 1 until the buffer wraps several times: core 0's
        // cached block is closed and recycled into a newer round behind the
        // cache's back.
        for i in 0..500u64 {
            p1.record_with(1000 + i, 1, b"flood-payload-entry").unwrap();
        }
        // The next allocation against the cached descriptor lands in the
        // newer round (Stale), must repair its own inflation, and the
        // record still goes through intact.
        p0.record_with(1, 0, b"after-recycle").unwrap();
        assert!(t.stats().straggler_repairs >= 1, "stale cached round must be repaired");
        let out = t.consumer().collect();
        assert!(out.events.iter().any(|e| e.payload() == b"after-recycle"));
        for e in &out.events {
            assert!(
                e.payload() == b"after-recycle"
                    || e.payload() == b"prime-cache!"
                    || e.payload() == b"flood-payload-entry",
                "torn event: {:?}",
                e.payload()
            );
        }
    }

    #[test]
    fn cached_descriptor_survives_shrink_resize() {
        let t = BTrace::new(
            Config::new(1)
                .active_blocks(4)
                .block_bytes(1024)
                .buffer_bytes(1024 * 4 * 4)
                .max_bytes(1024 * 4 * 8)
                .backing(Backing::Heap),
        )
        .unwrap();
        let p = t.producer(0).unwrap();
        p.record_with(0, 0, b"pre-resize").unwrap(); // primes the cache
        t.resize_bytes(1024 * 4 * 8).unwrap(); // grow: new mapping epoch
        for i in 1..25u64 {
            p.record_with(i, 0, b"post-grow-entry!").unwrap();
        }
        t.resize_bytes(1024 * 4).unwrap(); // shrink: blocks decommitted
        for i in 25..50u64 {
            p.record_with(i, 0, b"post-shrink-entry").unwrap();
        }
        let out = t.consumer().collect();
        // No write was misplaced through a stale cached mapping: every
        // surviving event is byte-intact and the newest is retained.
        for e in &out.events {
            assert!(
                e.payload() == b"pre-resize"
                    || e.payload() == b"post-grow-entry!"
                    || e.payload() == b"post-shrink-entry",
                "torn event after resize: {:?}",
                e.payload()
            );
        }
        assert_eq!(out.events.last().unwrap().stamp(), 49);
    }

    #[test]
    fn coalesced_run_is_invisible_until_flush() {
        let t = tracer(1);
        let p = t.producer(0).unwrap();
        p.set_confirm_coalescing(true);
        p.record_with(1, 0, b"deferred").unwrap();
        p.record_with(2, 0, b"deferred").unwrap();
        // The run is unconfirmed: its block cannot close, so nothing is
        // visible yet — the same containment as an open grant.
        assert_eq!(t.consumer().collect().events.len(), 0, "unflushed run must stay hidden");
        p.flush_confirms();
        let out = t.consumer().collect();
        let stamps: Vec<_> = out.events.iter().map(|e| e.stamp()).collect();
        assert_eq!(stamps, vec![1, 2], "the covering confirm publishes the whole run");
    }

    #[test]
    fn coalesced_confirms_flush_at_block_boundaries() {
        let t = tracer(1);
        let p = t.producer(0).unwrap();
        p.set_confirm_coalescing(true);
        // 24-byte encoded entries into 256-byte blocks: every block
        // boundary crossing must flush the previous block's run, so all
        // but the current open block's records are visible without an
        // explicit flush.
        for i in 0..100u64 {
            p.record_with(i, 0, b"cache-payload-16").unwrap();
        }
        let visible = t.consumer().collect().events.len();
        assert!(visible >= 80, "closed blocks must be published by boundary flushes: {visible}");
        p.flush_confirms();
        let out = t.consumer().collect();
        let stamps: Vec<_> = out.events.iter().map(|e| e.stamp()).collect();
        let expected: Vec<u64> = (0..100).collect();
        assert_eq!(stamps, expected, "flush publishes the tail; nothing lost or reordered");
    }

    #[test]
    fn dropping_a_coalescing_producer_flushes_its_run() {
        let t = tracer(1);
        let p = t.producer(0).unwrap();
        p.set_confirm_coalescing(true);
        p.record_with(7, 0, b"flushed by drop").unwrap();
        drop(p);
        let out = t.consumer().collect();
        assert_eq!(out.events.len(), 1);
        assert_eq!(out.events[0].stamp(), 7);
    }

    #[test]
    fn cloned_coalescing_handle_does_not_inherit_the_pending_run() {
        let t = tracer(1);
        let p = t.producer(0).unwrap();
        p.set_confirm_coalescing(true);
        p.record_with(1, 0, b"pending-on-p").unwrap();
        let q = p.clone();
        assert!(q.confirm_coalescing(), "the mode is inherited");
        // q flushing must not confirm p's bytes (that would double-count
        // and could close the block with p's entry still unpublished).
        q.flush_confirms();
        assert_eq!(t.consumer().collect().events.len(), 0, "clone owns no pending bytes");
        p.flush_confirms();
        assert_eq!(t.consumer().collect().events.len(), 1);
    }

    #[test]
    fn disabling_coalescing_flushes_and_restores_immediate_visibility() {
        let t = tracer(1);
        let p = t.producer(0).unwrap();
        p.set_confirm_coalescing(true);
        p.record_with(1, 0, b"deferred").unwrap();
        p.set_confirm_coalescing(false);
        assert_eq!(t.consumer().collect().events.len(), 1, "disable flushes the run");
        p.record_with(2, 0, b"immediate").unwrap();
        assert_eq!(t.consumer().collect().events.len(), 2, "per-record confirms are back");
    }

    #[test]
    fn coalesced_wraparound_preserves_integrity() {
        // Wrap the 16-block buffer many times with coalescing on: every
        // boundary flush must cover exactly its run, or a block would
        // close early (torn reads) or never (wedged stream).
        let t = tracer(1);
        let p = t.producer(0).unwrap();
        p.set_confirm_coalescing(true);
        for i in 0..2_000u64 {
            p.record_with(i, 0, b"wrap-the-buffer!").unwrap();
        }
        p.flush_confirms();
        let out = t.consumer().collect();
        assert!(!out.events.is_empty());
        for e in &out.events {
            assert_eq!(e.payload(), b"wrap-the-buffer!", "torn event at stamp {}", e.stamp());
        }
        assert_eq!(out.events.last().unwrap().stamp(), 1_999, "newest record retained");
    }

    proptest::proptest! {
        #[test]
        fn wide_copy_roundtrips_any_payload(len in 1usize..=64, seed in proptest::prelude::any::<u8>()) {
            let t = tracer(1);
            let p = t.producer(0).unwrap();
            let payload: Vec<u8> = (0..len).map(|i| seed.wrapping_add(i as u8)).collect();
            p.record_with(7, 3, &payload).unwrap();
            let out = t.consumer().collect();
            proptest::prop_assert_eq!(out.events.len(), 1);
            proptest::prop_assert_eq!(out.events[0].payload(), &payload[..]);
        }
    }

    #[test]
    fn producers_on_all_cores_share_the_buffer() {
        let t = tracer(4);
        let handles: Vec<_> = (0..4)
            .map(|c| {
                let p = t.producer(c).unwrap();
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        p.record_with(c as u64 * 1000 + i, c as u32, b"0123456789abcdef").unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.stats().records, 2000);
        let out = t.consumer().collect();
        assert!(!out.events.is_empty());
        // Every surviving event must be intact (stamp within the ranges we wrote).
        for e in &out.events {
            assert!(e.stamp() % 1000 < 500, "corrupt stamp {}", e.stamp());
            assert_eq!(e.payload(), b"0123456789abcdef");
        }
    }
}
